"""BISR-style redundancy allocation from a fail bitmap.

The paper positions its structure as "complementary to these BISR
techniques"; this module closes the loop by allocating spare rows and
columns against whichever fail map is available (digital pass/fail, or
out-of-spec cells from the analog bitmap — the latter lets BISR retire
*marginal* cells before they fail in the field).

The allocation follows the classic two-stage heuristic:

1. **Must-repair**: a row with more failures than the remaining spare
   columns can cover *must* take a spare row (and symmetrically for
   columns); iterate to fixpoint.
2. **Greedy cover**: repeatedly spend whichever spare (row or column)
   covers the most remaining failures.

Optimal repair is NP-complete; this heuristic is the standard production
compromise and is exact whenever a solution with must-repairs plus
greedy choices exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DiagnosisError


@dataclass
class RepairPlan:
    """Outcome of a repair attempt."""

    spare_rows_used: list[int] = field(default_factory=list)
    spare_cols_used: list[int] = field(default_factory=list)
    uncovered: list[tuple[int, int]] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when every failing cell is covered."""
        return not self.uncovered

    def covers(self, row: int, col: int) -> bool:
        """True when the plan repairs the given address."""
        return row in self.spare_rows_used or col in self.spare_cols_used


class RepairPlanner:
    """Allocate spare rows/columns to cover a fail mask.

    Parameters
    ----------
    spare_rows, spare_cols:
        Redundancy budget of the array.
    """

    def __init__(self, spare_rows: int, spare_cols: int) -> None:
        if spare_rows < 0 or spare_cols < 0:
            raise DiagnosisError("spare counts must be >= 0")
        self.spare_rows = spare_rows
        self.spare_cols = spare_cols

    def plan(self, fails: np.ndarray) -> RepairPlan:
        """Compute a repair plan for the boolean fail mask."""
        fails = np.asarray(fails)
        if fails.ndim != 2 or fails.dtype != bool:
            raise DiagnosisError("fails must be a 2-D boolean array")
        remaining = fails.copy()
        plan = RepairPlan()
        rows_left = self.spare_rows
        cols_left = self.spare_cols

        # Stage 1: must-repair to fixpoint.
        changed = True
        while changed:
            changed = False
            row_counts = remaining.sum(axis=1)
            for row in np.nonzero(row_counts > cols_left)[0]:
                if rows_left == 0:
                    break
                remaining[row, :] = False
                plan.spare_rows_used.append(int(row))
                rows_left -= 1
                changed = True
            col_counts = remaining.sum(axis=0)
            for col in np.nonzero(col_counts > rows_left)[0]:
                if cols_left == 0:
                    break
                remaining[:, col] = False
                plan.spare_cols_used.append(int(col))
                cols_left -= 1
                changed = True

        # Stage 2: greedy cover.
        while remaining.any() and (rows_left > 0 or cols_left > 0):
            row_counts = remaining.sum(axis=1)
            col_counts = remaining.sum(axis=0)
            best_row = int(np.argmax(row_counts)) if rows_left else -1
            best_col = int(np.argmax(col_counts)) if cols_left else -1
            row_gain = row_counts[best_row] if best_row >= 0 else -1
            col_gain = col_counts[best_col] if best_col >= 0 else -1
            if row_gain <= 0 and col_gain <= 0:
                break
            if row_gain >= col_gain:
                remaining[best_row, :] = False
                plan.spare_rows_used.append(best_row)
                rows_left -= 1
            else:
                remaining[:, best_col] = False
                plan.spare_cols_used.append(best_col)
                cols_left -= 1

        rows, cols = np.nonzero(remaining)
        plan.uncovered = [(int(r), int(c)) for r, c in zip(rows, cols)]
        return plan
