"""FeCap backend: polarization physics, read-disturb, cache coherence."""

import numpy as np
import pytest

from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.errors import ArrayConfigError
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.obs.ledger import RunLedger
from repro.technologies import get
from repro.technologies.fecap import FeCapArray, fecap_technology_card
from repro.units import fF


def _small(seed=0, **kwargs):
    return get("fecap").build_array(8, 4, macro_rows=4, seed=seed, **kwargs)


class TestPolarizationModel:
    def test_written_state_capacitance_is_lin_plus_switch(self):
        array = FeCapArray(4, 2)
        card = fecap_technology_card()
        np.testing.assert_allclose(
            array.capacitance_view(), card.cell_capacitance
        )

    def test_depolarized_cell_presents_the_dielectric_floor(self):
        array = FeCapArray(4, 2, polarization=-1.0)
        np.testing.assert_allclose(array.capacitance_view(), 15.0 * fF)

    def test_polarization_validated(self):
        with pytest.raises(ArrayConfigError):
            FeCapArray(4, 2, polarization=1.5)
        with pytest.raises(ArrayConfigError):
            FeCapArray(4, 2, read_disturb=1.0)

    def test_polarization_view_is_read_only(self):
        view = FeCapArray(4, 2).polarization_view()
        with pytest.raises(ValueError):
            view[0, 0] = 0.0


class TestReadDisturb:
    def test_disturb_decays_polarization_and_capacitance(self):
        array = FeCapArray(4, 2, read_disturb=0.1)
        before = array.capacitance_view().copy()
        array.apply_read_disturb()
        np.testing.assert_allclose(array.polarization_view(), 0.9)
        assert np.all(array.capacitance_view() < before)
        assert array.reads == 1

    def test_multi_read_disturb_compounds(self):
        one_by_one = FeCapArray(4, 2, read_disturb=0.1)
        batched = FeCapArray(4, 2, read_disturb=0.1)
        for _ in range(3):
            one_by_one.apply_read_disturb()
        batched.apply_read_disturb(reads=3)
        np.testing.assert_allclose(
            one_by_one.polarization_view(), batched.polarization_view()
        )

    def test_disturb_bumps_version_for_cache_eviction(self):
        array = FeCapArray(4, 2)
        version = array.version
        array.apply_read_disturb()
        assert array.version > version

    def test_disturb_reapplies_parametric_defect_factors(self):
        array = FeCapArray(4, 2, read_disturb=0.1)
        DefectInjector(array).inject(0, 0, CellDefect(kind=DefectKind.LOW_CAP, factor=0.5))
        array.apply_read_disturb()
        plane = array.capacitance_view()
        # The defective cell stays at half its neighbours' (uniform) value.
        assert plane[0, 0] == pytest.approx(0.5 * plane[1, 1])

    def test_zero_disturb_rate_leaves_planes_untouched(self):
        array = FeCapArray(4, 2, read_disturb=0.0)
        before = array.capacitance_view().copy()
        array.apply_read_disturb()
        np.testing.assert_array_equal(array.capacitance_view(), before)


class TestScanIntegration:
    def test_scan_applies_one_read_of_disturb(self):
        array = _small()
        scanner = ArrayScanner(array, get("fecap").design_structure(array))
        scanner.scan(ScanConfig(technology="fecap"))
        assert array.reads == 1
        np.testing.assert_allclose(
            array.polarization_view(), 1.0 - array.read_disturb
        )

    def test_repeated_recorded_scans_droop_in_the_ledger(self, tmp_path):
        array = _small()
        scanner = ArrayScanner(array, get("fecap").design_structure(array))
        ledger = RunLedger(tmp_path / "ledger")
        config = ScanConfig(technology="fecap", ledger=ledger)
        for _ in range(4):
            scanner.scan(config)
        manifests = ledger.runs()
        polarization = [m.scalars["polarization_mean"] for m in manifests]
        assert polarization == sorted(polarization, reverse=True)
        assert [m.scalars["read_cycles"] for m in manifests] == [1, 2, 3, 4]
        # The measured V_GS (monotone in cell capacitance) droops with
        # the polarization — this is the signal the drift charts flag.
        vgs_means = [m.scalars["vgs_mean"] for m in manifests]
        assert vgs_means == sorted(vgs_means, reverse=True)
        assert vgs_means[0] > vgs_means[-1]

    def test_kernel_vs_serial_on_identical_twins(self):
        """Scans disturb state, so compare two identically-seeded arrays."""
        kernel_array = _small(seed=5, with_defects=True)
        driver_array = _small(seed=5, with_defects=True)
        structure = get("fecap").design_structure(kernel_array)
        config = ScanConfig(technology="fecap")
        fast = ArrayScanner(kernel_array, structure).scan(config)
        slow = ArrayScanner(driver_array, structure, use_kernel=False).scan(config)
        np.testing.assert_array_equal(fast.codes, slow.codes)
        np.testing.assert_array_equal(fast.vgs, slow.vgs)
        np.testing.assert_array_equal(fast.quality, slow.quality)
