"""Unit coverage of the shared-memory fan-out and its caches.

The bit-exactness of the fan-out is pinned in ``test_scan_perf.py`` and
the property suite; this file covers the machinery itself — the shared
planes' lifecycle, the version-keyed payload/pool cache, and the
per-macro timing summary that replaced raw timings in history files.
"""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.measure import parallel as fanout
from repro.measure.config import ScanConfig
from repro.measure.parallel import SharedScanPlanes
from repro.measure.scan import ArrayScanner
from repro.measure.stats import MacroTiming, ScanStats
from repro.resilience.retry import RetryPolicy
from repro.units import fF


@pytest.fixture(autouse=True)
def _fresh_fanout_cache():
    """Each test starts and ends with an empty fan-out cache."""
    fanout._evict_fanout_cache()
    yield
    fanout._evict_fanout_cache()


class TestSharedScanPlanes:
    def test_planes_shapes_and_dtypes(self):
        planes = SharedScanPlanes(6, 4)
        try:
            assert planes.vgs.shape == (6, 4) and planes.vgs.dtype == np.float64
            assert planes.codes.shape == (6, 4) and planes.codes.dtype == np.int64
            assert planes.quality.shape == (6, 4)
            assert planes.quality.dtype == np.uint8
        finally:
            planes.close()

    def test_views_share_one_buffer(self):
        planes = SharedScanPlanes(3, 2)
        try:
            planes.vgs[1, 1] = 0.125
            again = np.ndarray(
                (3, 2), dtype=np.float64, buffer=planes._segments[0].buf
            )
            assert again[1, 1] == 0.125
        finally:
            planes.close()

    def test_close_is_idempotent(self):
        planes = SharedScanPlanes(2, 2)
        planes.close()
        planes.close()  # second close must not raise
        assert planes._segments == []


class TestFanoutCache:
    def test_payload_cached_for_unmutated_array(self, tech):
        array = EDRAMArray(8, 4, tech=tech, macro_rows=4, macro_cols=2)
        scanner, planes = fanout._fanout_payload(array, None)
        again_scanner, again_planes = fanout._fanout_payload(array, None)
        assert again_scanner is scanner
        assert again_planes is planes

    def test_version_bump_evicts_payload(self, tech):
        # Forked workers hold a copy-on-write snapshot of the array; a
        # stale cache entry would let them scan stale silicon.
        array = EDRAMArray(8, 4, tech=tech, macro_rows=4, macro_cols=2)
        _scanner, planes = fanout._fanout_payload(array, None)
        array.cell(0, 0).capacitance = 44 * fF  # bumps array.version
        fresh_scanner, fresh_planes = fanout._fanout_payload(array, None)
        assert fresh_planes is not planes
        assert planes._segments == []  # the evicted planes were released
        assert fresh_scanner.array is array

    def test_vanilla_pool_is_cached_and_resized(self, tech):
        array = EDRAMArray(8, 4, tech=tech, macro_rows=4, macro_cols=2)
        scanner, planes = fanout._fanout_payload(array, None)
        pool = fanout._fanout_pool(scanner, planes, 2, None, None, None)
        assert pool.persistent
        again = fanout._fanout_pool(scanner, planes, 3, None, None, None)
        assert again is pool
        assert again.jobs == 3

    def test_custom_supervision_gets_fresh_pool(self, tech):
        array = EDRAMArray(8, 4, tech=tech, macro_rows=4, macro_cols=2)
        scanner, planes = fanout._fanout_payload(array, None)
        warm = fanout._fanout_pool(scanner, planes, 2, None, None, None)
        custom = fanout._fanout_pool(
            scanner, planes, 2, RetryPolicy(max_attempts=1), 30.0, None
        )
        try:
            assert custom is not warm
            assert not custom.persistent
        finally:
            custom.close()

    def test_warm_pool_scans_bit_exact_across_reuse(self, tech):
        array = EDRAMArray(16, 8, tech=tech, macro_rows=4, macro_cols=2)
        serial = ArrayScanner(array, None).scan()
        first = ArrayScanner(array, None).scan(ScanConfig(jobs=2))
        assert fanout._CACHE.get("pool") is not None  # pool stayed warm
        second = ArrayScanner(array, None).scan(ScanConfig(jobs=2))
        np.testing.assert_array_equal(first.vgs, serial.vgs)
        np.testing.assert_array_equal(second.vgs, serial.vgs)
        np.testing.assert_array_equal(second.codes, serial.codes)
        np.testing.assert_array_equal(second.quality, serial.quality)


class TestTimingSummary:
    def _stats(self, seconds):
        timings = [
            MacroTiming(i, "c", 4, value) for i, value in enumerate(seconds)
        ]
        return ScanStats(
            total_cells=4 * len(timings),
            wall_seconds=sum(seconds),
            jobs=1,
            closed_form_cells=4 * len(timings),
            engine_cells=0,
            macro_timings=timings,
        )

    def test_percentiles_of_known_distribution(self):
        stats = self._stats([0.001 * (i + 1) for i in range(100)])
        summary = stats.timing_summary()
        assert summary["p50"] == pytest.approx(0.0505, rel=1e-6)
        assert summary["p95"] == pytest.approx(0.09505, rel=1e-6)
        assert summary["max"] == pytest.approx(0.100, rel=1e-6)

    def test_empty_timings_summarize_to_zero(self):
        stats = self._stats([])
        assert stats.timing_summary() == {"p50": 0.0, "p95": 0.0, "max": 0.0}

    def test_kernel_fields_surface_in_summary_and_dict(self, tech):
        array = EDRAMArray(8, 4, tech=tech, macro_rows=4, macro_cols=2)
        stats = ArrayScanner(array, None).scan().stats
        assert stats.kernel_cells == array.num_cells
        assert stats.kernel_seconds > 0
        assert "batched pass" in stats.summary()
        payload = stats.to_dict()
        assert payload["kernel_cells"] == array.num_cells
        assert payload["kernel_seconds"] == stats.kernel_seconds

    def test_legacy_scan_reports_zero_kernel_cells(self, tech):
        array = EDRAMArray(8, 4, tech=tech, macro_rows=4, macro_cols=2)
        stats = ArrayScanner(array, None, use_kernel=False).scan().stats
        assert stats.kernel_cells == 0
        assert stats.kernel_seconds == 0.0
        assert "batched pass" not in stats.summary()
