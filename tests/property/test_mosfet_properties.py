"""Property-based tests of the MOSFET model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.mosfet import Mosfet
from repro.tech.parameters import default_technology

_TECH = default_technology()
_NMOS = Mosfet("M", "d", "g", "s", _TECH.nmos, w=1e-6, l=0.2e-6)

voltage = st.floats(min_value=0.0, max_value=1.8)


@given(vd=voltage, vg=voltage, vs=voltage)
@settings(max_examples=200, deadline=None)
def test_current_sign_follows_vds(vd, vg, vs):
    i = _NMOS.ids(vd, vg, vs)
    if vd > vs:
        assert i >= 0.0
    elif vd < vs:
        assert i <= 0.0
    else:
        assert abs(i) < 1e-18


@given(vd=voltage, vs=voltage, vg1=voltage, vg2=voltage)
@settings(max_examples=200, deadline=None)
def test_monotone_in_gate_voltage(vd, vs, vg1, vg2):
    if vg1 > vg2:
        vg1, vg2 = vg2, vg1
    i1 = _NMOS.ids(vd, vg1, vs)
    i2 = _NMOS.ids(vd, vg2, vs)
    # |I| never shrinks as the gate rises (for either current direction).
    if vd >= vs:
        assert i2 >= i1 - 1e-18
    else:
        assert i2 <= i1 + 1e-18


@given(vd=voltage, vg=voltage, vs=voltage)
@settings(max_examples=200, deadline=None)
def test_swap_antisymmetry(vd, vg, vs):
    assert math.isclose(
        _NMOS.ids(vd, vg, vs), -_NMOS.ids(vs, vg, vd), rel_tol=1e-9, abs_tol=1e-20
    )


@given(vd=voltage, vg=voltage, vs=voltage)
@settings(max_examples=150, deadline=None)
def test_derivatives_match_finite_differences(vd, vg, vs):
    # Stay away from the swap point and the body-effect clamp kink,
    # where one-sided derivatives legitimately differ.
    if abs(vd - vs) < 1e-3 or vs < 1e-3 or vd < 1e-3:
        return
    h = 1e-7
    _, dd, dg, ds = _NMOS.ids_and_derivatives(vd, vg, vs)
    nd = (_NMOS.ids(vd + h, vg, vs) - _NMOS.ids(vd - h, vg, vs)) / (2 * h)
    ng = (_NMOS.ids(vd, vg + h, vs) - _NMOS.ids(vd, vg - h, vs)) / (2 * h)
    ns = (_NMOS.ids(vd, vg, vs + h) - _NMOS.ids(vd, vg, vs - h)) / (2 * h)
    for analytic, numeric in ((dd, nd), (dg, ng), (ds, ns)):
        assert math.isclose(analytic, numeric, rel_tol=1e-3, abs_tol=1e-12)


@given(vg=st.floats(0.5, 1.8), vs=st.floats(0.0, 0.3))
@settings(max_examples=100, deadline=None)
def test_current_monotone_in_vds(vg, vs):
    currents = [_NMOS.ids(vs + dv, vg, vs) for dv in (0.05, 0.2, 0.6, 1.2)]
    assert all(b >= a - 1e-15 for a, b in zip(currents, currents[1:]))
