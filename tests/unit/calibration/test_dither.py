"""Dithered (sub-code) conversion."""

import numpy as np
import pytest

from repro.calibration.dither import DitheredConverter
from repro.edram.array import EDRAMArray
from repro.errors import CalibrationError
from repro.units import fF, to_fF


@pytest.fixture(scope="module")
def converters(structure_2x2):
    return {r: DitheredConverter(structure_2x2, 2, 2, repeats=r) for r in (1, 4, 8)}


def _measure(tech, converter, cm):
    array = EDRAMArray(2, 2, tech=tech)
    array.cell(0, 0).capacitance = cm
    return converter.measure(array.macro(0), 0, 0)


def test_validation(structure_2x2):
    with pytest.raises(CalibrationError):
        DitheredConverter(structure_2x2, 2, 2, repeats=0)


def test_r1_degenerates_to_plain_code(converters, structure_2x2):
    dc = converters[1]
    for vgs in (0.7, 0.9, 1.05):
        codes = dc.codes_for_vgs(vgs)
        assert len(codes) == 1
        assert codes[0] == structure_2x2.code_for_vgs(vgs)


def test_r1_fine_code_is_bin_midpoint(converters):
    assert converters[1].fine_code((7,)) == pytest.approx(7.5)


def test_codes_are_non_increasing_with_offset(converters):
    codes = converters[8].codes_for_vgs(0.95)
    assert all(a >= b for a, b in zip(codes, codes[1:]))
    assert codes[0] - codes[-1] <= 1


def test_fine_code_localizes_current(converters, structure_2x2):
    dc = converters[8]
    delta_i = structure_2x2.design.delta_i
    for vgs in (0.75, 0.9, 1.0):
        truth = structure_2x2.ref_sink_current(vgs) / delta_i
        fine = dc.fine_code(dc.codes_for_vgs(vgs))
        assert abs(fine - truth) <= 0.5 / 8 + 1e-9


def test_fine_code_length_checked(converters):
    with pytest.raises(CalibrationError):
        converters[4].fine_code((1, 2))


def test_capacitance_error_shrinks_with_repeats(tech, converters):
    def max_error(dc):
        errors = []
        for cm_ff in np.linspace(18, 48, 25):
            result = _measure(tech, dc, cm_ff * fF)
            errors.append(abs(result.capacitance - cm_ff * fF))
        return max(errors)

    e1 = max_error(converters[1])
    e8 = max_error(converters[8])
    assert e8 < e1 / 4.0  # theory: /8; allow margin


def test_estimate_is_accurate_mid_range(tech, converters):
    result = _measure(tech, converters[8], 31.7 * fF)
    assert to_fF(result.capacitance) == pytest.approx(31.7, abs=0.2)


def test_out_of_range_is_nan(tech, converters):
    low = _measure(tech, converters[4], 5 * fF)
    high = _measure(tech, converters[4], 80 * fF)
    assert np.isnan(low.capacitance)
    assert np.isnan(high.capacitance)


def test_test_time_accounting(tech, converters, structure_2x2):
    result = _measure(tech, converters[8], 30 * fF)
    assert result.test_time == pytest.approx(8 * structure_2x2.design.flow_duration)
    assert result.repeats == 8


def test_effective_resolution_scales(converters):
    r1 = converters[1].effective_resolution()
    r8 = converters[8].effective_resolution()
    assert r8 == pytest.approx(r1 / 8.0, rel=0.15)
