"""End-to-end BIST orchestration.

Ties the controller pieces together the way the silicon would:

1. pick an address strategy and build the :class:`TestPlan`,
2. measure the selected cells (closed-form scan for full coverage,
   per-cell charge tier for sparse visits),
3. serialize the codes through :class:`CodeStream`,
4. on the "tester side", decode and rebuild the (possibly partial)
   analog bitmap.

The :class:`BISTReport` carries the reconstructed codes, the plan, the
stream statistics, and — for sparse campaigns — the population estimates
with their sampling error, which is the process-monitoring use case:
~2 % of the cells bound the array mean to a few tenths of a femtofarad
in under a millisecond of tester time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controller.address import AddressGenerator, ScanOrder
from repro.controller.scheduler import TestPlan, TestScheduler
from repro.controller.stream import CodeStream, StreamStats
from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError
from repro.measure.scan import ArrayScanner
from repro.measure.structure import MeasurementStructure


@dataclass
class BISTReport:
    """Everything one BIST campaign produced.

    ``codes`` is the reconstructed map with −1 marking unvisited cells
    (sparse/checkerboard campaigns).
    """

    plan: TestPlan
    codes: np.ndarray
    stream: StreamStats
    visited: np.ndarray  # boolean mask

    @property
    def coverage(self) -> float:
        """Fraction of cells measured."""
        return float(self.visited.mean())

    def visited_codes(self) -> np.ndarray:
        """1-D array of the codes actually measured."""
        return self.codes[self.visited]

    def mean_code(self) -> float:
        """Mean measured code (population monitor statistic)."""
        values = self.visited_codes()
        if values.size == 0:
            raise MeasurementError("no cells were visited")
        return float(values.mean())

    def sampling_sigma(self) -> float:
        """Standard error of the mean code estimate."""
        values = self.visited_codes()
        if values.size < 2:
            return float("inf")
        return float(values.std(ddof=1) / np.sqrt(values.size))


class BISTController:
    """Run measurement campaigns against one array.

    Parameters
    ----------
    array, structure:
        Device under test and its embedded structures.
    scheduler:
        Optional pre-configured scheduler (a default is built).
    """

    def __init__(
        self,
        array: EDRAMArray,
        structure: MeasurementStructure,
        scheduler: TestScheduler | None = None,
    ) -> None:
        self.array = array
        self.structure = structure
        self.scheduler = (
            scheduler if scheduler is not None else TestScheduler(array, structure)
        )
        self._scanner = ArrayScanner(array, structure)
        self._stream = CodeStream(bits_per_code=self.scheduler.bits_per_code)

    def run(
        self,
        order: ScanOrder = ScanOrder.MACRO_MAJOR,
        fraction: float = 0.02,
        seed: int = 0,
    ) -> BISTReport:
        """Execute one campaign and return the tester-side view."""
        plan = self.scheduler.plan(order, fraction=fraction, seed=seed)
        generator = AddressGenerator(self.array, order, fraction=fraction, seed=seed)
        addresses = generator.addresses()

        visited = np.zeros((self.array.rows, self.array.cols), dtype=bool)
        codes = np.full((self.array.rows, self.array.cols), -1, dtype=int)

        if order in (ScanOrder.FULL_RASTER, ScanOrder.MACRO_MAJOR):
            scan = self._scanner.scan()
            codes = scan.codes.copy()
            visited[:, :] = True
        else:
            # Partial campaigns measure cell by cell; reuse the
            # vectorized closed form per macro but only keep visits.
            scan = self._scanner.scan()
            for row, col in addresses:
                codes[row, col] = scan.codes[row, col]
                visited[row, col] = True

        # Stream only the visited codes (partial maps transfer the visit
        # list implicitly through the shared seed/strategy).
        if visited.all():
            payload_map = codes
        else:
            payload_map = codes[visited].reshape(1, -1)
        stats = self._stream.stats(payload_map)
        decoded = self._stream.decode(self._stream.encode(payload_map))
        if not np.array_equal(decoded, payload_map):
            raise MeasurementError("stream round-trip corrupted the code map")

        return BISTReport(plan=plan, codes=codes, stream=stats, visited=visited)

    def monitor(self, fraction: float = 0.02, seed: int = 0) -> BISTReport:
        """Sparse process-monitoring campaign."""
        return self.run(ScanOrder.SPARSE, fraction=fraction, seed=seed)
