"""The ``repro lint`` subcommand."""

import json

from repro.cli import main
from tests.unit.lint import fixtures

GEOMETRY = ["--rows", "8", "--cols", "4", "--macro-rows", "4"]


def test_lint_shipped_netlists_exit_zero(capsys):
    assert main(["lint", *GEOMETRY]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out


def test_lint_with_defects_waives_and_exits_zero(capsys):
    assert main(["lint", *GEOMETRY, "--defects"]) == 0
    out = capsys.readouterr().out
    assert "waived" in out


def test_lint_strict_defects_exits_nonzero(capsys):
    assert main(["lint", *GEOMETRY, "--defects", "--strict-defects"]) == 1
    out = capsys.readouterr().out
    assert "ERC" in out


def test_lint_json_format(capsys):
    assert main(["lint", *GEOMETRY, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["error_count"] == 0


def test_lint_source_only_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(fixtures.BAD_SOURCE, encoding="utf-8")
    assert main(["lint", "--source-only", "--source", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PY001" in out
    assert "PY002" in out


def test_lint_source_only_clean_file(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text(fixtures.GOOD_SOURCE, encoding="utf-8")
    assert main(["lint", "--source-only", "--source", str(good)]) == 0


def test_lint_combined_netlist_and_source(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(fixtures.BAD_SOURCE, encoding="utf-8")
    assert main(["lint", *GEOMETRY, "--source", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PY001" in out
