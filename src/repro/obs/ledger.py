"""Run ledger: durable, append-only provenance for measurement runs.

The paper's artefact — the analog bitmap — earns its keep when maps are
compared **across** runs and dies to spot process drift.  That needs
provenance: which configuration, seed, technology and library version
produced which numbers.  A :class:`RunLedger` owns a directory
(``.repro-runs/`` by default) holding

- ``manifest.jsonl`` — one :class:`RunManifest` per line, append-only,
- ``artifacts/<run_id>.npz`` — the raw scan planes of runs recorded
  with an artifact (what ``runs diff`` reloads for bitmap deltas).

A manifest freezes everything needed to trust or reproduce a run: the
value fields of the frozen :class:`~repro.measure.config.ScanConfig`
and their hash, RNG seed, technology card name, package version,
wall/CPU time, the folded :class:`~repro.measure.stats.ScanStats`, a
metrics snapshot, the trace path, and **scalars** — the per-run summary
statistics (capacitance mean/σ, code-histogram centroid, converter
flip-step size, throughput) that :mod:`repro.obs.drift` runs control
charts over.

Recording is opt-in and composable: attach a ledger to a
:class:`~repro.measure.config.ScanConfig` and every
``ArrayScanner.scan`` / ``measure_wafer`` / ``DiagnosisPipeline.run``
appends a manifest, or call the ``record_*`` builders directly (the CLI
does, so it can fold calibrated-bitmap statistics into scan manifests).
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.errors import LedgerError, MeasurementError, ScanMismatchError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (io -> scan -> config)
    from repro.bitmap.analog import AnalogBitmap
    from repro.diagnosis.pipeline import PipelineReport
    from repro.measure.config import ScanConfig
    from repro.measure.scan import ScanResult
    from repro.wafer import WaferReport

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "RunManifest",
    "RunDiff",
    "RunLedger",
    "config_fingerprint",
    "config_hash",
    "scan_scalars",
    "bitmap_scalars",
]

#: Default ledger directory, relative to the working directory.
DEFAULT_LEDGER_DIR = ".repro-runs"

_MANIFEST_NAME = "manifest.jsonl"
_ARTIFACT_DIR = "artifacts"
_CHECKPOINT_DIR = "checkpoints"
_LOCK_NAME = ".lock"
_FORMAT = 1

#: How long :meth:`RunLedger.locked` waits for the advisory lock before
#: giving up with a :class:`LedgerError`.
LOCK_TIMEOUT_SECONDS = 10.0


# ---------------------------------------------------------------------------
# Provenance helpers
# ---------------------------------------------------------------------------


def config_fingerprint(config: "ScanConfig") -> dict[str, Any]:
    """The value fields of a scan config (observers excluded).

    Tracer/metrics/progress/ledger attachments change what is *recorded*
    about a run, never its data, so only the data-affecting fields enter
    the fingerprint — two runs with equal fingerprints are replays.
    """
    return {
        "jobs": config.jobs,
        "preflight": config.preflight,
        "force_engine": config.force_engine,
        "tier": config.tier,
        "technology": config.technology,
    }


def config_hash(config: "ScanConfig") -> str:
    """Short stable hash of :func:`config_fingerprint` (12 hex chars)."""
    canon = json.dumps(config_fingerprint(config), sort_keys=True)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # lint: allow-broad-except  # pragma: no cover - metadata missing in odd installs
        return "unknown"


def scan_scalars(result: "ScanResult") -> dict[str, float]:
    """Per-run summary scalars of one scan — the drift engine's diet.

    All derived from the scan planes themselves (no calibration needed):

    - ``code_centroid`` / ``code_sigma`` — code-histogram centre and
      spread,
    - ``flip_step_mean`` / ``flip_step_p95`` — the converter's
      adjacent-cell code step distribution (granularity drift signal),
    - ``vgs_mean`` / ``vgs_sigma`` — the underlying shared-charge
      voltages,
    - ``degraded_cells`` / ``failed_cells`` — fallback-ladder quality
      counts (the drift engine alarms on non-zero ``failed_cells``),
    - throughput figures when the result carries :class:`ScanStats`,
    - ``macro_retries`` / ``macro_timeouts`` / ``worker_respawns`` —
      pool-health supervision counts, so the cross-run drift charts
      flag a fleet whose workers started dying (advisory severity).
    """
    codes = np.asarray(result.codes, dtype=float)
    vgs = np.asarray(result.vgs, dtype=float)
    quality = result.quality_counts()
    scalars = {
        "code_centroid": float(codes.mean()),
        "code_sigma": float(codes.std()),
        "vgs_mean": float(vgs.mean()),
        "vgs_sigma": float(vgs.std()),
        "degraded_cells": float(quality["degraded"]),
        "failed_cells": float(quality["failed"]),
    }
    if codes.shape[1] > 1:
        steps = np.abs(np.diff(codes, axis=1))
        scalars["flip_step_mean"] = float(steps.mean())
        scalars["flip_step_p95"] = float(np.percentile(steps, 95))
    if result.stats is not None:
        scalars["wall_seconds"] = float(result.stats.wall_seconds)
        scalars["cells_per_second"] = float(result.stats.cells_per_second)
        scalars["macro_retries"] = float(result.stats.macro_retries)
        scalars["macro_timeouts"] = float(result.stats.macro_timeouts)
        scalars["worker_respawns"] = float(result.stats.worker_respawns)
    return scalars


def bitmap_scalars(bitmap: "AnalogBitmap") -> dict[str, float]:
    """Calibrated capacitance-map scalars (femtofarads, in-range cells)."""
    from repro.units import to_fF

    values = bitmap.estimates[bitmap.in_range]
    if values.size == 0:
        return {"in_range_fraction": 0.0}
    return {
        "cap_mean_fF": float(to_fF(values.mean())),
        "cap_sigma_fF": float(to_fF(values.std())),
        "in_range_fraction": float(bitmap.in_range.mean()),
    }


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclass
class RunManifest:
    """Provenance record of one recorded run (one ledger line).

    ``run_id`` and ``timestamp`` are assigned by the ledger at record
    time; everything else is supplied by the ``record_*`` builders.
    """

    kind: str
    run_id: str = ""
    timestamp: str = ""
    label: str = ""
    config: dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""
    seed: int | None = None
    tech: str = ""
    version: str = ""
    wall_seconds: float = 0.0
    cpu_seconds: float | None = None
    stats: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    trace_path: str | None = None
    artifact: str | None = None
    scalars: dict[str, float] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (one manifest line)."""
        return {
            "format": _FORMAT,
            "run_id": self.run_id,
            "kind": self.kind,
            "timestamp": self.timestamp,
            "label": self.label,
            "config": self.config,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "tech": self.tech,
            "version": self.version,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "stats": self.stats,
            "metrics": self.metrics,
            "trace_path": self.trace_path,
            "artifact": self.artifact,
            "scalars": self.scalars,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        try:
            return cls(
                kind=str(data["kind"]),
                run_id=str(data["run_id"]),
                timestamp=str(data["timestamp"]),
                label=str(data.get("label", "")),
                config=dict(data.get("config", {})),
                config_hash=str(data.get("config_hash", "")),
                seed=None if data.get("seed") is None else int(data["seed"]),
                tech=str(data.get("tech", "")),
                version=str(data.get("version", "")),
                wall_seconds=float(data.get("wall_seconds", 0.0)),
                cpu_seconds=(
                    None if data.get("cpu_seconds") is None
                    else float(data["cpu_seconds"])
                ),
                stats=data.get("stats"),
                metrics=data.get("metrics"),
                trace_path=data.get("trace_path"),
                artifact=data.get("artifact"),
                scalars={k: float(v) for k, v in data.get("scalars", {}).items()},
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerError(f"malformed run manifest: {data!r}") from exc


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


@dataclass
class RunDiff:
    """Structured comparison of two recorded runs.

    Attributes
    ----------
    a, b:
        The compared manifests (``b`` is the newer/candidate run).
    config_changes:
        ``{field: (a_value, b_value)}`` for differing config fields.
    scalar_deltas:
        ``{name: (a, b, b - a)}`` over the union of both scalar sets
        (missing side recorded as ``None``).
    metric_deltas:
        ``{name: (a, b, b - a)}`` for numeric metrics present in both
        snapshots (counter/gauge values, histogram means).
    bitmap:
        Per-cell code-delta statistics when both runs carry loadable,
        comparable scan artifacts; otherwise a dict with a ``"reason"``
        explaining why no bitmap delta was computed.
    """

    a: RunManifest
    b: RunManifest
    config_changes: dict[str, tuple[Any, Any]]
    scalar_deltas: dict[str, tuple[float | None, float | None, float | None]]
    metric_deltas: dict[str, tuple[float, float, float]]
    bitmap: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "a": self.a.run_id,
            "b": self.b.run_id,
            "config_changes": {
                k: list(v) for k, v in self.config_changes.items()
            },
            "scalar_deltas": {
                k: list(v) for k, v in self.scalar_deltas.items()
            },
            "metric_deltas": {
                k: list(v) for k, v in self.metric_deltas.items()
            },
            "bitmap": self.bitmap,
        }

    def format_text(self) -> str:
        """Human rendering: config, scalar, metric and bitmap sections."""
        lines = [f"runs diff: {self.a.run_id} -> {self.b.run_id}"]
        if self.config_changes:
            lines.append("config:")
            for name, (va, vb) in sorted(self.config_changes.items()):
                lines.append(f"  {name}: {va} -> {vb}")
        else:
            lines.append(f"config: identical (hash {self.b.config_hash})")
        lines.append("scalars:")
        for name, (va, vb, delta) in sorted(self.scalar_deltas.items()):
            if va is None or vb is None:
                lines.append(f"  {name}: {va} -> {vb} (one side missing)")
            else:
                lines.append(f"  {name}: {va:.6g} -> {vb:.6g} ({delta:+.6g})")
        if self.metric_deltas:
            lines.append("metrics:")
            for name, (va, vb, delta) in sorted(self.metric_deltas.items()):
                lines.append(f"  {name}: {va:.6g} -> {vb:.6g} ({delta:+.6g})")
        lines.append("bitmap:")
        for key, value in sorted(self.bitmap.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------


class RunLedger:
    """Append-only run store rooted at a directory.

    Parameters
    ----------
    root:
        Ledger directory (created on first record).  Defaults to
        :data:`DEFAULT_LEDGER_DIR` in the working directory.
    """

    def __init__(self, root: str | Path = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    @property
    def artifact_dir(self) -> Path:
        return self.root / _ARTIFACT_DIR

    @property
    def checkpoint_dir(self) -> Path:
        """Where unfinished (checkpointed) runs park their state."""
        return self.root / _CHECKPOINT_DIR

    # -- locking --------------------------------------------------------

    @contextmanager
    def locked(self, timeout: float = LOCK_TIMEOUT_SECONDS) -> Iterator[None]:
        """Hold the ledger's advisory file lock for the ``with`` block.

        Serialises run-id allocation and manifest appends across
        processes, so two concurrent ``--record`` runs cannot interleave
        half-written lines or claim the same id.  The wait is bounded:
        a holder that wedges turns into a clear :class:`LedgerError`
        ("timed out waiting for ledger lock") instead of a silent hang.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + timeout
        # "a+", not "w": opening the lock file must not truncate the
        # current holder's pid out of it while they still hold the lock
        # — the timeout message below reads it to name the culprit.
        with open(self.root / _LOCK_NAME, "a+") as fh:
            while True:
                try:
                    fcntl.flock(fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except BlockingIOError:
                    if time.monotonic() >= deadline:
                        holder = _lock_holder(fh)
                        raise LedgerError(
                            f"timed out waiting for ledger lock on {self.root} "
                            f"after {timeout:g} s (held by {holder} — another "
                            "repro process recording? stale holder?)"
                        ) from None
                    time.sleep(0.01)
            try:
                fh.seek(0)
                fh.truncate()
                fh.write(f"{os.getpid()}\n")
                fh.flush()
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def next_run_id(self) -> str:
        """The next free ``rNNNN`` id (call while holding :meth:`locked`).

        Scans both the manifest *and* the checkpoint directory, so an
        unfinished checkpointed run keeps its reserved id even though
        no manifest line exists for it yet.
        """
        highest = 0
        for manifest in self.runs():
            highest = max(highest, _run_number(manifest.run_id))
        if self.checkpoint_dir.exists():
            for path in self.checkpoint_dir.glob("r*.npz"):
                highest = max(highest, _run_number(path.stem))
        return f"r{highest + 1:04d}"

    # -- reading --------------------------------------------------------

    def runs(self) -> list[RunManifest]:
        """All manifests in record order (empty for a fresh ledger)."""
        if not self.manifest_path.exists():
            return []
        manifests = []
        with open(self.manifest_path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{self.manifest_path}:{lineno} is not valid JSON "
                        f"(truncated write?): {exc}"
                    ) from exc
                manifests.append(RunManifest.from_dict(data))
        return manifests

    def __len__(self) -> int:
        return len(self.runs())

    def get(self, run_id: str) -> RunManifest:
        """The manifest recorded under ``run_id``."""
        for manifest in self.runs():
            if manifest.run_id == run_id:
                return manifest
        known = ", ".join(m.run_id for m in self.runs()) or "(none)"
        raise LedgerError(f"no run {run_id!r} in {self.root} (known: {known})")

    def latest(self, n: int = 1, kind: str | None = None) -> list[RunManifest]:
        """The last ``n`` manifests (optionally of one kind), oldest first."""
        manifests = self.runs()
        if kind is not None:
            manifests = [m for m in manifests if m.kind == kind]
        return manifests[-n:]

    def series(
        self, scalar: str, kind: str | None = None
    ) -> list[tuple[str, float]]:
        """``(run_id, value)`` for every run carrying ``scalar``, in order."""
        out = []
        for manifest in self.runs():
            if kind is not None and manifest.kind != kind:
                continue
            if scalar in manifest.scalars:
                out.append((manifest.run_id, manifest.scalars[scalar]))
        return out

    def load_artifact(self, manifest: RunManifest) -> "ScanResult":
        """Reload the scan planes recorded with ``manifest``."""
        if manifest.artifact is None:
            raise LedgerError(f"run {manifest.run_id} recorded no scan artifact")
        from repro.io import load_scan

        path = self.root / manifest.artifact
        if not path.exists():
            raise LedgerError(
                f"run {manifest.run_id} artifact missing at {path}"
            )
        try:
            return load_scan(path)
        except MeasurementError as exc:
            raise LedgerError(
                f"run {manifest.run_id} artifact at {path} is unreadable: {exc}"
            ) from exc

    # -- writing --------------------------------------------------------

    def record(
        self,
        manifest: RunManifest,
        scan: "ScanResult | None" = None,
        *,
        run_id: str | None = None,
    ) -> RunManifest:
        """Append ``manifest`` (assigning run id and timestamp).

        Id allocation and the append happen under the ledger's advisory
        lock (:meth:`locked`), so concurrent recorders serialise
        cleanly.  A checkpointed run that reserved its id up front
        passes it via ``run_id`` instead of allocating a new one.

        When ``scan`` is given its planes are saved under
        ``artifacts/<run_id>.npz`` and the relative path recorded, so
        ``runs diff`` can later compute per-cell bitmap deltas.
        """
        from repro.resilience.faults import fault_point

        self.root.mkdir(parents=True, exist_ok=True)
        manifest.timestamp = datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        if not manifest.version:
            manifest.version = _package_version()
        with self.locked():
            manifest.run_id = run_id if run_id is not None else self.next_run_id()
            if scan is not None:
                from repro.io import save_scan

                self.artifact_dir.mkdir(parents=True, exist_ok=True)
                path = save_scan(
                    scan, self.artifact_dir / f"{manifest.run_id}.npz"
                )
                manifest.artifact = str(path.relative_to(self.root))
            fault_point("ledger.append", run_id=manifest.run_id, kind=manifest.kind)
            with open(self.manifest_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(manifest.to_dict()) + "\n")
        return manifest

    def _base_manifest(
        self,
        kind: str,
        config: "ScanConfig | None",
        *,
        seed: int | None,
        tech: str,
        label: str,
        wall_seconds: float,
        cpu_seconds: float | None,
        trace_path: str | None,
        extra: dict[str, Any] | None,
    ) -> RunManifest:
        manifest = RunManifest(
            kind=kind,
            label=label,
            seed=seed,
            tech=tech,
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
            trace_path=trace_path,
            extra=dict(extra or {}),
        )
        if config is not None:
            manifest.config = config_fingerprint(config)
            manifest.config_hash = config_hash(config)
            if config.metrics.enabled:
                manifest.metrics = config.metrics.to_dict()
        return manifest

    def record_scan(
        self,
        result: "ScanResult",
        config: "ScanConfig | None" = None,
        *,
        bitmap: "AnalogBitmap | None" = None,
        seed: int | None = None,
        tech: str = "",
        label: str = "",
        trace_path: str | None = None,
        cpu_seconds: float | None = None,
        extra: dict[str, Any] | None = None,
        extra_scalars: dict[str, float] | None = None,
        save_artifact: bool = True,
        run_id: str | None = None,
    ) -> RunManifest:
        """Record one array scan (optionally with its calibrated bitmap).

        ``extra_scalars`` merge into ``manifest.scalars`` — unlike
        ``extra`` (opaque payload), scalars are what the drift engine
        charts, so technology backends report per-run physics there
        (e.g. FeCap polarization mean, 1T retention).
        """
        wall = result.stats.wall_seconds if result.stats is not None else 0.0
        manifest = self._base_manifest(
            "scan", config, seed=seed, tech=tech, label=label,
            wall_seconds=wall, cpu_seconds=cpu_seconds,
            trace_path=trace_path, extra=extra,
        )
        manifest.stats = result.stats.to_dict() if result.stats is not None else None
        manifest.scalars = scan_scalars(result)
        if bitmap is not None:
            manifest.scalars.update(bitmap_scalars(bitmap))
        if extra_scalars:
            manifest.scalars.update(
                {key: float(value) for key, value in extra_scalars.items()}
            )
        return self.record(
            manifest, scan=result if save_artifact else None, run_id=run_id
        )

    def record_wafer(
        self,
        report: "WaferReport",
        config: "ScanConfig | None" = None,
        *,
        seed: int | None = None,
        tech: str = "",
        label: str = "",
        wall_seconds: float = 0.0,
        cpu_seconds: float | None = None,
        extra: dict[str, Any] | None = None,
        run_id: str | None = None,
    ) -> RunManifest:
        """Record one wafer measurement (die-level scalars, no artifact)."""
        from repro.units import to_fF

        manifest = self._base_manifest(
            "wafer", config, seed=seed, tech=tech, label=label,
            wall_seconds=wall_seconds, cpu_seconds=cpu_seconds,
            trace_path=None, extra=extra,
        )
        a, b = report.radial_profile()
        sigmas = [d.sigma_capacitance for d in report.dies]
        manifest.scalars = {
            "cap_mean_fF": float(to_fF(report.wafer_mean)),
            "cap_sigma_fF": float(
                to_fF(np.std([d.mean_capacitance for d in report.dies]))
            ),
            "die_sigma_mean_fF": float(to_fF(np.mean(sigmas))),
            "radial_centre_fF": float(to_fF(a)),
            "radial_drop_fF": float(to_fF(-b)),
            "dies": float(len(report.dies)),
        }
        if wall_seconds > 0:
            cells = len(report.dies)
            manifest.scalars["dies_per_second"] = cells / wall_seconds
        return self.record(manifest, run_id=run_id)

    def record_diagnosis(
        self,
        report: "PipelineReport",
        config: "ScanConfig | None" = None,
        *,
        seed: int | None = None,
        tech: str = "",
        label: str = "",
        wall_seconds: float = 0.0,
        cpu_seconds: float | None = None,
        extra: dict[str, Any] | None = None,
        save_artifact: bool = True,
    ) -> RunManifest:
        """Record one diagnosis pipeline run (scan + process scalars)."""
        manifest = self._base_manifest(
            "diagnosis", config, seed=seed, tech=tech, label=label,
            wall_seconds=wall_seconds, cpu_seconds=cpu_seconds,
            trace_path=None, extra=extra,
        )
        scan = report.scan
        manifest.stats = scan.stats.to_dict() if scan.stats is not None else None
        manifest.scalars = scan_scalars(scan)
        manifest.scalars.update(bitmap_scalars(report.analog))
        process = report.process
        manifest.scalars.update({
            "cpk": float(process.cpk) if process.cpk != float("inf") else 1e6,
            "digital_fails": float(report.digital.fail_count),
        })
        return self.record(manifest, scan=scan if save_artifact else None)

    # -- comparing ------------------------------------------------------

    def diff(self, a_id: str, b_id: str) -> RunDiff:
        """Compare two recorded runs (config, scalars, metrics, bitmap)."""
        a, b = self.get(a_id), self.get(b_id)
        config_changes = {
            key: (a.config.get(key), b.config.get(key))
            for key in sorted(set(a.config) | set(b.config))
            if a.config.get(key) != b.config.get(key)
        }
        scalar_deltas: dict[str, tuple[float | None, float | None, float | None]] = {}
        for name in sorted(set(a.scalars) | set(b.scalars)):
            va, vb = a.scalars.get(name), b.scalars.get(name)
            delta = None if va is None or vb is None else vb - va
            scalar_deltas[name] = (va, vb, delta)
        metric_deltas = _metric_deltas(a.metrics, b.metrics)
        bitmap = self._bitmap_delta(a, b)
        return RunDiff(
            a=a, b=b,
            config_changes=config_changes,
            scalar_deltas=scalar_deltas,
            metric_deltas=metric_deltas,
            bitmap=bitmap,
        )

    def _bitmap_delta(self, a: RunManifest, b: RunManifest) -> dict[str, Any]:
        if a.artifact is None or b.artifact is None:
            return {"reason": "one or both runs recorded no scan artifact"}
        try:
            scan_a = self.load_artifact(a)
            scan_b = self.load_artifact(b)
        except LedgerError as exc:
            return {"reason": str(exc)}
        try:
            delta = scan_b.diff(scan_a)
        except ScanMismatchError as exc:
            return {"reason": str(exc)}
        return {
            "cells": int(delta.size),
            "cells_changed": int((delta != 0).sum()),
            "mean_code_delta": float(delta.mean()),
            "mean_abs_code_delta": float(np.abs(delta).mean()),
            "max_abs_code_delta": int(np.abs(delta).max()),
        }


def _lock_holder(fh) -> str:
    """Best-effort description of whoever wrote the lock file last."""
    try:
        fh.seek(0)
        pid = fh.read().strip()
    except OSError:  # pragma: no cover - lock file unreadable mid-spin
        pid = ""
    if not pid.isdigit():
        return "an unknown process"
    try:
        os.kill(int(pid), 0)
        liveness = "alive"
    except ProcessLookupError:
        liveness = "dead"
    except (PermissionError, OSError):  # pragma: no cover - other-uid holder
        liveness = "alive"
    return f"pid {pid} ({liveness})"


def _run_number(run_id: str) -> int:
    """The numeric part of an ``rNNNN`` id (0 for anything else)."""
    if run_id.startswith("r") and run_id[1:].isdigit():
        return int(run_id[1:])
    return 0


def _metric_deltas(
    a: dict[str, Any] | None, b: dict[str, Any] | None
) -> dict[str, tuple[float, float, float]]:
    """Numeric deltas over metric names present in both snapshots."""
    if not a or not b:
        return {}
    out: dict[str, tuple[float, float, float]] = {}
    for name in sorted(set(a) & set(b)):
        va, vb = _metric_value(a[name]), _metric_value(b[name])
        if va is not None and vb is not None:
            out[name] = (va, vb, vb - va)
    return out


def _metric_value(record: Any) -> float | None:
    """The scalar a metric dict contributes to a diff (value or mean)."""
    if not isinstance(record, dict):
        return None
    for key in ("value", "mean"):
        value = record.get(key)
        if isinstance(value, (int, float)) and value == value:  # NaN-safe
            return float(value)
    return None
