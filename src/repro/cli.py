"""Command-line interface.

Exposes the library's main flows without writing Python:

- ``python -m repro design``   — size a structure for a macro geometry
- ``python -m repro abacus``   — print the Figure-3 calibration table
- ``python -m repro scan``     — synthesize an array (optionally with
  defects), scan it, render the analog bitmap; ``--trace``/``--metrics``
  attach the observability layer, ``--json`` emits a machine-readable
  report
- ``python -m repro diagnose`` — full pipeline on a synthesized array
- ``python -m repro trace``    — summarize a trace written by ``--trace``
- ``python -m repro lint``     — static ERC / parameter / unit analysis
- ``python -m repro wafer``    — wafer-level monitoring demo
- ``python -m repro fleet``    — fault-tolerant sharded wafer runs:
  ``run`` supervises die-range shard subprocesses (lease heartbeats,
  checkpoint/resume respawns, bounded retries), ``status`` shows live
  shard health, ``merge`` combines shard results into a crash-safe
  lot artifact; exit codes distinguish healthy (0), degraded (3) and
  failed (1) lots
- ``python -m repro runs``     — read the run ledger written by
  ``--record``: ``list``/``show`` browse manifests, ``diff`` compares
  two runs (config + scalars + per-cell bitmap delta), ``check`` runs
  the EWMA/CUSUM drift gate and exits nonzero on out-of-control physics

Common options are factored into shared parent parsers so every
subcommand spells them identically: ``--seed``, ``--jobs``,
``--format text|json`` (with ``--json`` as a shorthand for
``--format json``), and on the measurement commands ``--record [DIR]``
(append a run manifest to the ledger), ``--label``, ``--progress`` /
``--progress-jsonl PATH`` (live completion/throughput/ETA).

Resilience (``scan`` and ``wafer``): ``--checkpoint [DIR]`` persists
completed macros/dies through the run ledger, ``--resume RUN_ID``
continues an interrupted run bit-exactly (``repro runs checkpoints``
lists the unfinished ones), and on ``scan`` ``--timeout``/``--retries``
tune the supervised process pool.  Ctrl-C exits with status 130 after a
bounded pool teardown, printing the resume command when one exists.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter, process_time

from repro.units import fF, to_fF, to_ns, to_uA

#: Default ledger directory (mirrored from repro.obs.ledger lazily —
#: the CLI defers heavyweight imports until a command runs).
_DEFAULT_LEDGER_DIR = ".repro-runs"


# ----------------------------------------------------------------------
# Shared parent parsers — one spelling per option, reused by subcommands.
# ----------------------------------------------------------------------


def _geometry_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--rows", type=int, default=32, help="array rows")
    parent.add_argument("--cols", type=int, default=16, help="array cols")
    parent.add_argument("--macro-rows", type=int, default=8, help="plate tile rows")
    parent.add_argument("--macro-cols", type=int, default=2, help="plate tile cols")
    return parent


def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0, help="randomness seed")
    return parent


def _jobs_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    return parent


def _tech_parent() -> argparse.ArgumentParser:
    # names() is import-free (the registry imports no backend module),
    # so building the parser stays cheap.
    from repro.technologies import names

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--tech", choices=names(), default="edram",
                        help="cell-technology backend (default edram; "
                             "see `repro tech list`)")
    return parent


def _format_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--format", choices=("text", "json"), default="text",
                        help="output rendering")
    parent.add_argument("--json", dest="format", action="store_const",
                        const="json", help="shorthand for --format json")
    return parent


def _record_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--record", nargs="?", const=_DEFAULT_LEDGER_DIR,
                        default=None, metavar="DIR",
                        help="append a run manifest to this ledger directory "
                             f"(default {_DEFAULT_LEDGER_DIR})")
    parent.add_argument("--label", default="",
                        help="free-form label stored in the run manifest")
    return parent


def _checkpoint_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--checkpoint", nargs="?", const=_DEFAULT_LEDGER_DIR,
                        default=None, metavar="DIR",
                        help="checkpoint completed work units into this ledger "
                             "directory (default: the --record directory, else "
                             f"{_DEFAULT_LEDGER_DIR}) so an interrupted run "
                             "can --resume")
    parent.add_argument("--resume", metavar="RUN_ID",
                        help="resume the unfinished checkpointed run RUN_ID "
                             "(see `repro runs checkpoints`); geometry/seed "
                             "flags are restored from the checkpoint")
    return parent


def _progress_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--progress", action="store_true",
                        help="render a live progress line on stderr")
    parent.add_argument("--progress-jsonl", metavar="PATH",
                        help="stream progress events as JSON lines to PATH")
    return parent


def _progress_from(args):
    """The progress reporter the flags ask for (the null one otherwise)."""
    from repro.obs import NULL_PROGRESS, JsonlProgress, ProgressReporter

    if getattr(args, "progress_jsonl", None):
        return JsonlProgress(args.progress_jsonl)
    if getattr(args, "progress", False):
        return ProgressReporter()
    return NULL_PROGRESS


def _backend_for(args):
    from repro.technologies import get as get_technology

    return get_technology(getattr(args, "tech", "edram"))


def _build_array(args, with_defects: bool):
    # Array synthesis is the backend's job: each technology owns its
    # variation model and defect recipe.  The eDRAM backend replicates
    # the historical recipe bit-exactly (pinned by property tests).
    nominal_ff = getattr(args, "nominal_ff", None)
    return _backend_for(args).build_array(
        args.rows, args.cols,
        macro_rows=args.macro_rows, macro_cols=args.macro_cols,
        seed=args.seed,
        nominal=None if nominal_ff is None else nominal_ff * fF,
        with_defects=with_defects,
    )


def _design_for(args, array):
    return _backend_for(args).design_structure(array, bitline_rows=args.rows)


def cmd_design(args) -> int:
    array = _build_array(args, with_defects=False)
    structure = _design_for(args, array)
    d = structure.design
    print(f"structure for {args.macro_rows}x{args.macro_cols} tiles on "
          f"{args.rows}-row columns:")
    print(f"  C_REF        : {to_fF(structure.c_ref):.2f} fF "
          f"(REF {d.w_ref * 1e6:.2f} x {d.l_ref * 1e6:.2f} um)")
    print(f"  DAC step     : {to_uA(d.delta_i):.3f} uA x {d.num_steps} steps")
    print(f"  phase clock  : {to_ns(d.phase_duration):.1f} ns "
          f"({'slew-safe' if structure.is_slew_safe else 'SLEW LIMITED'})")
    print(f"  flow         : {to_ns(d.flow_duration):.1f} ns per cell")
    return 0


def cmd_abacus(args) -> int:
    from repro.calibration.abacus import Abacus

    array = _build_array(args, with_defects=False)
    structure = _design_for(args, array)
    abacus = Abacus.for_array(structure, array)
    print(abacus.table())
    return 0


#: Scan CLI flags persisted in a checkpoint's meta so ``--resume`` can
#: rebuild the identical array without the user retyping geometry.
_SCAN_REBUILD_KEYS = (
    "rows", "cols", "macro_rows", "macro_cols",
    "seed", "healthy", "nominal_ff", "force_engine", "tech",
)


def _checkpointer_from(args, rebuild_keys):
    """Build the Checkpointer the --checkpoint/--resume flags ask for.

    Returns ``(checkpointer, ck_dir, error_exit)``; on a resume the
    checkpoint's stored meta is copied back onto ``args`` so the run is
    rebuilt exactly as checkpointed.  ``error_exit`` is an int exit code
    when the resume target is unusable, else ``None``.
    """
    if args.resume is None and args.checkpoint is None:
        return None, None, None
    from repro.errors import CheckpointError
    from repro.obs import RunLedger
    from repro.resilience import Checkpointer, load_checkpoint

    ck_dir = args.checkpoint or args.record or _DEFAULT_LEDGER_DIR
    ledger = RunLedger(ck_dir)
    if args.resume is not None:
        try:
            peek = load_checkpoint(
                ledger.checkpoint_dir / f"{args.resume}.npz"
            )
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None, ck_dir, 2
        for key in rebuild_keys:
            if key in peek.meta:
                setattr(args, key, peek.meta[key])
        return Checkpointer(ledger, resume=args.resume), ck_dir, None
    meta = {key: getattr(args, key) for key in rebuild_keys}
    return Checkpointer(ledger, meta=meta), ck_dir, None


def _resume_hint(command: str, run_id: str, ck_dir: str | None, args) -> str:
    hint = f"repro {command} --resume {run_id}"
    if getattr(args, "checkpoint", None):
        hint += f" --checkpoint {ck_dir}"
    elif getattr(args, "record", None):
        hint += f" --record {args.record}"
    return hint


def cmd_scan(args) -> int:
    from repro.bitmap.analog import AnalogBitmap
    from repro.bitmap.export import render_code_map
    from repro.calibration.abacus import Abacus
    from repro.errors import CheckpointError
    from repro.measure.config import ScanConfig
    from repro.measure.scan import ArrayScanner
    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    checkpointer, ck_dir, error_exit = _checkpointer_from(
        args, _SCAN_REBUILD_KEYS
    )
    if error_exit is not None:
        return error_exit

    tracer = Tracer() if args.trace else NULL_TRACER
    want_metrics = args.metrics or args.metrics_out or args.format == "json"
    metrics = MetricsRegistry() if want_metrics else NULL_METRICS

    retry = None
    if args.retries is not None:
        from repro.resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries, seed=args.seed)

    array = _build_array(args, with_defects=not args.healthy)
    structure = _design_for(args, array)
    abacus = Abacus.for_array(structure, array)
    config = ScanConfig(
        jobs=args.jobs,
        force_engine=args.force_engine,
        preflight=args.preflight,
        technology=args.tech,
        tracer=tracer,
        metrics=metrics,
        progress=_progress_from(args),
        retry=retry,
        timeout=args.timeout,
        checkpoint=checkpointer,
        sanitize=args.sanitize,
    )
    cpu_start = process_time()
    try:
        scan = ArrayScanner(array, structure).scan(config)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        if checkpointer is not None and checkpointer.state is not None:
            hint = _resume_hint("scan", checkpointer.run_id, ck_dir, args)
            print(f"interrupted; resume with: {hint}", file=sys.stderr)
        raise
    cpu_seconds = process_time() - cpu_start
    bitmap = AnalogBitmap(scan, abacus)

    if args.trace:
        tracer.write_jsonl(args.trace)
    if args.metrics_out:
        metrics.write_jsonl(args.metrics_out)
    saved_to = None
    if args.save:
        from repro.io import save_scan

        saved_to = str(save_scan(scan, args.save))
    run_id = None
    if args.record is not None:
        from repro.obs import RunLedger

        # Recording from the CLI (rather than via config.ledger) folds
        # the calibrated bitmap statistics into the manifest's scalars —
        # cap_mean_fF is the drift gate's primary chart.  A checkpointed
        # run recording into the same ledger keeps its reserved id.
        reserved = (
            checkpointer.run_id
            if checkpointer is not None and ck_dir == args.record
            else None
        )
        manifest = RunLedger(args.record).record_scan(
            scan, config, bitmap=bitmap, seed=args.seed,
            tech=array.tech.name, label=args.label,
            trace_path=args.trace, cpu_seconds=cpu_seconds,
            run_id=reserved,
        )
        run_id = manifest.run_id

    sanitize_exit = 0
    if scan.sanitize_report is not None:
        # The sanitizer's verdict gates the command exactly like lint:
        # overlap/gap errors turn the exit code nonzero.
        sanitize_exit = scan.sanitize_report.exit_code

    if args.format == "json":
        payload = {
            "geometry": {
                "rows": args.rows, "cols": args.cols,
                "macro_rows": args.macro_rows, "macro_cols": args.macro_cols,
                "macros": array.num_macros,
            },
            "cells": array.num_cells,
            "num_steps": scan.num_steps,
            "mean_fF": to_fF(bitmap.mean_capacitance()),
            "sigma_fF": to_fF(bitmap.std_capacitance()),
            "code_histogram": {str(k): v for k, v in scan.code_histogram().items()},
            "stats": scan.stats.to_dict() if scan.stats is not None else None,
            "metrics": metrics.to_dict() if metrics.enabled else None,
            "sanitize": (
                json.loads(scan.sanitize_report.to_json())
                if scan.sanitize_report is not None else None
            ),
            "trace": args.trace,
            "saved": saved_to,
            "run_id": run_id,
            "ledger": args.record,
        }
        print(json.dumps(payload, indent=2))
        return sanitize_exit

    print(f"scanned {array.num_cells} cells "
          f"({array.num_macros} tiles of {args.macro_rows}x{args.macro_cols})")
    if scan.stats is not None:
        print(scan.stats.summary())
    print(f"mean {to_fF(bitmap.mean_capacitance()):.2f} fF, "
          f"sigma {to_fF(bitmap.std_capacitance()):.2f} fF")
    print(render_code_map(scan.codes))
    if args.metrics:
        print("metrics:")
        print(metrics.summary_table())
    if args.trace:
        print(f"trace written to {args.trace} "
              f"({len(tracer.spans)} spans; summarize with `repro trace`)")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if scan.sanitize_report is not None:
        verdict = "clean" if scan.sanitize_report.ok else "VIOLATED"
        print(f"sanitize: write-footprint contract {verdict} "
              f"({scan.sanitize_report.summary()})")
        if not scan.sanitize_report.ok:
            print(scan.sanitize_report.format_text())
    if saved_to:
        print(f"scan saved to {saved_to}")
    if run_id:
        print(f"recorded as {run_id} in {args.record}")
    return sanitize_exit


def cmd_diagnose(args) -> int:
    from repro.diagnosis.pipeline import DiagnosisPipeline
    from repro.measure.config import ScanConfig

    array = _build_array(args, with_defects=True)
    spec_lo, spec_hi = _backend_for(args).spec_window()
    pipeline = DiagnosisPipeline(spec_lo=spec_lo, spec_hi=spec_hi)
    config = ScanConfig(jobs=args.jobs, technology=args.tech,
                        progress=_progress_from(args))
    start = perf_counter()
    cpu_start = process_time()
    report = pipeline.run(array, config)
    run_id = None
    if args.record is not None:
        from repro.obs import RunLedger

        manifest = RunLedger(args.record).record_diagnosis(
            report, config, seed=args.seed, tech=array.tech.name,
            label=args.label, wall_seconds=perf_counter() - start,
            cpu_seconds=process_time() - cpu_start,
        )
        run_id = manifest.run_id
    if args.format == "json":
        payload = report.to_dict()
        payload["run_id"] = run_id
        payload["ledger"] = args.record
        print(json.dumps(payload, indent=2))
        return 0
    print(report.summary())
    print()
    print("findings:")
    for finding in report.findings:
        print(f"  {finding.describe()}")
    if run_id:
        print(f"recorded as {run_id} in {args.record}")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import (
        load_trace,
        merge_traces,
        render_timeline,
        summarize_trace,
        timeline_dict,
    )

    if len(args.paths) == 1:
        spans = load_trace(args.paths[0])
    else:
        spans = merge_traces(load_trace(path) for path in args.paths)
    if args.timeline:
        if args.format == "json":
            print(json.dumps(timeline_dict(spans), indent=2))
        else:
            print(render_timeline(spans))
        return 0
    summary = summarize_trace(spans)
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(summary.table())
    return 0


def cmd_lint(args) -> int:
    from repro.errors import LintError
    from repro.lint import (
        LintReport,
        apply_waivers,
        expand_codes,
        lint_circuit,
        lint_project,
        lint_source,
        lint_technology,
        load_waivers,
        preflight_macro,
    )
    from repro.measure.netlist_builder import build_measurement_circuit

    only = None
    if args.select:
        tokens = [t for chunk in args.select for t in chunk.split(",") if t]
        try:
            only = expand_codes(tokens)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = LintReport()
    if not args.source_only:
        array = _build_array(args, with_defects=args.defects)
        structure = _design_for(args, array)
        report.merge(lint_technology(array.tech))
        macro0 = array.macro(0)
        built = build_measurement_circuit(macro0, 0, 0, structure)
        report.merge(lint_circuit(built.circuit))
        for macro in array.macros():
            report.merge(
                preflight_macro(
                    macro, structure, waive_known_defects=not args.strict_defects
                )
            )
        report.merge(lint_project(only))
    if args.source:
        report.merge(lint_source(args.source, only))
    if only is not None:
        # The structural passes above (circuit/flow/tech) don't take a
        # code filter; apply the selection to the merged report so
        # --select CCY,DET means exactly those families in the output.
        selected = set(only)
        report = LintReport(
            [d for d in report.diagnostics if d.code in selected]
        )
    if args.waivers:
        try:
            report = apply_waivers(report, load_waivers(args.waivers))
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code


#: Wafer CLI flags persisted in a checkpoint's meta (see _SCAN_REBUILD_KEYS).
_WAFER_REBUILD_KEYS = ("diameter", "seed", "tech")


def cmd_wafer(args) -> int:
    from repro.errors import CheckpointError
    from repro.measure.config import ScanConfig
    from repro.wafer import WaferModel

    checkpointer, ck_dir, error_exit = _checkpointer_from(
        args, _WAFER_REBUILD_KEYS
    )
    if error_exit is not None:
        return error_exit

    model = WaferModel(
        diameter_dies=args.diameter, seed=args.seed, technology=args.tech
    )
    config = ScanConfig(
        jobs=args.jobs,
        technology=args.tech,
        progress=_progress_from(args),
        checkpoint=checkpointer,
    )
    start = perf_counter()
    cpu_start = process_time()
    try:
        report = model.measure_wafer(config=config)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        if checkpointer is not None and checkpointer.state is not None:
            hint = _resume_hint("wafer", checkpointer.run_id, ck_dir, args)
            print(f"interrupted; resume with: {hint}", file=sys.stderr)
        raise
    run_id = None
    if args.record is not None:
        from repro.obs import RunLedger

        reserved = (
            checkpointer.run_id
            if checkpointer is not None and ck_dir == args.record
            else None
        )
        manifest = RunLedger(args.record).record_wafer(
            report, config, seed=args.seed, tech=model.tech.name,
            label=args.label, wall_seconds=perf_counter() - start,
            cpu_seconds=process_time() - cpu_start,
            run_id=reserved,
        )
        run_id = manifest.run_id
    print(report.ascii_map())
    a, b = report.radial_profile()
    print(f"radial profile: centre {to_fF(a):.2f} fF, "
          f"centre-to-edge drop {to_fF(-b):.2f} fF")
    for label, mean, count in report.zonal_means():
        print(f"  zone {label}: {to_fF(mean):6.2f} fF ({count} dies)")
    if run_id:
        print(f"recorded as {run_id} in {args.record}")
    return 0


def cmd_fleet_run(args) -> int:
    from repro.errors import FleetError
    from repro.fleet import FleetOrchestrator
    from repro.resilience.retry import RetryPolicy

    try:
        retry = RetryPolicy(max_attempts=max(1, args.retries + 1))
        orchestrator = FleetOrchestrator(
            args.root,
            wafer={
                "diameter_dies": args.diameter,
                "seed": args.seed,
                "technology": args.tech,
            },
            shards=args.shards,
            retry=retry,
            heartbeat_timeout=args.heartbeat_timeout,
            label=args.label,
        )
        report = orchestrator.run()
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps({
            "state": report.state,
            "wall_seconds": report.wall_seconds,
            "respawns": report.respawns,
            "shards": [s.to_dict() for s in report.shards],
        }, indent=2))
    else:
        print(f"fleet {report.state} in {report.wall_seconds:.1f} s "
              f"({report.respawns} respawn(s))")
        for shard in report.shards:
            print(f"  shard {shard.shard_id}: dies "
                  f"[{shard.start},{shard.stop}) {shard.state} "
                  f"after {shard.attempts} attempt(s)"
                  + (f", run {shard.run_id}" if shard.run_id else ""))
        if report.state != "healthy":
            print("merge will mark the failed die range(s) FAILED",
                  file=sys.stderr)
    return report.exit_code


def cmd_fleet_status(args) -> int:
    from repro.errors import FleetError
    from repro.fleet import fleet_exit_code, fleet_state

    try:
        state = fleet_state(args.root)
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(state, indent=2))
        return 0
    print(f"fleet at {args.root}: {state['state']} "
          f"({state['shards']} shard(s), {state['total_dies']} dies)")
    leases = state.get("leases", {})
    for shard in state.get("shard_status", []):
        key = f"s{shard['shard_id']:02d}"
        lease = leases.get(key)
        live = ""
        if lease is not None:
            live = (f" — lease {lease['state']}, pid {lease['pid']}, "
                    f"{lease['dies_done']} dies done, heartbeat "
                    f"{lease['heartbeat_age']:.1f} s ago")
        lo, hi = shard["die_range"]
        print(f"  shard {shard['shard_id']}: dies [{lo},{hi}) "
              f"{shard['state']} (attempts {shard['attempts']}){live}")
    if state["state"] == "running":
        return 0
    return fleet_exit_code(state["state"])


def cmd_fleet_merge(args) -> int:
    from repro.errors import FleetError, LedgerError
    from repro.fleet import merge_lot

    ledger = None
    if args.record is not None:
        from repro.obs import RunLedger

        ledger = RunLedger(args.record)
    try:
        lot = merge_lot(
            args.root, ledger=ledger, label=args.label, force=args.force
        )
    except (FleetError, LedgerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps({
            "state": lot.state,
            "total_dies": lot.total_dies,
            "failed_ranges": [list(r) for r in lot.failed_ranges],
            "shard_runs": lot.shard_runs,
            "scalars": lot.scalars,
            "run_id": lot.run_id,
        }, indent=2))
    else:
        print(f"lot {lot.state}: {lot.total_dies} dies, "
              f"{int(lot.scalars['failed_dies'])} failed")
        for name in ("cap_mean_fF", "radial_centre_fF", "radial_drop_fF",
                     "zone_centre_fF", "zone_mid_fF", "zone_edge_fF"):
            if name in lot.scalars:
                print(f"  {name}: {lot.scalars[name]:.3f}")
        for lo, hi in lot.failed_ranges:
            print(f"  dies [{lo},{hi}) FAILED (shard exhausted retries)",
                  file=sys.stderr)
        if lot.run_id:
            print(f"recorded as {lot.run_id} in {args.record}")
    return lot.exit_code


def cmd_tech_list(args) -> int:
    from repro.technologies import get as get_technology
    from repro.technologies import names

    described = [get_technology(name).describe() for name in names()]
    if args.format == "json":
        print(json.dumps(described, indent=2))
        return 0
    for info in described:
        kernel = "closed-form kernel" if info["uses_kernel"] else "per-macro engine"
        lo, hi = info["range_fF"]
        spec_lo, spec_hi = info["spec_window_fF"]
        print(f"{info['name']:8s} {info['display']}")
        print(f"  headline   : {info['headline']}")
        print(f"  reference  : {info['reference']}")
        print(f"  card       : {info['card']} "
              f"(VDD {info['vdd']:.1f} V, nominal {info['nominal_fF']:.1f} fF)")
        print(f"  range      : {lo:.1f}-{hi:.1f} fF over "
              f"{info['num_steps']} steps, {kernel}")
        print(f"  spec window: {spec_lo:.1f}-{spec_hi:.1f} fF")
        corners = ", ".join(
            f"{tag}={corner['nominal_fF']:.1f}fF"
            f"/vthn {corner['nmos_vth']:+.2f}"
            for tag, corner in info["corners"].items()
        )
        print(f"  corners    : {corners}")
    return 0


def _runs_ledger(args):
    from repro.obs import RunLedger

    return RunLedger(args.dir)


def cmd_runs_list(args) -> int:
    from repro.errors import LedgerError

    try:
        manifests = _runs_ledger(args).runs()
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.kind:
        manifests = [m for m in manifests if m.kind == args.kind]
    if args.format == "json":
        print(json.dumps([m.to_dict() for m in manifests], indent=2))
        return 0
    if not manifests:
        print(f"(no recorded runs in {args.dir})")
        return 0
    header = (
        f"{'run':<6} {'kind':<10} {'timestamp':<26} {'config':<13} "
        f"{'label':<16} scalars"
    )
    print(header)
    print("-" * len(header))
    for m in manifests:
        key_scalars = ", ".join(
            f"{name}={m.scalars[name]:.4g}"
            for name in ("cap_mean_fF", "code_centroid", "cells_per_second")
            if name in m.scalars
        )
        print(
            f"{m.run_id:<6} {m.kind:<10} {m.timestamp:<26} "
            f"{m.config_hash:<13} {m.label:<16} {key_scalars}"
        )
    return 0


def cmd_runs_show(args) -> int:
    from repro.errors import LedgerError

    try:
        manifest = _runs_ledger(args).get(args.run_id)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(manifest.to_dict(), indent=2))
        return 0
    print(f"run {manifest.run_id} ({manifest.kind})")
    print(f"  timestamp : {manifest.timestamp}")
    print(f"  label     : {manifest.label or '(none)'}")
    print(f"  config    : {manifest.config} (hash {manifest.config_hash})")
    print(f"  seed      : {manifest.seed}")
    print(f"  tech      : {manifest.tech}")
    print(f"  version   : {manifest.version}")
    print(f"  wall      : {manifest.wall_seconds:.3f}s"
          + (f" (cpu {manifest.cpu_seconds:.3f}s)"
             if manifest.cpu_seconds is not None else ""))
    print(f"  trace     : {manifest.trace_path or '(none)'}")
    print(f"  artifact  : {manifest.artifact or '(none)'}")
    print("  scalars   :")
    for name, value in sorted(manifest.scalars.items()):
        print(f"    {name:<20} {value:.6g}")
    return 0


def cmd_runs_diff(args) -> int:
    from repro.errors import LedgerError

    try:
        diff = _runs_ledger(args).diff(args.a, args.b)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.format_text())
    return 0


def cmd_runs_checkpoints(args) -> int:
    from repro.errors import CheckpointError, LedgerError
    from repro.resilience import list_checkpoints

    try:
        states = list_checkpoints(_runs_ledger(args))
    except (CheckpointError, LedgerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([
            {
                "run_id": s.run_id,
                "kind": s.kind,
                "completed": len(s.completed),
                "total": s.total,
                "created": s.created,
            }
            for s in states
        ], indent=2))
        return 0
    if not states:
        print(f"(no unfinished runs in {args.dir})")
        return 0
    for s in states:
        print(f"{s.run_id}  {s.kind:<6} {len(s.completed)}/{s.total} units"
              f"  created {s.created or '(unknown)'}"
              f"  (resume with `repro {s.kind} --resume {s.run_id}"
              f" --checkpoint {args.dir}`)")
    return 0


def cmd_runs_check(args) -> int:
    from repro.errors import LedgerError
    from repro.obs import DriftEngine, check_ledger

    engine = DriftEngine(min_runs=args.min_runs)
    try:
        report = check_ledger(_runs_ledger(args), kind=args.kind, engine=engine)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Embedded eDRAM capacitor measurement (DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    geometry = _geometry_parent()
    seed = _seed_parent()
    jobs = _jobs_parent()
    fmt = _format_parent()
    record = _record_parent()
    progress = _progress_parent()
    checkpoint = _checkpoint_parent()
    tech = _tech_parent()

    p = sub.add_parser("design", parents=[geometry, seed, tech],
                       help="size a measurement structure")
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("abacus", parents=[geometry, seed, tech],
                       help="print the calibration abacus")
    p.set_defaults(func=cmd_abacus)

    p = sub.add_parser("scan",
                       parents=[geometry, seed, jobs, fmt, record, progress,
                                checkpoint, tech],
                       help="scan a synthesized array")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-macro wall-clock budget for parallel scans; a "
                        "worker exceeding it is killed and the macro retried")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="attempts per macro under supervision (default 3)")
    p.add_argument("--healthy", action="store_true", help="no injected defects")
    p.add_argument("--nominal-ff", type=float, default=None, metavar="FF",
                   help="nominal cell capacitance in fF (default: the "
                        "technology card's nominal, 30 for edram; shift it "
                        "to inject process drift into recorded runs)")
    p.add_argument("--save", help="write the scan to this .npz path")
    p.add_argument("--force-engine", action="store_true",
                   help="route every macro through the exact charge engine")
    p.add_argument("--preflight", action="store_true",
                   help="run the static ERC pass before scanning")
    p.add_argument("--sanitize", action="store_true",
                   help="arm the write-footprint sanitizer: prove parallel "
                        "workers' writes are disjoint and cover the planes "
                        "(CCY101/CCY102; nonzero exit on violation)")
    p.add_argument("--trace", metavar="PATH",
                   help="record a span trace of the scan to this JSON-lines "
                        "path (summarize with `repro trace PATH`)")
    p.add_argument("--metrics", action="store_true",
                   help="collect and print the scan metrics summary table")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write collected metrics as JSON lines to this path")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("diagnose",
                       parents=[geometry, seed, jobs, fmt, record, progress,
                                tech],
                       help="full diagnosis pipeline")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("trace", parents=[fmt],
                       help="summarize a span trace written by `scan --trace`")
    p.add_argument("paths", nargs="+", metavar="path",
                   help="JSON-lines trace file(s); several are merged "
                        "into one trace (parent + worker spools)")
    p.add_argument("--timeline", action="store_true",
                   help="render a per-worker lane view (text Gantt, or "
                        "JSON with --format json) instead of the summary")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "lint",
        parents=[geometry, seed, fmt],
        help="static ERC / parameter / unit analysis (no solver runs)",
    )
    p.add_argument("--defects", action="store_true",
                   help="inject defects into the linted array (their findings "
                        "are waived unless --strict-defects)")
    p.add_argument("--strict-defects", action="store_true",
                   help="do not waive findings on known-defective cells")
    p.add_argument("--source", nargs="+", metavar="PATH",
                   help="also AST-lint these Python files/directories "
                        "(raw SI literals, bare asserts)")
    p.add_argument("--source-only", action="store_true",
                   help="skip netlist analysis; lint only --source paths")
    p.add_argument("--select", nargs="+", metavar="CODES",
                   help="only run/report these rule codes or prefixes, "
                        "comma- or space-separated (e.g. CCY,DET or ERC004)")
    p.add_argument("--waivers", metavar="PATH",
                   help="JSON waiver file suppressing known findings; each "
                        "entry needs code/location/reason and may carry an "
                        "expires date (expired waivers warn instead)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("wafer",
                       parents=[seed, jobs, record, progress, checkpoint,
                                tech],
                       help="wafer-level monitoring demo")
    p.add_argument("--diameter", type=int, default=7, help="wafer width in dies")
    p.set_defaults(func=cmd_wafer)

    p = sub.add_parser("fleet",
                       help="fault-tolerant sharded wafer runs "
                            "(supervised subprocesses + crash-safe merge)")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    fleet_root = argparse.ArgumentParser(add_help=False)
    fleet_root.add_argument("--root", default=".repro-fleet",
                            help="fleet directory (default .repro-fleet)")

    q = fleet_sub.add_parser("run", parents=[fleet_root, seed, fmt, tech],
                             help="run one wafer as supervised die-range "
                                  "shards (exit 0 healthy / 3 degraded / "
                                  "1 failed)")
    q.add_argument("--diameter", type=int, default=7,
                   help="wafer width in dies")
    q.add_argument("--shards", type=int, default=2,
                   help="die-range shards to split the wafer into")
    q.add_argument("--retries", type=int, default=2,
                   help="respawns per shard after its first death "
                        "(default 2)")
    q.add_argument("--heartbeat-timeout", type=float, default=30.0,
                   help="seconds without a lease heartbeat before a "
                        "worker is declared wedged and killed")
    q.add_argument("--label", default="", help="label recorded in fleet.json")
    q.set_defaults(func=cmd_fleet_run)

    q = fleet_sub.add_parser("status", parents=[fleet_root, fmt],
                             help="show fleet + per-shard lease state")
    q.set_defaults(func=cmd_fleet_status)

    q = fleet_sub.add_parser("merge", parents=[fleet_root, fmt],
                             help="merge shard results into the lot "
                                  "artifact (exit 0 healthy / 3 degraded "
                                  "/ 1 failed)")
    q.add_argument("--record", nargs="?", const=_DEFAULT_LEDGER_DIR,
                   metavar="DIR",
                   help="record a kind=lot manifest into this run ledger "
                        f"(default directory {_DEFAULT_LEDGER_DIR})")
    q.add_argument("--label", default="", help="manifest label")
    q.add_argument("--force", action="store_true",
                   help="merge even while shard workers are still alive "
                        "(their unfinished die ranges merge as FAILED)")
    q.set_defaults(func=cmd_fleet_merge)

    p = sub.add_parser("tech", help="inspect cell-technology backends")
    tech_sub = p.add_subparsers(dest="tech_command", required=True)
    q = tech_sub.add_parser("list", parents=[fmt],
                            help="list registered backends, cards and corners")
    q.set_defaults(func=cmd_tech_list)

    p = sub.add_parser("runs", help="browse and gate the run ledger")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    ledger_dir = argparse.ArgumentParser(add_help=False)
    ledger_dir.add_argument("--dir", default=_DEFAULT_LEDGER_DIR,
                            help="ledger directory "
                                 f"(default {_DEFAULT_LEDGER_DIR})")
    kinds = ("scan", "wafer", "diagnosis", "shard", "lot")

    q = runs_sub.add_parser("list", parents=[ledger_dir, fmt],
                            help="list recorded runs")
    q.add_argument("--kind", choices=kinds, help="only runs of this kind")
    q.set_defaults(func=cmd_runs_list)

    q = runs_sub.add_parser("show", parents=[ledger_dir, fmt],
                            help="show one run's manifest")
    q.add_argument("run_id", help="run id (see `repro runs list`)")
    q.set_defaults(func=cmd_runs_show)

    q = runs_sub.add_parser("diff", parents=[ledger_dir, fmt],
                            help="compare two recorded runs")
    q.add_argument("a", help="baseline run id")
    q.add_argument("b", help="candidate run id")
    q.set_defaults(func=cmd_runs_diff)

    q = runs_sub.add_parser(
        "checkpoints", parents=[ledger_dir, fmt],
        help="list unfinished (resumable) checkpointed runs")
    q.set_defaults(func=cmd_runs_checkpoints)

    q = runs_sub.add_parser(
        "check", parents=[ledger_dir, fmt],
        help="EWMA/CUSUM drift gate over recorded runs "
             "(exit 1 on out-of-control physics scalars)")
    q.add_argument("--kind", choices=kinds, help="only chart runs of this kind")
    q.add_argument("--min-runs", type=int, default=2,
                   help="minimum history length before charting (default 2)")
    q.set_defaults(func=cmd_runs_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Supervised pools have already torn their workers down (the
        # scan engine re-raises only after a forced shutdown); exit with
        # the conventional SIGINT status instead of a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream consumer (head, less) closed the pipe mid-print;
        # detach stdout so the interpreter's shutdown flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
