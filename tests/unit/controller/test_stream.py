"""Code-map serialization."""

import numpy as np
import pytest

from repro.controller.stream import CodeStream
from repro.errors import MeasurementError


@pytest.fixture()
def stream():
    return CodeStream(bits_per_code=5)


def test_validation():
    with pytest.raises(MeasurementError):
        CodeStream(bits_per_code=0)
    with pytest.raises(MeasurementError):
        CodeStream(bits_per_code=17)


def test_raw_roundtrip(stream):
    rng = np.random.default_rng(1)
    codes = rng.integers(0, 21, size=(13, 17))
    decoded = stream.decode(stream.encode(codes, rle=False))
    assert np.array_equal(decoded, codes)


def test_rle_roundtrip_random(stream):
    rng = np.random.default_rng(2)
    codes = rng.integers(0, 21, size=(9, 31))
    decoded = stream.decode(stream.encode(codes, rle=True))
    assert np.array_equal(decoded, codes)


def test_rle_roundtrip_uniform(stream):
    codes = np.full((64, 64), 9)
    decoded = stream.decode(stream.encode(codes))
    assert np.array_equal(decoded, codes)


def test_rle_roundtrip_long_runs_split(stream):
    # Runs longer than 256 must split into multiple records.
    codes = np.full((1, 1000), 7)
    codes[0, 700] = 3
    decoded = stream.decode(stream.encode(codes))
    assert np.array_equal(decoded, codes)


def test_uniform_map_compresses_hard(stream):
    codes = np.full((64, 64), 9)
    stats = stream.stats(codes)
    assert stats.compression_ratio > 30


def test_random_map_does_not_blow_up(stream):
    rng = np.random.default_rng(3)
    codes = rng.integers(0, 21, size=(64, 64))
    stats = stream.stats(codes)
    # Worst case for RLE: ~(5+8)/5 expansion, bounded.
    assert stats.compression_ratio > 0.35


def test_auto_mode_never_expands(stream):
    # Noisy maps defeat RLE; auto mode falls back to raw packing, so the
    # payload never exceeds the raw size (header aside).
    rng = np.random.default_rng(4)
    codes = 9 + (rng.normal(0, 0.7, size=(64, 64))).round().astype(int)
    stats = stream.stats(codes, rle="auto")
    assert stats.compression_ratio > 0.98
    decoded = stream.decode(stream.encode(codes, rle="auto"))
    assert np.array_equal(decoded, codes)


def test_auto_mode_picks_rle_for_uniform(stream):
    codes = np.full((64, 64), 9)
    auto = stream.stats(codes, rle="auto")
    raw = stream.stats(codes, rle=False)
    assert auto.encoded_bits < raw.encoded_bits / 20


def test_transfer_time(stream):
    codes = np.full((16, 16), 5)
    stats = stream.stats(codes)
    assert stats.transfer_time(1e6) == pytest.approx(stats.encoded_bits / 1e6)
    with pytest.raises(MeasurementError):
        stats.transfer_time(0.0)


def test_value_range_checked(stream):
    with pytest.raises(MeasurementError):
        stream.encode(np.array([[99]]))
    with pytest.raises(MeasurementError):
        stream.encode(np.array([[-1]]))


def test_shape_checked(stream):
    with pytest.raises(MeasurementError):
        stream.encode(np.zeros(5, dtype=int))
    with pytest.raises(MeasurementError):
        stream.encode(np.zeros((0, 5), dtype=int))


def test_decoder_width_mismatch_rejected(stream):
    payload = stream.encode(np.full((2, 2), 3))
    other = CodeStream(bits_per_code=6)
    with pytest.raises(MeasurementError):
        other.decode(payload)


def test_truncated_stream_rejected(stream):
    payload = stream.encode(np.full((4, 4), 3), rle=False)
    with pytest.raises(MeasurementError):
        stream.decode(payload[:-2])
