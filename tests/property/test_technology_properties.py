"""Property tests for the technology seam.

Two promises the API redesign makes:

1. **The eDRAM backend is a refactor, not a change.**  Arrays built via
   ``repro.technologies.get("edram")`` are bit-identical to the
   historical direct-construction recipe (capacitance/leak/defect
   planes), and scanning them produces bit-identical codes, V_GS,
   quality planes and ScanStats counts.

2. **The kernel dispatch is backend-agnostic.**  For every shipped
   backend the batched closed-form kernel and the per-macro drivers
   agree bit-for-bit — the seam adds no technology-conditional physics
   to the scan path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edram.array import EDRAMArray
from repro.edram.defects import DefectInjector, DefectKind
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.technologies import get
from repro.units import fF


def _legacy_build(rows, cols, macro_rows, seed, with_defects, nominal=30.0 * fF):
    """The pre-refactor CLI recipe, inlined verbatim as the oracle."""
    shape = (rows, cols)
    capacitance = compose_maps(
        uniform_map(shape, nominal), mismatch_map(shape, 0.8 * fF, seed=seed)
    )
    array = EDRAMArray(
        rows, cols, macro_cols=2, macro_rows=macro_rows,
        capacitance_map=capacitance,
    )
    if with_defects:
        injector = DefectInjector(array, seed=seed + 1)
        injector.scatter(DefectKind.SHORT, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.OPEN, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.LOW_CAP, max(2, array.num_cells // 200), factor=0.6)
        injector.scatter(DefectKind.BRIDGE, max(1, array.num_cells // 500))
    return array


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**16), with_defects=st.booleans())
def test_edram_registry_arrays_bit_exact_with_legacy_recipe(seed, with_defects):
    legacy = _legacy_build(16, 4, 8, seed, with_defects)
    registry = get("edram").build_array(
        16, 4, macro_rows=8, seed=seed, with_defects=with_defects
    )
    np.testing.assert_array_equal(
        legacy.capacitance_matrix(), registry.capacitance_matrix()
    )
    np.testing.assert_array_equal(legacy.leak_matrix(), registry.leak_matrix())
    np.testing.assert_array_equal(
        legacy.defect_kind_matrix(), registry.defect_kind_matrix()
    )
    assert legacy.tech == registry.tech


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_edram_registry_scan_bit_exact_with_legacy_scan(seed):
    legacy = _legacy_build(16, 4, 8, seed, with_defects=True)
    registry = get("edram").build_array(
        16, 4, macro_rows=8, seed=seed, with_defects=True
    )
    structure = get("edram").design_structure(registry)
    a = ArrayScanner(legacy, structure).scan()
    b = ArrayScanner(registry, structure).scan(ScanConfig(technology="edram"))
    np.testing.assert_array_equal(a.codes, b.codes)
    np.testing.assert_array_equal(a.vgs, b.vgs)
    np.testing.assert_array_equal(a.quality, b.quality)
    np.testing.assert_array_equal(a.tiers, b.tiers)
    assert a.stats.total_cells == b.stats.total_cells
    assert a.stats.closed_form_cells == b.stats.closed_form_cells
    assert a.stats.engine_cells == b.stats.engine_cells
    assert a.stats.kernel_cells == b.stats.kernel_cells
    assert a.stats.degraded_cells == b.stats.degraded_cells
    assert a.stats.failed_cells == b.stats.failed_cells


@pytest.mark.parametrize("technology", ["edram", "fecap", "1t"])
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_kernel_vs_per_macro_bit_exact_for_every_backend(technology, seed):
    """The same ArrayScanner path serves all backends, kernel or drivers.

    Backends may mutate state after a scan (FeCap read-disturb), so the
    two paths run on identically-seeded twin arrays rather than the same
    one.
    """
    backend = get(technology)
    config = ScanConfig(technology=technology)
    structure = None
    results = []
    for _ in range(2):
        array = backend.build_array(
            16, 4, macro_rows=8, seed=seed, with_defects=True
        )
        if structure is None:
            structure = backend.design_structure(array)
        use_kernel = not results  # kernel first, drivers second
        results.append(
            ArrayScanner(array, structure, use_kernel=use_kernel).scan(config)
        )
    fast, slow = results
    assert fast.stats.kernel_cells > 0
    assert slow.stats.kernel_cells == 0
    np.testing.assert_array_equal(fast.codes, slow.codes)
    np.testing.assert_array_equal(fast.vgs, slow.vgs)
    np.testing.assert_array_equal(fast.quality, slow.quality)


@pytest.mark.parametrize("technology", ["edram", "fecap", "1t"])
def test_parallel_fanout_matches_serial_for_every_backend(technology):
    """The shared-memory fan-out is backend-agnostic too."""
    backend = get(technology)
    serial_array = backend.build_array(16, 4, macro_rows=4, seed=7, with_defects=True)
    parallel_array = backend.build_array(16, 4, macro_rows=4, seed=7, with_defects=True)
    structure = backend.design_structure(serial_array)
    serial = ArrayScanner(serial_array, structure).scan(
        ScanConfig(technology=technology)
    )
    parallel = ArrayScanner(parallel_array, structure).scan(
        ScanConfig(technology=technology, jobs=2)
    )
    np.testing.assert_array_equal(serial.codes, parallel.codes)
    np.testing.assert_array_equal(serial.vgs, parallel.vgs)
    np.testing.assert_array_equal(serial.quality, parallel.quality)
