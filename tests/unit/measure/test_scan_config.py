"""ScanConfig: validation, immutability, and the deprecation shim."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError, ScanMismatchError
from repro.measure.config import ScanConfig, coerce_scan_config
from repro.measure.scan import ArrayScanner
from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer


class TestScanConfig:
    def test_defaults(self):
        config = ScanConfig()
        assert config.jobs == 1
        assert config.preflight is False
        assert config.force_engine is False
        assert config.tier == "charge"
        assert config.tracer is NULL_TRACER
        assert config.metrics is NULL_METRICS

    def test_jobs_validated(self):
        with pytest.raises(MeasurementError):
            ScanConfig(jobs=0)

    def test_tier_validated(self):
        with pytest.raises(MeasurementError):
            ScanConfig(tier="psychic")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ScanConfig().jobs = 4  # type: ignore[misc]

    def test_with_options_revalidates(self):
        config = ScanConfig().with_options(jobs=4)
        assert config.jobs == 4
        with pytest.raises(MeasurementError):
            config.with_options(jobs=-1)

    def test_equality_ignores_observers(self):
        assert ScanConfig(tracer=Tracer()) == ScanConfig(metrics=MetricsRegistry())
        assert ScanConfig(jobs=2) != ScanConfig(jobs=3)

    def test_observed_property(self):
        assert not ScanConfig().observed
        assert ScanConfig(tracer=Tracer()).observed
        assert ScanConfig(metrics=MetricsRegistry()).observed


class TestCoercion:
    def test_none_gives_defaults_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert coerce_scan_config(None, "m") == ScanConfig()

    def test_config_passes_through_silently(self):
        config = ScanConfig(jobs=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert coerce_scan_config(config, "m") is config

    def test_legacy_keyword_warns_and_applies(self):
        with pytest.warns(DeprecationWarning, match="jobs"):
            config = coerce_scan_config(None, "ArrayScanner.scan", jobs=4)
        assert config.jobs == 4

    def test_legacy_positional_bool_is_force_engine(self):
        with pytest.warns(DeprecationWarning, match="force_engine"):
            config = coerce_scan_config(True, "ArrayScanner.scan_macro")
        assert config.force_engine is True

    def test_legacy_positional_str_is_tier(self):
        with pytest.warns(DeprecationWarning, match="tier"):
            config = coerce_scan_config("transient", "ArrayScanner.measure_cell")
        assert config.tier == "transient"

    def test_legacy_overrides_config_fields(self):
        base = ScanConfig(jobs=2, force_engine=False)
        with pytest.warns(DeprecationWarning):
            config = coerce_scan_config(base, "m", force_engine=True)
        assert config.force_engine is True
        assert config.jobs == 2  # untouched fields survive


class TestEntryPointShims:
    def test_scan_legacy_kwargs_warn(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        with pytest.warns(DeprecationWarning):
            scanner.scan(jobs=1)

    def test_scan_config_path_is_silent(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            scanner.scan(ScanConfig())
            scanner.scan()

    def test_scan_macro_positional_bool_still_works(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        scanner = ArrayScanner(arr, structure_2x2)
        with pytest.warns(DeprecationWarning):
            _, codes_legacy, tier = scanner.scan_macro(arr.macro(0), True)
        assert tier == "e"
        _, codes_config, _ = scanner.scan_macro(
            arr.macro(0), ScanConfig(force_engine=True)
        )
        assert np.array_equal(codes_legacy, codes_config)

    def test_measure_cell_positional_str_still_works(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        with pytest.warns(DeprecationWarning):
            legacy = scanner.measure_cell(0, 0, "charge")
        modern = scanner.measure_cell(0, 0, ScanConfig(tier="charge"))
        assert legacy.code == modern.code

    def test_legacy_and_config_scans_agree(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        with pytest.warns(DeprecationWarning):
            legacy = scanner.scan(force_engine=True)
        modern = scanner.scan(ScanConfig(force_engine=True))
        assert np.array_equal(legacy.codes, modern.codes)


class TestScanDiffValidation:
    def test_diff_rejects_non_scan(self, tech, structure_2x2):
        scan = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2).scan()
        with pytest.raises(ScanMismatchError):
            scan.diff(np.zeros((2, 2)))  # type: ignore[arg-type]

    def test_diff_rejects_shape_mismatch(self, tech, structure_2x2):
        a = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2).scan()
        b = ArrayScanner(EDRAMArray(4, 2, tech=tech), structure_2x2).scan()
        with pytest.raises(ScanMismatchError, match="shape"):
            a.diff(b)

    def test_mismatch_is_a_measurement_error(self):
        assert issubclass(ScanMismatchError, MeasurementError)
