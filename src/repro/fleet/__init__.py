"""Fault-tolerant wafer-fleet orchestration.

Splits a wafer into die-range shards (:mod:`~repro.fleet.partition`),
runs each shard as a supervised subprocess with lease-file heartbeats
(:mod:`~repro.fleet.worker`, :mod:`~repro.fleet.lease`), recovers shard
death through checkpoint/resume with bounded retries
(:mod:`~repro.fleet.orchestrator`), and merges shard results into one
crash-safe, idempotent lot artifact feeding the drift engine
(:mod:`~repro.fleet.merge`).  Surfaced on the CLI as
``repro fleet run / status / merge``.
"""

from repro.fleet.lease import (
    ShardLease,
    heartbeat_age,
    read_lease,
    write_lease,
)
from repro.fleet.merge import LotMerge, lot_scalars, merge_lot
from repro.fleet.orchestrator import (
    DEFAULT_FLEET_DIR,
    FleetOrchestrator,
    FleetReport,
    ShardStatus,
    fleet_exit_code,
    fleet_state,
)
from repro.fleet.partition import (
    ShardRange,
    partition_defects,
    plan_shards,
    validate_partition,
)

__all__ = [
    "DEFAULT_FLEET_DIR",
    "FleetOrchestrator",
    "FleetReport",
    "LotMerge",
    "ShardLease",
    "ShardRange",
    "ShardStatus",
    "fleet_exit_code",
    "fleet_state",
    "heartbeat_age",
    "lot_scalars",
    "merge_lot",
    "partition_defects",
    "plan_shards",
    "read_lease",
    "validate_partition",
    "write_lease",
]
