"""Converter linearity metrology: DNL and INL (extension).

The paper presents its abacus as usable through a simple linear reading
("The register value gives directly the current step").  Standard ADC
metrology quantifies how honest that is:

- **DNL** (differential nonlinearity): each code bin's width relative to
  the ideal LSB (the mean bin width), minus one.  |DNL| < 0.5 LSB means
  no bin is badly squeezed or stretched.
- **INL** (integral nonlinearity): each code transition's deviation from
  the best-fit straight line through the transfer curve, in LSBs.  INL
  is what a user pays for if they skip the abacus and map codes to
  capacitance linearly.

Both are computed on the *capacitance* axis (the converter's input is a
capacitance; the current axis is linear by construction).  The analysis
also reports the error of the "lazy linear" readout against the abacus
readout — making precise how much the paper's calibration step is worth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.abacus import Abacus
from repro.errors import CalibrationError


@dataclass(frozen=True)
class LinearityReport:
    """DNL/INL of one abacus.

    All arrays are indexed by code transition (length ``num_steps − 1``
    for DNL, ``num_steps`` for INL); LSB is the mean in-range bin width
    in farads.
    """

    lsb: float
    dnl: np.ndarray
    inl: np.ndarray
    gain: float  # farads per code of the best-fit line
    offset: float  # farads at code 0 of the best-fit line

    @property
    def max_dnl(self) -> float:
        """Worst |DNL| in LSBs."""
        return float(np.abs(self.dnl).max())

    @property
    def max_inl(self) -> float:
        """Worst |INL| in LSBs."""
        return float(np.abs(self.inl).max())

    def linear_readout_error(self, code: int) -> float:
        """|abacus estimate − best-fit-line estimate| for a code, farads."""
        if not 1 <= code < len(self.inl) + 1:
            raise CalibrationError(f"code {code} has no linear-readout row")
        return abs(self.inl[code - 1]) * self.lsb

    def summary(self) -> str:
        """One-line metrology summary."""
        return (
            f"LSB {self.lsb * 1e15:.2f} fF, DNL max {self.max_dnl:+.2f} LSB, "
            f"INL max {self.max_inl:+.2f} LSB, "
            f"gain {self.gain * 1e15:.2f} fF/code"
        )


def analyze_linearity(abacus: Abacus) -> LinearityReport:
    """Compute DNL/INL for an abacus.

    Uses the code transition levels (bin edges) on the capacitance axis;
    the best-fit line is least-squares through all transitions (the
    "gain and offset removed" convention).
    """
    edges = np.asarray(abacus.edges, dtype=float)
    if edges.size < 3:
        raise CalibrationError("need at least 3 transitions for linearity analysis")
    widths = np.diff(edges)
    if np.any(widths <= 0):
        raise CalibrationError("abacus has degenerate (zero-width) bins")
    lsb = float(widths.mean())
    dnl = widths / lsb - 1.0

    codes = np.arange(1, edges.size + 1, dtype=float)
    design = np.column_stack([np.ones_like(codes), codes])
    (offset, gain), *_ = np.linalg.lstsq(design, edges, rcond=None)
    fitted = offset + gain * codes
    inl = (edges - fitted) / lsb
    return LinearityReport(
        lsb=lsb, dnl=dnl, inl=inl, gain=float(gain), offset=float(offset)
    )


def lazy_linear_estimate(report: LinearityReport, code: int) -> float:
    """Capacitance from the best-fit line only (no abacus), farads.

    The "register value gives directly the current step" reading: the
    code scaled by a single gain/offset pair.  Bin-centre convention.
    """
    return report.offset + report.gain * (code + 0.5)
