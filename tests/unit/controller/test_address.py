"""Address generation strategies."""

import pytest

from repro.controller.address import AddressGenerator, ScanOrder
from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError


@pytest.fixture()
def array(tech):
    return EDRAMArray(8, 8, tech=tech, macro_cols=2, macro_rows=4)


def test_full_raster_covers_everything(array):
    gen = AddressGenerator(array, ScanOrder.FULL_RASTER)
    addresses = gen.addresses()
    assert len(addresses) == 64
    assert len(set(addresses)) == 64
    assert gen.count == 64
    assert addresses[0] == (0, 0)
    assert addresses[-1] == (7, 7)


def test_macro_major_covers_everything_grouped(array):
    gen = AddressGenerator(array, ScanOrder.MACRO_MAJOR)
    addresses = gen.addresses()
    assert len(set(addresses)) == 64
    # Within the sequence, each macro's cells are contiguous.
    macros = [array.macro_of(r, c) for r, c in addresses]
    changes = sum(1 for a, b in zip(macros, macros[1:]) if a != b)
    assert changes == array.num_macros - 1


def test_macro_major_minimizes_transitions(array):
    raster = AddressGenerator(array, ScanOrder.FULL_RASTER).macro_transitions()
    grouped = AddressGenerator(array, ScanOrder.MACRO_MAJOR).macro_transitions()
    assert grouped == array.num_macros - 1
    assert raster > grouped


def test_checkerboard_is_half(array):
    gen = AddressGenerator(array, ScanOrder.CHECKERBOARD)
    addresses = gen.addresses()
    assert len(addresses) == 32
    assert all((r + c) % 2 == 0 for r, c in addresses)
    assert gen.count == 32


def test_sparse_sampling(array):
    gen = AddressGenerator(array, ScanOrder.SPARSE, fraction=0.25, seed=3)
    addresses = gen.addresses()
    assert len(addresses) == 16
    assert len(set(addresses)) == 16
    assert gen.count == 16


def test_sparse_is_deterministic(array):
    a = AddressGenerator(array, ScanOrder.SPARSE, fraction=0.1, seed=5).addresses()
    b = AddressGenerator(array, ScanOrder.SPARSE, fraction=0.1, seed=5).addresses()
    assert a == b
    c = AddressGenerator(array, ScanOrder.SPARSE, fraction=0.1, seed=6).addresses()
    assert a != c


def test_sparse_minimum_one_cell(array):
    gen = AddressGenerator(array, ScanOrder.SPARSE, fraction=0.001)
    assert gen.count == 1


def test_fraction_validation(array):
    with pytest.raises(MeasurementError):
        AddressGenerator(array, ScanOrder.SPARSE, fraction=0.0)
    with pytest.raises(MeasurementError):
        AddressGenerator(array, ScanOrder.SPARSE, fraction=1.5)


def test_iteration_protocol(array):
    gen = AddressGenerator(array, ScanOrder.CHECKERBOARD)
    assert list(gen) == gen.addresses()
