"""Address generation for measurement campaigns.

The measurement structure measures one cell per 50 ns flow, so *which*
cells to visit (and in what order) is a real test-economics decision:

- ``FULL_RASTER`` — every cell, row-major: the complete analog bitmap.
- ``MACRO_MAJOR`` — every cell, but grouped per macro tile, minimizing
  structure reconfiguration between measurements.
- ``CHECKERBOARD`` — every other cell: half the test time, still dense
  enough for gradients/clusters.
- ``SPARSE`` — a seeded random sample of a given fraction: the process-
  monitoring mode (population statistics need ~10³ cells, not 10⁵).
"""

from __future__ import annotations

import enum
from typing import Iterator

import numpy as np

from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError


class ScanOrder(enum.Enum):
    """Supported visit strategies."""

    FULL_RASTER = "full_raster"
    MACRO_MAJOR = "macro_major"
    CHECKERBOARD = "checkerboard"
    SPARSE = "sparse"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AddressGenerator:
    """Produce (row, col) visit sequences over an array.

    Parameters
    ----------
    array:
        The array being measured.
    order:
        Visit strategy.
    fraction:
        Sample fraction for ``SPARSE`` (ignored otherwise).
    seed:
        Sampling seed for ``SPARSE``.
    """

    def __init__(
        self,
        array: EDRAMArray,
        order: ScanOrder = ScanOrder.FULL_RASTER,
        fraction: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise MeasurementError(f"fraction must be in (0, 1], got {fraction}")
        self.array = array
        self.order = order
        self.fraction = fraction
        self.seed = seed

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.addresses())

    def addresses(self) -> list[tuple[int, int]]:
        """The full visit sequence for the configured strategy."""
        if self.order is ScanOrder.FULL_RASTER:
            return [
                (r, c) for r in range(self.array.rows) for c in range(self.array.cols)
            ]
        if self.order is ScanOrder.MACRO_MAJOR:
            out = []
            for macro in self.array.macros():
                for r in macro.row_range:
                    for c in macro.columns:
                        out.append((r, c))
            return out
        if self.order is ScanOrder.CHECKERBOARD:
            return [
                (r, c)
                for r in range(self.array.rows)
                for c in range(self.array.cols)
                if (r + c) % 2 == 0
            ]
        # SPARSE
        rng = np.random.default_rng(self.seed)
        total = self.array.num_cells
        count = max(1, int(round(self.fraction * total)))
        chosen = rng.choice(total, size=count, replace=False)
        chosen.sort()
        cols = self.array.cols
        return [(int(i) // cols, int(i) % cols) for i in chosen]

    @property
    def count(self) -> int:
        """Number of cells the strategy visits."""
        if self.order is ScanOrder.SPARSE:
            return max(1, int(round(self.fraction * self.array.num_cells)))
        if self.order is ScanOrder.CHECKERBOARD:
            return (self.array.num_cells + 1) // 2
        return self.array.num_cells

    def macro_transitions(self) -> int:
        """How many times the sequence crosses a macro-tile boundary.

        Each transition costs structure setup time (plate bias hand-over,
        register reset); MACRO_MAJOR minimizes this to
        ``num_macros − 1``.
        """
        seq = self.addresses()
        if not seq:
            return 0
        transitions = 0
        prev = self.array.macro_of(*seq[0])
        for row, col in seq[1:]:
            current = self.array.macro_of(row, col)
            if current != prev:
                transitions += 1
                prev = current
        return transitions
