"""The 1T1C eDRAM cell.

A cell is one n-MOS access transistor in series with a storage capacitor
whose far plate is the shared plate node.  The class carries both the
*structural* truth (drawn capacitance, defect) and the *behavioural*
state (stored voltage, time of last refresh) used by array operations.

The distinction between :attr:`capacitance` (drawn / as-fabricated value,
what the measurement structure tries to read) and
:meth:`effective_capacitance` (what the cell electrically presents at the
plate when selected, after defects) is load-bearing: a LOW_CAP cell has a
reduced value in *both*; an OPEN cell has a normal drawn value but
presents ~0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edram.defects import CellDefect, DefectKind
from repro.errors import DefectError
from repro.units import fA


@dataclass
class DRAMCell:
    """State of a single 1T1C cell.

    Parameters
    ----------
    capacitance:
        As-fabricated storage capacitance in farads (defect-free drawn
        value modified by process variation).
    leak_current:
        Junction leakage pulling the storage node toward ground, amperes.
    defect:
        Optional attached :class:`~repro.edram.defects.CellDefect`.
    v_storage:
        Behavioural storage-node voltage, volts.
    t_written:
        Behavioural timestamp of the last write/refresh, seconds.
    """

    capacitance: float
    leak_current: float = 1.0 * fA
    defect: CellDefect | None = None
    v_storage: float = 0.0
    t_written: float = 0.0

    #: Attributes whose mutation an owning array must observe to keep its
    #: bulk matrices coherent (behavioural state is deliberately excluded:
    #: stored data does not affect what the structure measures).
    _WATCHED = ("capacitance", "defect", "leak_current")

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        if name in self._WATCHED:
            # Installed by EDRAMArray after construction; absent on
            # standalone cells and during dataclass __init__.
            watcher = self.__dict__.get("_watcher")
            if watcher is not None:
                array, row, col = watcher
                array._note_cell_changed(row, col)

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise DefectError(f"cell capacitance must be positive, got {self.capacitance}")
        if self.leak_current < 0:
            raise DefectError(f"leak current must be >= 0, got {self.leak_current}")

    # ------------------------------------------------------------------
    # Defects
    # ------------------------------------------------------------------

    def apply_defect(self, defect: CellDefect) -> None:
        """Attach a defect; parametric kinds also rescale the capacitance."""
        if self.defect is not None:
            raise DefectError("cell already carries a defect")
        self.defect = defect
        if defect.kind in (DefectKind.LOW_CAP, DefectKind.HIGH_CAP):
            self.capacitance *= defect.factor
        elif defect.kind == DefectKind.RETENTION:
            self.leak_current *= defect.factor

    def has_defect(self, kind: DefectKind) -> bool:
        """True if the cell carries a defect of the given kind."""
        return self.defect is not None and self.defect.kind == kind

    # ------------------------------------------------------------------
    # Electrical presentation
    # ------------------------------------------------------------------

    def effective_capacitance(self) -> float:
        """Capacitance the cell presents at the plate when selected.

        - OPEN / ACCESS_OPEN: the capacitor (or its ground return) is
          disconnected → ~0 F.
        - SHORT: the capacitor is a resistive short; it holds no charge
          → 0 F for charge-sharing purposes (the short also discharges
          the plate, which the measurement models separately via
          :meth:`is_plate_shorted`).
        - otherwise: the (possibly parametrically shifted) capacitance.
        """
        if self.defect is None:
            return self.capacitance
        kind = self.defect.kind
        if kind in (DefectKind.OPEN, DefectKind.ACCESS_OPEN, DefectKind.SHORT):
            return 0.0
        return self.capacitance

    def is_plate_shorted(self) -> bool:
        """True if a dielectric short ties the storage node to the plate."""
        return self.has_defect(DefectKind.SHORT)

    def can_write(self) -> bool:
        """True if a bitline write can reach the storage node."""
        return not (
            self.has_defect(DefectKind.OPEN) or self.has_defect(DefectKind.ACCESS_OPEN)
        )

    # ------------------------------------------------------------------
    # Behavioural state
    # ------------------------------------------------------------------

    def write(self, voltage: float, time: float) -> None:
        """Set the stored level (full-swing write through the access FET)."""
        if self.can_write():
            self.v_storage = voltage
        self.t_written = time

    def stored_voltage(self, time: float, plate_bias: float) -> float:
        """Storage-node voltage at ``time`` including leakage decay.

        Leakage is a constant junction current toward ground, so the
        stored level decays linearly and clamps at 0 V.  A SHORT cell
        always sits at the plate bias; an OPEN cell's float is modelled
        as holding its last written level without leakage relief (its
        node is tiny, decay is fast, but it is unreadable anyway).
        """
        if self.is_plate_shorted():
            return plate_bias
        dt = max(0.0, time - self.t_written)
        droop = self.leak_current * dt / self.capacitance
        return max(0.0, self.v_storage - droop)

    def retention_time(self, v_written: float, v_min: float) -> float:
        """Seconds until a written ``v_written`` droops to ``v_min``."""
        if v_min >= v_written:
            return 0.0
        if self.leak_current == 0.0:
            return float("inf")
        return (v_written - v_min) * self.capacitance / self.leak_current
