"""Automatic sizing of the measurement structure.

The measurable range of the structure is set by two knobs:

- **C_REF** (the REF transistor's gate capacitance) positions the
  charge-sharing transfer curve ``V_GS(C_m)`` relative to the REF
  threshold voltage, and
- **ΔI** (the DAC step) scales the current axis so the highest
  capacitance of interest lands on the last code.

Because the plate of a real macro carries systematic background
capacitance (plate wiring, same-row neighbour coupling, off-row junction
loads — see :mod:`repro.measure.scan`), the correct sizing depends on the
macro geometry.  :func:`design_structure` solves both knobs so that

- the code 0→1 boundary sits at ``c_lo`` (below it the REF transistor
  cannot sink even one step — the paper's ambiguous code 0), and
- the code (n−1)→n boundary sits at ``c_hi`` (above it OUT never flips —
  code n, "equal or superior to 55 fF").

This is the library's rendering of the paper's sentence "with our
design, the test structure is scaled in a range of eDRAM capacitor of
10 fF – 55 fF".
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.mosfet import Mosfet
from repro.errors import CalibrationError
from repro.measure.sense import SenseChain
from repro.measure.structure import MeasurementDesign, MeasurementStructure
from repro.tech.parameters import TechnologyCard
from repro.units import fF, pF


def _series(a: float, b: float) -> float:
    total = a + b
    return a * b / total if total > 0 else 0.0


def nominal_background(
    tech: TechnologyCard,
    rows: int,
    macro_cols: int,
    bitline_rows: int | None = None,
) -> float:
    """Systematic plate background capacitance of a healthy macro, farads.

    The sum of every pre-charged branch on the plate other than the
    target capacitor itself: plate wiring, (macro_cols − 1) same-row
    neighbour couplings, and (rows − 1)·macro_cols off-row junction
    loads.  All branches assume nominal cell capacitance.

    ``rows`` is the macro *tile* height; ``bitline_rows`` is the full
    array height the bitlines span (defaults to ``rows``, i.e. a
    column-stripe macro).
    """
    if rows < 1 or macro_cols < 1:
        raise CalibrationError(f"macro geometry must be >= 1x1, got {rows}x{macro_cols}")
    if bitline_rows is None:
        bitline_rows = rows
    if bitline_rows < rows:
        raise CalibrationError(
            f"bitline_rows ({bitline_rows}) cannot be smaller than the tile rows ({rows})"
        )
    c_nom = tech.cell_capacitance
    cjs = tech.storage_junction_cap
    cbl = tech.bitline_capacitance(bitline_rows)
    background = tech.plate_parasitic(rows * macro_cols)
    background += (macro_cols - 1) * _series(c_nom, cbl + cjs)
    background += (rows - 1) * macro_cols * _series(c_nom, cjs)
    return background


def _vgs(tech: TechnologyCard, cm: float, background: float, creft: float) -> float:
    x = cm + background
    return tech.vdd * x / (x + creft)


def max_feasible_depth(
    tech: TechnologyCard,
    rows: int,
    macro_cols: int,
    c_lo: float = 10.0 * fF,
    c_hi: float = 55.0 * fF,
    wl_ratio: float = 4.0,
    base: MeasurementDesign | None = None,
    bitline_rows: int | None = None,
) -> float:
    """Largest converter depth reachable for a macro geometry.

    As the macro grows, its background capacitance compresses the
    V_GS(C_m) transfer curve and with it the achievable current ratio
    between the range endpoints.  This function returns the peak of that
    ratio over all C_REF choices — the deepest converter the geometry
    supports.  The isolation ablation bench sweeps this against macro
    size; it is also what :func:`design_structure` checks before solving.
    """
    template = base if base is not None else MeasurementDesign()
    background = nominal_background(tech, rows, macro_cols, bitline_rows)
    sense_threshold = SenseChain(tech, template.inverter).threshold
    probe = Mosfet("PROBE", "d", "g", "s", tech.nmos, w=1e-6, l=1e-6 / wl_ratio)

    def step_ratio(creft: float) -> float:
        v_lo = _vgs(tech, c_lo, background, creft)
        v_hi = _vgs(tech, c_hi, background, creft)
        i_lo = probe.ids(sense_threshold, v_lo, 0.0)
        if i_lo <= 0.0:
            return math.inf
        return probe.ids(sense_threshold, v_hi, 0.0) / i_lo

    grid = np.geomspace(0.5 * fF, 50.0 * pF, 120)
    return float(max(step_ratio(float(c)) for c in grid))


def design_structure(
    tech: TechnologyCard,
    rows: int,
    macro_cols: int,
    c_lo: float = 10.0 * fF,
    c_hi: float = 55.0 * fF,
    num_steps: int = 20,
    wl_ratio: float = 4.0,
    base: MeasurementDesign | None = None,
    bitline_rows: int | None = None,
    enforce_slew: bool = True,
) -> MeasurementStructure:
    """Size a structure for a macro geometry and capacitance range.

    Parameters
    ----------
    tech:
        Technology card the structure is fabricated in.
    rows, macro_cols:
        Geometry of the macro-cell the structure serves.
    c_lo, c_hi:
        Measurement range endpoints, farads (paper: 10 fF and 55 fF).
    num_steps:
        Converter depth (paper: 20).
    wl_ratio:
        W/L of the REF transistor; fixes how the required C_REF area
        splits into width and length.
    base:
        Optional design to inherit ancillary values (switch sizes,
        parasitics, phase timing) from.
    bitline_rows:
        Full array height the bitlines span when the macro is a tile
        (defaults to ``rows``).
    enforce_slew:
        Large-background geometries solve to DAC steps too small to slew
        the REF drain within the paper's 0.5 ns step time.  When True
        (default) the phase clock is stretched just enough to keep the
        converter slew-safe; when False the paper's 10 ns phases are kept
        verbatim and the returned structure may report
        ``is_slew_safe == False``.

    Returns a ready :class:`~repro.measure.structure.MeasurementStructure`.
    """
    if c_lo <= 0 or c_hi <= c_lo:
        raise CalibrationError(f"need 0 < c_lo < c_hi, got c_lo={c_lo}, c_hi={c_hi}")
    if num_steps < 2:
        raise CalibrationError(f"num_steps must be >= 2, got {num_steps}")
    template = base if base is not None else MeasurementDesign()
    background = nominal_background(tech, rows, macro_cols, bitline_rows)
    sense_threshold = SenseChain(tech, template.inverter).threshold

    # Probe device for current *ratios* (geometry cancels).
    probe = Mosfet("PROBE", "d", "g", "s", tech.nmos, w=1e-6, l=1e-6 / wl_ratio)

    def step_ratio(creft: float) -> float:
        """I(c_hi)/I(c_lo) for a candidate total reference capacitance."""
        v_lo = _vgs(tech, c_lo, background, creft)
        v_hi = _vgs(tech, c_hi, background, creft)
        i_lo = probe.ids(sense_threshold, v_lo, 0.0)
        i_hi = probe.ids(sense_threshold, v_hi, 0.0)
        if i_lo <= 0.0:
            return math.inf
        return i_hi / i_lo

    # The ratio is single-peaked in creft: it rises as V_GS(c_lo) falls
    # toward (and below) the REF threshold — I(c_lo) collapses
    # exponentially — and eventually falls back toward 1 once *both*
    # endpoints are deep in subthreshold and their V_GS split shrinks.
    # Locate the peak on a log grid, then bisect the rising flank, which
    # keeps V_GS(c_hi) as high (and ΔI as robust) as possible.
    grid = np.geomspace(0.5 * fF, 50.0 * pF, 120)
    ratios = np.array([step_ratio(float(c)) for c in grid])
    peak = int(np.argmax(ratios))
    if ratios[peak] < num_steps:
        raise CalibrationError(
            f"cannot span {num_steps} steps over "
            f"[{c_lo / fF:.1f}, {c_hi / fF:.1f}] fF for macro {rows}x{macro_cols}: "
            f"best achievable depth is {ratios[peak]:.1f} steps"
        )
    if ratios[0] > num_steps:
        raise CalibrationError(
            "requested range already exceeds the converter depth at "
            "minimal C_REF; reduce c_hi or increase num_steps"
        )
    lo_c = float(grid[np.nonzero(ratios[: peak + 1] <= num_steps)[0][-1]])
    hi_c = float(grid[peak])
    for _ in range(90):
        mid = math.sqrt(lo_c * hi_c)  # geometric bisection over decades
        if step_ratio(mid) < num_steps:
            lo_c = mid
        else:
            hi_c = mid
    creft = math.sqrt(lo_c * hi_c)

    c_ref = creft - template.gate_parasitic
    if c_ref <= 0:
        raise CalibrationError(
            f"solved C_REF_total {creft / fF:.2f} fF is smaller than the "
            f"gate parasitic {template.gate_parasitic / fF:.2f} fF"
        )
    area = c_ref / tech.nmos.cox  # W·L
    l_ref = math.sqrt(area / wl_ratio)
    w_ref = wl_ratio * l_ref

    ref = Mosfet("REF", "d", "g", "s", tech.nmos, w=w_ref, l=l_ref)
    v_hi = _vgs(tech, c_hi, background, creft)
    i_hi = ref.ids(sense_threshold, v_hi, 0.0)
    delta_i = i_hi / num_steps
    if delta_i <= 0:
        raise CalibrationError("solved a non-positive DAC step; range infeasible")

    from dataclasses import replace

    design = replace(
        template,
        w_ref=w_ref,
        l_ref=l_ref,
        delta_i=delta_i,
        num_steps=num_steps,
    )
    structure = MeasurementStructure(tech, design)
    if enforce_slew and not structure.is_slew_safe:
        stretch = structure.min_detectable_step / delta_i
        design = replace(design, phase_duration=design.phase_duration * stretch * 1.05)
        structure = MeasurementStructure(tech, design)
    return structure
