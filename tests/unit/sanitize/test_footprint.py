"""Write-footprint sanitizer: FootprintLog semantics and CCY101/102 rules."""

import numpy as np
import pytest

from repro.errors import SanitizeError
from repro.sanitize import FootprintLog, WriteInterval, check_footprints


def _covered_log():
    """Two disjoint tasks exactly tiling a 4x4 plane."""
    log = FootprintLog((4, 4))
    log.record("macro[0]", 0, 2, 0, 4)
    log.record("macro[1]", 2, 4, 0, 4)
    return log


def test_clean_log_passes_both_rules():
    report = check_footprints(_covered_log())
    assert report.ok
    assert len(report) == 0


def test_record_validates_bounds():
    log = FootprintLog((4, 4))
    with pytest.raises(SanitizeError, match="outside"):
        log.record("macro[0]", 0, 5, 0, 4)
    with pytest.raises(SanitizeError, match="outside"):
        log.record("macro[0]", 2, 1, 0, 4)  # inverted rows
    with pytest.raises(SanitizeError, match="outside"):
        log.record("macro[0]", 0, 4, -1, 4)


def test_overlap_between_distinct_tasks_is_ccy101():
    log = _covered_log()
    log.record("macro[2]", 1, 3, 1, 3)  # straddles both halves
    report = check_footprints(log)
    assert not report.ok
    codes = [d.code for d in report.errors]
    assert codes.count("CCY101") == 2  # macro[2] vs each original task
    d = report.errors[0]
    assert "disjointness" in d.message
    assert log.overlap_cells() == 4


def test_same_task_retry_is_legal():
    log = _covered_log()
    # A retried task rewriting its own rectangle is crash recovery,
    # not a race.
    log.record("macro[0]", 0, 2, 0, 4, attempt=1)
    report = check_footprints(log)
    assert report.ok
    assert log.overlap_cells() == 0


def test_coverage_gap_is_ccy102():
    log = FootprintLog((4, 4))
    log.record("macro[0]", 0, 2, 0, 4)  # bottom half never written
    report = check_footprints(log)
    assert not report.ok
    gap = [d for d in report.errors if d.code == "CCY102"]
    assert len(gap) == 1
    assert "8 cell(s) were never written" in gap[0].message
    assert log.gap_cells() == 8


def test_empty_log_reports_total_gap():
    report = check_footprints(FootprintLog((4, 4)))
    assert not report.ok
    assert "no write intervals were recorded" in report.errors[0].message


def test_count_plane_counts_distinct_tasks():
    log = _covered_log()
    log.record("macro[0]", 0, 2, 0, 4, attempt=1)  # same-task repeat
    count = log.count_plane()
    assert count.max() == 1
    log.record("macro[9]", 0, 1, 0, 1)
    assert log.count_plane()[0, 0] == 2


def test_interval_cells_and_to_dict():
    iv = WriteInterval("slab[0:2]", 0, 2, 0, 4, attempt=1, source="worker")
    assert iv.cells == 8
    d = iv.to_dict()
    assert d["task"] == "slab[0:2]"
    assert d["rows"] == [0, 2]
    assert d["attempt"] == 1

    log = _covered_log()
    payload = log.to_dict()
    assert payload["shape"] == [4, 4]
    assert len(payload["intervals"]) == 2
    assert payload["overlap_cells"] == 0
    assert payload["gap_cells"] == 0


def test_rules_reject_non_log_subject():
    with pytest.raises(SanitizeError, match="FootprintLog"):
        check_footprints("not a log")  # type: ignore[arg-type]


def test_sample_coordinates_are_capped():
    log = FootprintLog((8, 8))
    log.record("a", 0, 8, 0, 8)
    log.record("b", 0, 8, 0, 8)
    report = check_footprints(log)
    overlap = next(d for d in report.errors if d.code == "CCY101")
    assert "..." in overlap.message  # >4 sample cells elided
    assert np.count_nonzero(log.count_plane() > 1) == 64
