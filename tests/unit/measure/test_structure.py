"""Measurement structure design constants and static conversion."""

import pytest

from repro.errors import MeasurementError
from repro.measure.structure import MeasurementDesign, MeasurementStructure
from repro.units import fF, ns, uA


class TestDesignValidation:
    def test_defaults_are_consistent(self):
        d = MeasurementDesign()
        assert d.num_steps == 20
        assert d.phase_duration == pytest.approx(10 * ns)
        assert d.step_duration == pytest.approx(0.5 * ns)
        assert d.flow_duration == pytest.approx(50 * ns)

    def test_rejects_bad_geometry(self):
        with pytest.raises(MeasurementError):
            MeasurementDesign(w_ref=0.0)

    def test_rejects_bad_delta_i(self):
        with pytest.raises(MeasurementError):
            MeasurementDesign(delta_i=0.0)

    def test_rejects_shallow_converter(self):
        with pytest.raises(MeasurementError):
            MeasurementDesign(num_steps=1)

    def test_with_delta_i(self):
        d = MeasurementDesign().with_delta_i(7 * uA)
        assert d.delta_i == pytest.approx(7 * uA)

    def test_c_ref_from_geometry(self, tech):
        d = MeasurementDesign(w_ref=4e-6, l_ref=1e-6)
        assert d.c_ref(tech) == pytest.approx(tech.nmos.gate_capacitance(4e-6, 1e-6))


class TestStaticConversion:
    def test_code_zero_below_threshold(self, tech):
        s = MeasurementStructure(tech)
        assert s.code_for_vgs(0.0) == 0
        assert s.code_for_vgs(tech.nmos.vth0 - 0.05) == 0

    def test_code_monotone_in_vgs(self, tech):
        s = MeasurementStructure(tech)
        codes = [s.code_for_vgs(v) for v in (0.5, 0.7, 0.9, 1.1, 1.3)]
        assert all(a <= b for a, b in zip(codes, codes[1:]))

    def test_code_saturates_at_num_steps(self, tech):
        s = MeasurementStructure(tech)
        assert s.code_for_vgs(5.0) == s.design.num_steps

    def test_code_boundary_is_consistent_with_conversion(self, tech):
        s = MeasurementStructure(tech)
        for code in (1, 5, 10, 19):
            v = s.vgs_for_code_boundary(code)
            assert s.code_for_vgs(v - 1e-4) == code - 1
            assert s.code_for_vgs(v + 1e-4) == code

    def test_boundary_bounds_checked(self, tech):
        s = MeasurementStructure(tech)
        with pytest.raises(MeasurementError):
            s.vgs_for_code_boundary(0)
        with pytest.raises(MeasurementError):
            s.vgs_for_code_boundary(s.design.num_steps + 1)

    def test_oversized_delta_i_detected(self, tech):
        s = MeasurementStructure(tech, MeasurementDesign(delta_i=1.0))  # 1 A steps
        with pytest.raises(MeasurementError):
            s.vgs_for_code_boundary(s.design.num_steps)

    def test_ref_sink_current_monotone(self, tech):
        s = MeasurementStructure(tech)
        i1 = s.ref_sink_current(0.7)
        i2 = s.ref_sink_current(1.0)
        assert 0 < i1 < i2

    def test_subthreshold_leak_is_negligible(self, tech, structure_2x2):
        assert structure_2x2.subthreshold_leak_ok()


class TestSlewSafety:
    def test_min_detectable_step_formula(self, tech):
        s = MeasurementStructure(tech)
        expected = s.design.drain_parasitic * s.sense.threshold / s.design.step_duration
        assert s.min_detectable_step == pytest.approx(expected)

    def test_default_design_is_slew_safe(self, tech):
        assert MeasurementStructure(tech).is_slew_safe

    def test_tiny_delta_i_flags_unsafe(self, tech):
        s = MeasurementStructure(tech, MeasurementDesign(delta_i=0.01 * uA))
        assert not s.is_slew_safe

    def test_c_ref_total_includes_parasitic(self, tech):
        s = MeasurementStructure(tech)
        assert s.c_ref_total == pytest.approx(s.c_ref + s.design.gate_parasitic)
