"""SI unit helpers and physical constants.

The whole library works internally in **base SI units** (volts, amperes,
farads, seconds, metres).  These helpers exist so that code reads in the
units the paper uses — femtofarads, nanoseconds, microamperes — without
scattering magic ``1e-15`` factors around:

>>> from repro.units import fF, ns, uA
>>> 30 * fF
3e-14
>>> from repro.units import to_fF
>>> to_fF(3e-14)
30.0

Only multiplicative scale factors live here; device physics constants used
by the MOSFET model live with the model parameters in :mod:`repro.tech`.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Scale factors: multiply a number in the named unit to get base SI.
# ---------------------------------------------------------------------------

#: femtofarad in farads
fF = 1e-15
#: picofarad in farads
pF = 1e-12
#: attofarad in farads
aF = 1e-18

#: nanosecond in seconds
ns = 1e-9
#: picosecond in seconds
ps = 1e-12
#: microsecond in seconds
us = 1e-6
#: millisecond in seconds
ms = 1e-3

#: microampere in amperes
uA = 1e-6
#: nanoampere in amperes
nA = 1e-9
#: picoampere in amperes
pA = 1e-12
#: femtoampere in amperes
fA = 1e-15
#: milliampere in amperes
mA = 1e-3

#: millivolt in volts
mV = 1e-3

#: micrometre in metres
um = 1e-6
#: nanometre in metres
nm = 1e-9

#: kilo-ohm in ohms
kOhm = 1e3
#: mega-ohm in ohms
MOhm = 1e6
#: giga-ohm in ohms
GOhm = 1e9


# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: vacuum permittivity, F/m
EPS0 = 8.8541878128e-12
#: relative permittivity of SiO2
EPS_SIO2 = 3.9
#: Boltzmann constant, J/K
BOLTZMANN = 1.380649e-23
#: elementary charge, C
Q_ELECTRON = 1.602176634e-19
#: default simulation temperature, kelvin (27 C, SPICE convention)
T_NOMINAL = 300.15


def thermal_voltage(temperature_k: float = T_NOMINAL) -> float:
    """Return kT/q in volts at the given temperature in kelvin."""
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k} K")
    return BOLTZMANN * temperature_k / Q_ELECTRON


# ---------------------------------------------------------------------------
# Converters back to display units (pure reciprocals, kept for readability)
# ---------------------------------------------------------------------------

def to_fF(farads: float) -> float:
    """Convert a capacitance in farads to femtofarads."""
    return farads / fF


def to_pF(farads: float) -> float:
    """Convert a capacitance in farads to picofarads."""
    return farads / pF


def to_ns(seconds: float) -> float:
    """Convert a time in seconds to nanoseconds."""
    return seconds / ns


def to_uA(amps: float) -> float:
    """Convert a current in amperes to microamperes."""
    return amps / uA


def to_mV(volts: float) -> float:
    """Convert a voltage in volts to millivolts."""
    return volts / mV
