"""Measurement result semantics."""

import pytest

from repro.errors import MeasurementError
from repro.measure.result import CodeMeaning, FlowTrace, MeasurementResult


def test_code_bounds_enforced():
    with pytest.raises(MeasurementError):
        MeasurementResult(code=21, num_steps=20)
    with pytest.raises(MeasurementError):
        MeasurementResult(code=-1, num_steps=20)


def test_code_zero_is_under_range():
    r = MeasurementResult(code=0)
    assert r.meaning is CodeMeaning.UNDER_RANGE
    assert not r.in_range


def test_full_scale_is_over_range():
    r = MeasurementResult(code=20, num_steps=20)
    assert r.meaning is CodeMeaning.OVER_RANGE
    assert not r.in_range


@pytest.mark.parametrize("code", [1, 10, 19])
def test_intermediate_codes_in_range(code):
    r = MeasurementResult(code=code, num_steps=20)
    assert r.meaning is CodeMeaning.IN_RANGE
    assert r.in_range


def test_result_carries_metadata():
    r = MeasurementResult(code=7, vgs=0.81, flip_time=42e-9, tier="transient",
                          address=(3, 5))
    assert r.vgs == 0.81
    assert r.flip_time == 42e-9
    assert r.address == (3, 5)


def test_flow_trace_records():
    trace = FlowTrace()
    trace.record("charge", 1.8, 0.0)
    trace.record("share", 0.84, 0.84)
    assert trace.plate == {"charge": 1.8, "share": 0.84}
    assert trace.gate["share"] == 0.84
