"""Signature categorization and gradient fitting."""

import numpy as np
import pytest

from repro.bitmap.signatures import (
    SignatureKind,
    categorize,
    fit_gradient,
    signature_counts,
)
from repro.errors import DiagnosisError
from repro.units import fF


def _mask(shape, cells):
    m = np.zeros(shape, dtype=bool)
    for r, c in cells:
        m[r, c] = True
    return m


class TestCategorize:
    def test_single_cell(self):
        sigs = categorize(_mask((8, 8), [(3, 3)]))
        assert len(sigs) == 1
        assert sigs[0].kind is SignatureKind.SINGLE_CELL

    def test_horizontal_pair_is_bridge_signature(self):
        sigs = categorize(_mask((8, 8), [(2, 3), (2, 4)]))
        assert sigs[0].kind is SignatureKind.PAIRED_CELLS

    def test_vertical_pair_is_cluster_not_pair(self):
        sigs = categorize(_mask((8, 8), [(2, 3), (3, 3)]))
        assert sigs[0].kind is SignatureKind.CLUSTER

    def test_full_row(self):
        sigs = categorize(_mask((8, 8), [(5, c) for c in range(8)]))
        assert sigs[0].kind is SignatureKind.ROW

    def test_partial_row_above_line_fraction(self):
        sigs = categorize(_mask((8, 8), [(5, c) for c in range(5)]))
        assert sigs[0].kind is SignatureKind.ROW  # 5/8 > 0.6

    def test_partial_row_below_line_fraction(self):
        sigs = categorize(_mask((8, 8), [(5, c) for c in range(3)]))
        assert sigs[0].kind is SignatureKind.CLUSTER

    def test_full_column(self):
        sigs = categorize(_mask((8, 8), [(r, 2) for r in range(8)]))
        assert sigs[0].kind is SignatureKind.COLUMN

    def test_blob_is_cluster(self):
        cells = [(r, c) for r in range(2, 5) for c in range(2, 5)]
        sigs = categorize(_mask((8, 8), cells))
        assert sigs[0].kind is SignatureKind.CLUSTER

    def test_mixed_scene(self):
        cells = (
            [(0, c) for c in range(8)]  # row
            + [(4, 4)]  # single
            + [(6, 1), (6, 2)]  # pair
        )
        sigs = categorize(_mask((8, 8), cells))
        counts = signature_counts(sigs)
        assert counts[SignatureKind.ROW] == 1
        assert counts[SignatureKind.SINGLE_CELL] == 1
        assert counts[SignatureKind.PAIRED_CELLS] == 1

    def test_validation(self):
        with pytest.raises(DiagnosisError):
            categorize(np.zeros((2, 2)))
        with pytest.raises(DiagnosisError):
            categorize(np.zeros((2, 2), dtype=bool), line_fraction=0.0)

    def test_largest_first_ordering(self):
        cells = [(0, 0)] + [(3, c) for c in range(6)]
        sigs = categorize(_mask((8, 8), cells))
        assert sigs[0].size > sigs[1].size


class TestGradient:
    def test_recovers_planted_plane(self):
        rows, cols = 16, 16
        rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        est = 30 * fF + 0.1 * fF * (rr - 7.5) + 0.05 * fF * (cc - 7.5)
        g = fit_gradient(est)
        assert g.mean == pytest.approx(30 * fF, rel=1e-6)
        assert g.row_slope == pytest.approx(0.1 * fF, rel=1e-6)
        assert g.col_slope == pytest.approx(0.05 * fF, rel=1e-6)
        assert g.residual_sigma < 1e-20
        assert g.significant

    def test_noisy_flat_map_is_not_significant(self):
        rng = np.random.default_rng(0)
        est = 30 * fF + rng.normal(0, 1 * fF, (16, 16))
        assert not fit_gradient(est).significant

    def test_nan_cells_are_ignored(self):
        rr = np.arange(8)[:, None] * np.ones((1, 8))
        est = 30 * fF + 0.2 * fF * rr
        est[3, 3] = np.nan
        g = fit_gradient(est)
        assert g.row_slope == pytest.approx(0.2 * fF, rel=1e-6)

    def test_extent_formula(self):
        rr = np.arange(10)[:, None] * np.ones((1, 4))
        g = fit_gradient(rr * 1 * fF)
        assert g.extent == pytest.approx(9 * fF, rel=1e-6)

    def test_too_few_cells_rejected(self):
        est = np.full((2, 2), np.nan)
        est[0, 0] = 1.0
        with pytest.raises(DiagnosisError):
            fit_gradient(est)

    def test_requires_2d(self):
        with pytest.raises(DiagnosisError):
            fit_gradient(np.zeros(5))
