"""The analog bitmap: per-cell capacitance codes and estimates.

Wraps a :class:`~repro.measure.scan.ScanResult` together with the abacus
that calibrates it, exposing the per-cell capacitance estimates, range
masks, population statistics and outlier queries that the diagnosis
layer builds on.
"""

from __future__ import annotations

import numpy as np

from repro.calibration.abacus import Abacus
from repro.calibration.window import SpecificationWindow, SpecVerdict
from repro.errors import DiagnosisError
from repro.measure.scan import ScanResult


class AnalogBitmap:
    """Calibrated analog bitmap of one array scan.

    Parameters
    ----------
    scan:
        Raw scan result (codes per cell).
    abacus:
        The calibration map matching the scan's structure design and
        macro geometry.
    """

    def __init__(self, scan: ScanResult, abacus: Abacus) -> None:
        if scan.num_steps != abacus.num_steps:
            raise DiagnosisError(
                f"scan depth {scan.num_steps} != abacus depth {abacus.num_steps}"
            )
        self.scan = scan
        self.abacus = abacus
        self.codes = scan.codes
        self.estimates = abacus.estimate_matrix(scan.codes)

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the bitmap."""
        return self.scan.shape

    @property
    def under_range(self) -> np.ndarray:
        """Cells at code 0 (ambiguous: below floor / short / open)."""
        return self.codes == 0

    @property
    def over_range(self) -> np.ndarray:
        """Cells at the full-scale code."""
        return self.codes == self.scan.num_steps

    @property
    def in_range(self) -> np.ndarray:
        """Cells whose code inverts to a capacitance estimate."""
        return ~(self.under_range | self.over_range)

    def out_of_spec(self, window: SpecificationWindow) -> np.ndarray:
        """Boolean mask of cells failing the given specification window."""
        verdicts = self.classify(window)
        return verdicts != SpecVerdict.PASS.value

    def classify(self, window: SpecificationWindow) -> np.ndarray:
        """Per-cell :class:`SpecVerdict` values (as strings, vectorized)."""
        out = np.empty(self.shape, dtype="<U16")
        for r in range(self.shape[0]):
            for c in range(self.shape[1]):
                out[r, c] = window.classify(int(self.codes[r, c])).value
        return out

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def mean_capacitance(self) -> float:
        """Mean in-range capacitance estimate, farads."""
        values = self.estimates[self.in_range]
        if values.size == 0:
            raise DiagnosisError("no in-range cells to average")
        return float(values.mean())

    def std_capacitance(self) -> float:
        """Standard deviation of in-range estimates, farads."""
        values = self.estimates[self.in_range]
        if values.size == 0:
            raise DiagnosisError("no in-range cells")
        return float(values.std())

    def code_histogram(self) -> dict[int, int]:
        """Cells per code value, dense over the full converter scale."""
        return self.scan.code_histogram()

    def outliers(self, n_sigma: float = 3.0) -> np.ndarray:
        """In-range cells deviating more than ``n_sigma`` from the mean.

        Out-of-range cells (codes 0 / full scale) are *also* flagged —
        they are outliers by definition.
        """
        if n_sigma <= 0:
            raise DiagnosisError(f"n_sigma must be positive, got {n_sigma}")
        mask = ~self.in_range
        values = self.estimates[self.in_range]
        if values.size >= 2 and values.std() > 0:
            mean, std = values.mean(), values.std()
            with np.errstate(invalid="ignore"):
                deviant = np.abs(self.estimates - mean) > n_sigma * std
            mask = mask | np.nan_to_num(deviant, nan=False)
        return mask

    def row_profile(self) -> np.ndarray:
        """Mean in-range estimate per row (NaN for all-out-of-range rows)."""
        with np.errstate(invalid="ignore"):
            masked = np.where(self.in_range, self.estimates, np.nan)
            return np.nanmean(masked, axis=1)

    def column_profile(self) -> np.ndarray:
        """Mean in-range estimate per column."""
        with np.errstate(invalid="ignore"):
            masked = np.where(self.in_range, self.estimates, np.nan)
            return np.nanmean(masked, axis=0)
