"""Property-based tests of the measurement flow and scan tiers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.scan import ArrayScanner
from repro.measure.sequencer import MeasurementSequencer
from repro.tech.parameters import default_technology
from repro.units import fF

_TECH = default_technology()
_STRUCTURE_2X2 = design_structure(_TECH, 2, 2)
_STRUCTURE_4X2 = design_structure(_TECH, 4, 2)


@given(cm=st.floats(min_value=1.0, max_value=120.0))
@settings(max_examples=60, deadline=None)
def test_vgs_bounded_and_code_valid(cm):
    arr = EDRAMArray(2, 2, tech=_TECH)
    arr.cell(0, 0).capacitance = cm * fF
    result = MeasurementSequencer(arr.macro(0), _STRUCTURE_2X2).measure_charge(0, 0)
    assert 0.0 <= result.vgs < _TECH.vdd
    assert 0 <= result.code <= 20


@given(cm1=st.floats(5.0, 100.0), cm2=st.floats(5.0, 100.0))
@settings(max_examples=60, deadline=None)
def test_measurement_monotone_in_capacitance(cm1, cm2):
    if cm1 > cm2:
        cm1, cm2 = cm2, cm1

    def vgs_of(cm):
        arr = EDRAMArray(2, 2, tech=_TECH)
        arr.cell(0, 0).capacitance = cm * fF
        return MeasurementSequencer(arr.macro(0), _STRUCTURE_2X2).measure_charge(0, 0).vgs

    assert vgs_of(cm1) <= vgs_of(cm2) + 1e-12


@given(
    caps=st.lists(st.floats(5.0, 60.0), min_size=8, max_size=8),
    defect_idx=st.integers(0, 7),
    kind=st.sampled_from(
        [None, DefectKind.SHORT, DefectKind.OPEN, DefectKind.ACCESS_OPEN]
    ),
)
@settings(max_examples=40, deadline=None)
def test_closed_form_always_matches_engine(caps, defect_idx, kind):
    cap_map = np.array(caps).reshape(4, 2) * fF
    arr = EDRAMArray(4, 2, tech=_TECH, capacitance_map=cap_map)
    if kind is not None:
        arr.cell(defect_idx // 2, defect_idx % 2).apply_defect(CellDefect(kind))
    scanner = ArrayScanner(arr, _STRUCTURE_4X2)
    fast = scanner.scan()
    slow = scanner.scan(force_engine=True)
    assert np.allclose(fast.vgs, slow.vgs, atol=1e-9)
    assert np.array_equal(fast.codes, slow.codes)


@given(target=st.tuples(st.integers(0, 3), st.integers(0, 1)))
@settings(max_examples=20, deadline=None)
def test_measurement_independent_of_target_position_on_uniform_array(target):
    arr = EDRAMArray(4, 2, tech=_TECH)
    result = MeasurementSequencer(arr.macro(0), _STRUCTURE_4X2).measure_charge(*target)
    reference = MeasurementSequencer(arr.macro(0), _STRUCTURE_4X2).measure_charge(0, 0)
    assert abs(result.vgs - reference.vgs) < 1e-12
