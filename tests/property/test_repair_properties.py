"""Property-based tests of the repair planner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagnosis.repair import RepairPlanner

fail_sets = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=20
)
budgets = st.tuples(st.integers(0, 4), st.integers(0, 4))


def _mask(cells):
    m = np.zeros((8, 8), dtype=bool)
    for r, c in cells:
        m[r, c] = True
    return m


@given(cells=fail_sets, budget=budgets)
@settings(max_examples=200, deadline=None)
def test_plan_accounting_is_consistent(cells, budget):
    spare_rows, spare_cols = budget
    mask = _mask(cells)
    plan = RepairPlanner(spare_rows, spare_cols).plan(mask)
    # Budget respected.
    assert len(plan.spare_rows_used) <= spare_rows
    assert len(plan.spare_cols_used) <= spare_cols
    # No duplicate allocations.
    assert len(set(plan.spare_rows_used)) == len(plan.spare_rows_used)
    assert len(set(plan.spare_cols_used)) == len(plan.spare_cols_used)
    # Every failing cell is either covered or reported uncovered.
    for r, c in zip(*np.nonzero(mask)):
        covered = plan.covers(int(r), int(c))
        reported = (int(r), int(c)) in plan.uncovered
        assert covered != reported
    # Success flag is truthful.
    assert plan.success == (len(plan.uncovered) == 0)


@given(cells=fail_sets)
@settings(max_examples=100, deadline=None)
def test_generous_budget_always_succeeds(cells):
    mask = _mask(cells)
    distinct_rows = len({r for r, _ in cells})
    plan = RepairPlanner(distinct_rows, 0).plan(mask)
    assert plan.success


@given(cells=fail_sets, budget=budgets)
@settings(max_examples=100, deadline=None)
def test_plan_never_mutates_input(cells, budget):
    mask = _mask(cells)
    original = mask.copy()
    RepairPlanner(*budget).plan(mask)
    assert np.array_equal(mask, original)
