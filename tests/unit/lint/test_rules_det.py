"""Determinism rules (DET001-004): wall clocks, RNG, unordered reductions."""

import pytest

from repro.lint import lint_source


@pytest.fixture()
def measure_dir(tmp_path):
    """A directory whose path marks files as measurement-path modules."""
    d = tmp_path / "measure"
    d.mkdir()
    return d


def _write(directory, name, text):
    path = directory / name
    path.write_text(text, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# DET001 wallclock-in-measurement-path
# ----------------------------------------------------------------------


def test_det001_flags_time_time_in_measurement_module(measure_dir):
    body = "import time\ndef stamp():\n    return time.time()\n"
    report = lint_source([_write(measure_dir, "mod.py", body)], only=("DET001",))
    assert report.codes() == {"DET001"}
    assert "wall clock" in next(iter(report)).message


def test_det001_flags_datetime_now(measure_dir):
    body = (
        "from datetime import datetime\n"
        "def stamp():\n"
        "    return datetime.now()\n"
    )
    report = lint_source([_write(measure_dir, "mod.py", body)], only=("DET001",))
    assert report.codes() == {"DET001"}


def test_det001_perf_counter_is_fine(measure_dir):
    body = (
        "from time import perf_counter\n"
        "import time\n"
        "def took():\n"
        "    return time.perf_counter() - time.monotonic()\n"
    )
    assert len(lint_source([_write(measure_dir, "mod.py", body)],
                           only=("DET001",))) == 0


def test_det001_non_measurement_paths_exempt(tmp_path):
    body = "import time\ndef stamp():\n    return time.time()\n"
    assert len(lint_source([_write(tmp_path, "ledger.py", body)],
                           only=("DET001",))) == 0


def test_det001_pragma_suppresses(measure_dir):
    body = (
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # lint: allow-wallclock\n"
    )
    assert len(lint_source([_write(measure_dir, "mod.py", body)],
                           only=("DET001",))) == 0


# ----------------------------------------------------------------------
# DET002 unseeded-rng
# ----------------------------------------------------------------------


def test_det002_flags_unseeded_default_rng(tmp_path):
    body = "import numpy as np\ndef noise():\n    return np.random.default_rng()\n"
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET002",))
    assert report.codes() == {"DET002"}


def test_det002_seeded_default_rng_is_clean(tmp_path):
    body = (
        "import numpy as np\n"
        "def noise(seed):\n"
        "    a = np.random.default_rng(seed)\n"
        "    b = np.random.default_rng(seed=42)\n"
        "    return a, b\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET002",))) == 0


def test_det002_flags_legacy_numpy_global_draws(tmp_path):
    body = "import numpy as np\ndef noise(n):\n    return np.random.rand(n)\n"
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET002",))
    assert report.codes() == {"DET002"}


def test_det002_flags_stdlib_random_module_draws(tmp_path):
    body = "import random\ndef pick(xs):\n    return random.choice(xs)\n"
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET002",))
    assert report.codes() == {"DET002"}


def test_det002_pragma_and_test_files_suppress(tmp_path):
    body = (
        "import numpy as np\n"
        "def noise():\n"
        "    return np.random.default_rng()  # lint: allow-unseeded-rng\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET002",))) == 0
    bare = "import random\ndef test_x():\n    return random.random()\n"
    assert len(lint_source([_write(tmp_path, "test_mod.py", bare)],
                           only=("DET002",))) == 0


# ----------------------------------------------------------------------
# DET003 unordered-reduction
# ----------------------------------------------------------------------


def test_det003_flags_sum_over_set_call(tmp_path):
    body = "def total(xs):\n    return sum(set(xs))\n"
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET003",))
    assert report.codes() == {"DET003"}


def test_det003_flags_loop_over_set_accumulating(tmp_path):
    body = (
        "def total(xs):\n"
        "    acc = 0.0\n"
        "    for x in {v for v in xs}:\n"
        "        acc += x\n"
        "    return acc\n"
    )
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET003",))
    assert report.codes() == {"DET003"}


def test_det003_sorted_reduction_is_clean(tmp_path):
    body = (
        "def total(xs):\n"
        "    acc = 0.0\n"
        "    for x in sorted(set(xs)):\n"
        "        acc += x\n"
        "    return acc + sum(sorted(set(xs)))\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET003",))) == 0


def test_det003_pragma_suppresses(tmp_path):
    body = "def total(xs):\n    return sum(set(xs))  # lint: allow-unordered-reduction\n"
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET003",))) == 0


# ----------------------------------------------------------------------
# DET004 completion-order-accumulation
# ----------------------------------------------------------------------


def test_det004_flags_float_accumulation_in_on_result_callback(tmp_path):
    body = (
        "total = 0.0\n"
        "def _land(payload):\n"
        "    global total\n"
        "    total += payload[1]\n"
        "def drive(pool, tasks):\n"
        "    pool.run(tasks, on_result=_land)\n"
    )
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET004",))
    assert report.codes() == {"DET004"}
    assert "completion" in next(iter(report)).message


def test_det004_flags_loop_over_imap_unordered(tmp_path):
    body = (
        "def drive(pool, tasks):\n"
        "    acc = 0.0\n"
        "    for seconds in pool.imap_unordered(f, tasks):\n"
        "        acc += seconds\n"
        "    return acc\n"
        "def f(t):\n"
        "    return t\n"
    )
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("DET004",))
    assert report.codes() == {"DET004"}


def test_det004_integer_counter_is_clean(tmp_path):
    body = (
        "def drive(pool, tasks):\n"
        "    n = 0\n"
        "    for _ in pool.imap_unordered(f, tasks):\n"
        "        n += 1\n"
        "    return n\n"
        "def f(t):\n"
        "    return t\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET004",))) == 0


def test_det004_collect_then_sort_is_clean(tmp_path):
    body = (
        "def drive(pool, tasks):\n"
        "    out = []\n"
        "    for r in pool.imap_unordered(f, tasks):\n"
        "        out.append(r)\n"
        "    return sum(sorted(out))\n"
        "def f(t):\n"
        "    return t\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET004",))) == 0


def test_det004_pragma_suppresses(tmp_path):
    body = (
        "def drive(pool, tasks):\n"
        "    acc = 0.0\n"
        "    for s in pool.imap_unordered(f, tasks):\n"
        "        acc += s  # lint: allow-order-dependent\n"
        "    return acc\n"
        "def f(t):\n"
        "    return t\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("DET004",))) == 0
