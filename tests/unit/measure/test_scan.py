"""Array scanner: closed form, tier fallback, assembly."""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.edram.variation_map import mismatch_map, uniform_map, compose_maps
from repro.errors import MeasurementError
from repro.measure.scan import ArrayScanner, _series
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF


def test_series_helper():
    assert _series(30 * fF, 30 * fF) == pytest.approx(15 * fF)
    assert _series(0.0, 30 * fF) == 0.0
    assert float(_series(np.array([10 * fF]), 0.0)[0]) == 0.0


class TestClosedFormAgainstEngine:
    def test_uniform_macro(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        scanner = ArrayScanner(arr, structure_2x2)
        vgs_cf = scanner.closed_form_vgs(arr.macro(0))
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        for r in range(2):
            for c in range(2):
                assert vgs_cf[r, c] == pytest.approx(
                    seq.measure_charge(r, c).vgs, abs=1e-12
                )

    @pytest.mark.parametrize(
        "kind,factor",
        [
            (DefectKind.SHORT, 1.0),
            (DefectKind.OPEN, 1.0),
            (DefectKind.ACCESS_OPEN, 1.0),
            (DefectKind.LOW_CAP, 0.5),
            (DefectKind.HIGH_CAP, 1.4),
        ],
    )
    def test_defective_macro(self, tech, structure_8x2, kind, factor):
        arr = EDRAMArray(8, 2, tech=tech)
        arr.cell(3, 1).apply_defect(CellDefect(kind, factor))
        scanner = ArrayScanner(arr, structure_8x2)
        vgs_cf = scanner.closed_form_vgs(arr.macro(0))
        seq = MeasurementSequencer(arr.macro(0), structure_8x2)
        for r in range(8):
            for c in range(2):
                assert vgs_cf[r, c] == pytest.approx(
                    seq.measure_charge(r, c).vgs, abs=1e-9
                ), f"mismatch at ({r},{c}) with {kind}"

    def test_randomized_capacitance_map(self, tech, structure_8x2):
        cap = compose_maps(
            uniform_map((8, 2), 30 * fF), mismatch_map((8, 2), 2 * fF, seed=11)
        )
        arr = EDRAMArray(8, 2, tech=tech, capacitance_map=cap)
        scanner = ArrayScanner(arr, structure_8x2)
        vgs_cf = scanner.closed_form_vgs(arr.macro(0))
        seq = MeasurementSequencer(arr.macro(0), structure_8x2)
        for r, c in ((0, 0), (3, 1), (7, 0)):
            assert vgs_cf[r, c] == pytest.approx(
                seq.measure_charge(r, c).vgs, abs=1e-9
            )


class TestVectorizedConversion:
    def test_codes_match_scalar_conversion(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        vgs = np.linspace(0.0, 1.8, 50)
        vec = scanner.codes_for_vgs(vgs)
        scalar = [structure_2x2.code_for_vgs(float(v)) for v in vgs]
        assert list(vec) == scalar


class TestScanAssembly:
    def test_tiled_scan_covers_all_cells(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        arr.cell(12, 3).capacitance = 45 * fF
        scanner = ArrayScanner(arr, structure_8x2)
        result = scanner.scan()
        assert result.codes.shape == (16, 4)
        # The modified cell must stand out in its own tile position.
        assert result.codes[12, 3] > result.codes[12, 2]

    def test_bridge_macro_falls_back_to_engine(self, tech, structure_8x2):
        arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
        arr.cell(2, 0).apply_defect(CellDefect(DefectKind.BRIDGE))
        scanner = ArrayScanner(arr, structure_8x2)
        result = scanner.scan()
        assert set(result.tiers[:, 0:2].ravel()) == {"e"}
        assert set(result.tiers[:, 2:4].ravel()) == {"c"}

    def test_cross_macro_bridge_forces_engine_on_both(self, tech, structure_8x2):
        arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
        arr.cell(2, 1).apply_defect(CellDefect(DefectKind.BRIDGE))  # 1 -> 2
        result = ArrayScanner(arr, structure_8x2).scan()
        assert set(result.tiers.ravel()) == {"e"}

    def test_force_engine_matches_closed_form(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        scanner = ArrayScanner(arr, structure_2x2)
        fast = scanner.scan()
        slow = scanner.scan(force_engine=True)
        assert np.array_equal(fast.codes, slow.codes)
        assert np.allclose(fast.vgs, slow.vgs, atol=1e-9)

    def test_code_histogram(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        result = ArrayScanner(arr, structure_2x2).scan()
        hist = result.code_histogram()
        assert sum(hist.values()) == 4
        # Dense over the full converter scale, zero-count codes included.
        assert sorted(hist) == list(range(result.num_steps + 1))


class TestMeasureCell:
    def test_charge_tier_by_global_address(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        scanner = ArrayScanner(arr, structure_8x2)
        result = scanner.measure_cell(10, 3, tier="charge")
        assert result.address == (10, 3)

    def test_unknown_tier_rejected(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        with pytest.raises(MeasurementError):
            scanner.measure_cell(0, 0, tier="psychic")


class TestScanDiff:
    def test_golden_die_subtraction(self, tech, structure_2x2):
        golden = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2).scan()
        shifted_arr = EDRAMArray(2, 2, tech=tech)
        for r in range(2):
            for c in range(2):
                shifted_arr.cell(r, c).capacitance = 36 * fF
        shifted = ArrayScanner(shifted_arr, structure_2x2).scan()
        delta = shifted.diff(golden)
        assert (delta > 0).all()

    def test_identical_scans_diff_to_zero(self, tech, structure_2x2):
        scan = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2).scan()
        assert (scan.diff(scan) == 0).all()

    def test_shape_and_depth_checked(self, tech, structure_2x2, structure_8x2):
        a = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2).scan()
        b = ArrayScanner(EDRAMArray(4, 2, tech=tech), structure_2x2).scan()
        with pytest.raises(MeasurementError):
            a.diff(b)
