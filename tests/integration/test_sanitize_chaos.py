"""Sanitize drills: the write-footprint contract under fire.

The acceptance scenario for the sanitizer: a parallel scan whose worker
is killed mid-macro (and respawned, and retried) must still produce a
footprint log whose rectangles are pairwise disjoint across distinct
tasks and cover the planes completely — retries rewrite their own
rectangles, they never trespass — with planes bit-exact against a
serial run.
"""

import numpy as np

from repro.edram.array import EDRAMArray
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.resilience import Fault, FaultPlan, RetryPolicy

GEOMETRY = dict(macro_rows=4, macro_cols=4)
RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, seed=0)


def _array():
    return EDRAMArray(8, 8, **GEOMETRY)


def _kill_fault():
    # Attempt 0 on macro 1 dies in every worker that tries it; the
    # retry (attempt 1) passes.
    return Fault("worker.scan_macro", kind="kill",
                 match={"macro": 1, "attempt": 0}, times=None)


def test_sanitized_chaos_scan_is_disjoint_covering_and_bit_exact():
    reference = ArrayScanner(_array()).scan(ScanConfig())

    result = ArrayScanner(_array()).scan(
        ScanConfig(
            jobs=2,
            sanitize=True,
            faults=FaultPlan([_kill_fault()]),
            retry=RETRY,
        )
    )
    # The kill really happened and the supervisor recovered from it.
    assert result.stats is not None
    assert result.stats.worker_respawns >= 1
    assert result.stats.macro_retries >= 1
    # The sanitizer audited every write and found the contract intact:
    # the retried macro rewrote its own rectangle, nothing overlapped,
    # nothing was left uncovered.
    report = result.sanitize_report
    assert report is not None
    assert report.ok, report.format_text()
    # And the planes survived the chaos bit-exact.
    assert np.array_equal(result.codes, reference.codes)
    assert np.array_equal(result.vgs, reference.vgs)


def test_sanitized_kernel_parallel_scan_is_clean():
    reference = ArrayScanner(_array()).scan(ScanConfig())
    result = ArrayScanner(_array()).scan(ScanConfig(jobs=2, sanitize=True))
    report = result.sanitize_report
    assert report is not None
    assert report.ok, report.format_text()
    assert np.array_equal(result.codes, reference.codes)


def test_sanitized_checkpoint_resume_covers_whole_plane(tmp_path):
    from repro.obs.ledger import RunLedger
    from repro.resilience import Checkpointer

    ledger = RunLedger(tmp_path)
    interrupt = Fault(
        "scan.macro_done", error=KeyboardInterrupt(), after=1, times=1
    )
    array = _array()
    try:
        ArrayScanner(array).scan(
            ScanConfig(
                checkpoint=Checkpointer(ledger),
                faults=FaultPlan([interrupt]),
            )
        )
    except KeyboardInterrupt:
        pass
    from repro.resilience import list_checkpoints

    (state,) = list_checkpoints(ledger)
    assert 0 < len(state.completed) < array.num_macros

    resumed = ArrayScanner(_array()).scan(
        ScanConfig(
            sanitize=True,
            checkpoint=Checkpointer(ledger, resume=state.run_id),
        )
    )
    # Checkpointed macros enter the footprint as checkpoint[i] tasks, so
    # coverage holds across the resume seam without false overlaps.
    report = resumed.sanitize_report
    assert report is not None
    assert report.ok, report.format_text()
    reference = ArrayScanner(_array()).scan(ScanConfig())
    assert np.array_equal(resumed.codes, reference.codes)
