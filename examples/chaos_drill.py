#!/usr/bin/env python3
"""Chaos drill: kill workers, fail a cell, interrupt the scan — finish anyway.

A deterministic fault plan kills every first attempt at macro 1, makes one
cell's solver singular, and interrupts the run after two macros.  The
supervised pool retries the killed macro, the fallback ladder flags the sick
cell DEGRADED instead of dropping it, and --resume finishes from the
checkpoint bit-exactly.

Run:  python examples/chaos_drill.py
"""

import tempfile

import numpy as np

from repro import ArrayScanner, EDRAMArray
from repro.errors import SingularCircuitError
from repro.measure.config import ScanConfig
from repro.obs.ledger import RunLedger
from repro.resilience import Checkpointer, Fault, FaultPlan, RetryPolicy

CHAOS = [
    Fault("worker.scan_macro", kind="kill", match={"macro": 1, "attempt": 0}, times=None),
    Fault("sequencer.measure", error=SingularCircuitError("injected short"), match={"row": 1, "col": 1}),
    Fault("scan.macro_done", error=KeyboardInterrupt(), after=1, times=1),
]
RETRY = RetryPolicy(max_attempts=3, base_delay=0.05, seed=0)

with tempfile.TemporaryDirectory() as tmp:
    ledger = RunLedger(tmp)
    config = ScanConfig(jobs=2, force_engine=True, retry=RETRY,
                        faults=FaultPlan(CHAOS), checkpoint=Checkpointer(ledger))
    try:
        ArrayScanner(EDRAMArray(8, 8, macro_rows=4, macro_cols=4), None).scan(config)
    except KeyboardInterrupt:
        print(f"interrupted after checkpointing run {config.checkpoint.run_id}")

    resumed = ScanConfig(jobs=2, force_engine=True, retry=RETRY,
                         faults=FaultPlan(CHAOS[:2]),
                         checkpoint=Checkpointer(ledger, resume="r0001"))
    scan = ArrayScanner(EDRAMArray(8, 8, macro_rows=4, macro_cols=4), None).scan(resumed)

    clean = ArrayScanner(EDRAMArray(8, 8, macro_rows=4, macro_cols=4), None).scan(
        ScanConfig(force_engine=True))
    print(f"resumed scan: {scan.quality_counts()} "
          f"(retries={scan.stats.macro_retries}, respawns={scan.stats.worker_respawns})")
    print("sick cell flagged, value kept:", scan.quality[1, 1] == 1, scan.codes[1, 1] != 0)
    healthy = scan.quality == 0
    print("bit-exact with a clean run elsewhere:",
          bool(np.array_equal(scan.codes[healthy], clean.codes[healthy])))
