"""Supervised process pool: retries, timeouts, dead-worker respawn.

``concurrent.futures.ProcessPoolExecutor`` treats a dead worker as a
pool-wide catastrophe (``BrokenProcessPool``) and has no per-task
wall-clock budget — one crashed or wedged macro loses the whole scan.
:class:`SupervisedPool` replaces it with explicit supervision:

* one :class:`multiprocessing.Process` per job slot, each with its own
  duplex :func:`multiprocessing.Pipe`, so the parent always knows
  exactly which task a worker is holding.  A pipe per worker — with
  strictly synchronous sends — is load-bearing, not a style choice: a
  shared ``mp.Queue`` writes through a per-process feeder *thread*
  guarded by a cross-process lock, and a worker dying mid-put (exactly
  what fault injection does) can take that lock to its grave and wedge
  every surviving worker's results forever.  With dedicated pipes a
  dying worker can only corrupt its own channel, which the parent
  discards on respawn;
* the parent drains ready pipes while polling worker liveness and
  per-task deadlines;
* a dead or timed-out worker is terminated and respawned, and its task
  is retried under the :class:`~repro.resilience.retry.RetryPolicy`
  (exponential backoff + deterministic jitter);
* a task that exhausts its retries comes back as a :class:`TaskFailure`
  value instead of an exception — the caller decides the final rung
  (the scan engine re-runs such macros in-process, so results are
  bit-exact and never missing);
* ``KeyboardInterrupt`` (or any other error) triggers a forced
  terminate-and-join bounded to ~2 s, so Ctrl-C never leaves orphaned
  workers behind.

Everything here is deterministic apart from wall-clock effects the
tests control via fault injection: task→result mapping is positional,
retry jitter is seeded, and workers install a *fresh* copy of the
fault plan so per-process firing counters start from zero.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import multiprocessing as mp
from multiprocessing import connection as mp_connection

from repro.errors import ResilienceError, TaskTimeoutError, WorkerCrashError
from repro.obs.metrics import active_metrics
from repro.resilience.faults import (
    FaultPlan,
    install_plan,
    mark_worker_process,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = ["SupervisedPool", "TaskFailure", "current_worker_info"]

#: How long the parent blocks on the outbox per supervision tick; also
#: bounds how stale a liveness/deadline check can be.
_TICK_SECONDS = 0.02

#: Join budget for the forced (Ctrl-C / error) shutdown path.
_FORCED_SHUTDOWN_SECONDS = 2.0

#: Seconds between pool-health heartbeats folded into the ambient
#: metrics registry while :meth:`SupervisedPool.run` is draining tasks.
_HEARTBEAT_SECONDS = 0.5

#: ``(worker_id, generation)`` of the current process when it is a
#: supervised worker; set once at worker startup, before any task runs.
_WORKER_INFO: tuple[int, int] | None = None  # lint: allow-worker-state


def current_worker_info() -> tuple[int, int] | None:
    """``(worker_id, generation)`` inside a supervised worker, else ``None``.

    Worker bodies use this to stamp telemetry (spans, metric shards)
    with the slot that produced it, so the parent-side merge can build
    per-worker lanes without guessing from pids.
    """
    return _WORKER_INFO


def _read_rss_kb(pid: int) -> float:
    """Resident set size of ``pid`` in KiB via ``/proc/<pid>/statm``.

    Returns 0.0 where procfs is unavailable (non-Linux) or the process
    is already gone — health telemetry must never take a pool down.
    """
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as fh:
            resident_pages = int(fh.read().split()[1])
    except (OSError, IndexError, ValueError):
        return 0.0
    try:
        page_kb = os.sysconf("SC_PAGE_SIZE") / 1024.0
    except (ValueError, OSError):  # pragma: no cover - exotic libc
        page_kb = 4.0
    return resident_pages * page_kb


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one task after all retries were spent.

    Returned *as a value* in the results list — supervised execution
    converts crashes into data the caller can act on.
    """

    task_id: int
    error: BaseException
    attempts: int
    timed_out: bool = False


def _safe_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a summary stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:  # lint: allow-broad-except  # pragma: no cover - exotic exc
        return ResilienceError(f"{type(exc).__name__}: {exc}")
    return exc


def _worker_main(
    conn: Any,
    worker_fn: Callable[[Any, int], Any],
    initializer: Callable[..., None] | None,
    initargs: tuple,
    plan: FaultPlan | None,
    worker_id: int = 0,
    generation: int = 0,
) -> None:
    """Worker process body: init once, then serve tasks until sentinel.

    All sends are synchronous and happen in the main thread, so a fault
    that kills the process at a fault point can never leave a
    half-written frame on the wire: the previous result was fully sent
    before the next task was even received.
    """
    global _WORKER_INFO
    _WORKER_INFO = (worker_id, generation)  # lint: allow-worker-state
    mark_worker_process()
    # Fork copies the parent's armed plan *with* its firing counters;
    # install a fresh copy so every worker process counts from zero.
    install_plan(FaultPlan(plan.faults, plan.seed) if plan is not None else None)
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            return
        if task is None:
            return
        task_id, attempt, payload = task
        try:
            result = worker_fn(payload, attempt)
        except Exception as exc:  # lint: allow-broad-except - shipped to parent
            message = ("err", task_id, attempt, _safe_exception(exc))
        else:
            message = ("ok", task_id, attempt, result)
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent vanished
            return


class _Worker:
    """Parent-side record of one worker slot, including health tallies."""

    __slots__ = (
        "process",
        "conn",
        "current",
        "worker_id",
        "generation",
        "tasks_completed",
        "busy_seconds",
        "idle_seconds",
        "idle_since",
    )

    def __init__(
        self,
        process: mp.process.BaseProcess,
        conn: Any,
        worker_id: int,
        generation: int,
    ) -> None:
        self.process = process
        self.conn = conn
        #: ``(task_id, attempt, started_at)`` while busy, else ``None``.
        self.current: tuple[int, int, float] | None = None
        self.worker_id = worker_id
        #: Respawn count of this slot; 0 for the original process.
        self.generation = generation
        self.tasks_completed = 0
        self.busy_seconds = 0.0
        self.idle_seconds = 0.0
        self.idle_since = time.monotonic()

    def mark_dispatched(self, now: float) -> None:
        self.idle_seconds += max(0.0, now - self.idle_since)

    def mark_done(self, now: float) -> None:
        if self.current is not None:
            self.busy_seconds += max(0.0, now - self.current[2])
        self.idle_since = now

    def health(self) -> dict[str, Any]:
        """JSON-ready snapshot of this slot's health tallies."""
        return {
            "worker_id": self.worker_id,
            "pid": self.process.pid,
            "generation": self.generation,
            "tasks_completed": self.tasks_completed,
            "busy_seconds": self.busy_seconds,
            "idle_seconds": self.idle_seconds,
            "rss_kb": _read_rss_kb(self.process.pid) if self.process.pid else 0.0,
            "alive": self.process.is_alive(),
        }


class SupervisedPool:
    """Run tasks on supervised worker processes; never lose a task.

    Parameters
    ----------
    worker_fn:
        ``worker_fn(payload, attempt)`` executed in the worker; must
        return a picklable result.
    initializer / initargs:
        Optional per-worker setup (runs once per process, and again in
        every respawned replacement).
    jobs:
        Worker slots (capped at the task count in :meth:`run`).
    retry:
        Retry schedule for crashed / timed-out / raising tasks.
    timeout:
        Per-task wall-clock budget in seconds (``None`` = unlimited).
    fault_plan:
        Fault plan installed fresh in every worker process.
    persistent:
        Keep the worker processes alive after :meth:`run` returns so a
        later run on the same pool skips the fork/initialize cost —
        the scan fan-out caches one warm pool per array version.  Call
        :meth:`close` (or drop the pool) to retire the workers; a
        forced (Ctrl-C) teardown always kills them regardless.

    After :meth:`run` returns, the ``retries`` / ``timeouts`` /
    ``respawns`` counters hold the supervision telemetry accumulated
    over the pool's lifetime; callers reusing a persistent pool should
    snapshot them around each run.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any, int], Any],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        jobs: int = 1,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        persistent: bool = False,
        heartbeat_seconds: float = _HEARTBEAT_SECONDS,
    ) -> None:
        if jobs < 1:
            raise ResilienceError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ResilienceError(f"timeout must be positive, got {timeout}")
        if heartbeat_seconds <= 0:
            raise ResilienceError(
                f"heartbeat_seconds must be positive, got {heartbeat_seconds}"
            )
        self.worker_fn = worker_fn
        self.initializer = initializer
        self.initargs = initargs
        self.jobs = jobs
        self.retry = retry
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.persistent = persistent
        self.heartbeat_seconds = heartbeat_seconds
        self.retries = 0
        self.timeouts = 0
        self.respawns = 0
        self._ctx = mp.get_context("fork")
        self._workers: list[_Worker] = []
        self._last_health: list[dict[str, Any]] = []

    # -- lifecycle -----------------------------------------------------

    def _spawn(self, worker_id: int, generation: int = 0) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.worker_fn,
                self.initializer,
                self.initargs,
                self.fault_plan,
                worker_id,
                generation,
            ),
            daemon=True,
        )
        process.start()
        # The parent's copy of the child end must close so a dead
        # worker reads as EOF instead of a silently idle pipe.
        child_conn.close()
        return _Worker(process, parent_conn, worker_id, generation)

    def _respawn(self, slot: int) -> None:
        self.respawns += 1
        old = self._workers[slot]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        fresh = self._spawn(old.worker_id, old.generation + 1)
        # The slot's health tallies outlive the process: lanes and
        # gauges are per-slot, and the generation gauge records churn.
        fresh.tasks_completed = old.tasks_completed
        fresh.busy_seconds = old.busy_seconds
        fresh.idle_seconds = old.idle_seconds
        self._workers[slot] = fresh

    def _retire(self, worker: _Worker) -> None:
        """Gracefully stop one worker (sentinel, join, close)."""
        if worker.process.is_alive():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover - dying worker
                pass
            worker.process.join(2.0)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.terminate()
                worker.process.join(0.5)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _ensure_workers(self, needed: int) -> None:
        """Bring the slot list to exactly ``needed`` live, idle workers.

        A persistent pool re-enters here with warm workers from its
        previous run; dead ones (forced teardown, external kill) are
        replaced silently — pre-run hygiene, not supervision telemetry,
        so the ``respawns`` counter stays a per-run failure signal.
        """
        keep: list[_Worker] = []
        for worker in self._workers:
            if (
                worker.process.is_alive()
                and worker.current is None
                and len(keep) < needed
            ):
                keep.append(worker)
            else:
                self._retire(worker)
        used_ids = {worker.worker_id for worker in keep}
        next_id = 0
        while len(keep) < needed:
            while next_id in used_ids:
                next_id += 1
            used_ids.add(next_id)
            keep.append(self._spawn(next_id))
        self._workers = keep

    def close(self) -> None:
        """Retire every worker gracefully.

        Persistent pools hold their workers between runs; the owner
        (the scan fan-out cache) calls this on eviction and at exit.
        """
        self._shutdown(forced=False)

    def _shutdown(self, forced: bool) -> None:
        if forced:
            for worker in self._workers:
                if worker.process.is_alive():
                    worker.process.terminate()
            deadline = time.monotonic() + _FORCED_SHUTDOWN_SECONDS
            for worker in self._workers:
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():  # pragma: no cover - stuck in syscall
                    worker.process.kill()
                    worker.process.join(0.2)
        else:
            for worker in self._workers:
                if worker.process.is_alive():
                    try:
                        worker.conn.send(None)
                    except (BrokenPipeError, OSError):  # pragma: no cover
                        pass
            for worker in self._workers:
                worker.process.join(2.0)
                if worker.process.is_alive():  # pragma: no cover - wedged worker
                    worker.process.terminate()
                    worker.process.join(0.5)
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._workers = []

    # -- health --------------------------------------------------------

    def worker_health(self) -> list[dict[str, Any]]:
        """Health snapshot of every current worker slot, in slot order.

        Each entry carries ``worker_id`` / ``pid`` / ``generation`` /
        ``tasks_completed`` / ``busy_seconds`` / ``idle_seconds`` /
        ``rss_kb`` / ``alive``.  Persistent pools keep their slots
        between runs, so tallies accumulate over the pool's lifetime —
        snapshot around each run to get per-run deltas.  After a
        throwaway pool retires its workers the terminal snapshot taken
        at the end of :meth:`run` is returned instead, so post-run
        telemetry never comes back empty.
        """
        if self._workers:
            return [worker.health() for worker in self._workers]
        return [dict(entry) for entry in self._last_health]

    def _emit_heartbeat(self, queue_depth: int) -> None:
        """Fold per-worker health gauges into the ambient registry.

        A no-op unless a caller installed a real registry via
        :func:`repro.obs.metrics.use_metrics` — the disabled path is one
        ``enabled`` check, keeping supervision cost flat when nobody is
        listening.
        """
        registry = active_metrics()
        if not registry.enabled:
            return
        registry.counter("pool.heartbeats").inc()
        registry.gauge("pool.queue_depth").set(queue_depth)
        registry.gauge("pool.workers").set(len(self._workers))
        for worker in self._workers:
            health = worker.health()
            prefix = f"pool.worker{worker.worker_id}"
            registry.gauge(f"{prefix}.tasks_completed").set(
                health["tasks_completed"]
            )
            registry.gauge(f"{prefix}.busy_seconds").set(health["busy_seconds"])
            registry.gauge(f"{prefix}.idle_seconds").set(health["idle_seconds"])
            registry.gauge(f"{prefix}.rss_kb").set(health["rss_kb"])
            registry.gauge(f"{prefix}.generation").set(health["generation"])

    # -- execution -----------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Execute every task; return results positionally.

        Each entry of the returned list is the worker result, or a
        :class:`TaskFailure` when the task exhausted its retries.
        ``on_result`` is invoked in the parent, in completion order,
        for every *successful* result as it lands — the hook the scan
        engine uses for incremental checkpointing.
        """
        total = len(tasks)
        if total == 0:
            return []
        results: list[Any] = [None] * total
        done = [False] * total
        completed = 0
        pending: deque[tuple[int, int]] = deque((i, 0) for i in range(total))
        delayed: list[tuple[float, int, int]] = []

        def fail(task_id: int, attempt: int, error: BaseException, timed_out: bool) -> None:
            nonlocal completed
            if self.retry.should_retry(attempt):
                self.retries += 1
                ready_at = time.monotonic() + self.retry.delay(attempt, key=task_id)
                heapq.heappush(delayed, (ready_at, task_id, attempt + 1))
            else:
                results[task_id] = TaskFailure(
                    task_id, error, attempts=attempt + 1, timed_out=timed_out
                )
                done[task_id] = True
                completed += 1

        self._ensure_workers(min(self.jobs, total))
        last_heartbeat = time.monotonic()
        try:
            while completed < total:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, task_id, attempt = heapq.heappop(delayed)
                    pending.append((task_id, attempt))
                for worker in self._workers:
                    if pending and worker.current is None and worker.process.is_alive():
                        task_id, attempt = pending.popleft()
                        worker.mark_dispatched(time.monotonic())
                        worker.current = (task_id, attempt, time.monotonic())
                        try:
                            worker.conn.send((task_id, attempt, tasks[task_id]))
                        except (BrokenPipeError, OSError):
                            # Died before the task hit the wire; the
                            # liveness sweep below respawns and retries.
                            pass
                ready = mp_connection.wait(
                    [w.conn for w in self._workers], timeout=_TICK_SECONDS
                )
                for worker in self._workers:
                    if worker.conn not in ready:
                        continue
                    try:
                        status, task_id, attempt, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-task: its pipe reads EOF.  The
                        # liveness sweep below respawns it and requeues
                        # whatever it was holding.
                        continue
                    current = worker.current
                    if current is not None and current[:2] == (task_id, attempt):
                        worker.mark_done(time.monotonic())
                        worker.tasks_completed += 1
                        worker.current = None
                        if not done[task_id]:
                            if status == "ok":
                                results[task_id] = payload
                                done[task_id] = True
                                completed += 1
                                if on_result is not None:
                                    on_result(task_id, payload)
                            else:
                                fail(task_id, attempt, payload, timed_out=False)
                    # A mismatched frame cannot happen on a per-worker
                    # pipe (respawn discards the old channel), but the
                    # guard keeps a hypothetical stray harmless: its
                    # task was requeued and recomputes identically.
                now = time.monotonic()
                for slot, worker in enumerate(self._workers):
                    current = worker.current
                    if not worker.process.is_alive():
                        exitcode = worker.process.exitcode
                        worker.mark_done(now)
                        self._respawn(slot)
                        if current is not None:
                            task_id, attempt, _ = current
                            error = WorkerCrashError(
                                f"worker died (exit code {exitcode}) while scanning "
                                f"task {task_id} (attempt {attempt})",
                                exitcode=exitcode,
                            )
                            fail(task_id, attempt, error, timed_out=False)
                    elif (
                        current is not None
                        and self.timeout is not None
                        and now - current[2] > self.timeout
                    ):
                        task_id, attempt, _ = current
                        worker.process.terminate()
                        worker.process.join(0.5)
                        if worker.process.is_alive():  # pragma: no cover - stuck
                            worker.process.kill()
                            worker.process.join(0.2)
                        worker.mark_done(now)
                        self._respawn(slot)
                        self.timeouts += 1
                        error = TaskTimeoutError(
                            f"task {task_id} exceeded {self.timeout:g} s "
                            f"(attempt {attempt}); worker terminated",
                            seconds=self.timeout,
                        )
                        fail(task_id, attempt, error, timed_out=True)
                if now - last_heartbeat >= self.heartbeat_seconds:
                    last_heartbeat = now
                    self._emit_heartbeat(len(pending) + len(delayed))
        except BaseException:
            # Ctrl-C lands here too: tear the pool down within ~2 s so
            # no orphaned workers outlive the scan, then re-raise.
            self._shutdown(forced=True)
            raise
        # Final heartbeat: the run's terminal health state always lands
        # in the registry even for runs shorter than one interval.
        self._emit_heartbeat(0)
        self._last_health = [worker.health() for worker in self._workers]
        if not self.persistent:
            self._shutdown(forced=False)
        return results
