"""The technology registry: resolution, registration, kernel opt-out."""

import numpy as np
import pytest

from repro.errors import MeasurementError, TechnologyError
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.technologies import CellTechnology, get, names, register, unregister
from repro.technologies.edram import EDRAMTechnology
from repro.units import fF


class TestResolution:
    def test_names_lists_shipped_backends_in_order(self):
        assert names()[:3] == ("edram", "fecap", "1t")

    def test_get_caches_the_instance(self):
        assert get("edram") is get("edram")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(TechnologyError, match="edram"):
            get("mram")

    def test_shipped_backends_resolve_and_self_identify(self):
        for name in ("edram", "fecap", "1t"):
            backend = get(name)
            assert backend.name == name
            assert backend.display
            assert backend.reference

    def test_describe_is_json_shaped(self):
        import json

        for name in names():
            payload = get(name).describe()
            round_tripped = json.loads(json.dumps(payload))
            assert round_tripped["name"] == name
            assert set(round_tripped["corners"]) == {"tt", "ff", "ss", "fs", "sf"}


class _ProbeTechnology(EDRAMTechnology):
    name = "probe"


class TestRegistration:
    def test_register_and_unregister_instance(self):
        register("probe", _ProbeTechnology())
        try:
            assert "probe" in names()
            assert get("probe").name == "probe"
        finally:
            unregister("probe")
        assert "probe" not in names()

    def test_register_rejects_name_mismatch(self):
        with pytest.raises(TechnologyError):
            register("not-probe", _ProbeTechnology())

    def test_unregister_unknown_is_noop(self):
        unregister("never-registered")


class _NoKernelTechnology(EDRAMTechnology):
    name = "nokernel"
    uses_kernel = False


class TestKernelOptOut:
    def test_opting_out_routes_every_macro_through_the_drivers(self):
        """uses_kernel=False pins the per-macro path, bit-exactly."""
        register("nokernel", _NoKernelTechnology())
        try:
            backend = get("nokernel")
            array = backend.build_array(16, 4, macro_rows=8, seed=11)
            # Tag the array so the scanner accepts the pairing.
            array.technology = "nokernel"
            structure = backend.design_structure(array)
            config = ScanConfig(technology="nokernel")
            result = ArrayScanner(array, structure).scan(config)
            assert result.stats.kernel_cells == 0

            reference = get("edram").build_array(16, 4, macro_rows=8, seed=11)
            kernel = ArrayScanner(
                reference, get("edram").design_structure(reference)
            ).scan()
            assert kernel.stats.kernel_cells == reference.num_cells
            np.testing.assert_array_equal(result.codes, kernel.codes)
            np.testing.assert_array_equal(result.vgs, kernel.vgs)
        finally:
            unregister("nokernel")


class TestScanConfigTechnology:
    def test_default_is_edram(self):
        assert ScanConfig().technology == "edram"

    def test_unknown_technology_rejected_at_construction(self):
        with pytest.raises(MeasurementError, match="registered"):
            ScanConfig(technology="mram")

    def test_registered_names_accepted(self):
        for name in ("edram", "fecap", "1t"):
            assert ScanConfig(technology=name).technology == name

    def test_scan_rejects_array_config_mismatch(self):
        fecap_array = get("fecap").build_array(8, 2, macro_rows=4, seed=0)
        scanner = ArrayScanner(
            fecap_array, get("fecap").design_structure(fecap_array)
        )
        with pytest.raises(MeasurementError, match="fecap"):
            scanner.scan(ScanConfig(technology="edram"))

    def test_technology_in_fingerprint_and_resume_keys(self):
        from repro.obs.ledger import config_fingerprint, config_hash
        from repro.resilience.checkpoint import resume_fingerprint

        edram = ScanConfig()
        fecap = ScanConfig(technology="fecap")
        assert config_fingerprint(fecap)["technology"] == "fecap"
        assert config_hash(edram) != config_hash(fecap)
        assert resume_fingerprint(fecap)["technology"] == "fecap"


class TestProtocolDefaults:
    def test_spec_window_defaults_to_twenty_percent(self):
        class _Windowed(EDRAMTechnology):
            name = "windowed"

            def spec_window(self):
                return CellTechnology.spec_window(self)

        lo, hi = _Windowed().spec_window()
        assert lo == pytest.approx(0.8 * 30 * fF)
        assert hi == pytest.approx(1.2 * 30 * fF)

    def test_check_array_rejects_foreign_arrays(self):
        fecap_array = get("fecap").build_array(4, 2, seed=0)
        with pytest.raises(TechnologyError):
            get("edram").check_array(fecap_array)
        get("fecap").check_array(fecap_array)

    def test_default_structure_matches_scanner_default(self):
        backend = get("edram")
        array = backend.build_array(8, 2, macro_rows=4, seed=0)
        ours = backend.default_structure(array)
        scanners = ArrayScanner(array).structure
        assert ours.tech == scanners.tech
        assert ours.design == scanners.design
