"""Monte-Carlo variation sampling."""

import numpy as np
import pytest

from repro.errors import TechnologyError
from repro.tech.variation import MonteCarloSampler, VariationModel
from repro.units import fF


def test_sampler_is_deterministic_under_seed(tech):
    a = [c.nmos.vth0 for c in MonteCarloSampler(tech, seed=5).samples(10)]
    b = [c.nmos.vth0 for c in MonteCarloSampler(tech, seed=5).samples(10)]
    assert a == b


def test_different_seeds_differ(tech):
    a = MonteCarloSampler(tech, seed=1).sample()
    b = MonteCarloSampler(tech, seed=2).sample()
    assert a.nmos.vth0 != b.nmos.vth0


def test_sample_statistics_match_model(tech):
    model = VariationModel(sigma_vth=0.02, sigma_cell_cap=1.5 * fF)
    sampler = MonteCarloSampler(tech, model, seed=0)
    cards = list(sampler.samples(600))
    vths = np.array([c.nmos.vth0 for c in cards]) - tech.nmos.vth0
    caps = np.array([c.cell_capacitance for c in cards]) - tech.cell_capacitance
    assert abs(vths.mean()) < 0.003
    assert vths.std() == pytest.approx(0.02, rel=0.15)
    assert caps.std() == pytest.approx(1.5 * fF, rel=0.15)


def test_polarities_are_drawn_independently(tech):
    sampler = MonteCarloSampler(tech, seed=3)
    cards = list(sampler.samples(100))
    n_shift = np.array([c.nmos.vth0 - tech.nmos.vth0 for c in cards])
    p_shift = np.array([abs(c.pmos.vth0) - abs(tech.pmos.vth0) for c in cards])
    corr = np.corrcoef(n_shift, p_shift)[0, 1]
    assert abs(corr) < 0.35


def test_vdd_and_vpp_scale_together(tech):
    sampler = MonteCarloSampler(tech, VariationModel(sigma_vdd_rel=0.05), seed=9)
    card = sampler.sample()
    assert card.vpp / card.vdd == pytest.approx(tech.vpp / tech.vdd)


def test_capacitance_never_collapses(tech):
    model = VariationModel(sigma_cell_cap=50 * fF)  # absurdly wide
    sampler = MonteCarloSampler(tech, model, seed=4)
    assert all(c.cell_capacitance >= 0.5 * fF for c in sampler.samples(50))


def test_sample_names_are_unique(tech):
    sampler = MonteCarloSampler(tech, seed=0)
    names = [c.name for c in sampler.samples(5)]
    assert len(set(names)) == 5


def test_negative_sigma_rejected():
    with pytest.raises(TechnologyError):
        VariationModel(sigma_vth=-0.01)


def test_negative_count_rejected(tech):
    with pytest.raises(TechnologyError):
        list(MonteCarloSampler(tech).samples(-1))
