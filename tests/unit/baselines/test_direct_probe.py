"""Idealized probe-station reference."""

import pytest

from repro.baselines.direct_probe import DirectProbe
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import MeasurementError
from repro.units import fF


def test_validation(tech):
    arr = EDRAMArray(2, 2, tech=tech)
    with pytest.raises(MeasurementError):
        DirectProbe(arr, noise_sigma=-1.0)
    with pytest.raises(MeasurementError):
        DirectProbe(arr, seconds_per_site=0.0)


def test_noiseless_probe_returns_truth(tech):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(0, 1).capacitance = 22 * fF
    probe = DirectProbe(arr, noise_sigma=0.0)
    assert probe.probe(0, 1) == pytest.approx(22 * fF)


def test_noise_statistics(tech):
    arr = EDRAMArray(2, 2, tech=tech)
    probe = DirectProbe(arr, noise_sigma=0.5 * fF, seed=1)
    values = [probe.probe(0, 0) for _ in range(300)]
    import numpy as np

    assert np.std(values) == pytest.approx(0.5 * fF, rel=0.15)
    assert np.mean(values) == pytest.approx(30 * fF, rel=0.01)


def test_short_reads_infinite(tech):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(1, 1).apply_defect(CellDefect(DefectKind.SHORT))
    assert DirectProbe(arr).probe(1, 1) == float("inf")


def test_open_reads_near_zero(tech):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(1, 0).apply_defect(CellDefect(DefectKind.OPEN))
    assert DirectProbe(arr, noise_sigma=0.0).probe(1, 0) == 0.0


def test_time_bookkeeping(tech):
    arr = EDRAMArray(4, 4, tech=tech)
    probe = DirectProbe(arr, seconds_per_site=1800.0)
    probe.probe_sample([(0, 0), (1, 1), (2, 2)])
    assert probe.sites_probed == 3
    assert probe.time_spent == pytest.approx(3 * 1800.0)


def test_probe_sample_returns_mapping(tech):
    arr = EDRAMArray(4, 4, tech=tech)
    result = DirectProbe(arr, noise_sigma=0.0).probe_sample([(0, 0), (3, 3)])
    assert set(result) == {(0, 0), (3, 3)}
    assert result[(0, 0)] == pytest.approx(30 * fF)
