"""Trace files read back: load, validate, aggregate."""

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs import Tracer, load_trace, summarize_trace


def make_clock():
    ticks = iter(range(10_000))
    return lambda: float(next(ticks))


def sample_tracer():
    tracer = Tracer(clock=make_clock())
    with tracer.span("scan"):
        for _ in range(2):
            with tracer.span("macro"):
                with tracer.span("cell"):
                    pass
    return tracer


class TestLoadTrace:
    def test_round_trip_through_file(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        spans = load_trace(str(path))
        assert spans == tracer.spans

    def test_round_trip_through_stream(self):
        tracer = sample_tracer()
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        spans = load_trace(io.StringIO(buf.getvalue()))
        assert [s.name for s in spans] == [s.name for s in tracer.spans]

    def test_blank_lines_skipped(self):
        tracer = sample_tracer()
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        noisy = "\n" + buf.getvalue().replace("\n", "\n\n")
        assert len(load_trace(io.StringIO(noisy))) == len(tracer.spans)

    def test_invalid_json_line_raises(self):
        with pytest.raises(ObservabilityError, match="line 1"):
            load_trace(io.StringIO("not json\n"))

    def test_unknown_parent_raises(self):
        line = (
            '{"name": "orphan", "span_id": 0, "parent_id": 99, '
            '"start": 0.0, "end": 1.0, "attributes": {}}'
        )
        with pytest.raises(ObservabilityError, match="unknown parent"):
            load_trace(io.StringIO(line + "\n"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="no spans"):
            load_trace(str(path))

    def test_blank_only_file_raises(self):
        with pytest.raises(ObservabilityError, match="no spans"):
            load_trace(io.StringIO("\n\n  \n"))

    def test_truncated_final_line_raises(self):
        tracer = sample_tracer()
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        cut = buf.getvalue().rstrip("\n")[:-10]  # chop the last record
        with pytest.raises(ObservabilityError, match="truncated mid-record"):
            load_trace(io.StringIO(cut))


class TestSummarize:
    def test_aggregates_by_name(self):
        summary = summarize_trace(sample_tracer().spans)
        by_name = {a.name: a for a in summary.aggregates}
        assert by_name["scan"].count == 1
        assert by_name["macro"].count == 2
        assert by_name["cell"].count == 2
        assert summary.total_spans == 5
        assert summary.max_depth == 2

    def test_aggregates_sorted_by_total_time(self):
        summary = summarize_trace(sample_tracer().spans)
        totals = [a.total_seconds for a in summary.aggregates]
        assert totals == sorted(totals, reverse=True)

    def test_covers(self):
        summary = summarize_trace(sample_tracer().spans)
        assert summary.covers("scan", "macro", "cell")
        assert not summary.covers("scan", "phase:share")

    def test_mean_consistent_with_total(self):
        summary = summarize_trace(sample_tracer().spans)
        for a in summary.aggregates:
            assert a.mean_seconds == pytest.approx(a.total_seconds / a.count)
            assert a.max_seconds <= a.total_seconds + 1e-12

    def test_table_lists_every_name(self):
        summary = summarize_trace(sample_tracer().spans)
        table = summary.table()
        for name in summary.names:
            assert name in table
        assert "max depth 2" in table

    def test_to_dict_shape(self):
        d = summarize_trace(sample_tracer().spans).to_dict()
        assert d["total_spans"] == 5
        assert d["max_depth"] == 2
        assert {row["name"] for row in d["spans"]} == {"scan", "macro", "cell"}

    def test_unknown_parent_in_span_list_raises(self):
        spans = sample_tracer().spans
        spans[1].parent_id = 77
        with pytest.raises(ObservabilityError):
            summarize_trace(spans)

    def test_empty_trace_raises(self):
        with pytest.raises(ObservabilityError, match="empty trace"):
            summarize_trace([])

    def test_percentiles_nearest_rank(self):
        tracer = Tracer(clock=make_clock())
        for _ in range(10):  # durations 1s each under an uneven parent
            with tracer.span("macro"):
                pass
        summary = summarize_trace(tracer.spans)
        macro = next(a for a in summary.aggregates if a.name == "macro")
        # Every macro span lasts exactly 1 tick under the fake clock.
        assert macro.p50_seconds == pytest.approx(1.0)
        assert macro.p95_seconds == pytest.approx(1.0)
        assert macro.p99_seconds == pytest.approx(1.0)
        assert macro.p50_seconds <= macro.p95_seconds <= macro.p99_seconds
        assert macro.p99_seconds <= macro.max_seconds

    def test_percentiles_in_table_and_dict(self):
        summary = summarize_trace(sample_tracer().spans)
        table = summary.table()
        for column in ("p50", "p95", "p99"):
            assert column in table
        for row in summary.to_dict()["spans"]:
            assert {"p50_seconds", "p95_seconds", "p99_seconds"} <= set(row)


def distributed_tracer():
    """Parent scan span with two merged worker subtrees."""
    parent = Tracer(clock=make_clock())
    with parent.span("scan"):
        for worker_id in (0, 1):
            worker = Tracer(clock=make_clock())
            with worker.span("slab", tile_row_lo=worker_id):
                pass
            parent.merge(worker.spans, worker_id=worker_id, pid=1000 + worker_id)
    return parent


class TestMergeTraces:
    def test_merges_multiple_traces_into_one_list(self):
        from repro.obs import merge_traces

        first, second = sample_tracer(), sample_tracer()
        merged = merge_traces([first.spans, second.spans])
        assert len(merged) == len(first.spans) + len(second.spans)
        assert [s.span_id for s in merged] == list(range(len(merged)))
        # Both scan roots stay roots: merging files must not invent
        # parentage between unrelated processes.
        assert sum(1 for s in merged if s.parent_id is None) == 2

    def test_merged_traces_summarize(self):
        from repro.obs import merge_traces

        merged = merge_traces([sample_tracer().spans, sample_tracer().spans])
        summary = summarize_trace(merged)
        counts = {a.name: a.count for a in summary.aggregates}
        assert counts == {"scan": 2, "macro": 4, "cell": 4}

    def test_empty_input_raises(self):
        from repro.obs import merge_traces

        with pytest.raises(ObservabilityError, match="no spans"):
            merge_traces([])

    def test_missing_file_error_names_path(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(ObservabilityError, match="nope.jsonl"):
            load_trace(missing)


class TestTimeline:
    def test_lanes_split_by_worker_id(self):
        from repro.obs import timeline_dict

        view = timeline_dict(distributed_tracer().spans)
        lanes = [lane["lane"] for lane in view["lanes"]]
        assert lanes == ["parent", "w0", "w1"]

    def test_parent_lane_first_and_times_relative(self):
        from repro.obs import timeline_dict

        view = timeline_dict(distributed_tracer().spans)
        parent_lane = view["lanes"][0]
        assert parent_lane["lane"] == "parent"
        starts = [s["start"] for lane in view["lanes"] for s in lane["spans"]]
        assert min(starts) == 0.0
        assert view["duration_seconds"] > 0.0

    def test_worker_spans_carry_pid(self):
        from repro.obs import timeline_dict

        view = timeline_dict(distributed_tracer().spans)
        w0 = next(lane for lane in view["lanes"] if lane["lane"] == "w0")
        assert all(s["pid"] == 1000 for s in w0["spans"])

    def test_render_timeline_text_gantt(self):
        from repro.obs import render_timeline

        text = render_timeline(distributed_tracer().spans)
        assert "parent" in text
        assert "w0" in text and "w1" in text
        assert "█" in text

    def test_render_timeline_serial_trace_single_lane(self):
        from repro.obs import render_timeline

        text = render_timeline(sample_tracer().spans)
        assert "parent" in text
        assert "w0" not in text

    def test_timeline_empty_raises(self):
        from repro.obs import timeline_dict

        with pytest.raises(ObservabilityError):
            timeline_dict([])
