"""Stimulus waveforms."""

import pytest

from repro.circuit.stimulus import (
    Clock,
    Constant,
    PiecewiseConstant,
    PiecewiseLinear,
    Pulse,
    Staircase,
    Step,
    as_stimulus,
)
from repro.errors import NetlistError


class TestConstantAndStep:
    def test_constant(self):
        c = Constant(1.8)
        assert c(0.0) == c(1e9) == 1.8
        assert c.breakpoints() == ()

    def test_step(self):
        s = Step(at=5e-9, before=0.1, after=0.9)
        assert s(4.999e-9) == 0.1
        assert s(5e-9) == 0.9
        assert s.breakpoints() == (5e-9,)


class TestPulse:
    def test_window(self):
        p = Pulse(1e-9, 2e-9, low=0.0, high=1.8)
        assert p(0.5e-9) == 0.0
        assert p(1.5e-9) == 1.8
        assert p(2.5e-9) == 0.0

    def test_rejects_empty_window(self):
        with pytest.raises(NetlistError):
            Pulse(2e-9, 1e-9)


class TestPiecewiseLinear:
    def test_interpolates(self):
        pwl = PiecewiseLinear([(0.0, 0.0), (1.0, 2.0)])
        assert pwl(0.5) == pytest.approx(1.0)

    def test_holds_outside_range(self):
        pwl = PiecewiseLinear([(1.0, 5.0), (2.0, 7.0)])
        assert pwl(0.0) == 5.0
        assert pwl(3.0) == 7.0

    def test_rejects_unsorted_times(self):
        with pytest.raises(NetlistError):
            PiecewiseLinear([(1.0, 0.0), (1.0, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(NetlistError):
            PiecewiseLinear([])


class TestPiecewiseConstant:
    def test_levels_per_interval(self):
        pc = PiecewiseConstant(edges=[1.0, 2.0], levels=[10.0, 20.0, 30.0])
        assert pc(0.5) == 10.0
        assert pc(1.0) == 20.0
        assert pc(1.5) == 20.0
        assert pc(2.5) == 30.0

    def test_breakpoints(self):
        pc = PiecewiseConstant(edges=[1.0, 2.0], levels=[0, 1, 0])
        assert pc.breakpoints() == (1.0, 2.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(NetlistError):
            PiecewiseConstant(edges=[1.0], levels=[0.0])

    def test_rejects_unsorted_edges(self):
        with pytest.raises(NetlistError):
            PiecewiseConstant(edges=[2.0, 1.0], levels=[0, 1, 2])


class TestClock:
    def test_half_period_duty(self):
        clk = Clock(period=10e-9, low=0.0, high=1.8)
        assert clk(1e-9) == 1.8
        assert clk(6e-9) == 0.0
        assert clk(11e-9) == 1.8

    def test_phase_shift(self):
        clk = Clock(period=10e-9, phase=5e-9)
        assert clk(1e-9) == clk(11e-9)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(NetlistError):
            Clock(period=0.0)


class TestStaircase:
    def test_paper_ramp_semantics(self):
        # 20 steps of 0.5 ns starting at 40 ns, 4 uA per step.
        st = Staircase(t0=40e-9, step_duration=0.5e-9, step_value=4e-6, num_steps=20)
        assert st(39e-9) == 0.0
        assert st(40e-9) == pytest.approx(4e-6)  # step 1 active at t0
        assert st(40.6e-9) == pytest.approx(8e-6)  # step 2
        assert st(60e-9) == pytest.approx(80e-6)  # holds full scale

    def test_step_at(self):
        st = Staircase(t0=0.0, step_duration=1.0, step_value=1.0, num_steps=3)
        assert st.step_at(-0.1) == 0
        assert st.step_at(0.0) == 1
        assert st.step_at(1.5) == 2
        assert st.step_at(99.0) == 3

    def test_step_start_time(self):
        st = Staircase(t0=10.0, step_duration=2.0, step_value=1.0, num_steps=5)
        assert st.step_start_time(1) == 10.0
        assert st.step_start_time(3) == 14.0
        with pytest.raises(NetlistError):
            st.step_start_time(0)
        with pytest.raises(NetlistError):
            st.step_start_time(6)

    def test_breakpoints_cover_all_steps(self):
        st = Staircase(t0=0.0, step_duration=1.0, step_value=1.0, num_steps=4)
        assert st.breakpoints() == (0.0, 1.0, 2.0, 3.0)

    def test_validation(self):
        with pytest.raises(NetlistError):
            Staircase(0.0, 0.0, 1.0, 5)
        with pytest.raises(NetlistError):
            Staircase(0.0, 1.0, 1.0, 0)


class TestCoercion:
    def test_numbers_become_constants(self):
        s = as_stimulus(3)
        assert isinstance(s, Constant)
        assert s(0) == 3.0

    def test_stimulus_passes_through(self):
        s = Step(1.0)
        assert as_stimulus(s) is s

    def test_rejects_garbage(self):
        with pytest.raises(NetlistError):
            as_stimulus("high")
