"""Whole-array measurement scans — the "Analog Bitmap" producer.

The paper's end goal: "build an Analog Bitmap of the capacitor values of
the cells in the memory array".  :class:`ArrayScanner` measures every
cell of every macro-cell and assembles the code matrix.

For array-scale work the scanner evaluates a **vectorized closed form**
of the charge-tier algebra.  After phases 1–4, every capacitive branch
hanging on the plate–gate island reduces to an equivalent capacitance
``X`` with an equivalent pre-charge voltage of V_DD (they all rode up
with the plate during the CHARGE phase), except the reference side
(C_REF + wiring) which joins discharged; hence

    V_GS = V_DD · ΣX / (ΣX + C_REF_total)

with, per branch:

- target cell: ``C_m`` (its far plate is actively grounded),
- same-row neighbours: ``series(C_j, C_BL + C_js)`` (far side floats on
  the bitline),
- every off-row cell: ``series(C_k, C_js)`` (far side floats on the
  storage junction),
- plate wiring: ``C_pp``,
- defect variants (shorts substitute their island's ground capacitance,
  opens vanish) as derived in the module body.

Macros containing BRIDGE defects fall back to the exact charge engine
cell by cell — bridge topologies are many and rare, and the engine *is*
the reference.  Agreement between the closed form and the engine is
pinned by integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.edram.array import EDRAMArray, MacroCell
from repro.edram.defects import DefectKind
from repro.errors import MeasurementError
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.structure import MeasurementDesign, MeasurementStructure


def _series(a: float | np.ndarray, b: float | np.ndarray) -> np.ndarray:
    """Series combination a·b/(a+b), safely 0 when either plate is 0."""
    a = np.asarray(a, dtype=float)
    total = a + b
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(total > 0.0, a * b / np.where(total > 0.0, total, 1.0), 0.0)
    return out


@dataclass
class ScanResult:
    """Raw output of a full-array scan.

    Attributes
    ----------
    codes:
        (rows, cols) int array of measurement codes, 0..num_steps.
    vgs:
        (rows, cols) float array of internal V_GS values (simulation
        observability; not available on silicon).
    num_steps:
        The converter depth used.
    tiers:
        (rows, cols) array of 'c' (closed form) / 'e' (engine) markers
        recording which tier produced each cell.
    """

    codes: np.ndarray
    vgs: np.ndarray
    num_steps: int
    tiers: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the scanned array."""
        return self.codes.shape  # type: ignore[return-value]

    def code_histogram(self) -> dict[int, int]:
        """Count of cells per code value (only non-zero entries)."""
        values, counts = np.unique(self.codes, return_counts=True)
        return {int(v): int(n) for v, n in zip(values, counts)}

    def diff(self, reference: "ScanResult") -> np.ndarray:
        """Per-cell code delta against a reference scan (self − ref).

        Golden-die subtraction: comparing a die against a known-good
        reference cancels the systematic background exactly (both carry
        the same macro parasitics), leaving process/instrument drift and
        defects.  Shapes and converter depths must match.
        """
        if reference.shape != self.shape:
            raise MeasurementError(
                f"scan shapes differ: {self.shape} vs {reference.shape}"
            )
        if reference.num_steps != self.num_steps:
            raise MeasurementError("scans use different converter depths")
        return self.codes - reference.codes


class ArrayScanner:
    """Scan every cell of an array through its macro structures.

    Parameters
    ----------
    array:
        The eDRAM array to scan.
    structure:
        The measurement structure design shared by all macros (they are
        identical copies in silicon).  Defaults to the reference design;
        for non-reference macro geometries pass a structure produced by
        :func:`repro.calibration.design.design_structure` so the code
        scale matches the capacitance range.
    """

    def __init__(self, array: EDRAMArray, structure: MeasurementStructure | None = None) -> None:
        self.array = array
        self.structure = (
            structure
            if structure is not None
            else MeasurementStructure(array.tech, MeasurementDesign())
        )
        self._boundaries = self._code_boundaries()

    def _code_boundaries(self) -> np.ndarray:
        """V_GS levels at which the code increments (length num_steps)."""
        s = self.structure
        return np.array(
            [s.vgs_for_code_boundary(k) for k in range(1, s.design.num_steps + 1)]
        )

    def codes_for_vgs(self, vgs: np.ndarray) -> np.ndarray:
        """Vectorized static conversion (matches ``code_for_vgs``)."""
        return np.searchsorted(self._boundaries, np.asarray(vgs), side="right")

    # ------------------------------------------------------------------
    # Closed form per macro
    # ------------------------------------------------------------------

    def _macro_masks(self, macro: MacroCell) -> dict[str, np.ndarray]:
        rows, mc = macro.rows, self.array.macro_cols
        cap = np.zeros((rows, mc))
        short = np.zeros((rows, mc), dtype=bool)
        open_ = np.zeros((rows, mc), dtype=bool)
        accopen = np.zeros((rows, mc), dtype=bool)
        for r in range(rows):
            for c in range(mc):
                cell = macro.cell(r, c)
                cap[r, c] = cell.capacitance
                short[r, c] = cell.has_defect(DefectKind.SHORT)
                open_[r, c] = cell.has_defect(DefectKind.OPEN)
                accopen[r, c] = cell.has_defect(DefectKind.ACCESS_OPEN)
        return {"cap": cap, "short": short, "open": open_, "accopen": accopen}

    def closed_form_vgs(self, macro: MacroCell) -> np.ndarray:
        """V_GS for every cell of ``macro`` via the vectorized closed form."""
        tech = self.structure.tech
        m = self._macro_masks(macro)
        cap, short, open_, accopen = m["cap"], m["short"], m["open"], m["accopen"]
        normal = ~(short | open_ | accopen)
        cjs = tech.storage_junction_cap
        cbl = macro.bitline_capacitance
        cpp = macro.plate_parasitic
        creft = self.structure.c_ref_total
        vdd = tech.vdd

        # Branch equivalents per cell in each role (all pre-charged V_DD).
        floating_series = _series(cap, cjs)  # far side floats on C_js
        off_term = np.where(normal | accopen, floating_series, 0.0)
        off_term = np.where(short, cjs, off_term)

        nbr_term = np.where(normal, _series(cap, cbl + cjs), 0.0)
        nbr_term = np.where(accopen, floating_series, nbr_term)
        nbr_term = np.where(short, cbl + cjs, nbr_term)

        tgt_term = np.where(normal, cap, 0.0)
        tgt_term = np.where(accopen, floating_series, tgt_term)

        off_all = float(off_term.sum())
        off_rows = off_term.sum(axis=1)  # per-row totals
        nbr_rows = nbr_term.sum(axis=1)

        x = (
            tgt_term
            + cpp
            + (nbr_rows[:, None] - nbr_term)
            + (off_all - off_rows)[:, None]
        )
        vgs = vdd * x / (x + creft)
        # A shorted target clamps the plate to its grounded bitline.
        vgs = np.where(short, 0.0, vgs)
        return vgs

    # ------------------------------------------------------------------
    # Scan drivers
    # ------------------------------------------------------------------

    def _macro_needs_engine(self, macro: MacroCell) -> bool:
        """Bridges (own or incoming) force the exact engine."""
        for r in macro.row_range:
            for c in macro.columns:
                if self.array.cell(r, c).has_defect(DefectKind.BRIDGE):
                    return True
            if macro.col_start > 0 and self.array.cell(
                r, macro.col_start - 1
            ).has_defect(DefectKind.BRIDGE):
                return True
        return False

    def scan_macro(self, macro: MacroCell, force_engine: bool = False) -> tuple[np.ndarray, np.ndarray, str]:
        """Scan one macro; returns (vgs, codes, tier_marker)."""
        if force_engine or self._macro_needs_engine(macro):
            sequencer = MeasurementSequencer(macro, self.structure)
            mc = self.array.macro_cols
            vgs = np.zeros((macro.rows, mc))
            for r in range(macro.rows):
                for c in range(mc):
                    vgs[r, c] = sequencer.measure_charge(r, c).vgs
            return vgs, self.codes_for_vgs(vgs), "e"
        vgs = self.closed_form_vgs(macro)
        return vgs, self.codes_for_vgs(vgs), "c"

    def scan(self, force_engine: bool = False) -> ScanResult:
        """Scan the whole array; returns the assembled :class:`ScanResult`."""
        rows, cols = self.array.rows, self.array.cols
        codes = np.zeros((rows, cols), dtype=int)
        vgs = np.zeros((rows, cols))
        tiers = np.full((rows, cols), "c", dtype="<U1")
        for macro in self.array.macros():
            m_vgs, m_codes, tier = self.scan_macro(macro, force_engine)
            rsl = slice(macro.row_start, macro.row_stop)
            csl = slice(macro.col_start, macro.col_stop)
            vgs[rsl, csl] = m_vgs
            codes[rsl, csl] = m_codes
            tiers[rsl, csl] = tier
        return ScanResult(
            codes=codes, vgs=vgs, num_steps=self.structure.design.num_steps, tiers=tiers
        )

    def measure_cell(self, row: int, col: int, tier: str = "charge") -> "object":
        """Measure one cell by global address through a named tier.

        ``tier`` is ``"charge"`` or ``"transient"``; returns the
        :class:`~repro.measure.result.MeasurementResult`.
        """
        if tier not in ("charge", "transient"):
            raise MeasurementError(f"unknown tier {tier!r}")
        macro = self.array.macro(self.array.macro_of(row, col))
        lrow = row - macro.row_start
        lcol = col - macro.col_start
        sequencer = MeasurementSequencer(macro, self.structure)
        if tier == "charge":
            return sequencer.measure_charge(lrow, lcol)
        return sequencer.measure_transient(lrow, lcol)
