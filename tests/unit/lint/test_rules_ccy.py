"""Concurrency rules (CCY001-004): fork races, handoff, shm, fingerprint."""

from repro.lint import REGISTRY, LintReport, lint_project, lint_source
from repro.lint.diagnostics import Severity


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# CCY001 fork-captured-global-write
# ----------------------------------------------------------------------

WORKER_WRITES_GLOBAL = """\
_CACHE = {}

def _init_worker(scanner):
    _CACHE["scanner"] = scanner
"""


def test_ccy001_flags_worker_write_to_module_global(tmp_path):
    path = _write(tmp_path, "pool.py", WORKER_WRITES_GLOBAL)
    report = lint_source([path], only=("CCY001",))
    assert report.codes() == {"CCY001"}
    d = next(iter(report))
    assert "_CACHE" in d.nodes
    assert "fork-captured" in d.message
    assert str(path) in (d.location or "")


def test_ccy001_reaches_through_helper_calls(tmp_path):
    body = (
        "_STATE = []\n"
        "def _helper(x):\n"
        "    _STATE.append(x)\n"
        "def _scan_one(task):\n"
        "    _helper(task)\n"
    )
    report = lint_source([_write(tmp_path, "pool.py", body)], only=("CCY001",))
    assert report.codes() == {"CCY001"}
    assert "_helper" in next(iter(report)).message


def test_ccy001_flags_initializer_keyword_entry(tmp_path):
    body = (
        "_STATE = {}\n"
        "def _setup(x):\n"
        "    _STATE[0] = x\n"
        "def start(pool_cls):\n"
        "    return pool_cls(initializer=_setup, initargs=(1,))\n"
    )
    report = lint_source([_write(tmp_path, "pool.py", body)], only=("CCY001",))
    assert report.codes() == {"CCY001"}


def test_ccy001_flags_global_rebind(tmp_path):
    body = (
        "_PLAN = None\n"
        "def _init_worker(plan):\n"
        "    global _PLAN\n"
        "    _PLAN = plan\n"
    )
    report = lint_source([_write(tmp_path, "pool.py", body)], only=("CCY001",))
    assert report.codes() == {"CCY001"}
    assert "rebinds" in next(iter(report)).message


def test_ccy001_pragma_suppresses(tmp_path):
    body = (
        "_CACHE = {}\n"
        "def _init_worker(s):\n"
        "    _CACHE['s'] = s  # lint: allow-worker-state\n"
    )
    assert len(lint_source([_write(tmp_path, "pool.py", body)],
                           only=("CCY001",))) == 0


def test_ccy001_local_shadow_is_clean(tmp_path):
    body = (
        "_CACHE = {}\n"
        "def _scan_one(task):\n"
        "    _CACHE = {}\n"
        "    _CACHE['t'] = task\n"
        "    return _CACHE\n"
    )
    assert len(lint_source([_write(tmp_path, "pool.py", body)],
                           only=("CCY001",))) == 0


def test_ccy001_no_worker_entry_means_no_findings(tmp_path):
    body = "_CACHE = {}\ndef install(s):\n    _CACHE['s'] = s\n"
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY001",))) == 0


def test_ccy001_test_files_exempt(tmp_path):
    path = _write(tmp_path, "test_pool.py", WORKER_WRITES_GLOBAL)
    assert len(lint_source([path], only=("CCY001",))) == 0


# ----------------------------------------------------------------------
# CCY002 mutation-after-handoff
# ----------------------------------------------------------------------


def test_ccy002_flags_append_after_submit(tmp_path):
    body = (
        "def drive(pool):\n"
        "    tasks = [1, 2]\n"
        "    pool.run(tasks)\n"
        "    tasks.append(3)\n"
    )
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("CCY002",))
    assert report.codes() == {"CCY002"}
    assert "tasks" in next(iter(report)).nodes


def test_ccy002_flags_initargs_then_item_assign(tmp_path):
    body = (
        "def start(pool_cls, plan):\n"
        "    pool_cls(initializer=f, initargs=(plan,))\n"
        "    plan['extra'] = 1\n"
        "def f(p):\n"
        "    return p\n"
    )
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("CCY002",))
    assert report.codes() == {"CCY002"}


def test_ccy002_mutation_before_handoff_is_clean(tmp_path):
    body = (
        "def drive(pool):\n"
        "    tasks = []\n"
        "    tasks.append(1)\n"
        "    pool.run(tasks)\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY002",))) == 0


def test_ccy002_rebinding_after_handoff_is_clean(tmp_path):
    body = (
        "def drive(pool):\n"
        "    tasks = [1]\n"
        "    pool.run(tasks)\n"
        "    tasks = [2]\n"
        "    return tasks\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY002",))) == 0


def test_ccy002_pragma_suppresses(tmp_path):
    body = (
        "def drive(pool):\n"
        "    tasks = [1]\n"
        "    pool.run(tasks)\n"
        "    tasks.append(2)  # lint: allow-handoff-mutation\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY002",))) == 0


# ----------------------------------------------------------------------
# CCY003 shm-missing-cleanup
# ----------------------------------------------------------------------


def test_ccy003_flags_create_without_any_teardown(tmp_path):
    body = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def alloc(n):\n"
        "    return SharedMemory(create=True, size=n)\n"
    )
    report = lint_source([_write(tmp_path, "mod.py", body)], only=("CCY003",))
    messages = " ".join(d.message for d in report)
    assert len(report) == 2
    assert "unlink" in messages
    assert "atexit" in messages


def test_ccy003_unlink_plus_atexit_is_clean(tmp_path):
    body = (
        "import atexit\n"
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def alloc(n):\n"
        "    seg = SharedMemory(create=True, size=n)\n"
        "    atexit.register(close)\n"
        "    return seg\n"
        "def close():\n"
        "    seg.close()\n"
        "    seg.unlink()\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY003",))) == 0


def test_ccy003_attach_without_create_is_clean(tmp_path):
    body = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def attach(name):\n"
        "    return SharedMemory(name=name)\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY003",))) == 0


def test_ccy003_pragma_suppresses(tmp_path):
    body = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def alloc(n):\n"
        "    return SharedMemory(create=True, size=n)  # lint: allow-shm-lifecycle\n"
    )
    assert len(lint_source([_write(tmp_path, "mod.py", body)],
                           only=("CCY003",))) == 0


# ----------------------------------------------------------------------
# CCY004 fingerprint-drift (project target)
# ----------------------------------------------------------------------


def _run_ccy004(**context):
    # The synthetic-set tests probe the consistency checks in isolation;
    # pinned-field enforcement has its own tests below.
    context.setdefault("pinned_fields", ())
    spec = REGISTRY.get("CCY004")
    report = LintReport()
    report.extend(spec.run(None, context))
    return report


def test_ccy004_live_codebase_is_clean():
    assert lint_project(only=("CCY004",)).ok


def test_ccy004_missing_data_field_is_error():
    report = _run_ccy004(
        data_fields=["jobs", "tier", "oversample"],
        fingerprint_keys={"jobs", "tier"},
        resume_keys={"tier"},
    )
    assert not report.ok
    assert any("oversample" in d.message for d in report.errors)


def test_ccy004_stale_fingerprint_key_is_warning():
    report = _run_ccy004(
        data_fields=["jobs", "tier"],
        fingerprint_keys={"jobs", "tier", "ghost"},
        resume_keys={"tier", "ghost"},
    )
    assert report.ok  # warnings only
    warning = next(iter(report.warnings))
    assert warning.severity is Severity.WARNING
    assert "ghost" in warning.message


def test_ccy004_resume_must_be_fingerprint_minus_jobs():
    report = _run_ccy004(
        data_fields=["jobs", "tier"],
        fingerprint_keys={"jobs", "tier"},
        resume_keys={"jobs", "tier"},
    )
    assert not report.ok
    assert any("resume_fingerprint" in d.message for d in report.errors)


def test_ccy004_pinned_field_present_everywhere_is_clean():
    report = _run_ccy004(
        data_fields=["jobs", "tier", "technology"],
        fingerprint_keys={"jobs", "tier", "technology"},
        resume_keys={"tier", "technology"},
        pinned_fields=("technology",),
    )
    assert report.ok


def test_ccy004_pinned_field_dropped_everywhere_is_error():
    # Flipping technology to compare=False AND dropping it from both
    # fingerprints is self-consistent — only the pinned check sees it.
    report = _run_ccy004(
        data_fields=["jobs", "tier"],
        fingerprint_keys={"jobs", "tier"},
        resume_keys={"tier"},
        pinned_fields=("technology",),
    )
    assert not report.ok
    errors = [d for d in report.errors if "pinned" in d.message]
    assert errors and "technology" in errors[0].message


def test_ccy004_pinned_field_missing_from_resume_only_is_error():
    report = _run_ccy004(
        data_fields=["jobs", "tier", "technology"],
        fingerprint_keys={"jobs", "tier", "technology"},
        resume_keys={"tier"},
        pinned_fields=("technology",),
    )
    assert not report.ok
    assert any(
        "pinned" in d.message and "resume_fingerprint" in d.message
        for d in report.errors
    )


def test_ccy004_live_codebase_pins_technology():
    # The live introspection path (no context overrides) must see
    # ScanConfig.technology in all three sets — this is the guard the
    # satellite task asks for.
    from dataclasses import fields as dataclass_fields

    from repro.measure.config import ScanConfig
    from repro.obs.ledger import config_fingerprint
    from repro.resilience.checkpoint import resume_fingerprint

    probe = ScanConfig()
    assert "technology" in {f.name for f in dataclass_fields(ScanConfig) if f.compare}
    assert "technology" in config_fingerprint(probe)
    assert "technology" in resume_fingerprint(probe)
    assert lint_project(only=("CCY004",)).ok
