"""Scan telemetry: wall time, tier mix, throughput, per-macro timings.

Production test economics are throughput economics — the paper's
structure wins because it measures every cell in microseconds, and the
ROADMAP's north star is a scan that runs as fast as the hardware allows.
:class:`ScanStats` makes that measurable: every
:meth:`~repro.measure.scan.ArrayScanner.scan` attaches one to its
:class:`~repro.measure.scan.ScanResult`, recording how long the scan
took, which execution tier handled how many cells, and how each
macro-cell contributed.  The CLI prints the summary;
``benchmarks/bench_perf_scan.py`` serialises it into ``BENCH_scan.json``
so the repository keeps a performance trajectory across changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple


class MacroTiming(NamedTuple):
    """Timing of one macro-cell scan.

    A NamedTuple, not a dataclass: a whole-array scan constructs one per
    macro even on the vectorized-kernel fast path (where per-macro wall
    time is apportioned from the single kernel pass), and tuple
    construction is what keeps that bookkeeping invisible next to a
    sub-millisecond scan.

    Attributes
    ----------
    index:
        Macro index (row-major tile order).
    tier:
        ``'c'`` closed form / ``'e'`` exact engine.
    cells:
        Cells in the macro tile.
    seconds:
        Wall time spent scanning the tile.  Under a process pool this is
        measured inside the worker, so pool dispatch overhead is not
        attributed to any macro; under the vectorized kernel it is the
        macro's cell-proportional share of the one batched pass.
    """

    index: int
    tier: str
    cells: int
    seconds: float


@dataclass
class ScanStats:
    """Telemetry of one whole-array scan.

    Attributes
    ----------
    total_cells:
        Cells scanned (rows × cols).
    wall_seconds:
        End-to-end scan wall time, including assembly and (for parallel
        scans) pool start-up and result collection.
    jobs:
        Worker processes used (1 = serial in-process scan).
    closed_form_cells, engine_cells:
        Cells produced by the vectorized closed form vs the exact
        charge engine (bridge fallback / ``force_engine``).
    kernel_cells, kernel_seconds:
        Cells produced by the whole-array batched kernel and the wall
        time of that single pass (a subset of the closed-form cells;
        both 0 when the scan ran the per-macro drivers).
    macro_timings:
        Per-macro timings, in macro-index order.
    degraded_cells, failed_cells:
        Cells whose value came from a fallback rung (DEGRADED) or is a
        flagged placeholder (FAILED) — see
        :class:`repro.resilience.CellQuality`.
    macro_retries, macro_timeouts, worker_respawns:
        Supervision telemetry of the parallel scan: macro tasks retried
        after a failure, tasks killed for exceeding their wall-clock
        budget, and worker processes respawned after dying.  All zero
        for serial scans and healthy pools.
    pool_health:
        Per-worker health snapshots from the pool's final heartbeat
        (``worker_id`` / ``pid`` / ``generation`` / ``tasks_completed``
        / ``busy_seconds`` / ``idle_seconds`` / ``rss_kb`` / ``alive``),
        in worker-slot order.  Empty for serial scans.
    """

    total_cells: int
    wall_seconds: float
    jobs: int
    closed_form_cells: int
    engine_cells: int
    macro_timings: list[MacroTiming] = field(default_factory=list)
    kernel_cells: int = 0
    kernel_seconds: float = 0.0
    degraded_cells: int = 0
    failed_cells: int = 0
    macro_retries: int = 0
    macro_timeouts: int = 0
    worker_respawns: int = 0
    pool_health: list[dict] = field(default_factory=list)

    @property
    def cells_per_second(self) -> float:
        """Scan throughput; the headline production-test figure."""
        if self.wall_seconds <= 0.0:
            return float("inf") if self.total_cells else 0.0
        return self.total_cells / self.wall_seconds

    def slowest_macro(self) -> MacroTiming | None:
        """The macro that took longest, or None for empty scans."""
        if not self.macro_timings:
            return None
        return max(self.macro_timings, key=lambda t: t.seconds)

    def timing_summary(self) -> dict[str, float]:
        """p50/p95/max of the per-macro seconds.

        The compact form history files persist: hundreds of per-macro
        tuples per benchmark entry ballooned ``BENCH_scan.json``, and
        the distribution tails are what regressions show up in anyway.
        """
        seconds = sorted(t.seconds for t in self.macro_timings)
        return {
            "p50": _percentile(seconds, 0.50),
            "p95": _percentile(seconds, 0.95),
            "max": seconds[-1] if seconds else 0.0,
        }

    def to_metrics(self, registry) -> None:
        """Fold this scan's telemetry into a metrics registry.

        Counters accumulate across scans sharing the registry (a wafer
        of dies adds up); gauges describe the most recent scan.  The
        no-op registry absorbs everything, so callers can publish
        unconditionally.
        """
        registry.counter("scan.runs", "whole-array scans executed").inc()
        registry.counter("scan.cells", "cells scanned").inc(self.total_cells)
        registry.counter(
            "scan.cells_closed_form", "cells via the vectorized closed form"
        ).inc(self.closed_form_cells)
        registry.counter(
            "scan.cells_engine", "cells via the exact charge engine"
        ).inc(self.engine_cells)
        registry.gauge("scan.wall_seconds", "last scan wall time").set(
            self.wall_seconds
        )
        registry.gauge("scan.cells_per_second", "last scan throughput").set(
            self.cells_per_second
        )
        registry.gauge("scan.jobs", "last scan worker count").set(self.jobs)
        if self.kernel_cells:
            registry.counter(
                "scan.cells_kernel", "cells via the whole-array batched kernel"
            ).inc(self.kernel_cells)
            registry.gauge(
                "scan.kernel_seconds", "last batched-kernel pass wall time"
            ).set(self.kernel_seconds)
        registry.histogram(
            "scan.macro_seconds", "per-macro scan wall time"
        ).observe_many(t.seconds for t in self.macro_timings)
        if self.degraded_cells:
            registry.counter(
                "scan.cells_degraded", "cells produced by a fallback rung"
            ).inc(self.degraded_cells)
        if self.failed_cells:
            registry.counter(
                "scan.cells_failed", "cells flagged FAILED (placeholder value)"
            ).inc(self.failed_cells)
        if self.macro_retries:
            registry.counter(
                "scan.macro_retries", "macro tasks retried after a failure"
            ).inc(self.macro_retries)
        if self.macro_timeouts:
            registry.counter(
                "scan.macro_timeouts", "macro tasks killed for exceeding timeout"
            ).inc(self.macro_timeouts)
        if self.worker_respawns:
            registry.counter(
                "scan.worker_respawns", "worker processes respawned after dying"
            ).inc(self.worker_respawns)

    def to_dict(self) -> dict:
        """JSON-ready view (macro timings as plain lists)."""
        return {
            "total_cells": self.total_cells,
            "wall_seconds": self.wall_seconds,
            "jobs": self.jobs,
            "cells_per_second": self.cells_per_second,
            "closed_form_cells": self.closed_form_cells,
            "engine_cells": self.engine_cells,
            "kernel_cells": self.kernel_cells,
            "kernel_seconds": self.kernel_seconds,
            "macro_timings": [
                [t.index, t.tier, t.cells, t.seconds] for t in self.macro_timings
            ],
            "degraded_cells": self.degraded_cells,
            "failed_cells": self.failed_cells,
            "macro_retries": self.macro_retries,
            "macro_timeouts": self.macro_timeouts,
            "worker_respawns": self.worker_respawns,
            "pool_health": [dict(h) for h in self.pool_health],
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (printed by the CLI)."""
        lines = [
            f"scan: {self.total_cells} cells in {self.wall_seconds:.3f} s "
            f"({self.cells_per_second:,.0f} cells/s, jobs={self.jobs})",
            f"tiers: {self.closed_form_cells} closed-form, "
            f"{self.engine_cells} engine",
        ]
        if self.kernel_cells:
            lines.append(
                f"kernel: {self.kernel_cells} cells in one batched pass "
                f"({self.kernel_seconds * 1e3:.2f} ms)"
            )
        if self.degraded_cells or self.failed_cells:
            lines.append(
                f"quality: {self.degraded_cells} degraded, "
                f"{self.failed_cells} failed"
            )
        if self.macro_retries or self.macro_timeouts or self.worker_respawns:
            lines.append(
                f"supervision: {self.macro_retries} retries, "
                f"{self.macro_timeouts} timeouts, "
                f"{self.worker_respawns} respawns"
            )
        if self.pool_health:
            busy = sum(h.get("busy_seconds", 0.0) for h in self.pool_health)
            rss = max(h.get("rss_kb", 0.0) for h in self.pool_health)
            lines.append(
                f"pool: {len(self.pool_health)} workers, "
                f"{busy:.3f} s busy, peak rss {rss:,.0f} KiB"
            )
        slowest = self.slowest_macro()
        if slowest is not None:
            tier = "engine" if slowest.tier == "e" else "closed-form"
            lines.append(
                f"slowest macro: #{slowest.index} ({tier}, {slowest.cells} cells) "
                f"{slowest.seconds * 1e3:.2f} ms"
            )
        return "\n".join(lines)


def _percentile(sorted_values: list[float], p: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    k = (len(sorted_values) - 1) * p
    lo = int(k)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (k - lo)
