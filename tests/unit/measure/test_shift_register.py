"""Shift register (thermometer-coded current-step counter)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.shift_register import ShiftRegister


def test_initial_state_empty():
    sr = ShiftRegister(20)
    assert sr.count == 0
    assert not sr.frozen
    assert sr.is_thermometer()


def test_clocking_shifts_ones_in():
    sr = ShiftRegister(20)
    for _ in range(5):
        sr.clock()
    assert sr.count == 5
    assert sr.bits[:6] == [True] * 5 + [False]
    assert sr.is_thermometer()


def test_clocking_saturates_at_length():
    sr = ShiftRegister(3)
    for _ in range(10):
        sr.clock()
    assert sr.count == 3


def test_freeze_blocks_further_clocks():
    sr = ShiftRegister(4)
    sr.clock()
    sr.freeze()
    with pytest.raises(MeasurementError):
        sr.clock()


def test_code_extraction_is_count_minus_one():
    # Flip during step k leaves k ones -> code k-1 completed steps.
    sr = ShiftRegister(20)
    for _ in range(7):
        sr.clock()
    sr.freeze()
    assert sr.extract_code() == 6


def test_flip_on_first_step_gives_code_zero():
    sr = ShiftRegister(20)
    sr.clock()
    sr.freeze()
    assert sr.extract_code() == 0


def test_never_frozen_gives_full_scale():
    sr = ShiftRegister(20)
    for _ in range(20):
        sr.clock()
    assert sr.extract_code() == 20


def test_reset():
    sr = ShiftRegister(5)
    sr.clock()
    sr.freeze()
    sr.reset()
    assert sr.count == 0
    assert not sr.frozen
    sr.clock()  # must not raise


def test_corrupted_state_detected():
    sr = ShiftRegister(4)
    sr._bits = [True, False, True, False]  # not thermometer
    assert not sr.is_thermometer()
    with pytest.raises(MeasurementError):
        sr.extract_code()


def test_length_validation():
    with pytest.raises(MeasurementError):
        ShiftRegister(0)


def test_bits_returns_copy():
    sr = ShiftRegister(4)
    bits = sr.bits
    bits[0] = True
    assert sr.count == 0
