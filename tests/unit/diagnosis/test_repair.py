"""BISR redundancy allocation."""

import numpy as np
import pytest

from repro.diagnosis.repair import RepairPlanner
from repro.errors import DiagnosisError


def _fails(shape, cells):
    m = np.zeros(shape, dtype=bool)
    for r, c in cells:
        m[r, c] = True
    return m


def test_validation():
    with pytest.raises(DiagnosisError):
        RepairPlanner(-1, 0)
    with pytest.raises(DiagnosisError):
        RepairPlanner(1, 1).plan(np.zeros((2, 2)))


def test_no_failures_no_spares_used():
    plan = RepairPlanner(2, 2).plan(_fails((8, 8), []))
    assert plan.success
    assert plan.spare_rows_used == []
    assert plan.spare_cols_used == []


def test_single_cell_uses_one_spare():
    plan = RepairPlanner(1, 1).plan(_fails((8, 8), [(3, 4)]))
    assert plan.success
    assert len(plan.spare_rows_used) + len(plan.spare_cols_used) == 1
    assert plan.covers(3, 4)


def test_row_failure_takes_spare_row():
    cells = [(2, c) for c in range(8)]
    plan = RepairPlanner(1, 2).plan(_fails((8, 8), cells))
    assert plan.success
    assert plan.spare_rows_used == [2]
    assert plan.spare_cols_used == []


def test_column_failure_takes_spare_col():
    cells = [(r, 5) for r in range(8)]
    plan = RepairPlanner(2, 1).plan(_fails((8, 8), cells))
    assert plan.success
    assert plan.spare_cols_used == [5]


def test_must_repair_forces_allocation():
    # Row 0 has 3 fails but only 2 spare columns exist: row 0 MUST take a
    # spare row, leaving the isolated fail to a column.
    cells = [(0, 0), (0, 3), (0, 6), (5, 2)]
    plan = RepairPlanner(1, 2).plan(_fails((8, 8), cells))
    assert plan.success
    assert 0 in plan.spare_rows_used


def test_cross_pattern_solved():
    cells = [(3, c) for c in range(8)] + [(r, 4) for r in range(8)]
    plan = RepairPlanner(1, 1).plan(_fails((8, 8), cells))
    assert plan.success
    assert plan.spare_rows_used == [3]
    assert plan.spare_cols_used == [4]


def test_unrepairable_reports_uncovered():
    cells = [(r, r) for r in range(5)]  # diagonal needs 5 spares
    plan = RepairPlanner(1, 1).plan(_fails((8, 8), cells))
    assert not plan.success
    assert len(plan.uncovered) == 3


def test_zero_budget():
    plan = RepairPlanner(0, 0).plan(_fails((4, 4), [(1, 1)]))
    assert not plan.success
    assert plan.uncovered == [(1, 1)]


def test_greedy_prefers_denser_line():
    # One row with 3 fails vs one column with 2: single spare row budget
    # should go to the row.
    cells = [(2, 1), (2, 4), (2, 6), (0, 7), (5, 7)]
    plan = RepairPlanner(1, 1).plan(_fails((8, 8), cells))
    assert plan.success
    assert plan.spare_rows_used == [2]
    assert plan.spare_cols_used == [7]
