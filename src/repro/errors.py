"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of plain dicts, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate element, ...)."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    Attributes
    ----------
    iterations:
        Number of Newton iterations performed before giving up.
    residual:
        Final residual norm (amps for KCL residuals).
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SingularCircuitError(ReproError):
    """The MNA system is singular (floating node, voltage-source loop, ...).

    Attributes
    ----------
    nodes:
        Names of the offending node(s), when the ERC diagnosis pass
        could identify them (empty tuple otherwise).
    diagnostics:
        Structured lint findings (``repro.lint`` Diagnostic objects)
        explaining the singularity, when available.
    """

    def __init__(
        self,
        message: str,
        nodes: tuple[str, ...] = (),
        diagnostics: tuple = (),
    ):
        super().__init__(message)
        self.nodes = nodes
        self.diagnostics = diagnostics


class TechnologyError(ReproError):
    """A technology card or device parameter set is invalid."""


class ArrayConfigError(ReproError):
    """An eDRAM array geometry or addressing request is invalid."""


class DefectError(ReproError):
    """A defect specification cannot be applied to the target array."""


class MeasurementError(ReproError):
    """The measurement structure was driven outside its legal flow."""


class ScanMismatchError(MeasurementError):
    """Two scans cannot be compared (shape, dtype or depth disagree).

    Raised by :meth:`repro.measure.scan.ScanResult.diff` (and the
    :class:`ScanResult` constructor's internal-consistency check) so a
    mismatched reference fails with the offending shapes named instead
    of a numpy broadcast error deep in array arithmetic.
    """


class ObservabilityError(ReproError):
    """The tracing/metrics subsystem was misused (misnested spans,
    metric kind conflict, malformed trace file, ...)."""


class LedgerError(ObservabilityError):
    """The run ledger was misused or is unreadable (unknown run id,
    malformed manifest line, missing artifact, ...)."""


class ResilienceError(ReproError):
    """The resilience subsystem was misused (malformed fault plan,
    invalid retry policy, checkpoint/config mismatch, ...)."""


class WorkerCrashError(ResilienceError):
    """A supervised worker process died while holding a task.

    Attributes
    ----------
    exitcode:
        The worker's exit code as reported by the OS (negative for
        signal deaths, following :class:`multiprocessing.Process`).
    """

    def __init__(self, message: str, exitcode: int | None = None):
        super().__init__(message)
        self.exitcode = exitcode


class TaskTimeoutError(ResilienceError):
    """A supervised task exceeded its wall-clock budget and was killed.

    Attributes
    ----------
    seconds:
        The per-task timeout that was exceeded.
    """

    def __init__(self, message: str, seconds: float = float("nan")):
        super().__init__(message)
        self.seconds = seconds


class CheckpointError(ResilienceError):
    """A scan/wafer checkpoint is unusable (unknown id, fingerprint
    mismatch against the resuming configuration, corrupted file, ...)."""


class FleetError(ResilienceError):
    """The fleet orchestrator cannot proceed (bad shard partition,
    shard fingerprint mismatch, unmergeable lot, corrupt lease, ...)."""


class CalibrationError(ReproError):
    """An abacus or specification window cannot be built or inverted."""


class DiagnosisError(ReproError):
    """A bitmap analysis or repair computation received invalid input."""


class LintError(ReproError):
    """The static-analysis subsystem was misused (unknown rule code,
    invalid target kind, unreadable source file, ...)."""


class SanitizeError(LintError):
    """The write-footprint sanitizer was misused or recorded impossible
    data (out-of-bounds interval, inverted bounds, shape mismatch)."""


class RuleViolation(LintError):
    """A lint/ERC pre-flight check found error-severity violations.

    Raised by ``ArrayScanner.scan(..., preflight=True)`` and
    ``MeasurementSequencer`` pre-flight so a structurally bad network is
    diagnosed with stable rule codes instead of a solver blow-up.

    Attributes
    ----------
    diagnostics:
        The offending ``repro.lint`` Diagnostic objects (error severity,
        unwaived), in report order.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = diagnostics
