"""Scan-engine performance: kernel vs per-macro serial vs the seed path.

Three generations of the same scan, pinned against each other on a
defect-free 128×64 array, all bit-identical:

1. **seed** — a scanner restored to per-cell Python walks (mask
   building, bridge routing, per-boundary bisection, a fresh sequencer
   per macro); the honest pre-optimisation baseline.
2. **cached serial** — the per-macro driver with incrementally
   maintained numpy matrices, the memoized boundary table and cached
   netlists (``use_kernel=False``).  Must stay ≥ 3× over seed.
3. **kernel** — the whole-array batched kernel
   (:mod:`repro.measure.kernel`): one vectorized pass over the bulk
   planes instead of 256 per-macro trips.  Must be ≥ 10× over the
   cached serial driver, and it owns the headline ``cells_per_second``.

``parallel4_seconds`` measures the shared-memory slab fan-out on a warm
persistent pool (the steady-state of repeated scans); the gate requires
it to beat the cached serial driver — process fan-out must never be
slower than the single-process per-macro path it replaces.

Results (cells/second, per-path timings, scan telemetry) are appended
to the ``BENCH_scan.json`` history list at the repo root — a
trajectory, not a snapshot.  Each entry carries a UTC timestamp and
the git revision it was measured at, so ``check_bench_history`` can
chart throughput across commits and flag regressions.

``bench_perf_scan_smoke`` is the CI guard: a small array, a single
round, a fraction of a second.  ``bench_perf_scan_trace_overhead``
pins the observability contract: a fully traced + metered engine-tier
scan must stay within 5% of the untraced wall time and produce
bit-identical codes.  ``bench_perf_scan_record_overhead`` pins the
same 5% budget for the run-ledger path: progress reporting plus
``--record``-style manifest + artifact capture.
"""

import gc
import json
import subprocess
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
from conftest import report

from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.edram.defects import DefectKind
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner, _series
from repro.measure.sequencer import MeasurementSequencer
from repro.obs import JsonlProgress, MetricsRegistry, RunLedger, Tracer
from repro.units import fF

ROWS, COLS = 128, 64
MACRO_ROWS, MACRO_COLS = 16, 2

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scan.json"
HISTORY_CAP = 100


def _git_rev():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_JSON.parent, capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _summarize_timings(entry):
    """Migrate an entry's bulky per-macro timings to the p50/p95/max form.

    Early history entries persisted every ``[index, tier, cells,
    seconds]`` tuple — hundreds of rows per entry.  New entries carry
    only ``macro_timing_summary``; old ones are rewritten to match the
    first time the history is touched.
    """
    from repro.measure.stats import _percentile

    stats = entry.get("stats") if isinstance(entry, dict) else None
    if not isinstance(stats, dict) or "macro_timings" not in stats:
        return
    seconds = sorted(row[3] for row in stats.pop("macro_timings"))
    stats["macro_timing_summary"] = {
        "p50": _percentile(seconds, 0.50),
        "p95": _percentile(seconds, 0.95),
        "max": seconds[-1] if seconds else 0.0,
    }


def _append_history(entry):
    """Append ``entry`` to the BENCH_scan.json trajectory.

    Pre-history snapshots (a bare dict) are migrated in place, per-macro
    timing lists in old entries are compacted to their summary form, and
    the list is capped so the file never grows without bound.
    """
    history = []
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except (OSError, ValueError):
            existing = []
        if isinstance(existing, list):
            history = existing
        elif isinstance(existing, dict):
            history = [existing]
    for old in history:
        _summarize_timings(old)
    history.append(entry)
    history = history[-HISTORY_CAP:]
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    return history


class _SeedScanner(ArrayScanner):
    """The scanner as it behaved before the performance layer.

    Restores the per-cell Python walks for mask building and bridge
    routing, the per-boundary bisection at construction, and a fresh
    sequencer per macro — the honest baseline, running on the same
    arrays through the same scan driver.
    """

    def __init__(self, array, structure):
        super().__init__(array, structure, use_kernel=False)
        s = self.structure
        self._seed_boundaries = np.array(
            [s.vgs_for_code_boundary(k) for k in range(1, s.design.num_steps + 1)]
        )

    def codes_for_vgs(self, vgs):
        return np.searchsorted(self._seed_boundaries, np.asarray(vgs), side="right")

    def _macro_masks(self, macro):
        rows, mc = macro.rows, self.array.macro_cols
        cap = np.zeros((rows, mc))
        short = np.zeros((rows, mc), dtype=bool)
        open_ = np.zeros((rows, mc), dtype=bool)
        accopen = np.zeros((rows, mc), dtype=bool)
        for r in range(rows):
            for c in range(mc):
                cell = macro.cell(r, c)
                cap[r, c] = cell.capacitance
                short[r, c] = cell.has_defect(DefectKind.SHORT)
                open_[r, c] = cell.has_defect(DefectKind.OPEN)
                accopen[r, c] = cell.has_defect(DefectKind.ACCESS_OPEN)
        return {"cap": cap, "short": short, "open": open_, "accopen": accopen}

    def closed_form_vgs(self, macro):
        tech = self.structure.tech
        m = self._macro_masks(macro)
        cap, short, open_, accopen = m["cap"], m["short"], m["open"], m["accopen"]
        normal = ~(short | open_ | accopen)
        cjs = tech.storage_junction_cap
        cbl = macro.bitline_capacitance
        cpp = macro.plate_parasitic
        creft = self.structure.c_ref_total
        vdd = tech.vdd

        floating_series = _series(cap, cjs)
        off_term = np.where(normal | accopen, floating_series, 0.0)
        off_term = np.where(short, cjs, off_term)

        nbr_term = np.where(normal, _series(cap, cbl + cjs), 0.0)
        nbr_term = np.where(accopen, floating_series, nbr_term)
        nbr_term = np.where(short, cbl + cjs, nbr_term)

        tgt_term = np.where(normal, cap, 0.0)
        tgt_term = np.where(accopen, floating_series, tgt_term)

        off_all = float(off_term.sum())
        off_rows = off_term.sum(axis=1)
        nbr_rows = nbr_term.sum(axis=1)

        x = (
            tgt_term
            + cpp
            + (nbr_rows[:, None] - nbr_term)
            + (off_all - off_rows)[:, None]
        )
        vgs = vdd * x / (x + creft)
        return np.where(short, 0.0, vgs)

    def _macro_needs_engine(self, macro):
        for r in macro.row_range:
            for c in macro.columns:
                if self.array.cell(r, c).has_defect(DefectKind.BRIDGE):
                    return True
            if macro.col_start > 0 and self.array.cell(
                r, macro.col_start - 1
            ).has_defect(DefectKind.BRIDGE):
                return True
        return False

    def _sequencer(self, macro):
        return MeasurementSequencer(macro, self.structure)


def _build(tech, rows=ROWS, cols=COLS):
    cap = compose_maps(
        uniform_map((rows, cols), 30 * fF),
        mismatch_map((rows, cols), 0.8 * fF, seed=7),
    )
    return EDRAMArray(rows, cols, tech=tech, macro_cols=MACRO_COLS,
                      macro_rows=MACRO_ROWS, capacitance_map=cap)


def _best_of(fn, repeats=3):
    """(best wall-seconds, last result) over ``repeats`` calls."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_perf_scan_speedup(benchmark, tech):
    array = _build(tech)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)

    kernel = ArrayScanner(array, structure)
    cached = ArrayScanner(array, structure, use_kernel=False)
    seed = _SeedScanner(array, structure)

    seed_seconds, seed_scan = _best_of(seed.scan)
    cached_seconds, cached_scan = _best_of(cached.scan)
    fast_scan = benchmark(kernel.scan)
    # Sub-millisecond timings on shared hardware need many samples for a
    # stable minimum; fold in the benchmark fixture's rounds (hundreds)
    # when available so one noisy 20-sample window cannot skew the
    # recorded throughput.
    kernel_seconds, _ = _best_of(kernel.scan, repeats=20)
    try:
        kernel_seconds = min(kernel_seconds, benchmark.stats.stats.min)
    except AttributeError:  # plain-function run without the fixture
        pass
    # Warm the persistent pool first: parallel4 pins the steady-state of
    # repeated scans (wafer runs), not the one-off fork cost.
    parallel_scan = kernel.scan(ScanConfig(jobs=4))
    parallel_seconds, parallel_scan = _best_of(
        lambda: kernel.scan(ScanConfig(jobs=4)), repeats=3
    )

    # The optimisations must be invisible in the data.
    assert np.array_equal(fast_scan.codes, seed_scan.codes)
    assert np.array_equal(fast_scan.vgs, seed_scan.vgs)
    assert np.array_equal(fast_scan.codes, cached_scan.codes)
    assert np.array_equal(fast_scan.vgs, cached_scan.vgs)
    assert np.array_equal(fast_scan.codes, parallel_scan.codes)
    assert np.array_equal(fast_scan.vgs, parallel_scan.vgs)
    assert fast_scan.stats.kernel_cells == array.num_cells

    speedup = seed_seconds / cached_seconds
    kernel_speedup = cached_seconds / kernel_seconds
    stats = fast_scan.stats
    stats_dict = stats.to_dict() if stats is not None else None
    if stats_dict is not None:
        # Per-macro tuples are too bulky for a history file; persist
        # the distribution summary instead.
        stats_dict.pop("macro_timings", None)
        stats_dict["macro_timing_summary"] = stats.timing_summary()
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "array": [ROWS, COLS],
        "macro": [MACRO_ROWS, MACRO_COLS],
        "seed_seconds": seed_seconds,
        "cached_serial_seconds": cached_seconds,
        "kernel_serial_seconds": kernel_seconds,
        "parallel4_seconds": parallel_seconds,
        "speedup_serial_vs_seed": speedup,
        "kernel_speedup_vs_serial": kernel_speedup,
        "cells_per_second": array.num_cells / kernel_seconds,
        "stats": stats_dict,
    }
    history = _append_history(entry)

    report(
        "PERF: batched kernel vs per-macro serial vs seed path",
        "\n".join([
            f"array {ROWS}x{COLS} ({array.num_macros} tiles of "
            f"{MACRO_ROWS}x{MACRO_COLS}), defect-free",
            f"seed path      : {seed_seconds * 1e3:8.1f} ms",
            f"cached serial  : {cached_seconds * 1e3:8.1f} ms  "
            f"({speedup:.1f}x over seed)",
            f"batched kernel : {kernel_seconds * 1e3:8.2f} ms  "
            f"({kernel_speedup:.1f}x over serial, "
            f"{array.num_cells / kernel_seconds:,.0f} cells/s)",
            f"parallel x4    : {parallel_seconds * 1e3:8.2f} ms  (warm pool)",
            f"appended to {BENCH_JSON.name} "
            f"({len(history)} entr{'y' if len(history) == 1 else 'ies'} "
            f"at {entry['git_rev']})",
        ]),
    )

    assert speedup >= 3.0, f"serial cached path only {speedup:.2f}x over seed"
    assert kernel_speedup >= 10.0, (
        f"batched kernel only {kernel_speedup:.2f}x over the per-macro "
        f"serial driver (needs >= 10x)"
    )
    assert parallel_seconds <= cached_seconds, (
        f"parallel x4 ({parallel_seconds * 1e3:.2f} ms) slower than the "
        f"cached serial driver ({cached_seconds * 1e3:.2f} ms)"
    )


def bench_perf_scan_trace_overhead(tech):
    """Observability guard: full tracing + metrics must cost < 5%.

    Engine-tier workload (``force_engine``) — the worst case for the
    tracer, since every cell opens six spans and the per-cell numeric
    work is smallest relative to the span machinery.

    Measurement notes, hard-won on shared hardware:

    - the second run of any back-to-back pair measures systematically
      slower (cache and scheduler disturbance), so each round
      alternates which path goes first and the comparison uses best-of
      minima — the least-disturbed observation of each path;
    - GC is paused during the timed region: the traced path allocates
      (spans), so cyclic collections — whose cost scales with the
      *session's* live-object count, not the scan's — would otherwise
      land only on one side of the comparison;
    - multi-second background-load bursts can still poison an entire
      measurement, so the gate allows up to three independent attempts
      and passes on the first one under budget.  A genuine regression
      fails all three deterministically.
    """
    rows, cols = 16, 4
    array = _build(tech, rows=rows, cols=cols)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=rows)
    scanner = ArrayScanner(array, structure)
    plain_config = ScanConfig(force_engine=True)
    baseline = scanner.scan(plain_config)  # warms the netlist cache

    def run_plain():
        t0 = time.perf_counter()
        scan = scanner.scan(plain_config)
        return time.perf_counter() - t0, scan

    def run_traced():
        tracer, metrics = Tracer(), MetricsRegistry()
        config = ScanConfig(force_engine=True, tracer=tracer, metrics=metrics)
        t0 = time.perf_counter()
        scan = scanner.scan(config)
        return time.perf_counter() - t0, scan, tracer

    traced_scan, tracer = None, None

    def measure():
        nonlocal traced_scan, tracer
        plain_times, traced_times = [], []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in range(20):
                if i % 2 == 0:
                    seconds, _ = run_plain()
                    plain_times.append(seconds)
                    seconds, traced_scan, tracer = run_traced()
                    traced_times.append(seconds)
                else:
                    seconds, traced_scan, tracer = run_traced()
                    traced_times.append(seconds)
                    seconds, _ = run_plain()
                    plain_times.append(seconds)
        finally:
            if gc_was_enabled:
                gc.enable()
        return min(plain_times), min(traced_times)

    attempts = []
    for _ in range(3):
        plain_best, traced_best = measure()
        attempts.append(traced_best / plain_best - 1)
        if attempts[-1] < 0.05:
            break
    overhead = min(attempts)

    # Observability must be invisible in the data...
    assert np.array_equal(traced_scan.codes, baseline.codes)
    assert np.array_equal(traced_scan.vgs, baseline.vgs)
    # ...and actually observing: one scan root, a span per cell, the
    # paper's five phases under each.
    assert len(tracer.roots()) == 1
    cell_spans = [s for s in tracer.spans if s.name == "cell"]
    assert len(cell_spans) == array.num_cells
    assert all(len(tracer.children(s)) == 5 for s in cell_spans)

    report(
        "PERF: tracer + metrics overhead on an engine-tier scan",
        "\n".join([
            f"array {rows}x{cols}, force_engine, {len(tracer)} spans/scan",
            f"plain  best-of-20: {plain_best * 1e3:8.2f} ms",
            f"traced best-of-20: {traced_best * 1e3:8.2f} ms",
            f"overhead         : {overhead * 100:+.2f}%  (budget < 5%, "
            f"{len(attempts)} attempt(s))",
        ]),
    )

    assert overhead < 0.05, (
        f"tracer overhead {overhead * 100:.2f}% exceeds 5% budget "
        f"(attempts: {', '.join(f'{a * 100:+.2f}%' for a in attempts)})"
    )


def bench_perf_scan_record_overhead(tech):
    """Run-ledger guard: progress + ``--record`` must cost < 5%.

    Same engine-tier workload and measurement discipline as the tracer
    gate (order-alternating rounds, GC paused, best-of minima, three
    independent attempts).  The recorded path streams JSONL progress
    events and writes a full manifest + npz artifact per scan — the
    whole ``repro scan --record --progress-jsonl`` hot path.
    """
    rows, cols = 16, 4
    array = _build(tech, rows=rows, cols=cols)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=rows)
    scanner = ArrayScanner(array, structure)
    plain_config = ScanConfig(force_engine=True)
    baseline = scanner.scan(plain_config)  # warms the netlist cache

    def run_plain():
        t0 = time.perf_counter()
        scan = scanner.scan(plain_config)
        return time.perf_counter() - t0, scan

    with tempfile.TemporaryDirectory() as tmp:
        ledger = RunLedger(Path(tmp) / "runs")
        progress_sink = open(Path(tmp) / "progress.jsonl", "w", encoding="utf-8")

        def run_recorded():
            config = ScanConfig(
                force_engine=True,
                progress=JsonlProgress(progress_sink),
                ledger=ledger,
            )
            t0 = time.perf_counter()
            scan = scanner.scan(config)
            return time.perf_counter() - t0, scan

        recorded_scan = None

        def measure():
            nonlocal recorded_scan
            plain_times, recorded_times = [], []
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for i in range(20):
                    if i % 2 == 0:
                        seconds, _ = run_plain()
                        plain_times.append(seconds)
                        seconds, recorded_scan = run_recorded()
                        recorded_times.append(seconds)
                    else:
                        seconds, recorded_scan = run_recorded()
                        recorded_times.append(seconds)
                        seconds, _ = run_plain()
                        plain_times.append(seconds)
            finally:
                if gc_was_enabled:
                    gc.enable()
            return min(plain_times), min(recorded_times)

        attempts = []
        try:
            for _ in range(3):
                plain_best, recorded_best = measure()
                attempts.append(recorded_best / plain_best - 1)
                if attempts[-1] < 0.05:
                    break
        finally:
            progress_sink.close()
        overhead = min(attempts)

        # Recording must be invisible in the data...
        assert np.array_equal(recorded_scan.codes, baseline.codes)
        assert np.array_equal(recorded_scan.vgs, baseline.vgs)
        # ...and actually recording: a manifest per recorded scan, each
        # with a loadable artifact that round-trips the codes.
        manifests = ledger.runs()
        assert len(manifests) >= 20
        assert all(m.kind == "scan" for m in manifests)
        reloaded = ledger.load_artifact(manifests[-1])
        assert np.array_equal(reloaded.codes, baseline.codes)

    report(
        "PERF: progress + run-ledger overhead on an engine-tier scan",
        "\n".join([
            f"array {rows}x{cols}, force_engine, manifest + npz + "
            f"JSONL progress per scan",
            f"plain    best-of-20: {plain_best * 1e3:8.2f} ms",
            f"recorded best-of-20: {recorded_best * 1e3:8.2f} ms",
            f"overhead           : {overhead * 100:+.2f}%  (budget < 5%, "
            f"{len(attempts)} attempt(s))",
        ]),
    )

    assert overhead < 0.05, (
        f"record overhead {overhead * 100:.2f}% exceeds 5% budget "
        f"(attempts: {', '.join(f'{a * 100:+.2f}%' for a in attempts)})"
    )


def bench_perf_scan_resilience_overhead(tech):
    """Resilience guard: armed supervision must cost < 5% on a clean scan.

    The resilience layer adds a fault-point probe per cell and macro, a
    quality plane per macro, and retry/timeout plumbing through the
    config.  On a *clean* scan (fault plan armed but empty, retry and
    timeout configured, nothing fires) all of that must be invisible:
    the probe is one context-variable read, the quality plane is zeros.
    Same engine-tier workload and measurement discipline as the tracer
    gate (order-alternating rounds, GC paused, best-of minima, three
    independent attempts).
    """
    from repro.resilience import FaultPlan, RetryPolicy

    rows, cols = 16, 4
    array = _build(tech, rows=rows, cols=cols)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=rows)
    scanner = ArrayScanner(array, structure)
    plain_config = ScanConfig(force_engine=True)
    armed_config = ScanConfig(
        force_engine=True,
        faults=FaultPlan([]),
        retry=RetryPolicy(),
        timeout=60.0,
    )
    baseline = scanner.scan(plain_config)  # warms the netlist cache

    def run(config):
        t0 = time.perf_counter()
        scan = scanner.scan(config)
        return time.perf_counter() - t0, scan

    armed_scan = None

    def measure():
        nonlocal armed_scan
        plain_times, armed_times = [], []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in range(20):
                if i % 2 == 0:
                    seconds, _ = run(plain_config)
                    plain_times.append(seconds)
                    seconds, armed_scan = run(armed_config)
                    armed_times.append(seconds)
                else:
                    seconds, armed_scan = run(armed_config)
                    armed_times.append(seconds)
                    seconds, _ = run(plain_config)
                    plain_times.append(seconds)
        finally:
            if gc_was_enabled:
                gc.enable()
        return min(plain_times), min(armed_times)

    attempts = []
    for _ in range(3):
        plain_best, armed_best = measure()
        attempts.append(armed_best / plain_best - 1)
        if attempts[-1] < 0.05:
            break
    overhead = min(attempts)

    # Supervision must be invisible in the data...
    assert np.array_equal(armed_scan.codes, baseline.codes)
    assert np.array_equal(armed_scan.vgs, baseline.vgs)
    # ...and the clean scan must report a clean quality plane.
    assert not armed_scan.quality.any()
    assert armed_scan.stats.degraded_cells == 0
    assert armed_scan.stats.failed_cells == 0

    report(
        "PERF: armed resilience overhead on a clean engine-tier scan",
        "\n".join([
            f"array {rows}x{cols}, force_engine, empty fault plan + "
            f"retry + timeout armed",
            f"plain best-of-20: {plain_best * 1e3:8.2f} ms",
            f"armed best-of-20: {armed_best * 1e3:8.2f} ms",
            f"overhead        : {overhead * 100:+.2f}%  (budget < 5%, "
            f"{len(attempts)} attempt(s))",
        ]),
    )

    assert overhead < 0.05, (
        f"resilience overhead {overhead * 100:.2f}% exceeds 5% budget "
        f"(attempts: {', '.join(f'{a * 100:+.2f}%' for a in attempts)})"
    )


def bench_perf_scan_registry_overhead(tech):
    """Technology-registry guard: indirection must cost < 5% on eDRAM.

    Every scan now resolves its cell-technology backend through
    ``repro.technologies.get`` (name lookup, cache probe, self-identity
    check) and dispatches the ``after_scan``/``extra_scalars`` hooks.
    On the warm eDRAM path all of that must be invisible: the instance
    cache is hot, the hooks are no-ops.  The baseline swaps the
    registry lookup for a pre-bound closure returning the cached
    backend — the idealized zero-indirection resolution — so the
    measured delta is exactly what the API seam added.  Same
    measurement discipline as the other overhead gates
    (order-alternating rounds, GC paused, best-of minima, three
    independent attempts).
    """
    import repro.technologies as technologies

    rows, cols = 16, 4
    array = _build(tech, rows=rows, cols=cols)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=rows)
    scanner = ArrayScanner(array, structure)
    config = ScanConfig(force_engine=True, technology="edram")
    baseline = scanner.scan(config)  # warms the netlist + instance caches

    registry_get = technologies.get
    backend = registry_get("edram")

    def direct_get(name):
        return backend

    def run():
        t0 = time.perf_counter()
        scan = scanner.scan(config)
        return time.perf_counter() - t0, scan

    registry_scan = None

    def measure():
        nonlocal registry_scan
        direct_times, registry_times = [], []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in range(20):
                first_direct = i % 2 == 0
                for arm_is_direct in (first_direct, not first_direct):
                    technologies.get = direct_get if arm_is_direct else registry_get
                    try:
                        seconds, scan = run()
                    finally:
                        technologies.get = registry_get
                    if arm_is_direct:
                        direct_times.append(seconds)
                    else:
                        registry_times.append(seconds)
                        registry_scan = scan
        finally:
            if gc_was_enabled:
                gc.enable()
        return min(direct_times), min(registry_times)

    attempts = []
    for _ in range(3):
        direct_best, registry_best = measure()
        attempts.append(registry_best / direct_best - 1)
        if attempts[-1] < 0.05:
            break
    overhead = min(attempts)

    # The indirection must be invisible in the data.
    assert np.array_equal(registry_scan.codes, baseline.codes)
    assert np.array_equal(registry_scan.vgs, baseline.vgs)
    assert registry_scan.stats.kernel_cells == 0  # force_engine honoured

    report(
        "PERF: technology-registry indirection on a warm eDRAM scan",
        "\n".join([
            f"array {rows}x{cols}, force_engine, hot instance cache",
            f"direct   best-of-20: {direct_best * 1e3:8.2f} ms",
            f"registry best-of-20: {registry_best * 1e3:8.2f} ms",
            f"overhead           : {overhead * 100:+.2f}%  (budget < 5%, "
            f"{len(attempts)} attempt(s))",
        ]),
    )

    assert overhead < 0.05, (
        f"registry overhead {overhead * 100:.2f}% exceeds 5% budget "
        f"(attempts: {', '.join(f'{a * 100:+.2f}%' for a in attempts)})"
    )


def bench_perf_scan_sanitize_overhead(tech):
    """Sanitizer guard: ``--sanitize`` must cost < 10% on a warm-pool scan.

    The write-footprint sanitizer ships a handful of ints per task back
    in the acknowledgements and audits them parent-side — the data plane
    never leaves shared memory, and because the sanitize flag rides in
    the *task* tuples (not the pool's init payload) the warm persistent
    pool is reused, so the audit must stay in the wall-time noise.
    Same measurement discipline as the other overhead gates
    (order-alternating rounds, GC paused, best-of minima, three
    independent attempts), on the kernel-parallel fan-out where the
    sanitizer actually runs.
    """
    rows = 2 * ROWS  # amortize the audit's fixed cost over a real scan
    array = _build(tech, rows=rows)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=rows)
    scanner = ArrayScanner(array, structure)
    plain_config = ScanConfig(jobs=2)
    sanitized_config = ScanConfig(jobs=2, sanitize=True)
    baseline = scanner.scan(plain_config)  # warms the persistent pool

    def run(config):
        t0 = time.perf_counter()
        scan = scanner.scan(config)
        return time.perf_counter() - t0, scan

    sanitized_scan = None

    def measure():
        nonlocal sanitized_scan
        plain_times, sanitized_times = [], []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in range(20):
                if i % 2 == 0:
                    seconds, _ = run(plain_config)
                    plain_times.append(seconds)
                    seconds, sanitized_scan = run(sanitized_config)
                    sanitized_times.append(seconds)
                else:
                    seconds, sanitized_scan = run(sanitized_config)
                    sanitized_times.append(seconds)
                    seconds, _ = run(plain_config)
                    plain_times.append(seconds)
        finally:
            if gc_was_enabled:
                gc.enable()
        return min(plain_times), min(sanitized_times)

    attempts = []
    for _ in range(3):
        plain_best, sanitized_best = measure()
        attempts.append(sanitized_best / plain_best - 1)
        if attempts[-1] < 0.10:
            break
    overhead = min(attempts)

    # The sanitizer must be invisible in the data...
    assert np.array_equal(sanitized_scan.codes, baseline.codes)
    assert np.array_equal(sanitized_scan.vgs, baseline.vgs)
    # ...and actually auditing: a clean report over a non-empty log.
    assert sanitized_scan.sanitize_report is not None
    assert sanitized_scan.sanitize_report.ok
    assert baseline.sanitize_report is None

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "kind": "sanitize_overhead",
        "array": [rows, COLS],
        "plain_seconds": plain_best,
        "sanitized_seconds": sanitized_best,
        "sanitize_overhead": overhead,
    }
    history = _append_history(entry)

    report(
        "PERF: write-footprint sanitizer overhead on a warm-pool scan",
        "\n".join([
            f"array {rows}x{COLS}, kernel-parallel x2, warm pool",
            f"plain     best-of-20: {plain_best * 1e3:8.2f} ms",
            f"sanitized best-of-20: {sanitized_best * 1e3:8.2f} ms",
            f"overhead            : {overhead * 100:+.2f}%  (budget < 10%, "
            f"{len(attempts)} attempt(s))",
            f"appended to {BENCH_JSON.name} ({len(history)} entries)",
        ]),
    )

    assert overhead < 0.10, (
        f"sanitize overhead {overhead * 100:.2f}% exceeds 10% budget "
        f"(attempts: {', '.join(f'{a * 100:+.2f}%' for a in attempts)})"
    )


def bench_perf_scan_smoke(benchmark, tech):
    """CI smoke: one round on a small array, stats sanity only."""
    array = _build(tech, rows=32, cols=8)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=32)
    scanner = ArrayScanner(array, structure)
    scan = benchmark.pedantic(scanner.scan, rounds=1, iterations=1)
    assert scan.stats is not None
    assert scan.stats.total_cells == array.num_cells
    assert scan.stats.cells_per_second > 0
    assert (scan.tiers == "c").all()
    # A defect-free un-instrumented scan must route through the kernel.
    assert scan.stats.kernel_cells == array.num_cells
    assert scan.stats.kernel_seconds > 0


def bench_perf_scan_parallel_trace_overhead(tech):
    """Distributed-tracing guard: ``--trace`` must cost < 15% on a warm
    parallel kernel scan.

    Tracing no longer disqualifies the shared-memory fast path: workers
    run a private :class:`Tracer` per task and ship compact span tuples
    back inside the acknowledgement, so the data plane stays in shared
    memory and only the control plane grows.  This gate pins that —
    a traced warm ``jobs=2`` scan must keep the kernel tier for every
    cell, produce bit-exact planes, merge spans from at least two
    distinct worker pids, and stay within 15% of the untraced wall time.
    Same measurement discipline as the other overhead gates
    (order-alternating rounds, GC paused, best-of minima, three
    independent attempts).
    """
    rows = 2 * ROWS  # amortize the per-task tracer setup over a real scan
    array = _build(tech, rows=rows)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=rows)
    scanner = ArrayScanner(array, structure)
    plain_config = ScanConfig(jobs=2)
    baseline = scanner.scan(plain_config)  # warms the persistent pool

    def run_plain():
        t0 = time.perf_counter()
        scanner.scan(plain_config)
        return time.perf_counter() - t0

    def run_traced():
        tracer = Tracer()
        t0 = time.perf_counter()
        scan = scanner.scan(ScanConfig(jobs=2, tracer=tracer))
        return time.perf_counter() - t0, scan, tracer

    traced_scan = traced_tracer = None

    def measure():
        nonlocal traced_scan, traced_tracer
        plain_times, traced_times = [], []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for i in range(20):
                if i % 2 == 0:
                    plain_times.append(run_plain())
                    seconds, traced_scan, traced_tracer = run_traced()
                    traced_times.append(seconds)
                else:
                    seconds, traced_scan, traced_tracer = run_traced()
                    traced_times.append(seconds)
                    plain_times.append(run_plain())
        finally:
            if gc_was_enabled:
                gc.enable()
        return min(plain_times), min(traced_times)

    attempts = []
    for _ in range(3):
        plain_best, traced_best = measure()
        attempts.append(traced_best / plain_best - 1)
        if attempts[-1] < 0.15:
            break
    overhead = min(attempts)

    # Tracing must be invisible in the data and must not evict the scan
    # from the kernel fast path...
    assert np.array_equal(traced_scan.codes, baseline.codes)
    assert np.array_equal(traced_scan.vgs, baseline.vgs)
    assert traced_scan.stats.kernel_cells == array.num_cells
    # ...while the merged tree really is distributed: slab spans from at
    # least two distinct worker processes under one scan root.
    slab_pids = {
        s.attributes["pid"] for s in traced_tracer.spans if s.name == "slab"
    }
    assert len(slab_pids) >= 2, f"expected >=2 worker pids, got {slab_pids}"
    assert sum(1 for s in traced_tracer.spans if s.name == "scan") == 1

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "kind": "parallel_trace_overhead",
        "array": [rows, COLS],
        "plain_seconds": plain_best,
        "traced_seconds": traced_best,
        "parallel_trace_overhead": overhead,
        "worker_pids": len(slab_pids),
    }
    history = _append_history(entry)

    report(
        "PERF: distributed tracing overhead on a warm parallel kernel scan",
        "\n".join([
            f"array {rows}x{COLS}, kernel-parallel x2, warm pool",
            f"plain  best-of-20: {plain_best * 1e3:8.2f} ms",
            f"traced best-of-20: {traced_best * 1e3:8.2f} ms",
            f"overhead         : {overhead * 100:+.2f}%  (budget < 15%, "
            f"{len(attempts)} attempt(s))",
            f"worker pids in merged trace: {len(slab_pids)}",
            f"appended to {BENCH_JSON.name} ({len(history)} entries)",
        ]),
    )

    assert overhead < 0.15, (
        f"parallel trace overhead {overhead * 100:.2f}% exceeds 15% budget "
        f"(attempts: {', '.join(f'{a * 100:+.2f}%' for a in attempts)})"
    )
