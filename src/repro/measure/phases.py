"""The five-phase measurement flow: timing and control-signal levels.

The paper's flow is "composed of five steps of 10 ns" (§2).  This module
turns that prose into a :class:`PhasePlan`: phase boundaries on the time
axis plus, for every control signal of Figure 1, the level it holds in
each phase.  The plan is consumed by both execution tiers — the netlist
builder renders it into :class:`~repro.circuit.stimulus.PiecewiseConstant`
gate waveforms, and the charge-tier sequencer steps through it phase by
phase.

Signal levels per phase (target cell = row ``r_t``, macro-local column
``c_t``; ``VPP`` is the boosted wordline/switch-gate level):

===========  =========  ==========  =========  =======  =========
signal       DISCHARGE  CHARGE      ISOLATE    SHARE    CONVERT
===========  =========  ==========  =========  =======  =========
WL (row r)   VPP        VPP if r_t  VPP if r_t  same    same
S_BL (col j) VPP        VPP         VPP if c_t  same    same
IN_BL (col)  0          0/VDD (*)   same        same    same
PRG          VPP        VPP         0           0       0
IN           0          VDD         VDD         VDD     VDD
LEC          VPP        0           0           VPP     VPP
STD          0          0           0           0       0
===========  =========  ==========  =========  =======  =========

(*) the target column's bitline input stays grounded; every other
column's is raised to V_DD so that the row-``r_t`` neighbours acquire no
differential charge while C_m is charged through the plate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.circuit.stimulus import PiecewiseConstant
from repro.errors import MeasurementError
from repro.measure.structure import MeasurementDesign
from repro.tech.parameters import TechnologyCard


class Phase(enum.Enum):
    """The five flow phases in order."""

    DISCHARGE = 0
    CHARGE = 1
    ISOLATE = 2
    SHARE = 3
    CONVERT = 4

    @property
    def index(self) -> int:
        """Position of the phase in the flow (0-based)."""
        return self.value


@dataclass(frozen=True)
class PhaseWindow:
    """Time span of one phase."""

    phase: Phase
    start: float
    end: float

    @property
    def midpoint(self) -> float:
        """Centre of the window, seconds."""
        return 0.5 * (self.start + self.end)


class PhasePlan:
    """Timing and per-signal levels of one measurement flow.

    Parameters
    ----------
    tech:
        Technology card (supplies V_DD and V_PP levels).
    design:
        Structure design (supplies the phase duration and step count).
    target_row:
        Wordline of the measured cell.
    target_col:
        Macro-local bitline of the measured cell.
    num_rows, num_cols:
        Macro geometry the plan must cover.
    """

    def __init__(
        self,
        tech: TechnologyCard,
        design: MeasurementDesign,
        target_row: int,
        target_col: int,
        num_rows: int,
        num_cols: int,
    ) -> None:
        if not 0 <= target_row < num_rows:
            raise MeasurementError(f"target_row {target_row} outside 0..{num_rows - 1}")
        if not 0 <= target_col < num_cols:
            raise MeasurementError(f"target_col {target_col} outside 0..{num_cols - 1}")
        self.tech = tech
        self.design = design
        self.target_row = target_row
        self.target_col = target_col
        self.num_rows = num_rows
        self.num_cols = num_cols

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    @property
    def phase_duration(self) -> float:
        """Length of each phase, seconds."""
        return self.design.phase_duration

    def window(self, phase: Phase) -> PhaseWindow:
        """Time window of ``phase``."""
        t = self.phase_duration
        return PhaseWindow(phase, phase.index * t, (phase.index + 1) * t)

    @property
    def windows(self) -> list[PhaseWindow]:
        """All five windows in order."""
        return [self.window(p) for p in Phase]

    @property
    def total_duration(self) -> float:
        """End of the CONVERT phase, seconds."""
        return 5.0 * self.phase_duration

    @property
    def convert_start(self) -> float:
        """Start of the current ramp (phase 5), seconds."""
        return self.window(Phase.CONVERT).start

    # ------------------------------------------------------------------
    # Per-signal levels
    # ------------------------------------------------------------------

    def _levels(self, per_phase: list[float]) -> PiecewiseConstant:
        if len(per_phase) != 5:
            raise MeasurementError(f"need 5 phase levels, got {len(per_phase)}")
        t = self.phase_duration
        return PiecewiseConstant(edges=[t, 2 * t, 3 * t, 4 * t], levels=per_phase)

    def wordline(self, row: int) -> PiecewiseConstant:
        """Gate waveform of wordline ``row``."""
        if not 0 <= row < self.num_rows:
            raise MeasurementError(f"row {row} outside 0..{self.num_rows - 1}")
        vpp = self.tech.vpp
        on_after = vpp if row == self.target_row else 0.0
        return self._levels([vpp, on_after, on_after, on_after, on_after])

    def bitline_select(self, col: int) -> PiecewiseConstant:
        """Gate waveform of the S_BL select transistor for macro column ``col``."""
        if not 0 <= col < self.num_cols:
            raise MeasurementError(f"col {col} outside 0..{self.num_cols - 1}")
        vpp = self.tech.vpp
        on_after = vpp if col == self.target_col else 0.0
        return self._levels([vpp, vpp, on_after, on_after, on_after])

    def bitline_input(self, col: int) -> PiecewiseConstant:
        """IN_BLi drive waveform for macro column ``col``."""
        if not 0 <= col < self.num_cols:
            raise MeasurementError(f"col {col} outside 0..{self.num_cols - 1}")
        high = 0.0 if col == self.target_col else self.tech.vdd
        return self._levels([0.0, high, high, high, high])

    def prg(self) -> PiecewiseConstant:
        """PRG gate waveform (plate-drive switch; opens after CHARGE)."""
        vpp = self.tech.vpp
        return self._levels([vpp, vpp, 0.0, 0.0, 0.0])

    def lec(self) -> PiecewiseConstant:
        """LEC gate waveform (C_REF connect switch)."""
        vpp = self.tech.vpp
        return self._levels([vpp, 0.0, 0.0, vpp, vpp])

    def input_in(self) -> PiecewiseConstant:
        """IN waveform (plate drive level: ground, then V_DD)."""
        vdd = self.tech.vdd
        return self._levels([0.0, vdd, vdd, vdd, vdd])

    def std(self) -> PiecewiseConstant:
        """STD gate waveform — off for the whole test flow."""
        return self._levels([0.0, 0.0, 0.0, 0.0, 0.0])

    # ------------------------------------------------------------------
    # Sampling helpers for the charge tier
    # ------------------------------------------------------------------

    def phase_of(self, time: float) -> Phase:
        """The phase active at ``time`` (clamped to the flow)."""
        if time < 0:
            raise MeasurementError(f"time {time} precedes the flow")
        idx = min(4, int(time / self.phase_duration))
        return Phase(idx)
