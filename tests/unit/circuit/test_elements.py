"""Linear element validation and stamping behaviour (via small solves)."""

import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import (
    Capacitor,
    CurrentMirrorOutput,
    CurrentSource,
    Resistor,
    Switch,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.stimulus import Step
from repro.circuit.transient import TransientOptions, transient_analysis
from repro.errors import NetlistError
from repro.units import fF


class TestResistor:
    def test_rejects_nonpositive_or_nonfinite(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(NetlistError):
                Resistor("R", "a", "b", bad)

    def test_divider_solves(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V", "in", "0", 2.0))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Resistor("R2", "out", "0", 3e3))
        op = dc_operating_point(ckt)
        assert op["out"] == pytest.approx(1.5, rel=1e-6)


class TestVoltageSource:
    def test_time_dependent_value(self):
        src = VoltageSource("V", "a", "0", Step(1e-9, 0.0, 1.8))
        assert src.voltage_at(0.0) == 0.0
        assert src.voltage_at(2e-9) == 1.8

    def test_two_sources_in_series_through_resistor(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        ckt.add(VoltageSource("V2", "b", "0", 3.0))
        ckt.add(Resistor("R", "a", "b", 1e3))
        op = dc_operating_point(ckt)
        assert op["a"] == pytest.approx(1.0)
        assert op["b"] == pytest.approx(3.0)


class TestCurrentSource:
    def test_direction_convention(self):
        # CurrentSource(a, b, i) pushes current into node b.
        ckt = Circuit()
        ckt.add(CurrentSource("I", "0", "x", 1e-3))
        ckt.add(Resistor("R", "x", "0", 1e3))
        op = dc_operating_point(ckt)
        assert op["x"] == pytest.approx(1.0, rel=1e-6)

    def test_reversed_direction(self):
        ckt = Circuit()
        ckt.add(CurrentSource("I", "x", "0", 1e-3))
        ckt.add(Resistor("R", "x", "0", 1e3))
        op = dc_operating_point(ckt)
        assert op["x"] == pytest.approx(-1.0, rel=1e-6)


class TestCapacitor:
    def test_rejects_negative(self):
        with pytest.raises(NetlistError):
            Capacitor("C", "a", "b", -1 * fF)

    def test_open_in_dc(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V", "in", "0", 1.0))
        ckt.add(Resistor("R", "in", "out", 1e3))
        ckt.add(Capacitor("C", "out", "0", 100 * fF))
        op = dc_operating_point(ckt)
        assert op["out"] == pytest.approx(1.0, rel=1e-5)  # no DC current

    def test_rc_charging_time_constant(self):
        import math

        ckt = Circuit()
        ckt.add(VoltageSource("V", "in", "0", Step(1e-9, 0.0, 1.0)))
        ckt.add(Resistor("R", "in", "out", 10e3))
        ckt.add(Capacitor("C", "out", "0", 100 * fF))  # tau = 1 ns
        wf = transient_analysis(ckt, 8e-9, options=TransientOptions(dt=10e-12))
        t63 = wf.first_crossing("out", 1.0 - math.exp(-1.0))
        assert t63 - 1e-9 == pytest.approx(1e-9, rel=0.03)

    def test_trapezoidal_matches_be_on_rc(self):
        def run(integrator):
            ckt = Circuit()
            ckt.add(VoltageSource("V", "in", "0", Step(0.5e-9, 0.0, 1.0)))
            ckt.add(Resistor("R", "in", "out", 10e3))
            ckt.add(Capacitor("C", "out", "0", 100 * fF))
            wf = transient_analysis(
                ckt, 6e-9, options=TransientOptions(dt=20e-12, integrator=integrator)
            )
            return wf.value_at("out", 2.5e-9)

        assert run("trap") == pytest.approx(run("be"), rel=0.02)


class TestSwitch:
    def test_validation(self):
        with pytest.raises(NetlistError):
            Switch("S", "a", "b", 1.0, r_on=1e6, r_off=1e3)

    def test_switch_divides_when_off(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V", "in", "0", 1.0))
        ckt.add(Switch("S", "in", "out", control=0.0, r_on=1.0, r_off=1e12))
        ckt.add(Resistor("RL", "out", "0", 1e3))
        op = dc_operating_point(ckt)
        assert op["out"] < 1e-6

    def test_switch_conducts_when_on(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V", "in", "0", 1.0))
        ckt.add(Switch("S", "in", "out", control=1.0, r_on=1.0, r_off=1e12))
        ckt.add(Resistor("RL", "out", "0", 1e3))
        op = dc_operating_point(ckt)
        assert op["out"] == pytest.approx(1.0, rel=1e-2)

    def test_time_controlled(self):
        sw = Switch("S", "a", "b", control=Step(5e-9, 0.0, 1.0))
        assert not sw.is_on(1e-9)
        assert sw.is_on(6e-9)


class TestCurrentMirrorOutput:
    def test_validation(self):
        with pytest.raises(NetlistError):
            CurrentMirrorOutput("I", "vdd", "out", 1e-6, v_knee=0.0)

    def test_full_current_with_headroom(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V", "vdd", "0", 1.8))
        ckt.add(CurrentMirrorOutput("I", "vdd", "out", 10e-6, v_knee=0.05))
        ckt.add(Resistor("R", "out", "0", 10e3))  # drops 0.1 V, lots of headroom
        op = dc_operating_point(ckt)
        assert op["out"] == pytest.approx(0.1, rel=0.01)

    def test_output_clamps_at_supply(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V", "vdd", "0", 1.8))
        ckt.add(CurrentMirrorOutput("I", "vdd", "out", 10e-6, v_knee=0.05))
        ckt.add(Resistor("R", "out", "0", 1e9))  # would need 10 kV if ideal
        op = dc_operating_point(ckt)
        assert op["out"] < 1.8 + 1e-6

    def test_output_current_helper(self):
        m = CurrentMirrorOutput("I", "vdd", "out", 10e-6, v_knee=0.05)
        assert m.output_current(0.0, 1.8, 0.0) == pytest.approx(10e-6, rel=1e-6)
        assert m.output_current(0.0, 1.8, 1.8) == 0.0
        assert 0 < m.output_current(0.0, 1.8, 1.75) < 10e-6
