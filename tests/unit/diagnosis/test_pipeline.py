"""One-call diagnosis pipeline."""

import pytest

from repro.diagnosis.classifier import CellVerdict
from repro.diagnosis.pipeline import DiagnosisPipeline
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.errors import DiagnosisError
from repro.units import fF


@pytest.fixture(scope="module")
def pipeline():
    return DiagnosisPipeline(spec_lo=24 * fF, spec_hi=36 * fF)


def _array(tech, seed=3, defects=True):
    capacitance = compose_maps(
        uniform_map((32, 8), 30 * fF), mismatch_map((32, 8), 0.7 * fF, seed=seed)
    )
    array = EDRAMArray(32, 8, tech=tech, macro_cols=2, macro_rows=8,
                       capacitance_map=capacitance)
    if defects:
        injector = DefectInjector(array, seed=seed)
        injector.inject(4, 2, CellDefect(DefectKind.SHORT))
        injector.inject(20, 5, CellDefect(DefectKind.LOW_CAP, factor=0.6))
        injector.inject(10, 6, CellDefect(DefectKind.RETENTION, factor=5000.0))
    return array


def test_validation():
    with pytest.raises(DiagnosisError):
        DiagnosisPipeline(spec_lo=36 * fF, spec_hi=24 * fF)
    with pytest.raises(DiagnosisError):
        DiagnosisPipeline(spec_lo=1.0, spec_hi=2.0, retention_pause=-1.0)


def test_healthy_array_report(pipeline, tech):
    report = pipeline.run(_array(tech, defects=False))
    assert report.digital.fail_count == 0
    assert report.findings == []
    assert report.repair.success
    assert report.process.cpk > 1.0


def test_defective_array_report(pipeline, tech):
    report = pipeline.run(_array(tech))
    assert report.digital.fail_count >= 2  # short + retention
    assert report.verdicts[20, 5] is CellVerdict.LOW_CAP
    assert report.verdicts[4, 2] in (CellVerdict.SHORT, CellVerdict.OPEN_OR_UNDER)
    assert len(report.findings) >= 2
    assert report.repair.success
    assert report.must_repair[4, 2]
    assert report.must_repair[20, 5]
    # Retention defect: digitally failing, analog in-spec -> still repaired.
    assert report.must_repair[10, 6]


def test_summary_renders(pipeline, tech):
    text = pipeline.run(_array(tech)).summary()
    for key in ("digital fails", "analog anomalies", "process", "repair"):
        assert key in text


def test_structure_is_cached_per_geometry(pipeline, tech):
    pipeline.run(_array(tech, seed=4))
    first = pipeline._structure
    pipeline.run(_array(tech, seed=5))
    assert pipeline._structure is first  # same geometry -> same design


def test_geometry_change_triggers_redesign(tech):
    pipeline = DiagnosisPipeline(spec_lo=24 * fF, spec_hi=36 * fF)
    pipeline.run(_array(tech))
    first = pipeline._structure
    small = EDRAMArray(8, 4, tech=tech, macro_cols=2, macro_rows=8)
    pipeline.run(small)
    assert pipeline._structure is not first
