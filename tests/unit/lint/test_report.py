"""Diagnostic/LintReport mechanics and the rule registry contract."""

import json

import pytest

from repro.errors import LintError
from repro.lint import REGISTRY, Diagnostic, LintReport, Severity
from repro.lint.registry import RuleRegistry, RuleSpec, rule


def _diag(code="ERC001", severity=Severity.ERROR, nodes=(), waived=False):
    return Diagnostic(
        code=code,
        slug="floating-node",
        severity=severity,
        message="node 'x' dangles",
        subject="fixture",
        nodes=nodes,
        waived=waived,
    )


# ---------------------------------------------------------------------------
# Diagnostic
# ---------------------------------------------------------------------------


def test_diagnostic_format_carries_code_and_subject():
    line = _diag().format()
    assert "ERC001" in line
    assert "floating-node" in line
    assert "[fixture]" in line


def test_diagnostic_format_prefers_location():
    d = Diagnostic(
        code="PY001",
        slug="raw-si-literal",
        severity=Severity.ERROR,
        message="raw literal",
        location="src/x.py:7",
    )
    assert "(src/x.py:7)" in d.format()


def test_diagnostic_to_dict_roundtrips_json():
    payload = json.loads(json.dumps(_diag(nodes=("a", "b")).to_dict()))
    assert payload["code"] == "ERC001"
    assert payload["nodes"] == ["a", "b"]
    assert payload["waived"] is False


# ---------------------------------------------------------------------------
# LintReport
# ---------------------------------------------------------------------------


def test_report_severity_filters_and_exit_code():
    report = LintReport()
    report.add(_diag(severity=Severity.ERROR))
    report.add(_diag(code="UNT001", severity=Severity.WARNING))
    report.add(_diag(code="XYZ001", severity=Severity.INFO))
    assert len(report.errors) == 1
    assert len(report.warnings) == 1
    assert not report.ok
    assert report.exit_code == 1


def test_warnings_only_report_is_ok():
    report = LintReport([_diag(severity=Severity.WARNING)])
    assert report.ok
    assert report.exit_code == 0


def test_waive_nodes_suppresses_matching_findings():
    report = LintReport(
        [_diag(nodes=("s1_0", "plate")), _diag(nodes=("s2_1",))]
    )
    report.waive_nodes({"s1_0"})
    assert len(report.errors) == 1
    assert report.errors[0].nodes == ("s2_1",)
    # Waived findings stay visible for audit.
    assert len(report) == 2
    assert "(1 waived)" in report.summary()


def test_waive_nodes_with_empty_set_is_noop():
    report = LintReport([_diag(nodes=("a",))])
    report.waive_nodes(set())
    assert not report.ok


def test_merge_and_by_code():
    a = LintReport([_diag()])
    b = LintReport([_diag(code="ERC002")])
    a.merge(b)
    assert a.codes() == {"ERC001", "ERC002"}
    assert len(a.by_code("ERC002")) == 1


def test_format_text_ends_with_summary():
    report = LintReport([_diag()])
    assert report.format_text().splitlines()[-1] == report.summary()


def test_to_json_payload_shape():
    report = LintReport([_diag(), _diag(code="UNT001", severity=Severity.WARNING)])
    payload = json.loads(report.to_json())
    assert payload["error_count"] == 1
    assert payload["warning_count"] == 1
    assert payload["ok"] is False
    assert len(payload["diagnostics"]) == 2


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_builtin_registry_has_all_documented_codes():
    assert set(REGISTRY.codes()) >= {
        "ERC001", "ERC002", "ERC003", "ERC004", "ERC005", "ERC006",
        "PRM001", "UNT001", "PY001", "PY002",
        "CCY001", "CCY002", "CCY003", "CCY004",
        "DET001", "DET002", "DET003", "DET004",
    }
    # The footprint rules register on ``repro.sanitize`` import.
    import repro.sanitize  # noqa: F401

    assert {"CCY101", "CCY102"} <= set(REGISTRY.codes())


def test_registry_rejects_duplicate_codes():
    reg = RuleRegistry()
    spec = RuleSpec("T001", "t", "circuit", Severity.ERROR, "", lambda s, c: [])
    reg.register(spec)
    with pytest.raises(LintError, match="duplicate"):
        reg.register(spec)


def test_registry_rejects_unknown_target():
    reg = RuleRegistry()
    spec = RuleSpec("T001", "t", "nonsense", Severity.ERROR, "", lambda s, c: [])
    with pytest.raises(LintError, match="unknown target"):
        reg.register(spec)


def test_registry_get_unknown_code_names_known_ones():
    with pytest.raises(LintError, match="ERC001"):
        REGISTRY.get("NOPE99")


def test_for_target_filters_by_code():
    specs = REGISTRY.for_target("circuit", only=("ERC001",))
    assert [s.code for s in specs] == ["ERC001"]
    with pytest.raises(LintError):
        REGISTRY.for_target("nonsense")


def test_rule_decorator_returns_registered_spec():
    reg_before = len(REGISTRY)

    # Use a private registry so the global one stays pristine.
    private = RuleRegistry()

    def fake_rule(code):
        def decorate(fn):
            spec = RuleSpec(code, "fake", "circuit", Severity.INFO, "", fn)
            return private.register(spec)

        return decorate

    @fake_rule("FAKE01")
    def my_rule(subject, context):
        yield my_rule.diagnostic("hello", subject="s")

    assert isinstance(my_rule, RuleSpec)
    found = my_rule.run(object())
    assert found[0].code == "FAKE01"
    assert found[0].severity is Severity.INFO
    assert len(REGISTRY) == reg_before


def test_rule_decorator_registers_globally_and_uses_docstring_summary():
    # The public decorator mutates the global registry; register a
    # throwaway rule and verify, then remove it to keep tests isolated.
    @rule("TMP999", "throwaway", target="circuit")
    def tmp_rule(subject, context):
        """First docstring line becomes the summary."""
        return []

    try:
        assert "TMP999" in REGISTRY
        assert REGISTRY.get("TMP999").summary.startswith("First docstring line")
    finally:
        del REGISTRY._rules["TMP999"]
