"""Scan configuration: one frozen object instead of a kwarg pile.

The scan entry points accreted flags one PR at a time — ``jobs=`` for
the process pool, ``preflight=`` for the ERC pass, ``force_engine=``
for reference mode, ``tier=`` on per-cell measurements — and the
observability layer needs two more (tracer, metrics).  Six loose
keywords on three methods is an API smell; :class:`ScanConfig` carries
them as one immutable value that callers build once and reuse:

    from repro.measure import ScanConfig
    from repro.obs import Tracer, MetricsRegistry

    config = ScanConfig(jobs=4, tracer=Tracer(), metrics=MetricsRegistry())
    result = ArrayScanner(array, structure).scan(config)

The old keyword forms (``scan(jobs=4)``, ``scan_macro(macro, True)``,
``measure_cell(r, c, tier="transient")``) still work through a
deprecation shim that emits :class:`DeprecationWarning`; new code
should pass a :class:`ScanConfig`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.errors import MeasurementError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetricsRegistry
from repro.obs.progress import NULL_PROGRESS, JsonlProgress, NullProgress, ProgressReporter
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:
    from repro.obs.ledger import RunLedger
    from repro.resilience.checkpoint import Checkpointer
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

__all__ = ["ScanConfig"]

#: Valid per-cell measurement tiers.
_TIERS = ("charge", "transient")


@dataclass(frozen=True)
class ScanConfig:
    """Immutable configuration consumed by the scan entry points.

    Attributes
    ----------
    jobs:
        Worker processes to fan macro scans across; 1 scans serially
        in-process.  Values above the macro count are capped.
    preflight:
        Run the static ERC pass (:mod:`repro.lint`) before scanning and
        raise :class:`~repro.errors.RuleViolation` on unwaived errors.
    force_engine:
        Route every macro through the exact charge engine (reference
        mode; slow).
    tier:
        Per-cell measurement tier for
        :meth:`~repro.measure.scan.ArrayScanner.measure_cell`:
        ``"charge"`` or ``"transient"``.
    technology:
        Cell-technology backend name (:mod:`repro.technologies`) the
        scan is running against: ``"edram"`` (default), ``"fecap"``,
        ``"1t"``, or any name registered at construction time.  The
        scanner validates it against the array's own technology tag —
        the backend supplies post-scan physics (e.g. ferroelectric
        read-disturb) and per-run ledger scalars, so a mismatch would
        silently apply the wrong physics.  Data-affecting: part of the
        config fingerprint and the resume key set.
    tracer:
        Span recorder (:class:`repro.obs.Tracer`).  Defaults to the
        zero-cost :data:`repro.obs.NULL_TRACER`.
    metrics:
        Metrics registry (:class:`repro.obs.MetricsRegistry`), installed
        ambiently for the duration of the scan so engine-level
        instruments land in it too.  Defaults to the no-op registry.
    progress:
        Live progress reporter (:class:`repro.obs.ProgressReporter` for a
        TTY status line, :class:`repro.obs.JsonlProgress` for a
        machine-readable event stream).  Defaults to the zero-cost
        :data:`repro.obs.NULL_PROGRESS`.
    ledger:
        When set, the scan entry points record a run manifest into this
        :class:`repro.obs.RunLedger` on completion (provenance: config
        hash, seed, stats, per-run scalars).  ``None`` records nothing.
    faults:
        A :class:`repro.resilience.FaultPlan` armed for the duration of
        the scan (chaos testing; ``None`` = disarmed).  Parallel scans
        install a fresh copy in every worker process.
    retry:
        :class:`repro.resilience.RetryPolicy` for supervised parallel
        scanning (crashed/timed-out macro tasks).  ``None`` uses the
        default policy (3 attempts, exponential backoff + jitter).
    timeout:
        Per-macro wall-clock budget in seconds for supervised parallel
        scanning; a worker exceeding it is terminated and the macro
        retried.  ``None`` = unlimited.
    checkpoint:
        A :class:`repro.resilience.Checkpointer` persisting
        completed-macro state through the run ledger so an interrupted
        scan can ``--resume``.  ``None`` checkpoints nothing.
    sanitize:
        Arm the write-footprint sanitizer
        (:mod:`repro.sanitize.footprint`): workers ship their write
        rectangles back in acknowledgements and the scan proves pairwise
        disjointness + full plane coverage afterwards, attaching the
        CCY101/CCY102 report to ``ScanResult.sanitize_report``.  A
        diagnostic mode — it never changes measured data, so it is
        excluded from equality and the config fingerprint.

    Derive variants with :meth:`dataclasses.replace` or
    :meth:`ScanConfig.with_options`.
    """

    jobs: int = 1
    preflight: bool = False
    force_engine: bool = False
    tier: str = "charge"
    technology: str = "edram"
    tracer: Tracer | NullTracer = field(default=NULL_TRACER, compare=False)
    metrics: MetricsRegistry | NullMetricsRegistry = field(
        default=NULL_METRICS, compare=False
    )
    progress: ProgressReporter | JsonlProgress | NullProgress = field(
        default=NULL_PROGRESS, compare=False
    )
    ledger: "RunLedger | None" = field(default=None, compare=False)
    faults: "FaultPlan | None" = field(default=None, compare=False)
    retry: "RetryPolicy | None" = field(default=None, compare=False)
    timeout: float | None = field(default=None, compare=False)
    checkpoint: "Checkpointer | None" = field(default=None, compare=False)
    sanitize: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise MeasurementError(f"jobs must be >= 1, got {self.jobs}")
        if self.tier not in _TIERS:
            raise MeasurementError(
                f"unknown tier {self.tier!r} (expected one of {_TIERS})"
            )
        # Lazy import: repro.technologies.names() is import-free (the
        # registry imports no backend module), so this stays cheap on
        # every ScanConfig construction and avoids an import cycle.
        from repro.technologies import names

        if self.technology not in names():
            raise MeasurementError(
                f"unknown technology {self.technology!r} "
                f"(registered: {', '.join(names())})"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise MeasurementError(
                f"timeout must be positive, got {self.timeout}"
            )

    def with_options(self, **changes: Any) -> "ScanConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    @property
    def observed(self) -> bool:
        """True when a real tracer or metrics registry is attached."""
        return self.tracer.enabled or self.metrics.enabled

    @property
    def recorded(self) -> bool:
        """True when scans through this config land in a run ledger."""
        return self.ledger is not None


def _warn_legacy(method: str, names: list[str]) -> None:
    warnings.warn(
        f"{method}({', '.join(names)}=...) keywords are deprecated; "
        f"pass a ScanConfig instead",
        DeprecationWarning,
        stacklevel=4,
    )


def coerce_scan_config(
    config: "ScanConfig | bool | str | None",
    method: str,
    **legacy: Any,
) -> ScanConfig:
    """Resolve the (config, legacy kwargs) pair every entry point accepts.

    ``config`` may be a :class:`ScanConfig`, ``None`` (defaults), or —
    for backward compatibility with the old positional signatures — a
    bool (``scan_macro(macro, True)`` meant ``force_engine``) or a str
    (``measure_cell(r, c, "transient")`` meant ``tier``).  Any legacy
    value, positional or keyword, emits :class:`DeprecationWarning`.
    """
    if isinstance(config, bool):
        # Old positional force_engine flag.
        legacy = {**legacy, "force_engine": config}
        config = None
    elif isinstance(config, str):
        # Old positional tier name.
        legacy = {**legacy, "tier": config}
        config = None
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if supplied:
        _warn_legacy(method, sorted(supplied))
        base = config if config is not None else ScanConfig()
        return replace(base, **supplied)
    return config if config is not None else ScanConfig()
