"""Deterministic fault injection: make the stack fail on purpose.

Robustness claims are worthless untested — "the scan survives a dead
worker" means nothing until a test kills a worker at a chosen macro and
asserts the bitmap still comes back complete.  This module is that
trigger: a :class:`FaultPlan` describes *where* (a named fault site plus
attribute matchers), *when* (skip counts, firing limits, seeded
probabilities) and *how* (raise an exception, kill the process, stall)
the stack should fail, and :func:`fault_point` calls sprinkled at the
stack's failure boundaries consult the ambient plan.

Determinism is the design centre: a plan fires as a pure function of
the (site, attributes, per-fault invocation count, seed) tuple — never
of wall-clock time or OS scheduling — so a chaos test that kills worker
3 at macro 2 does exactly that on every run, and a resumed scan sees
exactly the faults an uninterrupted scan would have seen for the macros
it actually re-executes.

Fault sites currently instrumented (grep ``fault_point(`` for truth):

======================  ===============================================
``solver.dc``           entry of :func:`repro.circuit.dc.dc_solve_vector`
``solver.newton``       each Newton rung attempt (attrs: ``rung``)
``sequencer.measure``   per engine-tier cell (attrs: row/col, global)
``scan.closed_form``    per closed-form macro evaluation (attrs: macro)
``scan.macro_done``     parent-side, after a macro lands (attrs: macro)
``wafer.die_done``      parent-side, after a die lands (attrs: die)
``worker.scan_macro``   inside a pool worker, before scanning a macro
                        (attrs: macro, attempt)
``ledger.append``       before a manifest line is appended
======================  ===============================================

Zero-cost when disarmed: :func:`fault_point` is one context-variable
read and a ``None`` check.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import ResilienceError

__all__ = [
    "Fault",
    "FaultPlan",
    "fault_point",
    "inject",
    "install_plan",
    "active_fault_plan",
]

#: Supported fault behaviours.
_KINDS = ("raise", "kill", "sleep")

#: Exit status used by ``kill`` faults — distinctive in waitpid output.
KILL_EXIT_STATUS = 86

#: True inside supervised worker processes (set by the supervisor);
#: ``kill`` faults only fire there, so a mis-targeted plan can never
#: take down the parent interpreter.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Flag this process as a supervised worker (enables ``kill``)."""
    global _IN_WORKER
    _IN_WORKER = True


@dataclass(frozen=True)
class Fault:
    """One planned failure.

    Parameters
    ----------
    site:
        Name of the :func:`fault_point` this fault arms.
    error:
        Exception instance raised when the fault fires (``kind="raise"``).
    kind:
        ``"raise"`` (default), ``"kill"`` (``os._exit`` — worker
        processes only; a no-op elsewhere), or ``"sleep"`` (stall for
        ``seconds`` — drives timeout supervision).
    match:
        Attribute selectors; the fault only considers invocations whose
        ``fault_point`` attributes equal every listed value (e.g.
        ``{"macro": 2, "attempt": 0}``).
    times:
        Maximum firings (``None`` = unlimited).  Counted per fault over
        matching invocations, within one process.
    after:
        Matching invocations to let pass before the first firing.
    seconds:
        Stall duration for ``kind="sleep"``.
    probability:
        When set, each eligible invocation fires with this probability,
        decided by a seeded hash of (site, attributes, count) — random
        in distribution, reproducible in fact.
    """

    site: str
    error: BaseException | None = None
    kind: str = "raise"
    match: Mapping[str, Any] = field(default_factory=dict)
    times: int | None = 1
    after: int = 0
    seconds: float = 0.0
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.kind == "raise" and self.error is None:
            raise ResilienceError(f"fault at {self.site!r}: kind 'raise' needs error=")
        if self.kind == "sleep" and self.seconds <= 0:
            raise ResilienceError(f"fault at {self.site!r}: kind 'sleep' needs seconds>0")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ResilienceError(
                f"fault at {self.site!r}: probability {self.probability} outside [0, 1]"
            )

    def matches(self, site: str, attrs: Mapping[str, Any]) -> bool:
        if site != self.site:
            return False
        return all(attrs.get(key) == value for key, value in self.match.items())


class FaultPlan:
    """An armed set of :class:`Fault` entries plus their firing state.

    Plans are picklable (the supervisor ships them to worker processes);
    invocation counters are per-process runtime state and reset on
    unpickle, so every worker sees the plan fresh — which is exactly
    what "kill attempt 0 of macro 2" semantics need.
    """

    def __init__(self, faults: tuple[Fault, ...] | list[Fault] = (), seed: int = 0) -> None:
        self.faults = tuple(faults)
        self.seed = seed
        self._counts: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self.firings: list[tuple[str, dict[str, Any], str]] = []

    def __getstate__(self) -> dict[str, Any]:
        return {"faults": self.faults, "seed": self.seed}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["faults"], state["seed"])

    def _chance(self, fault: Fault, site: str, attrs: Mapping[str, Any], count: int) -> bool:
        if fault.probability is None:
            return True
        key = f"{self.seed}:{site}:{sorted(attrs.items())!r}:{count}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return u < fault.probability

    def fire(self, site: str, attrs: Mapping[str, Any]) -> None:
        """Trigger every armed fault matching this invocation."""
        for index, fault in enumerate(self.faults):
            if not fault.matches(site, attrs):
                continue
            count = self._counts.get(index, 0)
            self._counts[index] = count + 1
            if count < fault.after:
                continue
            fired = self._fired.get(index, 0)
            if fault.times is not None and fired >= fault.times:
                continue
            if not self._chance(fault, site, attrs, count):
                continue
            self._fired[index] = fired + 1
            self.firings.append((site, dict(attrs), fault.kind))
            if fault.kind == "sleep":
                time.sleep(fault.seconds)
            elif fault.kind == "kill":
                if _IN_WORKER:
                    os._exit(KILL_EXIT_STATUS)
                # Outside a worker a kill would take the whole session
                # down — record the firing and stand down instead.
            else:
                raise fault.error  # type: ignore[misc]  # validated non-None


_ACTIVE: ContextVar["FaultPlan | None"] = ContextVar("repro_fault_plan", default=None)


def active_fault_plan() -> "FaultPlan | None":
    """The ambient plan, or ``None`` when fault injection is disarmed."""
    return _ACTIVE.get()


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block."""
    token = _ACTIVE.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)


def install_plan(plan: "FaultPlan | None") -> None:
    """Arm ``plan`` process-wide (worker start-up; no scoping needed)."""
    _ACTIVE.set(plan)


def fault_point(site: str, **attrs: Any) -> None:
    """Declare a failure boundary; fires the ambient plan if armed."""
    plan = _ACTIVE.get()
    if plan is not None:
        plan.fire(site, attrs)
