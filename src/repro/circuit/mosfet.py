"""MOSFET device model.

A single smooth large-signal model covering subthreshold, triode and
saturation, based on the EKV interpolation function

.. math::

    I_D = 2 n \\beta V_T^2 \\left[ F\\!\\left(\\frac{V_P - V_S}{V_T}\\right)
          - F\\!\\left(\\frac{V_P - V_D}{V_T}\\right) \\right] (1 + \\lambda V_{DS})

with :math:`F(x) = \\ln^2(1 + e^{x/2})` and the pinch-off voltage
:math:`V_P = (V_{GS} - V_{TH})/n`.  Limits:

- strong-inversion saturation: :math:`I_D \\to \\beta (V_{GS}-V_{TH})^2 / 2n`
- strong-inversion triode (small :math:`V_{DS}`):
  :math:`I_D \\to \\beta (V_{GS}-V_{TH}) V_{DS}` (matches level-1)
- subthreshold: :math:`I_D \\propto e^{(V_{GS}-V_{TH})/(n V_T)}`

The function is smooth everywhere, which keeps Newton iterations
well-behaved — the classic level-1 triode/saturation kink is the usual
source of convergence trouble in hand-rolled simulators.

Body effect raises ``V_TH`` with source-to-bulk voltage; the bulk is a
fixed rail per device (ground for n-MOS, V_DD for p-MOS by default), not
a solved node — adequate for this library's circuits, where no body is
ever driven dynamically.

Optional fixed gate-to-source / gate-to-drain capacitances can be
attached; the paper's reference capacitor ``C_REF`` *is* the input
capacitance of the REF n-MOSFET, so the netlist builder sets ``cgs``
explicitly there.
"""

from __future__ import annotations

import math

from repro.circuit.elements import Element
from repro.circuit.mna import MnaSystem, StampContext
from repro.errors import NetlistError
from repro.tech.parameters import MosfetParams
from repro.units import thermal_voltage


def _softlog(x: float) -> float:
    """Numerically safe ``ln(1 + e^x)``."""
    if x > 40.0:
        return x
    if x < -40.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


def _ekv_f(x: float) -> float:
    """EKV interpolation function F(x) = ln²(1 + e^(x/2))."""
    return _softlog(x / 2.0) ** 2


def _ekv_fprime(x: float) -> float:
    """dF/dx = ln(1 + e^(x/2)) · sigmoid(x/2)."""
    return _softlog(x / 2.0) * _sigmoid(x / 2.0)


class Mosfet(Element):
    """Three-terminal MOSFET (drain, gate, source) with fixed bulk rail.

    Parameters
    ----------
    name, drain, gate, source:
        Element name and node names.
    params:
        Device parameter card (:class:`~repro.tech.parameters.MosfetParams`).
    w, l:
        Channel width and length in metres.
    bulk_voltage:
        Fixed bulk potential in volts.  Defaults to 0 V for n-MOS and to
        ``None``-means-source for p-MOS is *not* assumed — pass the V_DD
        rail explicitly when building p-MOS devices in a powered circuit.
    cgs, cgd:
        Optional fixed gate capacitances in farads (backward-Euler
        companion in transient analysis).
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        params: MosfetParams,
        w: float,
        l: float,
        bulk_voltage: float = 0.0,
        cgs: float = 0.0,
        cgd: float = 0.0,
    ) -> None:
        super().__init__(name)
        if w <= 0 or l <= 0:
            raise NetlistError(f"mosfet {name!r}: W and L must be positive, got W={w}, L={l}")
        if cgs < 0 or cgd < 0:
            raise NetlistError(f"mosfet {name!r}: gate capacitances must be >= 0")
        self.drain = drain
        self.gate = gate
        self.source = source
        self.params = params
        self.w = w
        self.l = l
        self.bulk_voltage = bulk_voltage
        self.cgs = cgs
        self.cgd = cgd

    def nodes(self) -> tuple[str, str, str]:
        return (self.drain, self.gate, self.source)

    # ------------------------------------------------------------------
    # Large-signal model
    # ------------------------------------------------------------------

    def threshold_voltage(self, vsb: float) -> float:
        """|V_TH| including body effect for source-to-bulk voltage ``vsb``.

        Uses the parameter card's temperature-corrected magnitude.
        """
        p = self.params
        vsb_eff = max(vsb, 0.0)
        return abs(p.vth_eff) + p.gamma * (math.sqrt(p.phi + vsb_eff) - math.sqrt(p.phi))

    def _ids_normal(self, vd: float, vg: float, vs: float, vbulk: float) -> tuple[float, float, float, float]:
        """Current and derivatives for an n-type orientation with vd >= vs.

        Returns ``(i, di/dvd, di/dvg, di/dvs)`` with ``i`` flowing drain
        to source.
        """
        p = self.params
        vt = thermal_voltage(p.temperature_k)
        n = p.n_sub
        beta = p.beta_eff(self.w, self.l)
        vsb = vs - vbulk
        vth = self.threshold_voltage(vsb)
        # d vth / d vs (only when vsb > 0; clamped region has zero slope)
        if vsb > 0.0:
            dvth_dvs = p.gamma / (2.0 * math.sqrt(p.phi + vsb))
        else:
            dvth_dvs = 0.0
        vp = (vg - vs - vth) / n  # pinch-off voltage referred to source
        vds = vd - vs
        xf = vp / vt
        xr = (vp - vds) / vt
        scale = 2.0 * n * beta * vt * vt
        clm = 1.0 + p.lambda_ * vds
        i0 = scale * (_ekv_f(xf) - _ekv_f(xr))
        i = i0 * clm
        fpf = _ekv_fprime(xf)
        fpr = _ekv_fprime(xr)
        # dvp/dvg = 1/n ; dvp/dvs = -(1 + dvth_dvs)/n
        dvp_dvg = 1.0 / n
        dvp_dvs = -(1.0 + dvth_dvs) / n
        # xf depends on vp; xr on vp and vds (vds depends on vd and vs)
        di_dvg = scale * clm * (fpf - fpr) * dvp_dvg / vt
        di_dvd = scale * clm * fpr / vt + p.lambda_ * i0
        # d xf/d vs = dvp_dvs/vt ; d xr/d vs = (dvp_dvs + 1)/vt
        di_dvs = (
            scale * clm * (fpf * dvp_dvs - fpr * (dvp_dvs + 1.0)) / vt
            - p.lambda_ * i0
        )
        return i, di_dvd, di_dvg, di_dvs

    def ids_and_derivatives(self, vd: float, vg: float, vs: float) -> tuple[float, float, float, float]:
        """Drain current and its derivatives w.r.t. (vd, vg, vs).

        The returned current is the conventional drain current: positive
        flowing into the drain terminal for n-MOS in normal operation;
        for p-MOS the returned value is negative in normal (conducting)
        operation, matching SPICE conventions.
        """
        if self.params.polarity == "nmos":
            if vd >= vs:
                return self._ids_normal(vd, vg, vs, self.bulk_voltage)
            # Swapped operation: physical source is the "drain" terminal.
            i, dd, dg, ds = self._ids_normal(vs, vg, vd, self.bulk_voltage)
            return -i, -ds, -dg, -dd
        # p-MOS: mirror every voltage around the bulk, treat as n-type.
        vb = self.bulk_voltage
        md, mg, ms = 2 * vb - vd, 2 * vb - vg, 2 * vb - vs
        if md >= ms:
            i, dd, dg, ds = self._ids_normal(md, mg, ms, vb)
            # I_drain(p) = -i ; chain rule d(md)/d(vd) = -1 etc.
            return -i, dd, dg, ds
        i, dd, dg, ds = self._ids_normal(ms, mg, md, vb)
        return i, -ds, -dg, -dd

    def ids(self, vd: float, vg: float, vs: float) -> float:
        """Drain current only (see :meth:`ids_and_derivatives`)."""
        return self.ids_and_derivatives(vd, vg, vs)[0]

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        circuit = sys.circuit
        idx_d = circuit.node_index(self.drain)
        idx_g = circuit.node_index(self.gate)
        idx_s = circuit.node_index(self.source)
        vd = ctx.voltage(idx_d)
        vg = ctx.voltage(idx_g)
        vs = ctx.voltage(idx_s)
        i, gd, gg, gs = self.ids_and_derivatives(vd, vg, vs)
        # Newton companion: inject -I0 + sum(g_x * v_x0) into drain and
        # the opposite into source; conductances into the matrix.
        i_eq = i - (gd * vd + gg * vg + gs * vs)
        for idx, sign in ((idx_d, 1.0), (idx_s, -1.0)):
            if idx < 0:
                continue
            if idx_d >= 0:
                sys.matrix[idx, idx_d] += sign * gd
            if idx_g >= 0:
                sys.matrix[idx, idx_g] += sign * gg
            if idx_s >= 0:
                sys.matrix[idx, idx_s] += sign * gs
            sys.rhs[idx] += -sign * i_eq
        # Fixed gate capacitances (backward-Euler companion).
        if ctx.dt is not None:
            for cap, other in ((self.cgs, idx_s), (self.cgd, idx_d)):
                if cap <= 0.0:
                    continue
                g = cap / ctx.dt
                v_prev = ctx.voltage(idx_g, "prev") - ctx.voltage(other, "prev")
                sys.add_conductance(idx_g, other, g)
                sys.add_current(idx_g, g * v_prev)
                sys.add_current(other, -g * v_prev)

    # ------------------------------------------------------------------
    # Convenience queries used by design/calibration code
    # ------------------------------------------------------------------

    def saturation_current(self, vgs: float, vds: float | None = None) -> float:
        """Drain current with the source grounded at the given bias.

        ``vds`` defaults to a deep-saturation bias of ``vgs`` itself.
        """
        if vds is None:
            vds = max(vgs, 0.1)
        return self.ids(vds, vgs, 0.0)

    @property
    def gate_capacitance_total(self) -> float:
        """Total intrinsic gate-oxide capacitance C_ox·W·L in farads."""
        return self.params.gate_capacitance(self.w, self.l)
