"""Measurement result containers and code semantics.

The structure returns a small integer **code** — the number of completed
current steps before OUT flipped:

- ``code == 0``: OUT flipped on the very first step.  Per the paper this
  is ambiguous between "capacitance below the range floor", "capacitor
  shorted" and "capacitor open" — all three leave the REF transistor off.
- ``1 <= code <= num_steps - 1``: in-range; the abacus maps it to a
  capacitance estimate.
- ``code == num_steps``: OUT never flipped; capacitance at or above the
  range ceiling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MeasurementError


class CodeMeaning(enum.Enum):
    """Coarse interpretation of a raw code (paper §2, last paragraph)."""

    UNDER_RANGE = "under_range"  # code 0: C < floor, short, or open
    IN_RANGE = "in_range"
    OVER_RANGE = "over_range"  # code == num_steps: C >= ceiling

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MeasurementResult:
    """Outcome of one cell measurement.

    Parameters
    ----------
    code:
        Completed current steps before the OUT flip (0..num_steps).
    num_steps:
        Converter depth (20 in the paper).
    vgs:
        Internal charge-sharing voltage V_GS in volts (observable in
        simulation, not on silicon — kept for analysis and debugging).
    flip_time:
        OUT rise time in seconds for transient-tier measurements, or
        ``None`` for static tiers / never-flipped.
    tier:
        Which execution tier produced this result
        (``"transient"``, ``"charge"`` or ``"closed_form"``).
    address:
        Optional (row, col) of the measured cell.
    """

    code: int
    num_steps: int = 20
    vgs: float = float("nan")
    flip_time: float | None = None
    tier: str = "charge"
    address: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.code <= self.num_steps:
            raise MeasurementError(
                f"code {self.code} outside 0..{self.num_steps}"
            )

    @property
    def meaning(self) -> CodeMeaning:
        """Coarse range classification of this code."""
        if self.code == 0:
            return CodeMeaning.UNDER_RANGE
        if self.code == self.num_steps:
            return CodeMeaning.OVER_RANGE
        return CodeMeaning.IN_RANGE

    @property
    def in_range(self) -> bool:
        """True when the abacus can invert this code to a capacitance."""
        return self.meaning is CodeMeaning.IN_RANGE


@dataclass
class FlowTrace:
    """Per-phase record of a charge-tier measurement (debug/teaching aid).

    Maps phase names to the plate and gate voltages at the end of each
    phase; populated by
    :meth:`repro.measure.sequencer.MeasurementSequencer.measure_charge`
    when tracing is enabled.
    """

    plate: dict[str, float] = field(default_factory=dict)
    gate: dict[str, float] = field(default_factory=dict)

    def record(self, phase_name: str, plate_v: float, gate_v: float) -> None:
        """Store end-of-phase node voltages."""
        self.plate[phase_name] = plate_v
        self.gate[phase_name] = gate_v
