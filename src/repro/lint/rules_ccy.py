"""Concurrency (CCY) rules: static races in the fork-based fan-out.

The shared-memory fan-out (:mod:`repro.measure.parallel`) and the
supervised pool (:mod:`repro.resilience.supervisor`) are correct today
because of conventions the type system cannot see: forked workers hold a
copy-on-write snapshot of the parent, so module-level mutable state
written from a worker diverges silently; objects handed to a worker
payload are frozen at fork time, so parent-side mutation afterwards
desyncs the two sides; shared-memory segments leak OS handles unless a
``close()``/``unlink()`` pair runs at interpreter exit; and the
parent-side pool cache is only sound while its key covers every
data-affecting :class:`~repro.measure.config.ScanConfig` field.  These
rules turn each convention into a checked invariant:

``CCY001 fork-captured-global-write``
    A function reachable from a worker entry point (``_init_worker``,
    ``_scan_one``, ``_worker_main``, or anything passed as an
    ``initializer=`` / ``target=`` keyword) writes to a module-level
    mutable object or rebinds a module global.  Under ``fork`` that
    write lands in the worker's copy-on-write snapshot — the parent
    never sees it, and repeated scans read stale state.  The sanctioned
    per-process installer pattern annotates ``# lint: allow-worker-state``.

``CCY002 mutation-after-handoff``
    A name is handed to a worker payload (``initargs=`` / ``args=``
    keyword, or a positional argument to ``.run()`` / ``.submit()`` /
    ``.map()`` / ``.apply_async()``) and then mutated later in the same
    function.  The workers captured the object at fork/submit time;
    the parent-side mutation is invisible to them.  Rebinding the name
    is fine — only in-place mutation is flagged.
    (``# lint: allow-handoff-mutation``)

``CCY003 shm-missing-cleanup``
    A module creates a ``SharedMemory(create=True)`` segment but never
    calls ``.unlink()``, or registers no interpreter-exit teardown
    (``atexit.register`` / ``weakref.finalize``).  Leaked segments
    survive the process on POSIX and eventually exhaust ``/dev/shm``.
    (``# lint: allow-shm-lifecycle``)

``CCY004 fingerprint-drift`` (target ``project``)
    The run ledger's :func:`~repro.obs.ledger.config_fingerprint` —
    which also keys pool-cache reuse and checkpoint resume — no longer
    covers every data-affecting (``compare=True``) field of
    :class:`~repro.measure.config.ScanConfig`, or carries a stale key.
    A missing field means two materially different configs fingerprint
    identically: cached pools and resumed checkpoints replay the wrong
    run.  Checked against the live dataclasses, so the two definitions
    can never drift apart silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.pylint_rules import (
    _is_test_file,
    _line_has_pragma,
    _subject_triple,
)
from repro.lint.registry import rule

#: Function names treated as worker entry points unconditionally.
WORKER_ENTRY_NAMES = ("_init_worker", "_scan_one", "_worker_main")

#: Keyword arguments whose function-valued operand is a worker entry.
_ENTRY_KEYWORDS = ("initializer", "target")

#: Callable factories whose result is module-level *mutable* state.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict",
     "Counter", "bytearray"}
)

#: Literal node types that build mutable containers.
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp,
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "pop",
     "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
     "sort", "reverse"}
)

#: Method names that hand their positional arguments to workers.
_HANDOFF_METHODS = frozenset(
    {"run", "submit", "map", "starmap", "imap", "imap_unordered",
     "apply_async", "map_async"}
)

#: Keyword arguments whose tuple/list operand is a worker payload.
_HANDOFF_KEYWORDS = ("initargs", "args")


def _root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _module_mutable_globals(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable containers -> def lineno."""
    found: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and (
                (isinstance(value.func, ast.Name)
                 and value.func.id in _MUTABLE_FACTORIES)
                or (isinstance(value.func, ast.Attribute)
                    and value.func.attr in _MUTABLE_FACTORIES)
            )
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                found[target.id] = stmt.lineno
    return found


def _module_global_names(tree: ast.Module) -> set[str]:
    """Every name bound at module level (mutable or not)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            names.update(
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _worker_entries(
    tree: ast.Module, functions: dict[str, ast.FunctionDef]
) -> dict[str, str]:
    """Worker entry functions -> reason they count as entries."""
    entries: dict[str, str] = {}
    for name in WORKER_ENTRY_NAMES:
        if name in functions:
            entries[name] = f"named {name}"
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg in _ENTRY_KEYWORDS and isinstance(kw.value, ast.Name):
                if kw.value.id in functions:
                    entries.setdefault(kw.value.id, f"passed as {kw.arg}=")
    return entries


def _reachable_from(
    entries: dict[str, str], functions: dict[str, ast.FunctionDef]
) -> dict[str, str]:
    """Transitive callees of the entry set -> originating entry."""
    origin = dict(entries)
    frontier = list(entries)
    while frontier:
        caller = frontier.pop()
        for node in ast.walk(functions[caller]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in functions
                and node.func.id not in origin
            ):
                origin[node.func.id] = origin[caller]
                frontier.append(node.func.id)
    return origin


def _local_names(func: ast.FunctionDef) -> set[str]:
    """Parameter names plus plain-Name assignment targets (locals)."""
    args = func.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    }
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            names.update(
                t.id for t in node.targets if isinstance(t, ast.Name)
            )
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _global_decls(func: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _iter_mutations(func: ast.FunctionDef) -> Iterator[tuple[str, int, str]]:
    """Yield ``(root_name, lineno, kind)`` for in-place writes in ``func``.

    ``kind`` is ``"subscript"`` / ``"augassign"`` / ``"method"``; plain
    rebinding of a local name is not a mutation and is never yielded.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = _root_name(target)
                    if name is not None:
                        yield name, node.lineno, "subscript"
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                name = _root_name(node.target)
                if name is not None:
                    yield name, node.lineno, "augassign"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            name = _root_name(node.func.value)
            if name is not None:
                yield name, node.lineno, "method"


@rule(
    "CCY001",
    "fork-captured-global-write",
    target="source",
    summary="worker-reachable write to a fork-captured module global",
)
def check_fork_captured_global_write(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag writes to module globals reachable from worker entry points.

    Forked workers see a copy-on-write snapshot: a write to module-level
    mutable state inside a worker never reaches the parent (or the other
    workers), so code that *appears* to share state through a module
    global silently diverges per process.
    """
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    functions = _module_functions(tree)
    entries = _worker_entries(tree, functions)
    if not entries:
        return
    mutable = _module_mutable_globals(tree)
    module_names = _module_global_names(tree)
    origin = _reachable_from(entries, functions)
    for fname, entry in origin.items():
        func = functions[fname]
        locals_ = _local_names(func) - _global_decls(func)
        globals_ = _global_decls(func)
        for name, lineno, _kind in _iter_mutations(func):
            if name not in mutable or name in locals_:
                continue
            if _line_has_pragma(lines, lineno, "lint: allow-worker-state"):
                continue
            yield check_fork_captured_global_write.diagnostic(
                f"{fname}() writes to fork-captured module global {name!r} "
                f"(reachable from worker entry: {entry}); the parent never "
                "sees worker-side writes under fork",
                subject=str(path),
                nodes=(name,),
                location=f"{path}:{lineno}",
            )
        for node in ast.walk(func):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in globals_
                    and target.id in module_names
                    and not _line_has_pragma(
                        lines, node.lineno, "lint: allow-worker-state"
                    )
                ):
                    yield check_fork_captured_global_write.diagnostic(
                        f"{fname}() rebinds module global {target.id!r} via "
                        f"`global` (reachable from worker entry: {entry}); "
                        "the rebinding stays inside the forked worker",
                        subject=str(path),
                        nodes=(target.id,),
                        location=f"{path}:{node.lineno}",
                    )


def _handoff_events(func: ast.FunctionDef) -> dict[str, int]:
    """Names handed to a worker payload -> earliest handoff lineno."""
    events: dict[str, int] = {}

    def _note(name: str, lineno: int) -> None:
        if name not in events or lineno < events[name]:
            events[name] = lineno

    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg in _HANDOFF_KEYWORDS and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                for element in kw.value.elts:
                    if isinstance(element, ast.Name):
                        _note(element.id, node.lineno)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _HANDOFF_METHODS
        ):
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    _note(arg.id, node.lineno)
    return events


@rule(
    "CCY002",
    "mutation-after-handoff",
    target="source",
    summary="object mutated after being handed to a worker payload",
)
def check_mutation_after_handoff(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag in-place mutation of objects already handed to workers.

    ``initargs=`` captures at fork, task lists capture at submit; a
    later parent-side ``.append()`` or item assignment changes an object
    the workers will never re-read.
    """
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        events = _handoff_events(func)
        if not events:
            continue
        for name, lineno, kind in _iter_mutations(func):
            handed = events.get(name)
            if handed is None or lineno <= handed:
                continue
            if _line_has_pragma(lines, lineno, "lint: allow-handoff-mutation"):
                continue
            verb = {
                "subscript": "item/attribute assignment",
                "augassign": "augmented assignment",
                "method": "mutating method call",
            }[kind]
            yield check_mutation_after_handoff.diagnostic(
                f"{name!r} was handed to a worker payload at line {handed} "
                f"and mutated afterwards ({verb}); workers captured it at "
                "fork/submit time and will not see the change",
                subject=str(path),
                nodes=(name,),
                location=f"{path}:{lineno}",
            )


@rule(
    "CCY003",
    "shm-missing-cleanup",
    target="source",
    summary="SharedMemory segment created without unlink/atexit teardown",
)
def check_shm_missing_cleanup(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag shared-memory creation without a full teardown story.

    A ``SharedMemory(create=True)`` segment outlives the process unless
    ``.unlink()`` runs; and because scans cache segments for reuse, the
    unlink must be wired to interpreter exit (``atexit.register`` or
    ``weakref.finalize``), not just the happy path.
    """
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    creates: list[int] = []
    has_unlink = False
    has_exit_hook = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            callee = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if callee == "SharedMemory" and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                creates.append(node.lineno)
            elif isinstance(func, ast.Attribute):
                if func.attr == "unlink":
                    has_unlink = True
                elif (
                    func.attr == "register"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "atexit"
                ) or (
                    func.attr == "finalize"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "weakref"
                ):
                    has_exit_hook = True
    creates = [
        lineno for lineno in creates
        if not _line_has_pragma(lines, lineno, "lint: allow-shm-lifecycle")
    ]
    if not creates:
        return
    if not has_unlink:
        yield check_shm_missing_cleanup.diagnostic(
            "SharedMemory(create=True) segment is never unlink()ed in this "
            "module; POSIX segments outlive the process and leak /dev/shm",
            subject=str(path),
            location=f"{path}:{creates[0]}",
        )
    if not has_exit_hook:
        yield check_shm_missing_cleanup.diagnostic(
            "SharedMemory(create=True) without an interpreter-exit teardown "
            "(atexit.register or weakref.finalize); a crashed or interrupted "
            "run leaks the segment",
            subject=str(path),
            location=f"{path}:{creates[0]}",
        )


@rule(
    "CCY004",
    "fingerprint-drift",
    target="project",
    summary="config_fingerprint no longer covers ScanConfig's data fields",
)
def check_fingerprint_drift(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Cross-check the ledger fingerprint against ScanConfig's fields.

    The fingerprint keys three independent mechanisms — run-ledger
    provenance, checkpoint resume, and (indirectly) warm-pool reuse —
    so a ``compare=True`` field missing from it makes materially
    different runs indistinguishable.  ``context`` may override
    ``data_fields`` / ``fingerprint_keys`` / ``resume_keys`` /
    ``pinned_fields`` (tests); by default the live dataclass and ledger
    are introspected.

    On top of the set-consistency checks, a **pinned** field list
    (default: ``technology``) must be present in all three sets.  The
    consistency checks alone cannot catch a field being flipped to
    ``compare=False`` and dropped from the fingerprint *together* —
    for pinned fields that coordinated drift is an error too, because
    the backend choice changes the physics of every recorded run.
    """
    data_fields = context.get("data_fields")
    fingerprint_keys = context.get("fingerprint_keys")
    resume_keys = context.get("resume_keys")
    if data_fields is None or fingerprint_keys is None:
        from dataclasses import fields as dataclass_fields

        from repro.measure.config import ScanConfig
        from repro.obs.ledger import config_fingerprint
        from repro.resilience.checkpoint import resume_fingerprint

        probe = ScanConfig()
        data_fields = [f.name for f in dataclass_fields(ScanConfig) if f.compare]
        fingerprint_keys = set(config_fingerprint(probe))
        resume_keys = set(resume_fingerprint(probe))
    data = set(data_fields)  # type: ignore[arg-type]
    prints = set(fingerprint_keys)  # type: ignore[arg-type]
    for name in sorted(data - prints):
        yield check_fingerprint_drift.diagnostic(
            f"data-affecting ScanConfig field {name!r} is missing from "
            "config_fingerprint(); two different runs would fingerprint "
            "identically (ledger provenance, resume and cache keys all lie)",
            subject="ScanConfig vs config_fingerprint",
            nodes=(name,),
        )
    for name in sorted(prints - data):
        yield check_fingerprint_drift.diagnostic(
            f"config_fingerprint() carries {name!r} which is not a "
            "data-affecting (compare=True) ScanConfig field; stale key",
            subject="ScanConfig vs config_fingerprint",
            nodes=(name,),
            severity=Severity.WARNING,
        )
    if resume_keys is not None:
        expected_resume = prints - {"jobs"}
        if set(resume_keys) != expected_resume:
            yield check_fingerprint_drift.diagnostic(
                "resume_fingerprint() must equal config_fingerprint() minus "
                f"'jobs'; got {sorted(resume_keys)} vs expected "
                f"{sorted(expected_resume)}",
                subject="resume_fingerprint vs config_fingerprint",
            )
    pinned = context.get("pinned_fields", ("technology",))
    for name in pinned:  # type: ignore[union-attr]
        missing = [
            set_name
            for set_name, keys in (
                ("ScanConfig data fields", data),
                ("config_fingerprint()", prints),
                ("resume_fingerprint()", set(resume_keys) if resume_keys is not None else prints),
            )
            if name not in keys
        ]
        if missing:
            yield check_fingerprint_drift.diagnostic(
                f"pinned field {name!r} must appear in the data-field, "
                "fingerprint and resume key sets but is missing from "
                f"{', '.join(missing)}; the technology choice selects the "
                "cell physics, so dropping it anywhere makes runs against "
                "different memories indistinguishable",
                subject="pinned fingerprint fields",
                nodes=(name,),
            )
