"""Static analysis: ERC netlist checks, parameter/unit sanity, source lint.

A rule-based static-analysis subsystem with a pluggable registry, stable
diagnostic codes and severity levels.  It analyzes
:class:`~repro.circuit.netlist.Circuit` netlists,
:class:`~repro.circuit.charge.CapacitorNetwork` charge networks,
five-phase measurement flows and the Python source tree itself — all
without invoking any solver.

Quick use::

    from repro.lint import lint_circuit
    report = lint_circuit(my_circuit)
    if not report.ok:
        print(report.format_text())

Rule codes (see :mod:`repro.lint.rules_erc` etc. for details):

========  ===========================  =====================================
ERC001    floating-node                dangling node, one element terminal
ERC002    no-dc-path-to-ground         capacitively isolated node group
ERC003    charge-trap                  unreachable charged node (charge net)
ERC004    phase-isolation-violation    plate not isolated in flow step 3/4
ERC005    voltage-source-loop          V-source loop or parallel pair
PRM001    parameter-out-of-corner-range  tech card outside corner envelope
UNT001    suspicious-unit-magnitude    element value implies an SI slip
PY001     raw-si-literal               femto-scale magic float in source
PY002     bare-assert                  assert as runtime validation
ERC006    swallowed-repro-error        broad except eats ReproError silently
CCY001    fork-captured-global-write   worker writes a fork-captured global
CCY002    mutation-after-handoff       object mutated after worker handoff
CCY003    shm-missing-cleanup          SharedMemory without unlink/atexit
CCY004    fingerprint-drift            config_fingerprint misses a data field
CCY101    overlapping-write-footprint  two tasks wrote the same cells
CCY102    footprint-coverage-gap       cells no task claims to have written
DET001    wallclock-in-measurement-path  time.time()/now() near results
DET002    unseeded-rng                 RNG without a seeded Generator
DET003    unordered-reduction          numeric reduction in set-hash order
DET004    completion-order-accumulation  float += in completion order
FLT001    shard-overlap                die claimed by >1 shard / off-wafer
FLT002    shard-gap                    die claimed by no shard
WVR001    expired-waiver               a file waiver outlived its expiry
========  ===========================  =====================================

The measurement layer exposes the ERC pass as a pre-flight check:
``ArrayScanner.scan(..., preflight=True)`` and
``MeasurementSequencer.preflight()`` diagnose a bad network with rule
codes (raising :class:`~repro.errors.RuleViolation`) instead of letting
it explode inside a solver.
"""

from __future__ import annotations

from repro.lint.analyzer import (
    expand_codes,
    lint_charge_network,
    lint_circuit,
    lint_flow,
    lint_project,
    lint_source,
    lint_technology,
    preflight_array,
    preflight_macro,
    raise_on_errors,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import REGISTRY, RuleRegistry, RuleSpec, rule
from repro.lint.waivers import Waiver, apply_waivers, load_waivers

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "REGISTRY",
    "RuleRegistry",
    "RuleSpec",
    "rule",
    "lint_circuit",
    "lint_charge_network",
    "lint_flow",
    "lint_project",
    "lint_technology",
    "lint_source",
    "expand_codes",
    "preflight_macro",
    "preflight_array",
    "raise_on_errors",
    "Waiver",
    "load_waivers",
    "apply_waivers",
]
