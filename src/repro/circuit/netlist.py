"""Netlist container: named nodes plus a list of elements.

A :class:`Circuit` is purely structural — solving happens in
:mod:`repro.circuit.dc` and :mod:`repro.circuit.transient`.  Nodes are
plain strings; the reserved name ``"0"`` (also exported as :data:`GROUND`)
is the reference node and is excluded from the unknown vector.

Example
-------
>>> from repro.circuit import Circuit, Resistor, VoltageSource
>>> ckt = Circuit("divider")
>>> _ = ckt.add(VoltageSource("VIN", "in", "0", 1.8))
>>> _ = ckt.add(Resistor("R1", "in", "mid", 1e3))
>>> _ = ckt.add(Resistor("R2", "mid", "0", 1e3))
>>> from repro.circuit import dc_operating_point
>>> op = dc_operating_point(ckt)
>>> round(op["mid"], 6)
0.9
"""

from __future__ import annotations

from typing import Iterator, TYPE_CHECKING

from repro.errors import NetlistError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.elements import Element

#: The reference (ground) node name.
GROUND = "0"


class Circuit:
    """A mutable netlist of named elements connecting named nodes.

    Element names must be unique within one circuit.  Nodes are created
    implicitly the first time an element references them.
    """

    def __init__(self, title: str = "untitled") -> None:
        self.title = title
        self._elements: dict[str, "Element"] = {}
        self._nodes: dict[str, int] = {}  # name -> unknown index (ground absent)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, element: "Element") -> "Element":
        """Add ``element`` to the netlist and return it.

        Raises :class:`NetlistError` on a duplicate element name.
        """
        if element.name in self._elements:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.title!r}"
            )
        for node in element.nodes():
            self._register_node(node)
        self._elements[element.name] = element
        return element

    def remove(self, name: str) -> "Element":
        """Remove and return the element called ``name``.

        Node indices are rebuilt lazily; removing the last element on a
        node leaves the node registered (harmless — it simply floats and
        is pinned by gmin during solves).
        """
        try:
            return self._elements.pop(name)
        except KeyError:
            raise NetlistError(f"no element named {name!r} in circuit {self.title!r}") from None

    def _register_node(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise NetlistError(f"node names must be non-empty strings, got {name!r}")
        if name != GROUND and name not in self._nodes:
            self._nodes[name] = len(self._nodes)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        """All non-ground node names, in index order."""
        return sorted(self._nodes, key=self._nodes.__getitem__)

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes (size of the voltage unknown block)."""
        return len(self._nodes)

    def node_index(self, name: str) -> int:
        """Index of node ``name`` in the unknown vector; -1 for ground."""
        if name == GROUND:
            return -1
        try:
            return self._nodes[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r} in circuit {self.title!r}") from None

    def has_node(self, name: str) -> bool:
        """True if ``name`` is ground or a registered node."""
        return name == GROUND or name in self._nodes

    def __contains__(self, element_name: str) -> bool:
        return element_name in self._elements

    def __getitem__(self, element_name: str) -> "Element":
        try:
            return self._elements[element_name]
        except KeyError:
            raise NetlistError(
                f"no element named {element_name!r} in circuit {self.title!r}"
            ) from None

    def __iter__(self) -> Iterator["Element"]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def elements_of_type(self, cls: type) -> list["Element"]:
        """All elements that are instances of ``cls``, in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, cls)]

    def summary(self) -> dict[str, int]:
        """Histogram of element class names plus the node count.

        Used by the Figure-1 structural-audit bench.
        """
        counts: dict[str, int] = {}
        for element in self._elements.values():
            key = type(element).__name__
            counts[key] = counts.get(key, 0) + 1
        counts["nodes"] = self.num_nodes
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.title!r}, elements={len(self._elements)}, "
            f"nodes={self.num_nodes})"
        )
