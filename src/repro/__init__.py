"""repro — reproduction of "A New Embedded Measurement Structure for
eDRAM Capacitor" (Lopez, Portal, Née — DATE 2005).

The library simulates, end to end, an embedded DFT structure that
measures the storage capacitance of every 1T1C cell in an eDRAM array as
a small digital code, and the analog-bitmap diagnosis methodology built
on it.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quick tour (see ``examples/quickstart.py`` for the runnable version)::

    from repro import (
        EDRAMArray, design_structure, Abacus, ArrayScanner, AnalogBitmap,
    )

    array = EDRAMArray(rows=16, cols=32, macro_cols=2)
    structure = design_structure(array.tech, array.rows, array.macro_cols)
    abacus = Abacus.analytic(structure, array.rows, array.macro_cols)
    bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
    print(bitmap.mean_capacitance())

Subpackages
-----------
- :mod:`repro.tech` — synthetic 0.18 µm eDRAM technology cards
- :mod:`repro.technologies` — pluggable cell-technology backends
  (eDRAM default, ferroelectric capacitor, capacitorless 1T)
- :mod:`repro.circuit` — MNA circuit simulator + charge engine
- :mod:`repro.edram` — array substrate, defects, variation
- :mod:`repro.measure` — the paper's measurement structure (core)
- :mod:`repro.calibration` — structure sizing, abacus, accuracy, windows
- :mod:`repro.bitmap` — analog/digital bitmaps, signatures
- :mod:`repro.diagnosis` — classification, process monitoring, repair
- :mod:`repro.baselines` — march tests, bitline-side measurement, probe
- :mod:`repro.obs` — tracing, metrics, live progress, the run ledger
  and cross-run drift detection
"""

from repro.errors import ReproError
from repro.tech import TechnologyCard, default_technology, Corner, corner_technology
from repro.edram import EDRAMArray, DefectKind, CellDefect, DefectInjector
from repro.measure import (
    MeasurementDesign,
    MeasurementStructure,
    MeasurementSequencer,
    MeasurementResult,
    ArrayScanner,
    ScanConfig,
)
from repro.obs import (
    DriftEngine,
    MetricsRegistry,
    ProgressReporter,
    RunLedger,
    Tracer,
    check_ledger,
)
from repro.calibration import (
    design_structure,
    Abacus,
    accuracy_sweep,
    SpecificationWindow,
)
from repro.bitmap import AnalogBitmap, DigitalBitmap, categorize, fit_gradient
from repro.diagnosis import (
    CellClassifier,
    ProcessMonitor,
    FailureAnalyzer,
    RepairPlanner,
    DiagnosisPipeline,
)
from repro.technologies import (
    CellTechnology,
    get as get_technology,
    names as technology_names,
    register as register_technology,
)
from repro.controller import BISTController, TestScheduler, ScanOrder
from repro.wafer import WaferModel, WaferReport
from repro.io import save_scan, load_scan, save_abacus, load_abacus
from repro.baselines import mats_pp, march_c_minus, BitlineMeasurement, DirectProbe

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "TechnologyCard",
    "default_technology",
    "Corner",
    "corner_technology",
    "EDRAMArray",
    "DefectKind",
    "CellDefect",
    "DefectInjector",
    "MeasurementDesign",
    "MeasurementStructure",
    "MeasurementSequencer",
    "MeasurementResult",
    "ArrayScanner",
    "ScanConfig",
    "CellTechnology",
    "get_technology",
    "technology_names",
    "register_technology",
    "Tracer",
    "MetricsRegistry",
    "ProgressReporter",
    "RunLedger",
    "DriftEngine",
    "check_ledger",
    "design_structure",
    "Abacus",
    "accuracy_sweep",
    "SpecificationWindow",
    "AnalogBitmap",
    "DigitalBitmap",
    "categorize",
    "fit_gradient",
    "CellClassifier",
    "ProcessMonitor",
    "FailureAnalyzer",
    "RepairPlanner",
    "DiagnosisPipeline",
    "BISTController",
    "TestScheduler",
    "ScanOrder",
    "WaferModel",
    "WaferReport",
    "save_scan",
    "load_scan",
    "save_abacus",
    "load_abacus",
    "mats_pp",
    "march_c_minus",
    "BitlineMeasurement",
    "DirectProbe",
    "__version__",
]
