"""Signature → root-cause failure analysis.

Combines the spatial signature categorization with per-cell verdicts to
produce the kind of report a failure-analysis engineer acts on: *what*
is wrong, *where*, and *which process step* to suspect.  The mapping
rules encode standard DRAM failure-analysis lore (cf. the paper's
references [1, 2] on automated failure analysis of repeated structures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.bitmap.signatures import Signature, SignatureKind, categorize
from repro.diagnosis.classifier import CellVerdict
from repro.errors import DiagnosisError


class RootCause(enum.Enum):
    """Suspected physical cause of one finding."""

    CAPACITOR_SHORT = "capacitor_dielectric_short"
    CAPACITOR_OPEN = "capacitor_open_or_under_floor"
    THIN_DIELECTRIC_SPOT = "locally_thin_capacitor_dielectric"
    DEPOSITION_TILT = "deposition_thickness_tilt"
    WORDLINE_DEFECT = "wordline_or_row_driver_defect"
    BITLINE_DEFECT = "bitline_or_column_defect"
    STORAGE_BRIDGE = "storage_node_bridge"
    PARTICLE_CLUSTER = "particle_or_scratch_cluster"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One root-caused anomaly group."""

    signature: Signature
    cause: RootCause
    dominant_verdict: CellVerdict

    def describe(self) -> str:
        """Human-readable one-liner."""
        stats = self.signature.stats
        return (
            f"{self.signature.kind.value:<13} {self.signature.size:>5} cells "
            f"@({stats.centroid[0]:.0f},{stats.centroid[1]:.0f}) -> {self.cause.value}"
        )


#: (signature kind, dominant verdict) → root cause rules.
_RULES: dict[tuple[SignatureKind, CellVerdict], RootCause] = {
    (SignatureKind.SINGLE_CELL, CellVerdict.SHORT): RootCause.CAPACITOR_SHORT,
    (SignatureKind.SINGLE_CELL, CellVerdict.OPEN_OR_UNDER): RootCause.CAPACITOR_OPEN,
    (SignatureKind.SINGLE_CELL, CellVerdict.UNDER_FLOOR): RootCause.CAPACITOR_OPEN,
    (SignatureKind.SINGLE_CELL, CellVerdict.LOW_CAP): RootCause.THIN_DIELECTRIC_SPOT,
    (SignatureKind.SINGLE_CELL, CellVerdict.HIGH_CAP): RootCause.THIN_DIELECTRIC_SPOT,
    (SignatureKind.SINGLE_CELL, CellVerdict.OVER_RANGE): RootCause.CAPACITOR_SHORT,
    (SignatureKind.PAIRED_CELLS, CellVerdict.OVER_RANGE): RootCause.STORAGE_BRIDGE,
    (SignatureKind.PAIRED_CELLS, CellVerdict.HIGH_CAP): RootCause.STORAGE_BRIDGE,
    # Adjacent pairs that do NOT read high are coincident point defects,
    # not bridges (a bridge couples the pair's readings upward).
    (SignatureKind.PAIRED_CELLS, CellVerdict.LOW_CAP): RootCause.THIN_DIELECTRIC_SPOT,
    (SignatureKind.PAIRED_CELLS, CellVerdict.SHORT): RootCause.CAPACITOR_SHORT,
    (SignatureKind.PAIRED_CELLS, CellVerdict.OPEN_OR_UNDER): RootCause.CAPACITOR_OPEN,
    (SignatureKind.ROW, CellVerdict.OPEN_OR_UNDER): RootCause.WORDLINE_DEFECT,
    (SignatureKind.ROW, CellVerdict.LOW_CAP): RootCause.WORDLINE_DEFECT,
    (SignatureKind.COLUMN, CellVerdict.OPEN_OR_UNDER): RootCause.BITLINE_DEFECT,
    (SignatureKind.COLUMN, CellVerdict.LOW_CAP): RootCause.BITLINE_DEFECT,
    (SignatureKind.CLUSTER, CellVerdict.LOW_CAP): RootCause.PARTICLE_CLUSTER,
    (SignatureKind.CLUSTER, CellVerdict.OPEN_OR_UNDER): RootCause.PARTICLE_CLUSTER,
    (SignatureKind.CLUSTER, CellVerdict.SHORT): RootCause.PARTICLE_CLUSTER,
}


class FailureAnalyzer:
    """Produce root-caused findings from verdicts.

    Parameters
    ----------
    line_fraction:
        Forwarded to :func:`repro.bitmap.signatures.categorize`.
    """

    def __init__(self, line_fraction: float = 0.6) -> None:
        self.line_fraction = line_fraction

    def _dominant_verdict(
        self, signature: Signature, verdicts: np.ndarray
    ) -> CellVerdict:
        counts: dict[CellVerdict, int] = {}
        for row, col in signature.cells:
            v = verdicts[row, col]
            counts[v] = counts.get(v, 0) + 1
        return max(counts, key=lambda k: counts[k])

    def analyze(self, verdicts: np.ndarray) -> list[Finding]:
        """Root-cause every anomaly group in a verdict matrix.

        ``verdicts`` is the object matrix from
        :meth:`~repro.diagnosis.classifier.CellClassifier.classify_all`;
        cells not IN_SPEC form the anomaly mask.
        """
        verdicts = np.asarray(verdicts, dtype=object)
        if verdicts.ndim != 2:
            raise DiagnosisError("verdicts must be a 2-D matrix")
        mask = np.vectorize(lambda v: v is not CellVerdict.IN_SPEC)(verdicts)
        if not mask.any():
            return []
        findings = []
        for signature in categorize(mask, self.line_fraction):
            dominant = self._dominant_verdict(signature, verdicts)
            cause = _RULES.get((signature.kind, dominant), RootCause.UNKNOWN)
            findings.append(
                Finding(signature=signature, cause=cause, dominant_verdict=dominant)
            )
        return findings

    def report(self, findings: list[Finding]) -> str:
        """Render findings as a text report."""
        if not findings:
            return "no anomalies found"
        return "\n".join(f.describe() for f in findings)
