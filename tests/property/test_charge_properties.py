"""Property-based tests of the charge-redistribution engine.

Invariants checked on randomized capacitor networks:

- **Maximum principle**: settled floating-node voltages lie within the
  span of the driven voltages and prior node voltages.
- **Charge conservation**: the total plate charge of a floating island
  is unchanged by a settle.
- **Idempotence**: settling twice without reconfiguration changes
  nothing.
- **Superposition/scaling**: scaling every drive scales every settled
  voltage (the network is linear).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.charge import CapacitorNetwork
from repro.units import fF

# Random network description: node count, capacitor endpoints, values.
caps_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.5, max_value=100.0),
    ),
    min_size=1,
    max_size=14,
)
drives_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=7),
    st.floats(min_value=-2.0, max_value=2.0),
    min_size=1,
    max_size=4,
)


def _build(caps, drives):
    net = CapacitorNetwork()
    for k, (a, b, c_ff) in enumerate(caps):
        if a == b:
            continue
        node_a = "0" if a == 0 else f"n{a}"
        node_b = "0" if b == 0 else f"n{b}"
        net.add_capacitor(f"C{k}", node_a, node_b, c_ff * fF)
    for node_idx, voltage in drives.items():
        if node_idx == 0:
            continue
        net.add_node(f"n{node_idx}")
        net.drive(f"n{node_idx}", voltage)
    return net


@given(caps=caps_strategy, drives=drives_strategy)
@settings(max_examples=120, deadline=None)
def test_maximum_principle(caps, drives):
    net = _build(caps, drives)
    state = net.settle()
    bounds = [0.0] + [v for k, v in drives.items() if k != 0]
    lo, hi = min(bounds), max(bounds)
    for node, voltage in state.voltages.items():
        assert lo - 1e-9 <= voltage <= hi + 1e-9


@given(caps=caps_strategy, drives=drives_strategy)
@settings(max_examples=120, deadline=None)
def test_settle_is_idempotent(caps, drives):
    net = _build(caps, drives)
    first = net.settle()
    second = net.settle()
    for node in first.voltages:
        assert second[node] == first[node] or abs(second[node] - first[node]) < 1e-12


@given(caps=caps_strategy, drives=drives_strategy, scale=st.floats(0.1, 3.0))
@settings(max_examples=80, deadline=None)
def test_linearity_under_drive_scaling(caps, drives, scale):
    base = _build(caps, drives).settle()
    scaled_net = _build(caps, {k: v * scale for k, v in drives.items()})
    scaled = scaled_net.settle()
    for node in base.voltages:
        assert scaled[node] == base[node] * scale or (
            abs(scaled[node] - base[node] * scale) < 1e-9
        )


@given(caps=caps_strategy, drives=drives_strategy)
@settings(max_examples=120, deadline=None)
def test_floating_island_conserves_charge_when_drive_released(caps, drives):
    net = _build(caps, drives)
    net.settle()
    released = next(k for k in drives if k != 0) if any(k != 0 for k in drives) else None
    if released is None:
        return
    node = f"n{released}"
    island = net.island_of(node)
    q_before = net.total_charge(island)
    net.float_node(node)
    net.settle()
    q_after = net.total_charge(island)
    assert abs(q_after - q_before) < 1e-22  # coulombs; values are ~1e-13


@given(
    c1=st.floats(1.0, 80.0),
    c2=st.floats(1.0, 80.0),
    v0=st.floats(0.1, 1.8),
)
@settings(max_examples=100, deadline=None)
def test_two_cap_sharing_closed_form(c1, c2, v0):
    net = CapacitorNetwork()
    net.add_capacitor("C1", "a", "0", c1 * fF)
    net.add_capacitor("C2", "b", "0", c2 * fF)
    net.add_switch("S", "a", "b")
    net.drive("a", v0)
    net.settle()
    net.float_node("a")
    net.close_switch("S")
    state = net.settle()
    expected = v0 * c1 / (c1 + c2)
    assert abs(state["a"] - expected) < 1e-12
    assert abs(state["b"] - expected) < 1e-12
