"""Exact charge-redistribution engine."""

import pytest

from repro.circuit.charge import CapacitorNetwork
from repro.errors import NetlistError, SingularCircuitError
from repro.units import fF


def test_basic_two_cap_sharing():
    net = CapacitorNetwork()
    net.add_capacitor("C1", "a", "0", 30 * fF)
    net.add_capacitor("C2", "b", "0", 60 * fF)
    net.add_switch("S", "a", "b")
    net.drive("a", 1.8)
    net.settle()
    net.float_node("a")
    net.close_switch("S")
    state = net.settle()
    expected = 1.8 * 30 / 90
    assert state["a"] == pytest.approx(expected)
    assert state["b"] == pytest.approx(expected)


def test_charge_is_conserved_through_sharing():
    net = CapacitorNetwork()
    net.add_capacitor("C1", "a", "0", 25 * fF)
    net.add_capacitor("C2", "b", "0", 47 * fF)
    net.add_switch("S", "a", "b")
    net.drive("a", 1.3)
    net.drive("b", 0.4)
    net.settle()
    q_before = net.total_charge({"a"}) + net.total_charge({"b"})
    net.float_node("a")
    net.float_node("b")
    net.close_switch("S")
    net.settle()
    q_after = net.total_charge({"a", "b"})
    assert q_after == pytest.approx(q_before)


def test_series_branch_reduction():
    # plate--C1--x--C2--gnd with x floating behaves as series(C1, C2).
    net = CapacitorNetwork()
    net.add_capacitor("C1", "plate", "x", 30 * fF)
    net.add_capacitor("C2", "x", "0", 30 * fF)
    net.drive("plate", 1.8)
    state = net.settle()
    assert state["x"] == pytest.approx(0.9)  # capacitive divider


def test_driven_node_unaffected_by_topology():
    net = CapacitorNetwork()
    net.add_capacitor("C1", "a", "b", 10 * fF)
    net.add_capacitor("C2", "b", "0", 10 * fF)
    net.drive("a", 1.0)
    state = net.settle()
    assert state["a"] == 1.0
    assert state["b"] == pytest.approx(0.5)


def test_floating_island_without_caps_keeps_voltage():
    net = CapacitorNetwork()
    net.add_node("lonely", voltage=0.7)
    state = net.settle()
    assert state["lonely"] == pytest.approx(0.7)


def test_shorted_conflicting_sources_raise():
    net = CapacitorNetwork()
    net.add_capacitor("C", "a", "0", 1 * fF)
    net.add_switch("S", "a", "b", closed=True)
    net.drive("a", 1.0)
    net.drive("b", 0.0)
    with pytest.raises(SingularCircuitError):
        net.settle()


def test_shorted_agreeing_sources_are_fine():
    net = CapacitorNetwork()
    net.add_capacitor("C", "a", "0", 1 * fF)
    net.add_switch("S", "a", "b", closed=True)
    net.drive("a", 1.0)
    net.drive("b", 1.0)
    state = net.settle()
    assert state["a"] == 1.0


def test_ground_cannot_be_floated():
    net = CapacitorNetwork()
    with pytest.raises(NetlistError):
        net.float_node("0")


def test_capacitance_update_for_defect_injection():
    net = CapacitorNetwork()
    net.add_capacitor("CM", "a", "0", 30 * fF)
    assert net.capacitance("CM") == 30 * fF
    net.set_capacitance("CM", 12 * fF)
    assert net.capacitance("CM") == 12 * fF
    with pytest.raises(NetlistError):
        net.set_capacitance("CX", 1 * fF)
    with pytest.raises(NetlistError):
        net.set_capacitance("CM", -1.0)


def test_island_of_tracks_switch_state():
    net = CapacitorNetwork()
    net.add_switch("S1", "a", "b", closed=True)
    net.add_switch("S2", "b", "c", closed=False)
    assert net.island_of("a") == {"a", "b"}
    net.close_switch("S2")
    assert net.island_of("a") == {"a", "b", "c"}
    net.open_switch("S1")
    assert net.island_of("a") == {"a"}


def test_duplicate_names_rejected():
    net = CapacitorNetwork()
    net.add_capacitor("C", "a", "0", 1 * fF)
    with pytest.raises(NetlistError):
        net.add_capacitor("C", "b", "0", 1 * fF)
    net.add_switch("S", "a", "b")
    with pytest.raises(NetlistError):
        net.add_switch("S", "b", "c")


def test_unknown_switch_rejected():
    net = CapacitorNetwork()
    with pytest.raises(NetlistError):
        net.close_switch("nope")
    with pytest.raises(NetlistError):
        net.switch_closed("nope")


def test_five_phase_flow_manually():
    """Replay the paper's phases 1-4 by hand and check V_GS."""
    cm, cref = 30 * fF, 40 * fF
    net = CapacitorNetwork()
    net.add_capacitor("CM", "plate", "s", cm)
    net.add_capacitor("CJS", "s", "0", 0.6 * fF)
    net.add_capacitor("CREF", "gate", "0", cref)
    net.add_switch("AC", "bl", "s", closed=True)
    net.add_switch("LEC", "plate", "gate", closed=True)
    # Phase 1: everything grounded.
    net.drive("bl", 0.0)
    net.drive("plate", 0.0)
    net.settle()
    # Phase 2: charge CM through the plate; LEC open.
    net.open_switch("LEC")
    net.drive("plate", 1.8)
    net.settle()
    # Phase 3: float the plate.
    net.float_node("plate")
    net.settle()
    # Phase 4: share with CREF.
    net.close_switch("LEC")
    state = net.settle()
    assert state["gate"] == pytest.approx(1.8 * cm / (cm + cref))
    assert state["plate"] == state["gate"]


def test_voltage_query_validates_node():
    net = CapacitorNetwork()
    with pytest.raises(NetlistError):
        net.voltage("ghost")
