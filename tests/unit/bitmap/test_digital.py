"""Digital pass/fail bitmap."""

import numpy as np
import pytest

from repro.bitmap.digital import DigitalBitmap
from repro.errors import DiagnosisError


def _bitmap():
    fails = np.zeros((4, 4), dtype=bool)
    fails[1, 2] = True
    fails[3, 0] = True
    return DigitalBitmap(fails, source="test")


def test_validation():
    with pytest.raises(DiagnosisError):
        DigitalBitmap(np.zeros((2, 2)))  # not boolean
    with pytest.raises(DiagnosisError):
        DigitalBitmap(np.zeros(4, dtype=bool))  # not 2-D


def test_counting():
    bm = _bitmap()
    assert bm.fail_count == 2
    assert bm.fail_addresses() == [(1, 2), (3, 0)]


def test_row_and_column_counts():
    bm = _bitmap()
    assert list(bm.row_fail_counts()) == [0, 1, 0, 1]
    assert list(bm.column_fail_counts()) == [1, 0, 1, 0]


def test_merge_unions_fails():
    a = _bitmap()
    other = np.zeros((4, 4), dtype=bool)
    other[0, 0] = True
    merged = a.merge(DigitalBitmap(other, source="more"))
    assert merged.fail_count == 3
    assert "test" in merged.source and "more" in merged.source


def test_merge_shape_mismatch_rejected():
    with pytest.raises(DiagnosisError):
        _bitmap().merge(DigitalBitmap(np.zeros((2, 2), dtype=bool)))


def test_yield_fraction():
    assert _bitmap().yield_fraction() == pytest.approx(14 / 16)
