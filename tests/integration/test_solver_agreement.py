"""Cross-validation of the three execution tiers.

The same measurement must yield the same answer whether computed by the
full MNA transistor-level transient, the exact ideal-switch charge
engine, or the vectorized closed form.  Transient-vs-static agreement is
allowed ±1 code (a V_GS landing within the sense chain's finite
transition of a converter boundary can legitimately resolve either way);
charge engine vs closed form must agree to numerical precision.
"""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.scan import ArrayScanner
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF, mV


@pytest.mark.slow
@pytest.mark.parametrize("cm_ff", [15, 20, 30, 40, 50])
def test_transient_matches_charge_tier(tech, structure_2x2, cm_ff):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(0, 0).capacitance = cm_ff * fF
    seq = MeasurementSequencer(arr.macro(0), structure_2x2)
    static = seq.measure_charge(0, 0)
    dynamic = seq.measure_transient(0, 0)
    assert abs(dynamic.code - static.code) <= 1
    assert dynamic.vgs == pytest.approx(static.vgs, abs=20 * mV)


@pytest.mark.slow
def test_transient_matches_charge_for_out_of_range(tech, structure_2x2):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(0, 0).capacitance = 70 * fF
    seq = MeasurementSequencer(arr.macro(0), structure_2x2)
    assert seq.measure_transient(0, 0).code == structure_2x2.design.num_steps


@pytest.mark.slow
def test_transient_matches_charge_for_shorted_cell(tech, structure_2x2):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(0, 0).apply_defect(CellDefect(DefectKind.SHORT))
    seq = MeasurementSequencer(arr.macro(0), structure_2x2)
    assert seq.measure_transient(0, 0).code == 0


@pytest.mark.slow
def test_transient_matches_charge_for_open_cell(tech, structure_2x2):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(0, 0).apply_defect(CellDefect(DefectKind.OPEN))
    seq = MeasurementSequencer(arr.macro(0), structure_2x2)
    static = seq.measure_charge(0, 0)
    dynamic = seq.measure_transient(0, 0)
    assert abs(dynamic.code - static.code) <= 1


@pytest.mark.slow
def test_non_target_cell_measurement_agrees(tech, structure_2x2):
    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(1, 1).capacitance = 42 * fF
    seq = MeasurementSequencer(arr.macro(0), structure_2x2)
    static = seq.measure_charge(1, 1)
    dynamic = seq.measure_transient(1, 1)
    assert abs(dynamic.code - static.code) <= 1


def test_closed_form_matches_engine_on_random_arrays(tech, structure_8x2):
    rng = np.random.default_rng(17)
    for trial in range(3):
        cap = (30 + rng.normal(0, 3, (8, 2))) * fF
        arr = EDRAMArray(8, 2, tech=tech, capacitance_map=np.abs(cap) + 1 * fF)
        # Sprinkle non-bridge defects.
        kinds = [DefectKind.SHORT, DefectKind.OPEN, DefectKind.ACCESS_OPEN]
        for kind in kinds:
            r, c = rng.integers(0, 8), rng.integers(0, 2)
            if arr.cell(r, c).defect is None:
                arr.cell(r, c).apply_defect(CellDefect(kind))
        scanner = ArrayScanner(arr, structure_8x2)
        fast = scanner.scan()
        slow = scanner.scan(force_engine=True)
        assert np.allclose(fast.vgs, slow.vgs, atol=1e-9), f"trial {trial}"
        assert np.array_equal(fast.codes, slow.codes), f"trial {trial}"


@pytest.mark.slow
def test_bridge_reads_anomalous_in_both_tiers(tech, structure_2x2):
    """Bridged-pair codes are contention-dependent; see DESIGN.md.

    A storage bridge creates a resistive fight between the grounded
    target bitline and the V_DD neighbour bitline during the CHARGE
    phase.  The ideal-switch tier models the zero-resistance end state
    (the pair reads over-range); the transistor tier shows the
    contention-limited intermediate (the pair reads visibly low).  The
    tier-independent invariant — the one diagnosis relies on — is that
    the bridged cell's code deviates clearly from a healthy cell's.
    """
    healthy_arr = EDRAMArray(2, 2, tech=tech)
    healthy = MeasurementSequencer(healthy_arr.macro(0), structure_2x2)
    healthy_code = healthy.measure_charge(0, 0).code

    arr = EDRAMArray(2, 2, tech=tech)
    arr.cell(0, 0).apply_defect(CellDefect(DefectKind.BRIDGE))
    seq = MeasurementSequencer(arr.macro(0), structure_2x2)
    static = seq.measure_charge(0, 0)
    dynamic = seq.measure_transient(0, 0)
    assert abs(static.code - healthy_code) >= 2
    assert abs(dynamic.code - healthy_code) >= 2
