"""Waveform container and measurements."""

import numpy as np
import pytest

from repro.circuit.waveform import Waveform
from repro.errors import ReproError


def _ramp():
    t = np.linspace(0.0, 1e-8, 101)
    return Waveform(t, {"v": t * 1e8})  # 0 -> 1 linearly


class TestConstruction:
    def test_rejects_unsorted_time(self):
        with pytest.raises(ReproError):
            Waveform(np.array([0.0, 1.0, 0.5]), {"v": np.zeros(3)})

    def test_rejects_short_time(self):
        with pytest.raises(ReproError):
            Waveform(np.array([0.0]), {"v": np.zeros(1)})

    def test_rejects_mismatched_trace(self):
        with pytest.raises(ReproError):
            Waveform(np.array([0.0, 1.0]), {"v": np.zeros(3)})

    def test_contains_and_getitem(self):
        wf = _ramp()
        assert "v" in wf
        assert "x" not in wf
        with pytest.raises(ReproError):
            wf["x"]


class TestMeasurements:
    def test_value_at_interpolates(self):
        wf = _ramp()
        assert wf.value_at("v", 5e-9) == pytest.approx(0.5)

    def test_value_at_out_of_range(self):
        with pytest.raises(ReproError):
            _ramp().value_at("v", 2e-8)

    def test_final(self):
        assert _ramp().final("v") == pytest.approx(1.0)

    def test_rising_crossing(self):
        wf = _ramp()
        t = wf.first_crossing("v", 0.25, "rise")
        assert t == pytest.approx(2.5e-9, rel=1e-6)

    def test_falling_crossing(self):
        t = np.linspace(0, 1, 11)
        wf = Waveform(t, {"v": 1.0 - t})
        assert wf.first_crossing("v", 0.5, "fall") == pytest.approx(0.5)
        assert wf.first_crossing("v", 0.5, "rise") is None

    def test_both_directions(self):
        t = np.linspace(0, 2 * np.pi, 400)
        wf = Waveform(t, {"v": np.sin(t)})
        crossings = wf.crossings("v", 0.0, "both")
        # One rising crossing just after t=0 (the t=0 sample itself is not
        # above threshold) and the falling crossing at pi.
        assert len(crossings) == 2
        assert crossings[-1] == pytest.approx(np.pi, rel=1e-3)

    def test_invalid_direction(self):
        with pytest.raises(ReproError):
            _ramp().crossings("v", 0.5, "sideways")


class TestWindow:
    def test_window_bounds(self):
        wf = _ramp().window(2e-9, 8e-9)
        assert wf.t_start >= 2e-9
        assert wf.t_stop <= 8e-9

    def test_empty_window_rejected(self):
        with pytest.raises(ReproError):
            _ramp().window(5e-9, 5e-9)

    def test_tiny_window_rejected(self):
        with pytest.raises(ReproError):
            _ramp().window(5.0e-9, 5.01e-9)


class TestAsciiPlot:
    def test_renders_requested_size(self):
        art = _ramp().ascii_plot(["v"], width=40, height=8)
        lines = art.splitlines()
        assert len(lines) == 9  # 8 rows + axis legend
        assert "v" in lines[-1]

    def test_flat_trace_does_not_crash(self):
        t = np.linspace(0, 1, 10)
        wf = Waveform(t, {"flat": np.full(10, 0.5)})
        assert "flat" in wf.ascii_plot(["flat"])


class TestSlewAndSettling:
    def _rc_step(self):
        t = np.linspace(0, 10e-9, 2001)
        tau = 1e-9
        return Waveform(t, {"v": 1.8 * (1 - np.exp(-t / tau))})

    def test_slew_rate_rising(self):
        wf = self._rc_step()
        slew = wf.slew_rate("v", 0.2, 1.2)
        assert 3e8 < slew < 2e9  # order of 1.8 V / tau

    def test_slew_rate_falling(self):
        t = np.linspace(0, 10e-9, 2001)
        wf = Waveform(t, {"v": 1.8 * np.exp(-t / 1e-9)})
        assert wf.slew_rate("v", 1.2, 0.2) < 0

    def test_slew_rate_unreachable_level(self):
        wf = self._rc_step()
        with pytest.raises(ReproError):
            wf.slew_rate("v", 0.2, 2.5)

    def test_settling_time(self):
        wf = self._rc_step()
        t_settle = wf.settling_time("v", 1.8, tolerance=0.018)  # 1 %
        # 1 % settling of an RC step is ~4.6 tau.
        assert 4e-9 < t_settle < 5.5e-9

    def test_settling_never(self):
        t = np.linspace(0, 1, 100)
        wf = Waveform(t, {"v": t})  # ramp never settles to 0
        with pytest.raises(ReproError):
            wf.settling_time("v", 0.0, tolerance=0.01)

    def test_settling_validation(self):
        with pytest.raises(ReproError):
            self._rc_step().settling_time("v", 1.8, tolerance=0.0)

    def test_overshoot_of_ringing_trace(self):
        t = np.linspace(0, 10, 1000)
        wf = Waveform(t, {"v": 1.0 + 0.2 * np.exp(-t) * np.sin(8 * t)})
        peak = wf.overshoot("v", 1.0)
        assert 0.1 < peak < 0.21

    def test_overshoot_zero_for_monotone(self):
        wf = self._rc_step()
        assert wf.overshoot("v", 1.8) == pytest.approx(0.0, abs=1e-6)
