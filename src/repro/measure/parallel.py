"""Shared-memory process-pool fan-out for whole-array scans.

Macro-cells are electrically independent — plate segmentation is the
paper's core idea — so per-macro scans parallelise embarrassingly.  The
fan-out keeps the data plane out of the task plane:

* result **planes** (vgs / codes / quality) live in
  :mod:`multiprocessing.shared_memory` segments sized once per array
  shape.  Workers inherit the mapping through ``fork`` and write their
  tiles straight into it; the parent reads tiles (or whole planes) back
  out without a single pickled ndarray crossing a pipe;
* **tasks** are tiny tuples — ``("m", macro_index, force_engine,
  sanitize, obs)`` for per-macro work, ``("k", tile_row_lo,
  tile_row_hi, engine_tiles, sanitize, obs)`` for a slab of the batched
  closed-form kernel — and results are equally tiny ``(kind, …,
  seconds)`` acknowledgements, optionally trailed by footprint
  rectangles (``sanitize``) and buffered spans/metric deltas (``obs``);
* the worker init payload (one :class:`ArrayScanner` + the planes) is
  cached parent-side keyed on ``EDRAMArray.version``, and with vanilla
  supervision the warm :class:`SupervisedPool` is cached with it, so
  repeated scans of the same array skip both the scanner rebuild and
  the fork/initialize cost.  Any cell mutation bumps the version and
  retires the pool — forked workers hold a copy-on-write snapshot of
  the array, so a stale pool would silently scan stale silicon.

Supervision (:class:`~repro.resilience.supervisor.SupervisedPool`): a
worker that dies or blows its wall-clock budget is respawned and the
task retried under the configured
:class:`~repro.resilience.retry.RetryPolicy`; a task that exhausts its
retries is reported back so the scan engine can run it **in-process**
as the final rung — a hostile pool degrades throughput, never the
planes.  A retried task rewrites its tiles from scratch, so a worker
killed mid-write leaves nothing behind; the parent only reads tiles
whose success acknowledgement arrived.  Ctrl-C tears the pool down
(terminate + join, ~2 s bound) before propagating.

Bit-exactness: every worker runs exactly the serial code — per-macro
tasks the per-macro drivers, slab tasks the batched kernel whose
reductions are operation-order identical to them — so a parallel scan
equals the serial scan bit for bit regardless of retries or respawns
(pinned in ``tests/unit/measure/test_scan_perf.py``).
"""

from __future__ import annotations

import atexit
import os
import weakref
from contextlib import nullcontext
from multiprocessing import shared_memory
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Span, Tracer
from repro.resilience.faults import FaultPlan, fault_point
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.resilience.supervisor import (
    SupervisedPool,
    TaskFailure,
    current_worker_info,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edram.array import EDRAMArray
    from repro.measure.scan import ArrayScanner
    from repro.measure.structure import MeasurementStructure
    from repro.sanitize.footprint import FootprintLog

    MacroResult = tuple[int, np.ndarray, np.ndarray, str, np.ndarray, float]

#: Task ``obs`` flag bits: ship spans / ship metric deltas in the ack.
OBS_TRACE = 1
OBS_METRICS = 2


class SharedScanPlanes:
    """The scan's result planes, backed by shared-memory segments.

    Created by the parent and inherited by forked workers: every write a
    worker makes to :attr:`vgs` / :attr:`codes` / :attr:`quality` is
    immediately visible in the parent's mapping of the same segment.
    The parent owns the lifecycle — workers never close or unlink.
    """

    def __init__(self, rows: int, cols: int) -> None:
        self.shape = (rows, cols)
        cells = rows * cols
        self._segments = [
            shared_memory.SharedMemory(create=True, size=max(1, cells * 8)),
            shared_memory.SharedMemory(create=True, size=max(1, cells * 8)),
            shared_memory.SharedMemory(create=True, size=max(1, cells)),
        ]
        self.vgs = np.ndarray((rows, cols), dtype=np.float64,
                              buffer=self._segments[0].buf)
        self.codes = np.ndarray((rows, cols), dtype=np.int64,
                                buffer=self._segments[1].buf)
        self.quality = np.ndarray((rows, cols), dtype=np.uint8,
                                  buffer=self._segments[2].buf)

    def close(self) -> None:
        """Release the views, unmap and unlink the segments (parent only).

        Idempotent: the teardown runs from both explicit cache eviction
        and the atexit hook, and a second close (segments already
        unlinked) must be a silent no-op, not a warning at interpreter
        exit.
        """
        segments, self._segments = self._segments, []
        if not segments:
            return
        # The ndarray views export the buffers; they must drop first or
        # SharedMemory.close() raises BufferError.
        self.vgs = self.codes = self.quality = None  # type: ignore[assignment]
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (BufferError, FileNotFoundError, OSError):  # pragma: no cover
                pass


#: Per-process fan-out state, installed by :func:`_init_worker` at fork.
_WORKER: dict = {}


def _init_worker(scanner: "ArrayScanner", planes: SharedScanPlanes) -> None:
    # Under the fork start method these arrive by inheritance, not
    # pickling: the scanner is a copy-on-write snapshot of the parent's,
    # the planes map the same shared segments.  This is the sanctioned
    # per-process installer CCY001 exists to guard: the writes are
    # worker-local by design and nothing parent-side ever reads them.
    _WORKER["scanner"] = scanner  # lint: allow-worker-state
    _WORKER["planes"] = planes  # lint: allow-worker-state


def _obs_payload(
    tracer: "Tracer | None", registry: "MetricsRegistry | None"
) -> tuple:
    """Pack a worker's buffered spans/metric deltas for the ack tuple.

    ``(worker_id, pid, span_tuples, shipped_metrics)`` — small tuples of
    ints/floats/strings only, like the PR 7 footprint rectangles, so a
    traced task's acknowledgement stays a few hundred bytes instead of a
    pickled object graph.
    """
    info = current_worker_info()
    worker_id = info[0] if info is not None else -1
    spans = tuple(s.to_tuple() for s in tracer.spans) if tracer is not None else ()
    shipped = tuple(registry.to_shipped()) if registry is not None else ()
    return (worker_id, os.getpid(), spans, shipped)


def _scan_one(payload: tuple, attempt: int) -> tuple:
    """Worker body: scan a macro or a kernel slab into the shared planes.

    Returns a small acknowledgement tuple; the data stays in shared
    memory.  ``("m", index, force_engine, sanitize, obs)`` → ``("m",
    index, tier, seconds)``; ``("k", tr_lo, tr_hi, engine_tiles,
    sanitize, obs)`` → ``("k", tr_lo, tr_hi, seconds)``.  With the
    task's ``sanitize`` flag set, one trailing ``(attempt, rects)``
    element is appended — the exact rectangles this worker wrote, a
    handful of ints the parent's :class:`~repro.sanitize.FootprintLog`
    audits.  With ``obs`` bits set (:data:`OBS_TRACE` /
    :data:`OBS_METRICS`), the task runs under a fresh per-task
    :class:`Tracer` / ambient :class:`MetricsRegistry` and one more
    trailing ``(worker_id, pid, spans, metrics)`` element ships the
    buffered telemetry back for the parent-side merge.  Both flags ride
    in the *task* (not the init payload) so instrumented scans reuse
    the warm vanilla pool.
    """
    from repro.measure.config import ScanConfig

    scanner: "ArrayScanner" = _WORKER["scanner"]
    planes: SharedScanPlanes = _WORKER["planes"]
    if payload[0] == "m":
        index, force_engine = payload[1], payload[2]
        sanitize = bool(payload[3]) if len(payload) > 3 else False
        obs = int(payload[4]) if len(payload) > 4 else 0
        w_tracer = Tracer() if obs & OBS_TRACE else None
        w_metrics = MetricsRegistry() if obs & OBS_METRICS else None
        fault_point("worker.scan_macro", macro=index, attempt=attempt)
        macro = scanner.array.macro(index)
        start = perf_counter()
        config = (
            ScanConfig(force_engine=force_engine, tracer=w_tracer)
            if w_tracer is not None
            else ScanConfig(force_engine=force_engine)
        )
        with use_metrics(w_metrics) if w_metrics is not None else nullcontext():
            vgs, codes, tier, quality = scanner._scan_macro(macro, config)
        seconds = perf_counter() - start
        rsl = slice(macro.row_start, macro.row_stop)
        csl = slice(macro.col_start, macro.col_stop)
        planes.vgs[rsl, csl] = vgs
        planes.codes[rsl, csl] = codes
        planes.quality[rsl, csl] = quality
        ack = ("m", index, tier, seconds)
        if sanitize:
            rect = (macro.row_start, macro.row_stop,
                    macro.col_start, macro.col_stop)
            ack = (*ack, (attempt, (rect,)))
        if obs:
            ack = (*ack, _obs_payload(w_tracer, w_metrics))
        return ack

    tr_lo, tr_hi, engine_tiles = payload[1], payload[2], payload[3]
    sanitize = bool(payload[4]) if len(payload) > 4 else False
    obs = int(payload[5]) if len(payload) > 5 else 0
    w_tracer = Tracer() if obs & OBS_TRACE else None
    w_metrics = MetricsRegistry() if obs & OBS_METRICS else None
    array = scanner.array
    mr, mc = array.macro_rows, array.macro_cols
    tiles_across = array.macros_per_row
    written: list[tuple[int, int, int, int]] = []
    start = perf_counter()
    rows_sl = slice(tr_lo * mr, tr_hi * mr)
    span_ctx = (
        w_tracer.span(
            "slab",
            tile_row_lo=tr_lo,
            tile_row_hi=tr_hi,
            cells=(tr_hi - tr_lo) * mr * array.cols,
            engine_tiles=len(engine_tiles),
        )
        if w_tracer is not None
        else nullcontext()
    )
    with use_metrics(w_metrics) if w_metrics is not None else nullcontext():
        with span_ctx:
            vgs = _kernel(
                array.capacitance_view()[rows_sl],
                array.defect_kind_view()[rows_sl],
                scanner.kernel_constants(),
            )
            codes = scanner.codes_for_vgs(vgs)
            if not engine_tiles:
                planes.vgs[rows_sl] = vgs
                planes.codes[rows_sl] = codes
                planes.quality[rows_sl] = 0
                if sanitize:
                    written.append((tr_lo * mr, tr_hi * mr, 0, array.cols))
            else:
                # Engine tiles belong to their own per-macro tasks; skipping
                # them here keeps the two writers off each other's cells.
                skip = frozenset(engine_tiles)
                for tr in range(tr_lo, tr_hi):
                    local = (tr - tr_lo) * mr
                    top = tr * mr
                    for tcol in range(tiles_across):
                        if tr * tiles_across + tcol in skip:
                            continue
                        left = tcol * mc
                        planes.vgs[top:top + mr, left:left + mc] = \
                            vgs[local:local + mr, left:left + mc]
                        planes.codes[top:top + mr, left:left + mc] = \
                            codes[local:local + mr, left:left + mc]
                        planes.quality[top:top + mr, left:left + mc] = 0
                        if sanitize:
                            written.append((top, top + mr, left, left + mc))
    ack = ("k", tr_lo, tr_hi, perf_counter() - start)
    if sanitize:
        ack = (*ack, (attempt, tuple(written)))
    if obs:
        ack = (*ack, _obs_payload(w_tracer, w_metrics))
    return ack


def _kernel(cap, kinds, constants):
    # Imported lazily to keep module load free of the scan -> parallel
    # -> kernel triangle.
    from repro.measure.kernel import closed_form_vgs_plane

    return closed_form_vgs_plane(cap, kinds, constants)


# ---------------------------------------------------------------------------
# Parent-side fan-out cache (worker payload + warm pool), one slot.
# ---------------------------------------------------------------------------

_CACHE: dict[str, Any] = {}


def _evict_fanout_cache() -> None:
    """Retire the cached pool and planes (eviction, tests, interpreter exit).

    Idempotent and exception-safe: it runs from explicit eviction *and*
    the atexit hook, possibly both, and a pool whose workers already
    died (or whose close raises mid-shutdown) must not leak the planes
    or leave a stale cache key behind — the segments would outlive the
    process.
    """
    pool = _CACHE.pop("pool", None)
    planes = _CACHE.pop("planes", None)
    _CACHE.clear()
    try:
        if pool is not None:
            pool.close()
    except Exception:  # lint: allow-broad-except - best-effort exit teardown
        pass
    finally:
        if planes is not None:
            planes.close()


atexit.register(_evict_fanout_cache)


def _fanout_payload(
    array: "EDRAMArray", structure: "MeasurementStructure"
) -> tuple["ArrayScanner", SharedScanPlanes]:
    """The worker init payload, cached keyed on ``array.version``.

    A version bump (any cell mutation) or a different array/structure
    object evicts the whole slot — including the warm pool, whose forked
    workers hold a snapshot of the *old* array.
    """
    key = (id(array), array.version, id(structure))
    if _CACHE.get("key") == key:
        array_ref = _CACHE["array_ref"]
        structure_ref = _CACHE["structure_ref"]
        if array_ref() is array and (
            structure is None or structure_ref() is structure
        ):
            return _CACHE["scanner"], _CACHE["planes"]
    _evict_fanout_cache()
    from repro.measure.scan import ArrayScanner

    scanner = ArrayScanner(array, structure)
    planes = SharedScanPlanes(array.rows, array.cols)
    _CACHE.update(
        key=key,
        array_ref=weakref.ref(array),
        structure_ref=weakref.ref(structure if structure is not None else scanner.structure),
        scanner=scanner,
        planes=planes,
        pool=None,
    )
    return scanner, planes


def _fanout_pool(
    scanner: "ArrayScanner",
    planes: SharedScanPlanes,
    jobs: int,
    retry: RetryPolicy | None,
    timeout: float | None,
    fault_plan: FaultPlan | None,
) -> SupervisedPool:
    """A supervised pool over the cached payload.

    Vanilla supervision (no fault plan, no timeout, default retry) gets
    the cached persistent pool — workers stay warm between scans.  Any
    custom supervision builds a fresh throwaway pool: its workers need
    the fault plan installed at fork, and chaos runs must never leak
    warm workers into later scans.
    """
    vanilla = (
        fault_plan is None
        and timeout is None
        and (retry is None or retry is DEFAULT_RETRY_POLICY)
    )
    if vanilla and _CACHE.get("scanner") is scanner:
        pool = _CACHE.get("pool")
        if pool is None:
            pool = SupervisedPool(
                _scan_one,
                initializer=_init_worker,
                initargs=(scanner, planes),
                jobs=jobs,
                persistent=True,
            )
            _CACHE["pool"] = pool
        else:
            pool.jobs = jobs
        return pool
    return SupervisedPool(
        _scan_one,
        initializer=_init_worker,
        initargs=(scanner, planes),
        jobs=jobs,
        retry=retry if retry is not None else DEFAULT_RETRY_POLICY,
        timeout=timeout,
        fault_plan=fault_plan,
    )


def _run_pool(pool: SupervisedPool, tasks: list) -> tuple[list, dict[str, Any]]:
    """Run tasks and return (outcomes, per-run telemetry deltas).

    A persistent pool's counters accumulate over its lifetime, so each
    run's telemetry is the delta around it.  ``telemetry["workers"]``
    carries the post-run :meth:`SupervisedPool.worker_health` snapshot
    (taken before a throwaway pool is closed).
    """
    before = (pool.retries, pool.timeouts, pool.respawns)
    outcomes = pool.run(tasks)
    telemetry: dict[str, Any] = {
        "retries": pool.retries - before[0],
        "timeouts": pool.timeouts - before[1],
        "respawns": pool.respawns - before[2],
        "workers": pool.worker_health(),
    }
    return outcomes, telemetry


def _obs_flag(tracer: Any, metrics: Any) -> int:
    """The task ``obs`` bits for the given parent-side sinks."""
    flag = 0
    if tracer is not None and getattr(tracer, "enabled", False):
        flag |= OBS_TRACE
    if metrics is not None and getattr(metrics, "enabled", False):
        flag |= OBS_METRICS
    return flag


def _merge_obs(
    tracer: Any, metrics: Any, ack: tuple, sanitize: bool
) -> None:
    """Fold a traced acknowledgement's shipped telemetry into the parent.

    The obs element sits after the optional sanitize element, and the
    parent set both task flags, so the position is deterministic.  Only
    *successful* acknowledgements reach here (failures carry no ack),
    and retried tasks only ship the winning attempt's buffer — a worker
    killed mid-macro loses its partial spans with the rest of its state.
    """
    index = 5 if sanitize else 4
    if len(ack) <= index:
        return
    worker_id, pid, span_tuples, shipped = ack[index]
    if tracer is not None and getattr(tracer, "enabled", False) and span_tuples:
        tracer.merge(
            (Span.from_tuple(t) for t in span_tuples),
            worker_id=worker_id,
            pid=pid,
        )
    if metrics is not None and getattr(metrics, "enabled", False) and shipped:
        metrics.merge_shipped(shipped)


def _record_footprint(
    footprint: "FootprintLog | None", task: str, ack: tuple
) -> None:
    """Audit a sanitize-bearing acknowledgement into the parent's log.

    Only acknowledgements carrying the trailing ``(attempt, rects)``
    element are recorded; plain acks (sanitize off) are ignored.
    """
    if footprint is None or len(ack) <= 4:
        return
    attempt, rects = ack[4]
    for rect in rects:
        footprint.record(task, *rect, attempt=attempt)


# ---------------------------------------------------------------------------
# Public fan-outs
# ---------------------------------------------------------------------------

def scan_macros_parallel(
    array: "EDRAMArray",
    structure: "MeasurementStructure",
    force_engine: bool,
    jobs: int,
    *,
    indices: "list[int] | None" = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    on_result: "Callable[[MacroResult], None] | None" = None,
    footprint: "FootprintLog | None" = None,
    tracer: Any = None,
    metrics: Any = None,
) -> tuple["list[MacroResult]", list[tuple[int, BaseException]], dict[str, Any]]:
    """Scan macros of ``array`` across supervised workers, one per task.

    The per-macro fan-out: used whenever the scan needs per-macro
    supervision semantics (fault plans, checkpoint resume with a subset
    of indices, tracing, ``force_engine``).  Tiles travel through the
    shared planes; each landed result is materialised back into a
    ``(index, vgs, codes, tier, quality, seconds)`` tuple so callers
    see the same contract as a serial scan.

    Parameters
    ----------
    indices:
        Macro indices to scan (default: all) — a resumed scan passes
        only the macros its checkpoint has not completed.
    retry / timeout / fault_plan:
        Supervision knobs, straight from the :class:`ScanConfig`.
    on_result:
        Parent-side hook invoked with each macro result as it lands
        (completion order) — the scan engine places planes and
        checkpoints incrementally through it.
    footprint:
        A :class:`~repro.sanitize.FootprintLog` to audit worker writes
        into; setting it makes tasks ship their written rectangles back
        in the acknowledgements (``--sanitize``).
    tracer / metrics:
        Parent-side observability sinks.  An enabled tracer makes each
        task run under a worker-local :class:`Tracer` whose spans ship
        back in the ack and are grafted (with ``worker_id``/``pid``
        attributes) under the parent's open span as each result lands;
        an enabled registry does the same for metric deltas.

    Returns ``(results, failures, telemetry)``: successful results in
    macro-index order, ``(macro_index, error)`` for macros that
    exhausted their retries (the caller re-runs those in-process), and
    the pool's retry/timeout/respawn counters plus per-worker health
    snapshots for this run.
    """
    todo = list(range(array.num_macros)) if indices is None else list(indices)
    scanner, planes = _fanout_payload(array, structure)
    workers = max(1, min(jobs, len(todo)))
    pool = _fanout_pool(scanner, planes, workers, retry, timeout, fault_plan)

    def _materialize(ack: tuple) -> "MacroResult":
        index, tier, seconds = ack[1], ack[2], ack[3]
        macro = array.macro(index)
        rsl = slice(macro.row_start, macro.row_stop)
        csl = slice(macro.col_start, macro.col_stop)
        return (
            index,
            planes.vgs[rsl, csl].copy(),
            planes.codes[rsl, csl].copy(),
            tier,
            planes.quality[rsl, csl].copy(),
            seconds,
        )

    materialized: "dict[int, MacroResult]" = {}

    sanitize = footprint is not None
    obs = _obs_flag(tracer, metrics)

    def _hook(_task_id: int, ack: tuple) -> None:
        _record_footprint(footprint, f"macro[{ack[1]}]", ack)
        _merge_obs(tracer, metrics, ack, sanitize)
        result = _materialize(ack)
        materialized[result[0]] = result
        if on_result is not None:
            on_result(result)

    tasks = [("m", index, force_engine, sanitize, obs) for index in todo]
    before = (pool.retries, pool.timeouts, pool.respawns)
    try:
        outcomes = pool.run(tasks, on_result=_hook)
        health = pool.worker_health()
    finally:
        if not pool.persistent:
            pool.close()
    telemetry: dict[str, Any] = {
        "retries": pool.retries - before[0],
        "timeouts": pool.timeouts - before[1],
        "respawns": pool.respawns - before[2],
        "workers": health,
    }
    results: "list[MacroResult]" = []
    failures: list[tuple[int, BaseException]] = []
    for macro_index, outcome in zip(todo, outcomes):
        if isinstance(outcome, TaskFailure):
            failures.append((macro_index, outcome.error))
        else:
            result = materialized.get(macro_index)
            results.append(result if result is not None else _materialize(outcome))
    results.sort(key=lambda item: item[0])
    return results, failures, telemetry


def scan_macros_kernel_parallel(
    array: "EDRAMArray",
    structure: "MeasurementStructure",
    jobs: int,
    *,
    engine_indices: "tuple[int, ...] | list[int]" = (),
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    footprint: "FootprintLog | None" = None,
    tracer: Any = None,
    metrics: Any = None,
) -> tuple[
    np.ndarray, np.ndarray, np.ndarray,
    list[tuple[int, str, float]],
    list[tuple[int, BaseException]],
    dict[str, Any],
]:
    """Whole-array kernel scan fanned out as tile-row slabs.

    Closed-form macros are covered by ``jobs`` contiguous slabs of whole
    tile-rows, each one batched-kernel pass in a worker; engine macros
    (``engine_indices``) ride along as ordinary per-macro tasks.  The
    scan engine only dispatches here when the per-macro machinery is
    inert (no faults, no checkpoint, no ``force_engine``) — tracing and
    metrics are *not* disqualifiers: with ``tracer``/``metrics``
    enabled, workers buffer spans/metric deltas per task and ship them
    back in the acks, where they are merged (stamped with
    ``worker_id``/``pid``) under the parent's open scan span.

    Returns ``(vgs, codes, quality, macro_seconds, failures,
    telemetry)`` — fresh full-plane copies decoupled from the reusable
    shared segments, per-macro ``(index, tier, seconds)`` records (slab
    wall time split evenly over its macros), macros needing an
    in-process rescue, and the pool telemetry for this run.
    """
    scanner, planes = _fanout_payload(array, structure)
    tiles_down = array.macros_per_col
    tiles_across = array.macros_per_row
    engine_set = frozenset(engine_indices)

    sanitize = footprint is not None
    obs = _obs_flag(tracer, metrics)
    slab_count = max(1, min(jobs, tiles_down))
    bounds = np.linspace(0, tiles_down, slab_count + 1).astype(int)
    tasks: list[tuple] = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        local_engine = tuple(
            sorted(i for i in engine_set if lo <= i // tiles_across < hi)
        )
        tasks.append(("k", int(lo), int(hi), local_engine, sanitize, obs))
    tasks.extend(
        ("m", index, False, sanitize, obs) for index in sorted(engine_set)
    )

    pool = _fanout_pool(
        scanner, planes, max(1, min(jobs, len(tasks))), retry, timeout, None
    )
    try:
        outcomes, telemetry = _run_pool(pool, tasks)
    finally:
        if not pool.persistent:
            pool.close()

    macro_seconds: list[tuple[int, str, float]] = []
    failures: list[tuple[int, BaseException]] = []
    for task, outcome in zip(tasks, outcomes):
        if isinstance(outcome, TaskFailure):
            if task[0] == "k":
                lo, hi = task[1], task[2]
                failures.extend(
                    (index, outcome.error)
                    for index in range(lo * tiles_across, hi * tiles_across)
                    if index not in engine_set
                )
            else:
                failures.append((task[1], outcome.error))
        elif outcome[0] == "k":
            lo, hi, seconds = outcome[1], outcome[2], outcome[3]
            _record_footprint(footprint, f"slab[{lo}:{hi}]", outcome)
            _merge_obs(tracer, metrics, outcome, sanitize)
            members = [
                index
                for index in range(lo * tiles_across, hi * tiles_across)
                if index not in engine_set
            ]
            share = seconds / len(members) if members else 0.0
            macro_seconds.extend((index, "c", share) for index in members)
        else:
            index, tier, seconds = outcome[1], outcome[2], outcome[3]
            _record_footprint(footprint, f"macro[{index}]", outcome)
            _merge_obs(tracer, metrics, outcome, sanitize)
            macro_seconds.append((index, tier, seconds))

    # Decouple the result from the reusable segments: the next scan of
    # this array rewrites them in place.
    vgs = planes.vgs.copy()
    codes = planes.codes.copy()
    quality = planes.quality.copy()
    return vgs, codes, quality, macro_seconds, failures, telemetry
