"""Node portability: the 0.13 µm card."""

import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.accuracy import accuracy_sweep
from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.measure.sequencer import MeasurementSequencer
from repro.tech import technology_013um
from repro.units import fF


@pytest.fixture(scope="module")
def tech013():
    return technology_013um()


def test_card_headline_values(tech013):
    assert tech013.vdd == pytest.approx(1.2)
    assert tech013.cell_capacitance == pytest.approx(25 * fF)
    assert tech013.vpp > tech013.vdd + abs(tech013.nmos.vth0)
    assert tech013.nmos.tox < 3e-9


def test_designer_adapts_without_code_changes(tech013):
    structure = design_structure(tech013, 8, 2, c_lo=8 * fF, c_hi=45 * fF)
    abacus = Abacus.analytic(structure, 8, 2)
    assert abacus.range_floor == pytest.approx(8 * fF, rel=0.02)
    assert abacus.range_ceiling == pytest.approx(45 * fF, rel=0.02)


def test_accuracy_holds_on_the_new_node(tech013):
    structure = design_structure(tech013, 8, 2, c_lo=8 * fF, c_hi=45 * fF)
    abacus = Abacus.analytic(structure, 8, 2)
    report = accuracy_sweep(abacus, c_start=6 * fF, c_stop=50 * fF)
    assert report.error_at(25 * fF) < 0.06


def test_measurement_flow_runs_end_to_end(tech013):
    structure = design_structure(tech013, 2, 2, c_lo=8 * fF, c_hi=45 * fF)
    array = EDRAMArray(2, 2, tech=tech013)
    result = MeasurementSequencer(array.macro(0), structure).measure_charge(0, 0)
    assert result.in_range
    assert 0 < result.vgs < tech013.vdd


def test_code_scales_between_nodes(tech013):
    """The same nominal cell lands mid-scale on both nodes."""
    from repro.tech import default_technology

    for tech, c_lo, c_hi in ((default_technology(), 10 * fF, 55 * fF),
                             (tech013, 8 * fF, 45 * fF)):
        structure = design_structure(tech, 2, 2, c_lo=c_lo, c_hi=c_hi)
        array = EDRAMArray(2, 2, tech=tech)
        code = MeasurementSequencer(array.macro(0), structure).measure_charge(0, 0).code
        assert 5 <= code <= 15
