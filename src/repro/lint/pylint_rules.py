"""Custom AST lint rules for the Python source tree itself.

Two project-specific hygiene rules that generic linters don't cover:

``PY001 raw-si-literal``
    A float literal in the sub-picoscale range (|x| ≤ 1e-13, e.g.
    ``1e-15``) hard-coded where a :mod:`repro.units` symbol (``fF``,
    ``aF``, ``fA``, ...) should be used.  The library works in base SI,
    so femto-scale magic numbers are exactly the values most likely to
    be a silent order-of-magnitude slip — and the units module exists so
    they read as physics, not as exponent soup.  Tolerances and gmin
    values (1e-12 and up) stay legal.

``PY002 bare-assert``
    A bare ``assert`` statement used for runtime validation in library
    code.  Asserts vanish under ``python -O``, so a validation that
    matters must raise a :class:`~repro.errors.ReproError` subclass
    instead.  Test files are exempt (pytest asserts are the idiom).

``ERC006 swallowed-repro-error``
    An ``except Exception`` (or broader) handler in library code whose
    body neither re-raises nor flags measurement quality.  Such a
    handler silently eats :class:`~repro.errors.ReproError` — the
    resilience contract is that a degraded cell is *flagged*, never
    invisible.  A handler is compliant when it contains a ``raise`` or
    touches a ``quality`` / ``CellQuality`` name; test files are
    exempt.  (The code lives in the ERC series because, like the
    netlist rules, it guards the measurement's integrity rather than
    Python style.)

Suppression: append ``# lint: allow-raw-si``, ``# lint: allow-assert``
or ``# lint: allow-broad-except`` to the offending line.  ``units.py``
(which *defines* the scale factors) is exempt from PY001 wholesale.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import rule

#: Magnitude at or below which a nonzero float literal is femto-scale
#: enough to demand a units symbol (0.1 pF / 0.1 ps / 100 fA territory).
RAW_SI_THRESHOLD = 1e-13  # lint: allow-raw-si (this *is* the threshold)

#: Files exempt from PY001 (they define the unit factors themselves).
UNIT_DEFINING_FILES = ("units.py",)

#: File name prefixes treated as test code (PY002 exempt).
TEST_PREFIXES = ("test_", "bench_", "conftest")


def _is_test_file(path: Path) -> bool:
    return path.name.startswith(TEST_PREFIXES) or "tests" in path.parts


def _line_has_pragma(source_lines: list[str], lineno: int, pragma: str) -> bool:
    if 1 <= lineno <= len(source_lines):
        return pragma in source_lines[lineno - 1]
    return False


@rule(
    "PY001",
    "raw-si-literal",
    target="source",
    summary="sub-picoscale float literal where a repro.units symbol belongs",
)
def check_raw_si_literal(subject: object, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Flag femto-scale float literals outside :mod:`repro.units`.

    ``subject`` is a parsed :class:`ast.Module`; ``context`` carries the
    file ``path`` and the raw ``lines`` for pragma checks.
    """
    tree, path, lines = _subject_triple(subject, context)
    if path.name in UNIT_DEFINING_FILES:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Constant) or not isinstance(node.value, float):
            continue
        value = node.value
        if value == 0.0 or abs(value) > RAW_SI_THRESHOLD:
            continue
        if _line_has_pragma(lines, node.lineno, "lint: allow-raw-si"):
            continue
        yield check_raw_si_literal.diagnostic(
            f"raw SI literal {value!r}; use a repro.units factor "
            "(fF/aF/fA/...) so the magnitude reads as physics",
            subject=str(path),
            location=f"{path}:{node.lineno}",
        )


@rule(
    "PY002",
    "bare-assert",
    target="source",
    summary="bare assert used for runtime validation in library code",
)
def check_bare_assert(subject: object, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Flag ``assert`` statements in non-test library code.

    Asserts disappear under ``python -O``; library validation must raise
    a :class:`~repro.errors.ReproError` subclass instead.
    """
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assert):
            continue
        if _line_has_pragma(lines, node.lineno, "lint: allow-assert"):
            continue
        yield check_bare_assert.diagnostic(
            "bare assert vanishes under `python -O`; raise a ReproError "
            "subclass for runtime validation",
            subject=str(path),
            location=f"{path}:{node.lineno}",
        )


#: Names whose appearance inside a broad handler marks it as flagging
#: quality instead of swallowing the error.
_QUALITY_NAMES = ("quality", "CellQuality")

#: Exception names broad enough to catch ReproError indiscriminately.
_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare `except:`
        return True
    node = handler.type
    if isinstance(node, ast.Attribute):
        node = ast.Name(id=node.attr)
    return isinstance(node, ast.Name) and node.id in _BROAD_EXCEPTIONS


def _handler_discharges(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or flags measurement quality."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and any(
            marker in node.id for marker in _QUALITY_NAMES
        ):
            return True
        if isinstance(node, ast.Attribute) and any(
            marker in node.attr for marker in _QUALITY_NAMES
        ):
            return True
    return False


@rule(
    "ERC006",
    "swallowed-repro-error",
    target="source",
    summary="broad except swallows ReproError without re-raise or quality flag",
)
def check_swallowed_repro_error(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag broad handlers that silently eat errors in library code.

    ``except Exception`` catches every :class:`~repro.errors.ReproError`
    subclass; unless the handler re-raises or records a quality flag,
    a failed measurement disappears without a trace — the exact failure
    mode the resilience layer exists to prevent.
    """
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or not _is_broad_handler(node):
            continue
        if _line_has_pragma(lines, node.lineno, "lint: allow-broad-except"):
            continue
        if _handler_discharges(node):
            continue
        caught = "bare except" if node.type is None else f"except {ast.unparse(node.type)}"
        yield check_swallowed_repro_error.diagnostic(
            f"{caught} swallows ReproError silently; re-raise, flag cell "
            "quality, or annotate `# lint: allow-broad-except` with a reason",
            subject=str(path),
            location=f"{path}:{node.lineno}",
        )


def _subject_triple(
    subject: object, context: dict[str, object]
) -> tuple[ast.Module, Path, list[str]]:
    if not isinstance(subject, ast.Module):
        raise LintError(f"source rules expect an ast.Module, got {type(subject).__name__}")
    path = Path(str(context.get("path", "<unknown>")))
    lines = context.get("lines")
    if not isinstance(lines, list):
        lines = []
    return subject, path, lines


def parse_source(path: Path) -> tuple[ast.Module, dict[str, object]]:
    """Parse ``path`` into the (subject, context) pair source rules take.

    Raises :class:`~repro.errors.LintError` on unreadable or
    syntactically invalid files.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    return tree, {"path": str(path), "lines": text.splitlines()}


def iter_python_files(paths: list[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files beneath them, sorted."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise LintError(f"not a Python file or directory: {path}")
