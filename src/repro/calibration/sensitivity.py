"""Robustness sensitivities of the plate-node measurement.

Mirrors of the error metrics on
:class:`~repro.baselines.bitline_measure.BitlineMeasurement`, evaluated
for the paper's plate-node structure — experiment E1 compares the two
sides.  Both metrics map a parasitic/device perturbation into the
capacitance-extraction error it induces through the nominal calibration:

- :func:`plate_error_from_cbl` — the bitline parasitic only reaches the
  plate through the *series* neighbour branch, so its uncertainty is
  attenuated by the square of the series divider;
- :func:`plate_error_from_vth` — the converter operates in strong
  inversion by design, so REF-threshold mismatch moves the code by a
  bounded, near-linear amount.
"""

from __future__ import annotations

from repro.calibration.design import _series, _vgs, nominal_background
from repro.errors import CalibrationError
from repro.measure.structure import MeasurementStructure
from repro.tech.parameters import TechnologyCard
from repro.units import fF


def _background_with_cbl(
    tech: TechnologyCard, rows: int, macro_cols: int, cbl: float
) -> float:
    """Nominal background recomputed for an explicit bitline capacitance."""
    c_nom = tech.cell_capacitance
    cjs = tech.storage_junction_cap
    background = tech.plate_parasitic(rows * macro_cols)
    background += (macro_cols - 1) * _series(c_nom, cbl + cjs)
    background += (rows - 1) * macro_cols * _series(c_nom, cjs)
    return background


def plate_error_from_cbl(
    structure: MeasurementStructure,
    rows: int,
    macro_cols: int,
    cm: float = 30.0 * fF,
    relative_cbl_error: float = 0.1,
    bitline_rows: int | None = None,
) -> float:
    """Capacitance-extraction error from C_BL mis-knowledge, farads."""
    if not 0 <= relative_cbl_error < 1:
        raise CalibrationError(
            f"relative_cbl_error must be in [0, 1), got {relative_cbl_error}"
        )
    tech = structure.tech
    creft = structure.c_ref_total
    cbl = tech.bitline_capacitance(bitline_rows if bitline_rows is not None else rows)
    bg_nominal = _background_with_cbl(tech, rows, macro_cols, cbl)
    bg_actual = _background_with_cbl(
        tech, rows, macro_cols, cbl * (1.0 + relative_cbl_error)
    )
    v_nominal = _vgs(tech, cm, bg_nominal, creft)
    v_actual = _vgs(tech, cm, bg_actual, creft)
    h = 0.01 * fF
    dv_dc = (
        _vgs(tech, cm + h, bg_nominal, creft) - _vgs(tech, cm - h, bg_nominal, creft)
    ) / (2.0 * h)
    return abs(v_actual - v_nominal) / dv_dc


def plate_error_from_vth(
    structure: MeasurementStructure,
    rows: int,
    macro_cols: int,
    cm: float = 30.0 * fF,
    delta_vth: float = 0.01,
    bitline_rows: int | None = None,
) -> float:
    """Capacitance-extraction error from REF threshold mismatch, farads."""
    tech = structure.tech
    creft = structure.c_ref_total
    background = nominal_background(tech, rows, macro_cols, bitline_rows)
    v = _vgs(tech, cm, background, creft)
    i_nominal = structure.ref_sink_current(v)
    # A +delta_vth threshold shift is equivalent to driving the same
    # device with a gate voltage lower by delta_vth.
    i_shifted = structure.ref_sink_current(v - delta_vth)
    h = 0.01 * fF
    di_dc = (
        structure.ref_sink_current(_vgs(tech, cm + h, background, creft))
        - structure.ref_sink_current(_vgs(tech, cm - h, background, creft))
    ) / (2.0 * h)
    if di_dc <= 0:
        return float("inf")
    return abs(i_shifted - i_nominal) / di_dc
