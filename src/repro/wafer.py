"""Wafer-level process monitoring on top of per-die analog bitmaps.

A wafer is a disk of dies; capacitor-module deposition is rarely uniform
across it (radial thickness profiles, zone-dependent etch).  With an
embedded measurement structure on every die, the analog bitmaps compose
into a wafer map — the standard artefact a process engineer reads.

:class:`WaferModel` synthesizes a wafer (per-die mean capacitance from a
radial + random profile), measures each die through the real scan path,
and :class:`WaferReport` aggregates: per-die means, zonal statistics
(centre/mid/edge rings), radial regression, and an ASCII wafer map.
"""

from __future__ import annotations

import enum
import math
import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import Callable

import numpy as np

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.errors import DiagnosisError, MeasurementError
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.measure.structure import MeasurementStructure
from repro.obs.progress import NULL_PROGRESS
from repro.resilience.checkpoint import resume_fingerprint
from repro.resilience.faults import fault_point, inject
from repro.tech.parameters import TechnologyCard
from repro.technologies import get as get_technology
from repro.units import fF, to_fF

#: The eDRAM nominal the historical absolute defaults were sized for;
#: other technologies scale the wafer profile by their card nominal
#: relative to this.
_REFERENCE_NOMINAL = 30.0 * fF


@dataclass(frozen=True)
class DieSite:
    """One die's position and measured statistics."""

    x: int
    y: int
    radius_fraction: float  # 0 centre .. 1 wafer edge
    mean_capacitance: float
    sigma_capacitance: float


class DieQuality(enum.IntEnum):
    """Quality of one die's contribution to a merged lot.

    The die-level analogue of
    :class:`~repro.resilience.quality.CellQuality`, with an explicit
    ``UNMEASURED`` zero so a freshly allocated plane reads as "nobody
    has claimed this die yet" — the state a shard's die range is in
    before its worker reaches it, and the state the merge turns into
    ``FAILED`` when the shard that owned it exhausted its retries.
    """

    UNMEASURED = 0
    GOOD = 1
    FAILED = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass
class DieRangeScan:
    """Planes measured by one die-range shard of a wafer.

    Every plane is **full-length** (indexed by the wafer's global die
    index, ``len(model.sites())`` entries) with this shard's range
    filled in and neutral values elsewhere — so shard results combine
    by straight element-wise selection on :attr:`die_quality`, and the
    merged lot is bit-exact with an unsharded run by construction.
    """

    die_range: tuple[int, int]
    total_dies: int
    die_means: np.ndarray  #: (S,) float, NaN outside the range
    die_sigmas: np.ndarray  #: (S,) float, NaN outside the range
    die_vgs: np.ndarray  #: (S, die_rows, die_cols) float
    die_codes: np.ndarray  #: (S, die_rows, die_cols) int
    die_cell_quality: np.ndarray  #: (S, die_rows, die_cols) uint8 CellQuality
    die_quality: np.ndarray  #: (S,) uint8 DieQuality
    run_id: str | None = None


class WaferModel:
    """Synthesize and measure one wafer.

    Parameters
    ----------
    diameter_dies:
        Wafer width in dies (dies outside the inscribed circle are not
        printed).
    die_rows, die_cols:
        Array size fabricated on each die.
    radial_drop:
        Capacitance loss from centre to edge, farads (a classic
        deposition profile).  ``None`` scales the eDRAM default
        (2.5 fF) by the technology nominal.
    die_sigma:
        Die-to-die random variation of the mean, farads.  ``None``
        scales the eDRAM default (0.4 fF) by the technology nominal.
    cell_sigma:
        Within-die cell mismatch, farads.  ``None`` scales the eDRAM
        default (0.8 fF) by the technology nominal.
    technology:
        Cell-technology backend name (:mod:`repro.technologies`); the
        backend fabricates every die with its own variation model and
        supplies the measurement range the per-wafer structure is
        designed for.
    tech:
        **Deprecated.** Legacy ``TechnologyCard`` override; forwards
        through a card-pinned eDRAM backend and emits
        :class:`DeprecationWarning`.  Pass ``technology=<name>``
        instead.
    seed:
        Reproducibility.
    """

    def __init__(
        self,
        diameter_dies: int = 9,
        die_rows: int = 16,
        die_cols: int = 8,
        macro_rows: int = 8,
        macro_cols: int = 2,
        nominal: float | None = None,
        radial_drop: float | None = None,
        die_sigma: float | None = None,
        cell_sigma: float | None = None,
        tech: TechnologyCard | None = None,
        seed: int = 0,
        technology: str = "edram",
    ) -> None:
        if diameter_dies < 3:
            raise DiagnosisError("wafer needs at least 3 dies across")
        if die_rows % macro_rows or die_cols % macro_cols:
            raise DiagnosisError("macro tiling must divide the die array")
        if tech is not None:
            warnings.warn(
                "WaferModel(tech=TechnologyCard) is deprecated; pass "
                "technology=<registry name> instead (the card override "
                "forwards through a pinned 'edram' backend)",
                DeprecationWarning,
                stacklevel=2,
            )
            if technology != "edram":
                raise DiagnosisError(
                    "tech=TechnologyCard only applies to the 'edram' "
                    f"backend, not technology={technology!r}"
                )
            self._backend = get_technology("edram").with_card(tech)
        else:
            self._backend = get_technology(technology)
        self.technology = technology
        self.tech = self._backend.base_card()
        # The historical absolute defaults were sized for the 30 fF
        # eDRAM nominal; other technologies keep the same *relative*
        # wafer profile unless overridden.  The legacy tech= path keeps
        # the historical absolute defaults exactly (nominal was 30 fF
        # regardless of the card).
        scale = (
            1.0 if tech is not None
            else self.tech.cell_capacitance / _REFERENCE_NOMINAL
        )
        default_nominal = (
            _REFERENCE_NOMINAL if tech is not None else self.tech.cell_capacitance
        )
        self.diameter = diameter_dies
        self.die_rows = die_rows
        self.die_cols = die_cols
        self.macro_rows = macro_rows
        self.macro_cols = macro_cols
        self.nominal = nominal if nominal is not None else default_nominal
        self.radial_drop = radial_drop if radial_drop is not None else 2.5 * fF * scale
        self.die_sigma = die_sigma if die_sigma is not None else 0.4 * fF * scale
        self.cell_sigma = cell_sigma if cell_sigma is not None else 0.8 * fF * scale
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._structure: MeasurementStructure | None = None
        self._abacus: Abacus | None = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def sites(self) -> list[tuple[int, int, float]]:
        """(x, y, radius_fraction) of every printed die."""
        centre = (self.diameter - 1) / 2.0
        out = []
        for y in range(self.diameter):
            for x in range(self.diameter):
                r = math.hypot(x - centre, y - centre) / (self.diameter / 2.0)
                if r <= 1.0:
                    out.append((x, y, r))
        return out

    # ------------------------------------------------------------------
    # Fabrication + measurement
    # ------------------------------------------------------------------

    def _calibration(self) -> tuple[MeasurementStructure, Abacus]:
        if self._structure is None:
            c_lo, c_hi, num_steps = self._backend.measurement_range()
            self._structure = design_structure(
                self.tech, self.macro_rows, self.macro_cols,
                c_lo=c_lo, c_hi=c_hi, num_steps=num_steps,
                bitline_rows=self.die_rows,
            )
            self._abacus = Abacus.analytic(
                self._structure, self.macro_rows, self.macro_cols,
                bitline_rows=self.die_rows,
            )
        if self._abacus is None:
            raise DiagnosisError("wafer calibration failed to build an abacus")
        return self._structure, self._abacus

    def fabricate_die(self, radius_fraction: float) -> EDRAMArray:
        """Build one die's array with the wafer's process profile.

        The wafer model owns the RNG: the die-mean draw and the mismatch
        seed come from *its* stream (in this exact order) so checkpoint
        fast-forward stays bit-exact.  The technology backend turns the
        draw into a die array with its own variation model.
        """
        mean = (
            self.nominal
            - self.radial_drop * radius_fraction**2
            + self._rng.normal(0.0, self.die_sigma)
        )
        mismatch_seed = int(self._rng.integers(1 << 31))
        return self._backend.fabricate_die(
            self.die_rows, self.die_cols,
            macro_rows=self.macro_rows, macro_cols=self.macro_cols,
            mean=mean, cell_sigma=self.cell_sigma,
            mismatch_seed=mismatch_seed, tech=self.tech,
        )

    def _burn_die_draws(self) -> None:
        """Consume exactly the RNG draws one :meth:`fabricate_die` would.

        The fast-forward primitive behind both checkpoint resume and
        die-range sharding: a die someone else (an earlier run, another
        shard) is responsible for still advances *this* model's RNG
        stream by the same two draws, so every later die prints
        identically to an unsharded, uninterrupted run.
        """
        self._rng.normal(0.0, self.die_sigma)
        self._rng.integers(1 << 31)

    def measure_wafer(
        self, jobs: int | None = None, config: ScanConfig | None = None
    ) -> "WaferReport":
        """Fabricate and scan every die; return the wafer report.

        ``config`` forwards to :meth:`ArrayScanner.scan` per die (fan
        the die's macro tiles across worker processes, attach a tracer
        or metrics registry); ``jobs`` is a convenience shorthand for
        ``config.with_options(jobs=...)``.  The designed structure and
        its memoized code-boundary table are shared by every die
        scanner, so calibration is solved once per wafer.

        ``config.progress`` reports at **die** granularity (the die scans
        themselves run silent), and ``config.ledger`` receives one wafer
        manifest — not one per die — carrying the die-level scalars the
        drift engine charts.

        With ``config.checkpoint`` set, per-die statistics persist after
        every die and an interrupted wafer run resumes bit-exact: the
        wafer RNG is fast-forwarded past checkpointed dies by burning
        exactly the draws their fabrication would have consumed, so the
        remaining dies print identically to an uninterrupted run.
        """
        # A default config inherits the wafer's technology; an explicit
        # one must agree — the per-die scans validate array-vs-config
        # technology, so a mismatch here would fail on the first die
        # with a less helpful message.
        config = (
            config if config is not None
            else ScanConfig(technology=self.technology)
        )
        if jobs is not None:
            config = config.with_options(jobs=jobs)
        if config.technology != self.technology:
            raise MeasurementError(
                f"config.technology is {config.technology!r} but this "
                f"wafer fabricates {self.technology!r} dies"
            )
        progress, ledger = config.progress, config.ledger
        checkpointer = config.checkpoint
        # The wafer loop owns progress, recording and checkpointing;
        # per-die scans get a silent copy so they neither repaint the
        # line, append runs, nor fight over the checkpoint file.
        die_config = config.with_options(
            progress=NULL_PROGRESS, ledger=None, checkpoint=None
        )
        structure, abacus = self._calibration()
        sites = self.sites()
        start = perf_counter()
        cpu_start = process_time()
        means = np.full(len(sites), np.nan)
        sigmas = np.full(len(sites), np.nan)
        done: set[int] = set()
        if checkpointer is not None:
            state = checkpointer.start(
                "wafer",
                resume_fingerprint(config),
                {"die_means": means, "die_sigmas": sigmas},
                total=len(sites),
            )
            means = state.arrays["die_means"]
            sigmas = state.arrays["die_sigmas"]
            done = set(state.completed)
        ambient = (
            inject(config.faults) if config.faults is not None else nullcontext()
        )
        with ambient:
            progress.start(len(sites), label="wafer", units="dies")
            for index, (x, y, r) in enumerate(sites):
                if index in done:
                    # Fast-forward: burn the two draws fabricate_die
                    # would have consumed (die-mean normal, mismatch
                    # seed) so later dies see the same RNG stream.
                    self._burn_die_draws()
                    progress.advance()
                    continue
                array = self.fabricate_die(r)
                bitmap = AnalogBitmap(
                    ArrayScanner(array, structure).scan(die_config), abacus
                )
                means[index] = bitmap.mean_capacitance()
                sigmas[index] = bitmap.std_capacitance()
                fault_point("wafer.die_done", die=index, x=x, y=y)
                if checkpointer is not None:
                    checkpointer.mark_done(index)
                progress.advance()
            progress.finish()
        dies = [
            DieSite(
                x=x, y=y, radius_fraction=r,
                mean_capacitance=float(means[index]),
                sigma_capacitance=float(sigmas[index]),
            )
            for index, (x, y, r) in enumerate(sites)
        ]
        report = WaferReport(dies=dies, diameter=self.diameter)
        run_id = checkpointer.run_id if checkpointer is not None else None
        if ledger is not None:
            ledger.record_wafer(
                report,
                config,
                seed=self.seed,
                tech=self.tech.name,
                wall_seconds=perf_counter() - start,
                cpu_seconds=process_time() - cpu_start,
                run_id=run_id,
            )
        if checkpointer is not None:
            checkpointer.finish()
        return report

    def measure_dies(
        self,
        die_range: tuple[int, int],
        config: ScanConfig | None = None,
        *,
        on_die: Callable[[int, int], None] | None = None,
        finish_checkpoint: bool = True,
    ) -> DieRangeScan:
        """Fabricate and scan one contiguous die range of this wafer.

        The shard primitive behind :mod:`repro.fleet`: dies outside
        ``[lo, hi)`` — another shard's work — are fast-forwarded by
        burning exactly the RNG draws their fabrication would have
        consumed, so any partition of the wafer into ranges produces
        dies (and therefore planes) bit-identical to the unsharded
        :meth:`measure_wafer` walk.

        ``config.checkpoint`` persists the shard's partial planes under
        kind ``"shard"`` (the resume fingerprint folds the die range
        in, so a checkpoint can never be resumed under a different
        partition).  Only the ``[lo, hi)`` slice of each plane is
        checkpointed — a shard's write cost scales with its own range,
        not the wafer — and the full-length return planes are
        scattered together on the way out.  ``on_die(index, done)`` fires in-process
        after each die completes — the fleet worker's heartbeat hook.
        With ``finish_checkpoint=False`` the checkpoint file survives
        the return; the caller deletes it via ``config.checkpoint
        .finish()`` only after it has durably persisted the result, so
        a crash in between costs a re-merge, never the shard's work.
        """
        config = (
            config if config is not None
            else ScanConfig(technology=self.technology)
        )
        if config.technology != self.technology:
            raise MeasurementError(
                f"config.technology is {config.technology!r} but this "
                f"wafer fabricates {self.technology!r} dies"
            )
        sites = self.sites()
        total = len(sites)
        lo, hi = int(die_range[0]), int(die_range[1])
        if not 0 <= lo < hi <= total:
            raise DiagnosisError(
                f"die range [{lo}, {hi}) does not fit a wafer with "
                f"{total} printed dies"
            )
        progress = config.progress
        checkpointer = config.checkpoint
        die_config = config.with_options(
            progress=NULL_PROGRESS, ledger=None, checkpoint=None
        )
        structure, abacus = self._calibration()
        span = hi - lo
        arrays = {
            "die_means": np.full(span, np.nan),
            "die_sigmas": np.full(span, np.nan),
            "die_vgs": np.zeros((span, self.die_rows, self.die_cols)),
            "die_codes": np.zeros(
                (span, self.die_rows, self.die_cols), dtype=int
            ),
            "die_cell_quality": np.zeros(
                (span, self.die_rows, self.die_cols), dtype=np.uint8
            ),
            "die_quality": np.zeros(span, dtype=np.uint8),
        }
        done: set[int] = set()
        if checkpointer is not None:
            fingerprint = resume_fingerprint(config)
            fingerprint["die_range"] = [lo, hi]
            state = checkpointer.start(
                "shard", fingerprint, arrays, total=span
            )
            arrays = state.arrays
            done = set(state.completed)
        ambient = (
            inject(config.faults) if config.faults is not None else nullcontext()
        )
        with ambient:
            progress.start(hi - lo, label=f"shard[{lo},{hi})", units="dies")
            for index, (x, y, r) in enumerate(sites):
                if not lo <= index < hi:
                    self._burn_die_draws()
                    continue
                if index in done:
                    self._burn_die_draws()
                    progress.advance()
                    continue
                array = self.fabricate_die(r)
                scan = ArrayScanner(array, structure).scan(die_config)
                bitmap = AnalogBitmap(scan, abacus)
                rel = index - lo
                arrays["die_means"][rel] = bitmap.mean_capacitance()
                arrays["die_sigmas"][rel] = bitmap.std_capacitance()
                arrays["die_vgs"][rel] = scan.vgs
                arrays["die_codes"][rel] = scan.codes
                arrays["die_cell_quality"][rel] = scan.quality
                arrays["die_quality"][rel] = int(DieQuality.GOOD)
                fault_point("wafer.die_done", die=index, x=x, y=y)
                if checkpointer is not None:
                    checkpointer.mark_done(index)
                progress.advance()
                if on_die is not None:
                    on_die(index, len(done) + 1)
                done.add(index)
            progress.finish()
        run_id = checkpointer.run_id if checkpointer is not None else None
        if checkpointer is not None and finish_checkpoint:
            checkpointer.finish()
        planes = {
            "die_means": np.full(total, np.nan),
            "die_sigmas": np.full(total, np.nan),
            "die_vgs": np.zeros((total, self.die_rows, self.die_cols)),
            "die_codes": np.zeros(
                (total, self.die_rows, self.die_cols), dtype=int
            ),
            "die_cell_quality": np.zeros(
                (total, self.die_rows, self.die_cols), dtype=np.uint8
            ),
            "die_quality": np.zeros(total, dtype=np.uint8),
        }
        for name, shard_plane in arrays.items():
            planes[name][lo:hi] = shard_plane
        return DieRangeScan(
            die_range=(lo, hi), total_dies=total, run_id=run_id, **planes
        )


@dataclass
class WaferReport:
    """Aggregated wafer measurements."""

    dies: list[DieSite]
    diameter: int

    def __post_init__(self) -> None:
        if not self.dies:
            raise DiagnosisError("wafer report needs at least one die")

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def wafer_mean(self) -> float:
        """Mean of the die means, farads."""
        return float(np.mean([d.mean_capacitance for d in self.dies]))

    def zonal_means(self, rings: int = 3) -> list[tuple[str, float, int]]:
        """(zone label, mean, die count) for concentric rings."""
        if rings < 1:
            raise DiagnosisError("need at least one ring")
        out = []
        for k in range(rings):
            lo, hi = k / rings, (k + 1) / rings
            members = [
                d.mean_capacitance
                for d in self.dies
                if lo <= d.radius_fraction < hi or (k == rings - 1 and d.radius_fraction == 1.0)
            ]
            label = f"r[{lo:.2f},{hi:.2f})"
            out.append((label, float(np.mean(members)) if members else float("nan"), len(members)))
        return out

    def radial_profile(self) -> tuple[float, float]:
        """Least-squares fit ``mean(r) = a + b·r²``; returns (a, b).

        ``b`` recovers the deposition's centre-to-edge drop (farads).
        """
        r2 = np.array([d.radius_fraction**2 for d in self.dies])
        means = np.array([d.mean_capacitance for d in self.dies])
        design = np.column_stack([np.ones_like(r2), r2])
        (a, b), *_ = np.linalg.lstsq(design, means, rcond=None)
        return float(a), float(b)

    def out_of_spec_dies(self, spec_lo: float, spec_hi: float) -> list[DieSite]:
        """Dies whose mean falls outside the spec."""
        return [
            d for d in self.dies
            if not spec_lo <= d.mean_capacitance <= spec_hi
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def ascii_map(self) -> str:
        """Wafer map: die mean in fF, one cell per die, '..' off-wafer."""
        grid = [["  .. " for _ in range(self.diameter)] for _ in range(self.diameter)]
        for die in self.dies:
            grid[die.y][die.x] = f"{to_fF(die.mean_capacitance):5.1f}"
        lines = ["".join(row) for row in grid]
        lines.append(f"wafer mean: {to_fF(self.wafer_mean):.2f} fF")
        return "\n".join(lines)
