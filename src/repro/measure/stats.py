"""Scan telemetry: wall time, tier mix, throughput, per-macro timings.

Production test economics are throughput economics — the paper's
structure wins because it measures every cell in microseconds, and the
ROADMAP's north star is a scan that runs as fast as the hardware allows.
:class:`ScanStats` makes that measurable: every
:meth:`~repro.measure.scan.ArrayScanner.scan` attaches one to its
:class:`~repro.measure.scan.ScanResult`, recording how long the scan
took, which execution tier handled how many cells, and how each
macro-cell contributed.  The CLI prints the summary;
``benchmarks/bench_perf_scan.py`` serialises it into ``BENCH_scan.json``
so the repository keeps a performance trajectory across changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MacroTiming:
    """Timing of one macro-cell scan.

    Attributes
    ----------
    index:
        Macro index (row-major tile order).
    tier:
        ``'c'`` closed form / ``'e'`` exact engine.
    cells:
        Cells in the macro tile.
    seconds:
        Wall time spent scanning the tile.  Under a process pool this is
        measured inside the worker, so pool dispatch overhead is not
        attributed to any macro.
    """

    index: int
    tier: str
    cells: int
    seconds: float


@dataclass
class ScanStats:
    """Telemetry of one whole-array scan.

    Attributes
    ----------
    total_cells:
        Cells scanned (rows × cols).
    wall_seconds:
        End-to-end scan wall time, including assembly and (for parallel
        scans) pool start-up and result collection.
    jobs:
        Worker processes used (1 = serial in-process scan).
    closed_form_cells, engine_cells:
        Cells produced by the vectorized closed form vs the exact
        charge engine (bridge fallback / ``force_engine``).
    macro_timings:
        Per-macro timings, in macro-index order.
    """

    total_cells: int
    wall_seconds: float
    jobs: int
    closed_form_cells: int
    engine_cells: int
    macro_timings: list[MacroTiming] = field(default_factory=list)

    @property
    def cells_per_second(self) -> float:
        """Scan throughput; the headline production-test figure."""
        if self.wall_seconds <= 0.0:
            return float("inf") if self.total_cells else 0.0
        return self.total_cells / self.wall_seconds

    def slowest_macro(self) -> MacroTiming | None:
        """The macro that took longest, or None for empty scans."""
        if not self.macro_timings:
            return None
        return max(self.macro_timings, key=lambda t: t.seconds)

    def to_metrics(self, registry) -> None:
        """Fold this scan's telemetry into a metrics registry.

        Counters accumulate across scans sharing the registry (a wafer
        of dies adds up); gauges describe the most recent scan.  The
        no-op registry absorbs everything, so callers can publish
        unconditionally.
        """
        registry.counter("scan.runs", "whole-array scans executed").inc()
        registry.counter("scan.cells", "cells scanned").inc(self.total_cells)
        registry.counter(
            "scan.cells_closed_form", "cells via the vectorized closed form"
        ).inc(self.closed_form_cells)
        registry.counter(
            "scan.cells_engine", "cells via the exact charge engine"
        ).inc(self.engine_cells)
        registry.gauge("scan.wall_seconds", "last scan wall time").set(
            self.wall_seconds
        )
        registry.gauge("scan.cells_per_second", "last scan throughput").set(
            self.cells_per_second
        )
        registry.gauge("scan.jobs", "last scan worker count").set(self.jobs)
        registry.histogram(
            "scan.macro_seconds", "per-macro scan wall time"
        ).observe_many(t.seconds for t in self.macro_timings)

    def to_dict(self) -> dict:
        """JSON-ready view (macro timings as plain lists)."""
        return {
            "total_cells": self.total_cells,
            "wall_seconds": self.wall_seconds,
            "jobs": self.jobs,
            "cells_per_second": self.cells_per_second,
            "closed_form_cells": self.closed_form_cells,
            "engine_cells": self.engine_cells,
            "macro_timings": [
                [t.index, t.tier, t.cells, t.seconds] for t in self.macro_timings
            ],
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (printed by the CLI)."""
        lines = [
            f"scan: {self.total_cells} cells in {self.wall_seconds:.3f} s "
            f"({self.cells_per_second:,.0f} cells/s, jobs={self.jobs})",
            f"tiers: {self.closed_form_cells} closed-form, "
            f"{self.engine_cells} engine",
        ]
        slowest = self.slowest_macro()
        if slowest is not None:
            tier = "engine" if slowest.tier == "e" else "closed-form"
            lines.append(
                f"slowest macro: #{slowest.index} ({tier}, {slowest.cells} cells) "
                f"{slowest.seconds * 1e3:.2f} ms"
            )
        return "\n".join(lines)
