"""Property-based tests of dithered conversion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.design import design_structure
from repro.calibration.dither import DitheredConverter
from repro.tech.parameters import default_technology

_TECH = default_technology()
_STRUCTURE = design_structure(_TECH, 2, 2)
_CONVERTERS = {r: DitheredConverter(_STRUCTURE, 2, 2, repeats=r) for r in (1, 2, 4, 8)}


@given(vgs=st.floats(0.3, 1.4), repeats=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=150, deadline=None)
def test_codes_are_sorted_and_within_one(vgs, repeats):
    codes = _CONVERTERS[repeats].codes_for_vgs(vgs)
    assert len(codes) == repeats
    assert all(a >= b for a, b in zip(codes, codes[1:]))
    assert codes[0] - codes[-1] <= 1
    assert all(0 <= c <= 20 for c in codes)


@given(vgs=st.floats(0.55, 1.05), repeats=st.sampled_from([2, 4, 8]))
@settings(max_examples=150, deadline=None)
def test_fine_code_brackets_truth(vgs, repeats):
    converter = _CONVERTERS[repeats]
    truth = _STRUCTURE.ref_sink_current(vgs) / _STRUCTURE.design.delta_i
    if not 1.0 < truth < 19.0:
        return
    fine = converter.fine_code(converter.codes_for_vgs(vgs))
    assert abs(fine - truth) <= 0.5 / repeats + 1e-9


@given(vgs=st.floats(0.6, 1.0))
@settings(max_examples=80, deadline=None)
def test_more_repeats_never_less_accurate(vgs):
    truth = _STRUCTURE.ref_sink_current(vgs) / _STRUCTURE.design.delta_i
    if not 1.0 < truth < 19.0:
        return
    coarse = _CONVERTERS[1]
    fine = _CONVERTERS[8]
    err_1 = abs(coarse.fine_code(coarse.codes_for_vgs(vgs)) - truth)
    err_8 = abs(fine.fine_code(fine.codes_for_vgs(vgs)) - truth)
    # The R=8 bracket is strictly tighter than the R=1 bracket bound.
    assert err_8 <= 0.5 / 8 + 1e-9
    assert err_1 <= 0.5 + 1e-9


@given(fine=st.floats(2.0, 18.0))
@settings(max_examples=100, deadline=None)
def test_capacitance_inversion_roundtrip(fine):
    converter = _CONVERTERS[4]
    cap = converter.capacitance_for_fine_code(fine)
    # Re-derive the fine code from the capacitance via the forward chain.
    vgs = _STRUCTURE.tech.vdd * (cap + converter.background) / (
        cap + converter.background + _STRUCTURE.c_ref_total
    )
    forward = _STRUCTURE.ref_sink_current(vgs) / _STRUCTURE.design.delta_i
    assert abs(forward - fine) < 1e-4
