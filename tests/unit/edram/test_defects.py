"""Defect taxonomy and injector placement."""

import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.errors import DefectError


class TestCellDefectValidation:
    def test_low_cap_factor_must_shrink(self):
        with pytest.raises(DefectError):
            CellDefect(DefectKind.LOW_CAP, factor=1.2)

    def test_high_cap_factor_must_grow(self):
        with pytest.raises(DefectError):
            CellDefect(DefectKind.HIGH_CAP, factor=0.8)

    def test_retention_factor_must_grow(self):
        with pytest.raises(DefectError):
            CellDefect(DefectKind.RETENTION, factor=0.5)

    def test_parametric_needs_positive_factor(self):
        with pytest.raises(DefectError):
            CellDefect(DefectKind.LOW_CAP, factor=-0.5)

    def test_structural_kinds_ignore_factor(self):
        assert CellDefect(DefectKind.SHORT).factor == 1.0


class TestInjector:
    def test_inject_records_ground_truth(self):
        arr = EDRAMArray(4, 4)
        inj = DefectInjector(arr)
        d = CellDefect(DefectKind.OPEN)
        inj.inject(1, 2, d)
        assert inj.injected == [(1, 2, d)]
        assert arr.cell(1, 2).has_defect(DefectKind.OPEN)

    def test_bridge_needs_right_neighbour(self):
        arr = EDRAMArray(4, 4)
        inj = DefectInjector(arr)
        with pytest.raises(DefectError):
            inj.inject(0, 3, CellDefect(DefectKind.BRIDGE))

    def test_inject_many(self):
        arr = EDRAMArray(4, 4)
        inj = DefectInjector(arr)
        inj.inject_many(
            [(0, 0, CellDefect(DefectKind.SHORT)), (1, 1, CellDefect(DefectKind.OPEN))]
        )
        assert len(inj.injected) == 2

    def test_scatter_is_deterministic(self):
        locs_a = DefectInjector(EDRAMArray(8, 8), seed=3).scatter(DefectKind.OPEN, 5)
        locs_b = DefectInjector(EDRAMArray(8, 8), seed=3).scatter(DefectKind.OPEN, 5)
        assert locs_a == locs_b

    def test_scatter_distinct_cells(self):
        arr = EDRAMArray(8, 8)
        locs = DefectInjector(arr, seed=0).scatter(DefectKind.SHORT, 10)
        assert len(set(locs)) == 10

    def test_scatter_overflows(self):
        arr = EDRAMArray(2, 2)
        with pytest.raises(DefectError):
            DefectInjector(arr).scatter(DefectKind.OPEN, 5)

    def test_scatter_avoids_occupied_cells(self):
        arr = EDRAMArray(2, 2)
        inj = DefectInjector(arr, seed=1)
        inj.inject(0, 0, CellDefect(DefectKind.SHORT))
        locs = inj.scatter(DefectKind.OPEN, 3)
        assert (0, 0) not in locs

    def test_cluster_respects_bounds(self):
        arr = EDRAMArray(4, 4)
        locs = DefectInjector(arr).cluster(DefectKind.LOW_CAP, center=(0, 0), radius=1, factor=0.5)
        assert set(locs) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_row_stripe(self):
        arr = EDRAMArray(4, 4)
        locs = DefectInjector(arr).row_stripe(DefectKind.OPEN, 2)
        assert locs == [(2, c) for c in range(4)]

    def test_row_stripe_bridge_skips_last_column(self):
        arr = EDRAMArray(4, 4)
        locs = DefectInjector(arr).row_stripe(DefectKind.BRIDGE, 1)
        assert locs == [(1, 0), (1, 1), (1, 2)]

    def test_column_stripe(self):
        arr = EDRAMArray(4, 4)
        locs = DefectInjector(arr).column_stripe(DefectKind.ACCESS_OPEN, 3)
        assert locs == [(r, 3) for r in range(4)]

    def test_column_stripe_bridge_on_last_column_rejected(self):
        arr = EDRAMArray(4, 4)
        with pytest.raises(DefectError):
            DefectInjector(arr).column_stripe(DefectKind.BRIDGE, 3)

    def test_stripe_bounds_checked(self):
        arr = EDRAMArray(4, 4)
        with pytest.raises(DefectError):
            DefectInjector(arr).row_stripe(DefectKind.OPEN, 4)
        with pytest.raises(DefectError):
            DefectInjector(arr).column_stripe(DefectKind.OPEN, -1)
