"""Scoring analog vs digital diagnosis against injected ground truth.

Experiment E2's engine: after injecting a known defect population,
compare what the analog bitmap flags against what the digital (march)
bitmap flags, per defect class.  The paper's qualitative claim — the
analog bitmap sees parametric and ambiguous defects the digital map
merges or misses — becomes a quantitative detection table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.edram.defects import CellDefect, DefectKind
from repro.errors import DiagnosisError


@dataclass
class KindScore:
    """Detection bookkeeping for one defect kind."""

    injected: int = 0
    analog_hits: int = 0
    digital_hits: int = 0

    @property
    def analog_rate(self) -> float:
        """Fraction of injected defects flagged by the analog bitmap."""
        return self.analog_hits / self.injected if self.injected else float("nan")

    @property
    def digital_rate(self) -> float:
        """Fraction of injected defects flagged by the digital bitmap."""
        return self.digital_hits / self.injected if self.injected else float("nan")


@dataclass
class DiagnosisComparison:
    """Per-kind detection comparison plus false-positive accounting.

    Build with :meth:`score`.
    """

    scores: dict[DefectKind, KindScore] = field(default_factory=dict)
    analog_false_positives: int = 0
    digital_false_positives: int = 0
    total_cells: int = 0

    @classmethod
    def score(
        cls,
        injected: list[tuple[int, int, CellDefect]],
        analog_flags: np.ndarray,
        digital_flags: np.ndarray,
    ) -> "DiagnosisComparison":
        """Score both flag masks against the injected ground truth.

        A defect counts as detected when its own cell is flagged.  Cells
        flagged without an injected defect count as false positives
        (process-variation outliers land here by design — they are not
        *wrong*, but they are not injected defects either).
        """
        analog_flags = np.asarray(analog_flags)
        digital_flags = np.asarray(digital_flags)
        if analog_flags.shape != digital_flags.shape:
            raise DiagnosisError(
                f"mask shapes differ: {analog_flags.shape} vs {digital_flags.shape}"
            )
        if analog_flags.dtype != bool or digital_flags.dtype != bool:
            raise DiagnosisError("flag masks must be boolean")
        comparison = cls(total_cells=int(analog_flags.size))
        truth = np.zeros(analog_flags.shape, dtype=bool)
        for row, col, defect in injected:
            if not (0 <= row < analog_flags.shape[0] and 0 <= col < analog_flags.shape[1]):
                raise DiagnosisError(f"injected address ({row}, {col}) outside the masks")
            truth[row, col] = True
            score = comparison.scores.setdefault(defect.kind, KindScore())
            score.injected += 1
            if analog_flags[row, col]:
                score.analog_hits += 1
            if digital_flags[row, col]:
                score.digital_hits += 1
        comparison.analog_false_positives = int((analog_flags & ~truth).sum())
        comparison.digital_false_positives = int((digital_flags & ~truth).sum())
        return comparison

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def analog_overall_rate(self) -> float:
        """Overall analog detection rate across all injected defects."""
        injected = sum(s.injected for s in self.scores.values())
        hits = sum(s.analog_hits for s in self.scores.values())
        return hits / injected if injected else float("nan")

    @property
    def digital_overall_rate(self) -> float:
        """Overall digital detection rate across all injected defects."""
        injected = sum(s.injected for s in self.scores.values())
        hits = sum(s.digital_hits for s in self.scores.values())
        return hits / injected if injected else float("nan")

    def table(self) -> str:
        """Render the per-kind detection table (E2's output rows)."""
        lines = [
            f"{'defect kind':<14}{'injected':>9}{'analog':>9}{'digital':>9}"
        ]
        for kind in DefectKind:
            if kind not in self.scores:
                continue
            s = self.scores[kind]
            lines.append(
                f"{kind.value:<14}{s.injected:>9}"
                f"{100 * s.analog_rate:>8.0f}%"
                f"{100 * s.digital_rate:>8.0f}%"
            )
        lines.append(
            f"{'overall':<14}{sum(s.injected for s in self.scores.values()):>9}"
            f"{100 * self.analog_overall_rate:>8.0f}%"
            f"{100 * self.digital_overall_rate:>8.0f}%"
        )
        lines.append(
            f"false positives: analog {self.analog_false_positives}, "
            f"digital {self.digital_false_positives} "
            f"(of {self.total_cells} cells)"
        )
        return "\n".join(lines)
