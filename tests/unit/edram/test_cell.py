"""DRAM cell behaviour and defect presentation."""

import pytest

from repro.edram.cell import DRAMCell
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import DefectError
from repro.units import fA, fF, pA


def _cell(**kw):
    defaults = dict(capacitance=30 * fF, leak_current=1 * fA)
    defaults.update(kw)
    return DRAMCell(**defaults)


class TestConstruction:
    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(DefectError):
            _cell(capacitance=0.0)

    def test_rejects_negative_leak(self):
        with pytest.raises(DefectError):
            _cell(leak_current=-1.0)


class TestDefectApplication:
    def test_low_cap_rescales(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.5))
        assert cell.capacitance == pytest.approx(15 * fF)
        assert cell.effective_capacitance() == pytest.approx(15 * fF)

    def test_high_cap_rescales(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.HIGH_CAP, factor=1.5))
        assert cell.capacitance == pytest.approx(45 * fF)

    def test_retention_scales_leak(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.RETENTION, factor=100.0))
        assert cell.leak_current == pytest.approx(100 * fA)
        assert cell.capacitance == pytest.approx(30 * fF)  # unchanged

    def test_open_presents_zero(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.OPEN))
        assert cell.effective_capacitance() == 0.0
        assert not cell.can_write()

    def test_access_open_presents_zero_but_keeps_value(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.ACCESS_OPEN))
        assert cell.effective_capacitance() == 0.0
        assert cell.capacitance == pytest.approx(30 * fF)

    def test_short_presents_zero_and_flags_plate(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.SHORT))
        assert cell.effective_capacitance() == 0.0
        assert cell.is_plate_shorted()

    def test_double_defect_rejected(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.OPEN))
        with pytest.raises(DefectError):
            cell.apply_defect(CellDefect(DefectKind.SHORT))

    def test_has_defect(self):
        cell = _cell()
        assert not cell.has_defect(DefectKind.SHORT)
        cell.apply_defect(CellDefect(DefectKind.SHORT))
        assert cell.has_defect(DefectKind.SHORT)
        assert not cell.has_defect(DefectKind.OPEN)


class TestBehaviouralState:
    def test_write_and_hold(self):
        cell = _cell(leak_current=0.0)
        cell.write(1.8, time=0.0)
        assert cell.stored_voltage(1.0, plate_bias=0.9) == pytest.approx(1.8)

    def test_linear_droop(self):
        cell = _cell(leak_current=30 * pA)  # 1 V per ms on 30 fF
        cell.write(1.8, time=0.0)
        assert cell.stored_voltage(1e-3, 0.9) == pytest.approx(0.8, rel=1e-6)

    def test_droop_clamps_at_zero(self):
        cell = _cell(leak_current=30 * pA)
        cell.write(1.8, time=0.0)
        assert cell.stored_voltage(10.0, 0.9) == 0.0

    def test_short_reads_plate_bias(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.SHORT))
        cell.write(1.8, time=0.0)
        assert cell.stored_voltage(0.0, plate_bias=0.9) == 0.9

    def test_open_cell_ignores_writes(self):
        cell = _cell()
        cell.apply_defect(CellDefect(DefectKind.OPEN))
        cell.write(1.8, time=0.0)
        assert cell.v_storage == 0.0

    def test_rewrite_resets_droop_clock(self):
        cell = _cell(leak_current=30 * pA)
        cell.write(1.8, time=0.0)
        cell.write(1.8, time=1e-3)
        assert cell.stored_voltage(1.5e-3, 0.9) == pytest.approx(1.3, rel=1e-6)


class TestRetentionTime:
    def test_retention_time_formula(self):
        cell = _cell(leak_current=30 * pA)
        # (1.8 - 0.9) * 30 fF / 30 pA = 0.9 ms
        assert cell.retention_time(1.8, 0.9) == pytest.approx(0.9e-3)

    def test_infinite_for_zero_leak(self):
        cell = _cell(leak_current=0.0)
        assert cell.retention_time(1.8, 0.9) == float("inf")

    def test_zero_when_already_below(self):
        cell = _cell()
        assert cell.retention_time(0.5, 0.9) == 0.0
