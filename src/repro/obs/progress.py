"""Live progress for long scans: completion, throughput, ETA.

A wafer-scale scan is minutes of silence without this module.  A
progress reporter receives three calls from the scan drivers —
:meth:`start` with the total work, :meth:`advance` as tiles/dies
complete, :meth:`finish` at the end — and renders them either as an
in-place TTY status line (:class:`ProgressReporter`) or as a
machine-readable JSON-lines event stream (:class:`JsonlProgress`, the
``repro scan --progress-jsonl`` backend a dashboard can tail).

Like the tracer and the metrics registry, progress is strictly opt-in:
every driver defaults to :data:`NULL_PROGRESS`, whose methods are no-ops
on a shared singleton, so the disabled path costs two method calls per
macro and nothing else.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter
from typing import Any, Callable, TextIO

from repro.errors import ObservabilityError

__all__ = ["ProgressReporter", "JsonlProgress", "NullProgress", "NULL_PROGRESS"]


class _ProgressBase:
    """Shared bookkeeping: counts, elapsed time, rate and ETA."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self.total = 0
        self.done = 0
        self.label = ""
        self.units = ""
        self._t0: float | None = None
        self._t_end: float | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self, total: int, label: str = "scan", units: str = "cells") -> None:
        """Begin a new progress run over ``total`` units of work."""
        if total <= 0:
            raise ObservabilityError(f"progress total must be > 0, got {total}")
        self.total = int(total)
        self.done = 0
        self.label = label
        self.units = units
        self._t0 = self._clock()
        self._t_end = None
        self._emit("start")

    def advance(self, n: int = 1) -> None:
        """Record ``n`` more units complete."""
        if self._t0 is None:
            raise ObservabilityError("progress.advance() before start()")
        self.done += int(n)
        self._emit("progress")

    def finish(self) -> None:
        """Close the run (renders the final state)."""
        if self._t0 is None:
            raise ObservabilityError("progress.finish() before start()")
        self._t_end = self._clock()
        self._emit("finish")

    # -- derived figures ------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start` (frozen once finished)."""
        if self._t0 is None:
            return 0.0
        end = self._t_end if self._t_end is not None else self._clock()
        return end - self._t0

    @property
    def rate(self) -> float:
        """Units per second so far (0 until time has passed)."""
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> float:
        """Estimated seconds to completion at the current rate."""
        rate = self.rate
        remaining = max(0, self.total - self.done)
        return remaining / rate if rate > 0 else float("inf")

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of the current state."""
        eta = self.eta_seconds
        return {
            "label": self.label,
            "units": self.units,
            "done": self.done,
            "total": self.total,
            "elapsed_seconds": self.elapsed,
            "rate_per_second": self.rate,
            "eta_seconds": None if eta == float("inf") else eta,
        }

    def _emit(self, event: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class ProgressReporter(_ProgressBase):
    """Renders an in-place status line to a terminal stream.

    Parameters
    ----------
    stream:
        Text stream for the status line; defaults to ``sys.stderr`` so
        progress never corrupts piped stdout output.
    min_interval:
        Minimum seconds between repaints — a 10 Hz ceiling keeps the
        reporting overhead invisible next to the scan itself.
    clock:
        Injectable monotonic time source for deterministic tests.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        min_interval: float = 0.1,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        super().__init__(clock)
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._last_render = float("-inf")

    def render_line(self) -> str:
        """The current status line (without the carriage return)."""
        pct = 100.0 * self.done / self.total if self.total else 0.0
        eta = self.eta_seconds
        eta_s = f"ETA {eta:.1f}s" if eta != float("inf") else "ETA --"
        return (
            f"{self.label}: {self.done}/{self.total} {self.units} "
            f"({pct:3.0f}%) {self.rate:,.0f} {self.units}/s {eta_s}"
        )

    def _emit(self, event: str) -> None:
        now = self._clock()
        if event == "progress" and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        self._stream.write("\r" + self.render_line())
        if event == "finish":
            self._stream.write("\n")
        self._stream.flush()


class JsonlProgress(_ProgressBase):
    """Streams progress events as JSON lines (one object per event).

    ``target`` is a path (opened on :meth:`start`, closed on
    :meth:`finish`) or an already-open text stream (left open).  Events
    carry ``event`` (``start`` / ``progress`` / ``finish``) plus the
    :meth:`~_ProgressBase.snapshot` fields, so a consumer tailing the
    file can plot completion, throughput and ETA live.

    ``min_interval`` throttles ``progress`` events the way
    :class:`ProgressReporter` throttles repaints; ``start`` and
    ``finish`` always emit.  The default (``0.0``) keeps one line per
    unit — fleet shard workers raise it so a million-die stream does
    not become a million writes.
    """

    def __init__(
        self,
        target: str | TextIO,
        clock: Callable[[], float] = perf_counter,
        min_interval: float = 0.0,
    ) -> None:
        super().__init__(clock)
        self._target = target
        self._fh: TextIO | None = None
        self._owns_fh = False
        self._min_interval = float(min_interval)
        self._last_emit = float("-inf")

    def _emit(self, event: str) -> None:
        if event == "progress":
            now = self._clock()
            if now - self._last_emit < self._min_interval:
                return
            self._last_emit = now
        if self._fh is None:
            if hasattr(self._target, "write"):
                self._fh = self._target  # type: ignore[assignment]
            else:
                self._fh = open(self._target, "w", encoding="utf-8")  # type: ignore[arg-type]
                self._owns_fh = True
        record = {"event": event, **self.snapshot()}
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        if event == "finish" and self._owns_fh:
            self._fh.close()
            self._fh = None
            self._owns_fh = False


class NullProgress:
    """Zero-cost reporter: every hook is a no-op on a shared singleton."""

    enabled = False

    def start(self, total: int, label: str = "scan", units: str = "cells") -> None:
        pass

    def advance(self, n: int = 1) -> None:
        pass

    def finish(self) -> None:
        pass


#: Shared no-op reporter; the default on every scan driver.
NULL_PROGRESS = NullProgress()
