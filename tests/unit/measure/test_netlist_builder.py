"""Netlist builders: structural audits of both renderings."""

import pytest

from repro.circuit.elements import Capacitor, CurrentMirrorOutput, Resistor, VoltageSource
from repro.circuit.mosfet import Mosfet
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.netlist_builder import (
    build_charge_network,
    build_measurement_circuit,
)
from repro.measure.structure import MeasurementStructure


@pytest.fixture()
def structure(tech, structure_2x2):
    return structure_2x2


class TestTransistorLevelBuild:
    def test_element_census_for_2x2(self, array_2x2, structure):
        built = build_measurement_circuit(array_2x2.macro(0), 0, 0, structure)
        counts = built.circuit.summary()
        # 4 access + 2 S_BL + PRG + LEC + STD + REF + 4 sense = 14 MOSFETs
        assert counts["Mosfet"] == 14
        # 4 cell caps + 4 junction caps + 2 CBL + CPP + CGPAR + CDPAR = 13
        assert counts["Capacitor"] == 13
        assert counts["CurrentMirrorOutput"] == 1
        # VDD, VHALF, 2 WL, 2 SBL, 2 INBL, PRG, LEC, IN, STD = 12 sources
        assert counts["VoltageSource"] == 12

    def test_figure1_signal_set_is_present(self, array_2x2, structure):
        built = build_measurement_circuit(array_2x2.macro(0), 0, 0, structure)
        ckt = built.circuit
        for name in ("MPRG", "MLEC", "MSTD", "MREF", "IREFP"):
            assert name in ckt
        for node in ("plate", "gate", "drain", "out", "in"):
            assert ckt.has_node(node)

    def test_ref_gate_capacitance_is_c_ref(self, array_2x2, structure):
        built = build_measurement_circuit(array_2x2.macro(0), 0, 0, structure)
        mref = built.circuit["MREF"]
        assert mref.cgs == pytest.approx(structure.c_ref)

    def test_open_cell_loses_capacitor(self, tech, structure):
        arr = EDRAMArray(2, 2, tech=tech)
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.OPEN))
        built = build_measurement_circuit(arr.macro(0), 0, 0, structure)
        assert "CCELL1_1" not in built.circuit
        assert "CCELL0_0" in built.circuit

    def test_short_cell_becomes_resistor(self, tech, structure):
        arr = EDRAMArray(2, 2, tech=tech)
        arr.cell(0, 1).apply_defect(CellDefect(DefectKind.SHORT))
        built = build_measurement_circuit(arr.macro(0), 0, 0, structure)
        assert "RSHORT0_1" in built.circuit
        assert "CCELL0_1" not in built.circuit

    def test_access_open_removes_access_fet(self, tech, structure):
        arr = EDRAMArray(2, 2, tech=tech)
        arr.cell(1, 0).apply_defect(CellDefect(DefectKind.ACCESS_OPEN))
        built = build_measurement_circuit(arr.macro(0), 0, 0, structure)
        assert "MAC1_0" not in built.circuit
        assert "CCELL1_0" in built.circuit  # capacitor still drawn

    def test_bridge_inside_macro_is_resistor(self, tech, structure):
        arr = EDRAMArray(2, 2, tech=tech)
        arr.cell(0, 0).apply_defect(CellDefect(DefectKind.BRIDGE))
        built = build_measurement_circuit(arr.macro(0), 0, 0, structure)
        assert "RBRG0_0" in built.circuit

    def test_cross_macro_bridge_renders_against_vhalf(self, tech, structure):
        arr = EDRAMArray(2, 4, tech=tech, macro_cols=2)
        arr.cell(0, 1).apply_defect(CellDefect(DefectKind.BRIDGE))  # col 1 -> 2
        left = build_measurement_circuit(arr.macro(0), 0, 0, structure)
        assert "CXBRG0_1" in left.circuit
        right = build_measurement_circuit(arr.macro(1), 0, 0, structure)
        assert "CXBRGIN0" in right.circuit


class TestChargeNetworkBuild:
    def test_access_switch_per_cell(self, array_2x2, structure):
        built = build_charge_network(array_2x2.macro(0), structure)
        assert set(built.access_switches) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert built.lec_switch == "LEC"

    def test_cref_total_lumped(self, array_2x2, structure):
        built = build_charge_network(array_2x2.macro(0), structure)
        assert built.network.capacitance("CREFT") == pytest.approx(structure.c_ref_total)

    def test_short_is_closed_switch(self, tech, structure):
        arr = EDRAMArray(2, 2, tech=tech)
        arr.cell(0, 1).apply_defect(CellDefect(DefectKind.SHORT))
        built = build_charge_network(arr.macro(0), structure)
        assert built.network.switch_closed("SHORT0_1")

    def test_access_open_has_no_switch(self, tech, structure):
        arr = EDRAMArray(2, 2, tech=tech)
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.ACCESS_OPEN))
        built = build_charge_network(arr.macro(0), structure)
        assert (1, 1) not in built.access_switches

    def test_tile_macros_use_local_rows(self, tech, structure_8x2):
        arr = EDRAMArray(16, 2, tech=tech, macro_rows=8)
        built = build_charge_network(arr.macro(1), structure_8x2)
        assert len(built.access_switches) == 16
        assert max(r for r, _ in built.access_switches) == 7
