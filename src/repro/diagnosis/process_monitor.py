"""Process-module monitoring from analog bitmaps.

The paper's motivation: "the specific process of DRAM capacitor and the
low capacitance value (~30 fF) of this device induce problems of process
monitoring".  With per-cell capacitance readouts, the capacitor module
becomes statistically observable: population mean/σ, process capability
(Cpk) against the spec, spatial tilt, and drift across a sequence of
dies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap.analog import AnalogBitmap
from repro.bitmap.signatures import GradientReport, fit_gradient
from repro.errors import DiagnosisError
from repro.units import to_fF


@dataclass(frozen=True)
class ProcessReport:
    """Statistical snapshot of one die's capacitor module.

    All capacitances in farads.
    """

    mean: float
    sigma: float
    cpk: float
    in_range_fraction: float
    gradient: GradientReport

    def summary(self) -> str:
        """One-line textual summary."""
        return (
            f"mean {to_fF(self.mean):.2f} fF, sigma {to_fF(self.sigma):.2f} fF, "
            f"Cpk {self.cpk:.2f}, in-range {100 * self.in_range_fraction:.1f} %, "
            f"tilt {'SIGNIFICANT' if self.gradient.significant else 'none'} "
            f"({to_fF(self.gradient.extent):.2f} fF corner-to-corner)"
        )


class ProcessMonitor:
    """Compute process health metrics from analog bitmaps.

    Parameters
    ----------
    spec_lo, spec_hi:
        Capacitance specification limits, farads.
    """

    def __init__(self, spec_lo: float, spec_hi: float) -> None:
        if not 0 < spec_lo < spec_hi:
            raise DiagnosisError(f"need 0 < spec_lo < spec_hi, got [{spec_lo}, {spec_hi}]")
        self.spec_lo = spec_lo
        self.spec_hi = spec_hi

    def report(self, bitmap: AnalogBitmap) -> ProcessReport:
        """Full statistical report for one die."""
        values = bitmap.estimates[bitmap.in_range]
        if values.size < 3:
            raise DiagnosisError("too few in-range cells for a process report")
        mean = float(values.mean())
        sigma = float(values.std())
        if sigma == 0.0:
            cpk = float("inf")
        else:
            cpk = min(self.spec_hi - mean, mean - self.spec_lo) / (3.0 * sigma)
        return ProcessReport(
            mean=mean,
            sigma=sigma,
            cpk=float(cpk),
            in_range_fraction=float(bitmap.in_range.mean()),
            gradient=fit_gradient(bitmap.estimates),
        )

    # ------------------------------------------------------------------
    # Lot-level tracking
    # ------------------------------------------------------------------

    def drift_series(self, bitmaps: list[AnalogBitmap]) -> np.ndarray:
        """Mean capacitance per die across a lot sequence, farads."""
        if not bitmaps:
            raise DiagnosisError("empty bitmap sequence")
        return np.array([self.report(b).mean for b in bitmaps])

    def detect_drift(
        self, bitmaps: list[AnalogBitmap], threshold_sigma: float = 2.0
    ) -> bool:
        """True when the lot's mean trend exits the control band.

        The control band is ``threshold_sigma`` times the within-die σ of
        the first die, centred on the first die's mean — a minimal
        Shewhart-style rule sufficient for the monitoring bench.
        """
        if len(bitmaps) < 2:
            raise DiagnosisError("need at least 2 dies to detect drift")
        first = self.report(bitmaps[0])
        means = self.drift_series(bitmaps)
        band = threshold_sigma * first.sigma
        return bool(np.any(np.abs(means - first.mean) > band))

    def samples_needed(
        self,
        drift_to_detect: float,
        cell_sigma: float,
        confidence_sigma: float = 3.0,
    ) -> int:
        """Sparse-monitor sample size to resolve a mean drift.

        Detecting a mean shift of ``drift_to_detect`` (farads) against
        per-cell spread ``cell_sigma`` at ``confidence_sigma`` standard
        errors needs ``n ≥ (confidence_sigma·cell_sigma/drift)²`` — the
        planning input for :meth:`BISTController.monitor`'s fraction.
        """
        if drift_to_detect <= 0 or cell_sigma <= 0:
            raise DiagnosisError("drift and sigma must be positive")
        if confidence_sigma <= 0:
            raise DiagnosisError("confidence_sigma must be positive")
        import math

        return max(2, math.ceil((confidence_sigma * cell_sigma / drift_to_detect) ** 2))

    def failing_fraction(self, bitmap: AnalogBitmap) -> float:
        """Fraction of cells whose estimate falls outside the spec.

        Out-of-range cells count as failing (their value is provably
        outside any spec inside the measurable range).
        """
        est = bitmap.estimates
        with np.errstate(invalid="ignore"):
            bad = (est < self.spec_lo) | (est > self.spec_hi)
        bad = np.nan_to_num(bad, nan=True).astype(bool)
        return float(bad.mean())
