"""Accuracy analysis of the converter (the paper's "accuracy of 6 %").

The structure quantizes capacitance into ``num_steps`` bins; its accuracy
at a given capacitance is the worst-case relative error of the bin
midpoint estimate, i.e. half the bin width over the value.
:func:`accuracy_sweep` measures this over a dense capacitance sweep and
:class:`AccuracyReport` summarises it — including the mid-range figure
the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.abacus import Abacus
from repro.errors import CalibrationError
from repro.units import fF, to_fF


@dataclass(frozen=True)
class AccuracyReport:
    """Result of an accuracy sweep.

    Attributes
    ----------
    capacitances:
        Swept true capacitances, farads.
    codes:
        Code produced at each point.
    estimates:
        Abacus estimate at each point (NaN when out of range), farads.
    relative_errors:
        |estimate − true| / true (NaN when out of range).
    """

    capacitances: np.ndarray
    codes: np.ndarray
    estimates: np.ndarray
    relative_errors: np.ndarray

    @property
    def in_range_mask(self) -> np.ndarray:
        """Points whose code is invertible (neither 0 nor full scale)."""
        return ~np.isnan(self.relative_errors)

    @property
    def max_error(self) -> float:
        """Worst observed in-range relative error."""
        errors = self.relative_errors[self.in_range_mask]
        if errors.size == 0:
            raise CalibrationError("no in-range points in the sweep")
        return float(errors.max())

    @property
    def mean_error(self) -> float:
        """Mean in-range relative error."""
        errors = self.relative_errors[self.in_range_mask]
        if errors.size == 0:
            raise CalibrationError("no in-range points in the sweep")
        return float(errors.mean())

    def error_at(self, capacitance: float) -> float:
        """Observed relative error nearest to ``capacitance``."""
        idx = int(np.argmin(np.abs(self.capacitances - capacitance)))
        return float(self.relative_errors[idx])

    def worst_quantization_step(self) -> float:
        """Largest in-range bin width seen in the sweep, farads."""
        in_range = self.in_range_mask
        if not in_range.any():
            raise CalibrationError("no in-range points in the sweep")
        codes = self.codes[in_range]
        caps = self.capacitances[in_range]
        widths = []
        for code in np.unique(codes):
            members = caps[codes == code]
            widths.append(members.max() - members.min())
        return float(max(widths))

    def summary(self) -> str:
        """One-paragraph textual summary (used by the accuracy bench)."""
        in_range = self.capacitances[self.in_range_mask]
        return (
            f"range with invertible codes: "
            f"{to_fF(in_range.min()):.1f}..{to_fF(in_range.max()):.1f} fF; "
            f"max relative error {100 * self.max_error:.1f} %, "
            f"mean {100 * self.mean_error:.1f} %"
        )


def accuracy_sweep(
    abacus: Abacus,
    c_start: float = 5.0 * fF,
    c_stop: float = 60.0 * fF,
    points: int = 221,
) -> AccuracyReport:
    """Sweep true capacitance densely and score the abacus inversion.

    Uses the abacus's own (exact) code mapping — the question answered is
    purely "how well does the quantized code recover the value", which is
    the paper's accuracy claim.  Cross-tier agreement is tested
    elsewhere.
    """
    if points < 2:
        raise CalibrationError(f"need at least 2 sweep points, got {points}")
    if not 0 < c_start < c_stop:
        raise CalibrationError(f"need 0 < c_start < c_stop, got [{c_start}, {c_stop}]")
    caps = np.linspace(c_start, c_stop, points)
    codes = np.array([abacus.code_for_capacitance(float(c)) for c in caps])
    estimates = abacus.estimate_matrix(codes)
    with np.errstate(invalid="ignore"):
        errors = np.abs(estimates - caps) / caps
    return AccuracyReport(
        capacitances=caps, codes=codes, estimates=estimates, relative_errors=errors
    )
