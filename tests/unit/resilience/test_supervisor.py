"""SupervisedPool: retries, timeouts, dead-worker respawn, clean teardown.

The worker functions live at module level so the fork-started processes
resolve them without pickling surprises; kills and stalls come from the
deterministic fault plan, never from OS timing.
"""

import pytest

from repro.errors import (
    ResilienceError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.resilience.faults import Fault, FaultPlan, fault_point
from repro.resilience.retry import NO_RETRY, RetryPolicy
from repro.resilience.supervisor import SupervisedPool, TaskFailure

#: Fast schedule for tests; determinism comes from the seed.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, seed=0)


def _work(payload, attempt):
    fault_point("test.work", task=payload, attempt=attempt)
    return payload * 10


def _raise_on_three(payload, attempt):
    if payload == 3:
        raise ValueError(f"task {payload} is cursed")
    return payload


def test_results_are_positional():
    pool = SupervisedPool(_work, jobs=2, retry=NO_RETRY)
    assert pool.run(list(range(6))) == [0, 10, 20, 30, 40, 50]
    assert (pool.retries, pool.timeouts, pool.respawns) == (0, 0, 0)


def test_empty_task_list():
    assert SupervisedPool(_work, jobs=1).run([]) == []


def test_jobs_and_timeout_validation():
    with pytest.raises(ResilienceError, match="jobs"):
        SupervisedPool(_work, jobs=0)
    with pytest.raises(ResilienceError, match="timeout"):
        SupervisedPool(_work, timeout=0.0)


def test_on_result_sees_every_success():
    landed = {}
    pool = SupervisedPool(_work, jobs=2, retry=NO_RETRY)
    pool.run([1, 2, 3], on_result=lambda task_id, r: landed.update({task_id: r}))
    assert landed == {0: 10, 1: 20, 2: 30}


def test_worker_exception_becomes_task_failure_after_retries():
    pool = SupervisedPool(_raise_on_three, jobs=2, retry=FAST_RETRY)
    results = pool.run([1, 2, 3, 4])
    assert results[:2] == [1, 2]
    assert results[3] == 4
    failure = results[2]
    assert isinstance(failure, TaskFailure)
    assert failure.task_id == 2  # positional id, not the payload
    assert isinstance(failure.error, ValueError)
    assert failure.attempts == FAST_RETRY.max_attempts
    assert not failure.timed_out
    assert pool.retries == FAST_RETRY.max_attempts - 1


def test_killed_worker_is_respawned_and_task_retried():
    # The fault kills attempt 0 of task 2 only; the respawned worker's
    # attempt 1 passes, so the scan loses nothing.
    plan = FaultPlan(
        [Fault("test.work", kind="kill", match={"task": 2, "attempt": 0})]
    )
    pool = SupervisedPool(_work, jobs=2, retry=FAST_RETRY, fault_plan=plan)
    assert pool.run([0, 1, 2, 3]) == [0, 10, 20, 30]
    assert pool.respawns >= 1
    assert pool.retries >= 1


def test_kill_every_attempt_exhausts_into_worker_crash_failure():
    plan = FaultPlan([Fault("test.work", kind="kill", match={"task": 1}, times=None)])
    pool = SupervisedPool(_work, jobs=2, retry=FAST_RETRY, fault_plan=plan)
    results = pool.run([0, 1, 2])
    assert results[0] == 0 and results[2] == 20
    failure = results[1]
    assert isinstance(failure, TaskFailure)
    assert isinstance(failure.error, WorkerCrashError)
    assert failure.error.exitcode == 86  # the fault plan's kill status


def test_stalled_task_times_out_and_is_flagged():
    plan = FaultPlan(
        [Fault("test.work", kind="sleep", seconds=30.0, match={"task": 1}, times=None)]
    )
    pool = SupervisedPool(
        _work, jobs=2, retry=NO_RETRY, timeout=0.3, fault_plan=plan
    )
    results = pool.run([0, 1, 2])
    assert results[0] == 0 and results[2] == 20
    failure = results[1]
    assert isinstance(failure, TaskFailure)
    assert isinstance(failure.error, TaskTimeoutError)
    assert failure.timed_out
    assert pool.timeouts == 1
    assert pool.respawns == 1


def test_timeout_retry_can_recover():
    # Only attempt 0 stalls; the retry completes within the budget.
    plan = FaultPlan(
        [Fault("test.work", kind="sleep", seconds=30.0, match={"task": 0, "attempt": 0})]
    )
    pool = SupervisedPool(
        _work, jobs=1, retry=FAST_RETRY, timeout=0.3, fault_plan=plan
    )
    assert pool.run([0]) == [0]
    assert pool.timeouts == 1
    assert pool.retries == 1


def test_no_workers_left_behind_after_run():
    pool = SupervisedPool(_work, jobs=3, retry=NO_RETRY)
    pool.run(list(range(5)))
    assert pool._workers == []


def _report_identity(payload, attempt):
    from repro.resilience.supervisor import current_worker_info

    fault_point("test.work", task=payload, attempt=attempt)
    return current_worker_info()


class TestWorkerHealth:
    def test_worker_health_shape(self):
        pool = SupervisedPool(_work, jobs=2, retry=NO_RETRY)
        pool.run([0, 1, 2, 3])
        health = pool.worker_health()
        assert len(health) == 2
        assert {h["worker_id"] for h in health} == {0, 1}
        for h in health:
            assert h["generation"] == 0
            assert h["busy_seconds"] >= 0.0
            assert h["idle_seconds"] >= 0.0
            assert h["pid"] is None or isinstance(h["pid"], int)
        assert sum(h["tasks_completed"] for h in health) == 4

    def test_workers_see_their_own_identity(self):
        pool = SupervisedPool(_report_identity, jobs=2, retry=NO_RETRY)
        infos = pool.run([0, 1, 2, 3])
        worker_ids = {info[0] for info in infos}
        assert worker_ids <= {0, 1}
        for worker_id, generation in infos:
            assert generation == 0

    def test_respawn_bumps_generation_and_keeps_worker_id(self):
        plan = FaultPlan(
            [Fault("test.work", kind="kill", match={"task": 0, "attempt": 0})]
        )
        pool = SupervisedPool(_work, jobs=1, retry=FAST_RETRY, fault_plan=plan)
        assert pool.run([0, 1]) == [0, 10]
        health = pool.worker_health()
        assert len(health) == 1
        assert health[0]["worker_id"] == 0
        assert health[0]["generation"] == 1
        # Tallies survive the respawn: both tasks count.
        assert health[0]["tasks_completed"] == 2

    def test_heartbeats_land_in_ambient_registry(self):
        from repro.obs import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        pool = SupervisedPool(_work, jobs=2, retry=NO_RETRY)
        with use_metrics(registry):
            pool.run(list(range(6)))
        view = registry.to_dict()
        assert view["pool.heartbeats"]["value"] >= 1
        assert view["pool.workers"]["value"] == 2.0
        assert view["pool.queue_depth"]["kind"] == "gauge"
        for worker_id in (0, 1):
            for field in ("tasks_completed", "busy_seconds", "idle_seconds",
                          "rss_kb", "generation"):
                assert f"pool.worker{worker_id}.{field}" in view
        total = sum(
            view[f"pool.worker{w}.tasks_completed"]["value"] for w in (0, 1)
        )
        assert total == 6.0

    def test_no_registry_means_no_heartbeat_cost(self):
        # Without an ambient registry the pool must not create one.
        pool = SupervisedPool(_work, jobs=1, retry=NO_RETRY)
        assert pool.run([0]) == [0]

    def test_heartbeat_seconds_validation(self):
        with pytest.raises(ResilienceError):
            SupervisedPool(_work, jobs=1, heartbeat_seconds=0.0)
