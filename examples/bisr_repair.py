#!/usr/bin/env python3
"""BISR repair allocation driven by the analog bitmap.

The paper positions the measurement structure as "complementary to these
BISR techniques".  This example closes that loop: spare rows/columns are
allocated two ways —

- from the **digital** fail map alone (what classical BISR sees), and
- from the **analog** out-of-spec map, which additionally retires
  *marginal* cells (low capacitance, still functional today) before they
  become field failures.

Run:  python examples/bisr_repair.py
"""

import numpy as np

from repro import (
    AnalogBitmap,
    ArrayScanner,
    Abacus,
    CellDefect,
    DefectInjector,
    DefectKind,
    EDRAMArray,
    RepairPlanner,
    SpecificationWindow,
    design_structure,
    march_c_minus,
)
from repro.bitmap import render_fail_map
from repro.edram import compose_maps, mismatch_map, uniform_map
from repro.edram.operations import ArrayOperations
from repro.units import fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 32, 16, 8, 2
SPARE_ROWS, SPARE_COLS = 3, 3

capacitance = compose_maps(
    uniform_map((ROWS, COLS), 30 * fF),
    mismatch_map((ROWS, COLS), 0.8 * fF, seed=55),
)
array = EDRAMArray(ROWS, COLS, macro_cols=MACRO_COLS, macro_rows=MACRO_ROWS,
                   capacitance_map=capacitance)
injector = DefectInjector(array, seed=56)
injector.scatter(DefectKind.SHORT, 2)
injector.scatter(DefectKind.OPEN, 2)
injector.scatter(DefectKind.LOW_CAP, 6, factor=0.6)  # marginal, not failing

# Digital view.
digital = march_c_minus().run(ArrayOperations(array))
print(f"digital fail map ({digital.fail_count} cells):")
print(render_fail_map(digital.fails))

# Analog view.
structure = design_structure(array.tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
abacus = Abacus.for_array(structure, array)
bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
analog_flags = bitmap.out_of_spec(window)
print(f"\nanalog out-of-spec map ({int(analog_flags.sum())} cells, including "
      "marginal ones):")
print(render_fail_map(analog_flags))

planner = RepairPlanner(SPARE_ROWS, SPARE_COLS)
for label, flags in (("digital-only", digital.fails), ("analog-aware", analog_flags)):
    plan = planner.plan(flags)
    status = "SUCCESS" if plan.success else f"{len(plan.uncovered)} uncovered"
    print(f"\n{label} repair plan: {status}")
    print(f"  spare rows used: {sorted(plan.spare_rows_used)}")
    print(f"  spare cols used: {sorted(plan.spare_cols_used)}")

# The marginal cells the analog-aware plan additionally retires:
marginal = analog_flags & ~digital.fails
print(f"\nmarginal cells retired only by the analog-aware plan: "
      f"{int(marginal.sum())} at {[tuple(x) for x in np.argwhere(marginal)]}")
