"""Checkpointer lifecycle, resume validation, and file robustness."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.measure.config import ScanConfig
from repro.obs.ledger import RunLedger
from repro.resilience.checkpoint import (
    Checkpointer,
    list_checkpoints,
    load_checkpoint,
    resume_fingerprint,
)


def _blanks():
    return {"codes": np.zeros((4, 4), dtype=int), "vgs": np.zeros((4, 4))}


def _start(ck, **kwargs):
    return ck.start("scan", {"rows": 4}, _blanks(), total=4, **kwargs)


def test_fresh_start_reserves_run_id_and_writes_file(tmp_path):
    ck = Checkpointer(tmp_path)
    state = _start(ck)
    assert state.run_id == "r0001"
    assert ck.path.exists()
    # The reservation is visible to the ledger's id allocator: a run
    # recorded while the checkpoint exists gets the *next* id.
    ledger = RunLedger(tmp_path)
    with ledger.locked():
        assert ledger.next_run_id() == "r0002"


def test_mark_done_persists_planes_and_completion_order(tmp_path):
    ck = Checkpointer(tmp_path)
    state = _start(ck)
    state.arrays["codes"][0, :] = 7
    ck.mark_done(0)
    state.arrays["codes"][2, :] = 9
    ck.mark_done(2)
    loaded = load_checkpoint(ck.path)
    assert loaded.completed == [0, 2]
    assert loaded.remaining == 2
    assert loaded.is_done(2) and not loaded.is_done(1)
    np.testing.assert_array_equal(loaded.arrays["codes"][0], 7)
    np.testing.assert_array_equal(loaded.arrays["codes"][2], 9)


def test_finish_deletes_file_but_keeps_run_id_readable(tmp_path):
    ck = Checkpointer(tmp_path)
    _start(ck)
    assert ck.finish() == "r0001"
    assert not ck.path.exists()
    assert ck.run_id == "r0001"  # still known for manifest recording


def test_reused_checkpointer_forgets_previous_runs_indices(tmp_path):
    # finish() then start() on the same instance: the second run must
    # record indices the first run also completed.
    ck = Checkpointer(tmp_path)
    _start(ck)
    ck.mark_done(0)
    ck.mark_done(1)
    ck.finish()
    state = _start(ck)
    assert state.completed == []
    ck.mark_done(1)
    assert state.completed == [1]
    assert load_checkpoint(ck.path).completed == [1]


def test_resume_reloads_partial_state(tmp_path):
    ck = Checkpointer(tmp_path)
    state = _start(ck, meta={"seed": 42})
    state.arrays["vgs"][1, :] = 0.5
    ck.mark_done(1)

    resumed = Checkpointer(tmp_path, resume="r0001")
    state2 = _start(resumed)
    assert resumed.resuming
    assert state2.run_id == "r0001"
    assert state2.completed == [1]
    assert state2.meta == {"seed": 42}  # stored meta wins over base_meta
    np.testing.assert_array_equal(state2.arrays["vgs"][1], 0.5)


def test_resume_unknown_id_names_known_checkpoints(tmp_path):
    _start(Checkpointer(tmp_path))
    ck = Checkpointer(tmp_path, resume="r0099")
    with pytest.raises(CheckpointError, match=r"no checkpoint 'r0099'.*r0001"):
        _start(ck)


def test_resume_refuses_kind_mismatch(tmp_path):
    _start(Checkpointer(tmp_path))
    ck = Checkpointer(tmp_path, resume="r0001")
    with pytest.raises(CheckpointError, match="cannot resume as 'wafer'"):
        ck.start("wafer", {"rows": 4}, _blanks(), total=4)


def test_resume_refuses_fingerprint_mismatch(tmp_path):
    _start(Checkpointer(tmp_path))
    ck = Checkpointer(tmp_path, resume="r0001")
    with pytest.raises(CheckpointError, match="refusing to mix results"):
        ck.start("scan", {"rows": 8}, _blanks(), total=4)


def test_resume_refuses_total_and_shape_mismatch(tmp_path):
    _start(Checkpointer(tmp_path))
    with pytest.raises(CheckpointError, match="covers 4 units"):
        Checkpointer(tmp_path, resume="r0001").start(
            "scan", {"rows": 4}, _blanks(), total=9
        )
    wrong = {"codes": np.zeros((2, 2), dtype=int), "vgs": np.zeros((2, 2))}
    with pytest.raises(CheckpointError, match="different array geometry"):
        Checkpointer(tmp_path, resume="r0001").start(
            "scan", {"rows": 4}, wrong, total=4
        )


def test_meta_array_name_is_reserved(tmp_path):
    ck = Checkpointer(tmp_path)
    with pytest.raises(CheckpointError, match="reserved"):
        ck.start("scan", {}, {"meta": np.zeros(1)}, total=1)


def test_unstarted_checkpointer_refuses(tmp_path):
    ck = Checkpointer(tmp_path)
    with pytest.raises(CheckpointError, match="not started"):
        _ = ck.run_id
    with pytest.raises(CheckpointError, match="not started"):
        ck.mark_done(0)


def test_corrupted_file_raises_checkpoint_error(tmp_path):
    ck = Checkpointer(tmp_path)
    _start(ck)
    ck.path.write_bytes(b"this is not an npz")
    with pytest.raises(CheckpointError, match="unreadable checkpoint"):
        load_checkpoint(ck.path)


def test_list_checkpoints_orders_by_run_id(tmp_path):
    _start(Checkpointer(tmp_path))
    _start(Checkpointer(tmp_path))
    ids = [c.run_id for c in list_checkpoints(RunLedger(tmp_path))]
    assert ids == ["r0001", "r0002"]
    assert list_checkpoints(RunLedger(tmp_path / "empty")) == []


def test_resume_fingerprint_excludes_jobs():
    # jobs changes wall-clock, never planes; a checkpoint written at
    # jobs=8 must resume on a single-core machine.
    assert resume_fingerprint(ScanConfig(jobs=1)) == resume_fingerprint(
        ScanConfig(jobs=8)
    )
