"""Netlist container behaviour."""

import pytest

from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.netlist import GROUND, Circuit
from repro.errors import NetlistError


def _divider():
    ckt = Circuit("div")
    ckt.add(VoltageSource("V1", "in", GROUND, 1.0))
    ckt.add(Resistor("R1", "in", "mid", 1e3))
    ckt.add(Resistor("R2", "mid", GROUND, 1e3))
    return ckt


def test_nodes_are_registered_in_order():
    ckt = _divider()
    assert ckt.node_names == ["in", "mid"]
    assert ckt.num_nodes == 2


def test_ground_has_index_minus_one():
    ckt = _divider()
    assert ckt.node_index(GROUND) == -1
    assert ckt.node_index("in") == 0


def test_unknown_node_raises():
    ckt = _divider()
    with pytest.raises(NetlistError):
        ckt.node_index("nowhere")


def test_duplicate_element_name_rejected():
    ckt = _divider()
    with pytest.raises(NetlistError):
        ckt.add(Resistor("R1", "a", "b", 1.0))


def test_remove_and_readd():
    ckt = _divider()
    removed = ckt.remove("R2")
    assert removed.name == "R2"
    assert "R2" not in ckt
    ckt.add(Resistor("R2", "mid", GROUND, 2e3))
    assert ckt["R2"].resistance == 2e3


def test_remove_missing_raises():
    with pytest.raises(NetlistError):
        _divider().remove("RX")


def test_getitem_missing_raises():
    with pytest.raises(NetlistError):
        _divider()["nope"]


def test_iteration_and_len():
    ckt = _divider()
    assert len(ckt) == 3
    assert [e.name for e in ckt] == ["V1", "R1", "R2"]


def test_elements_of_type():
    ckt = _divider()
    assert len(ckt.elements_of_type(Resistor)) == 2
    assert len(ckt.elements_of_type(VoltageSource)) == 1
    assert ckt.elements_of_type(Capacitor) == []


def test_summary_histogram():
    summary = _divider().summary()
    assert summary["Resistor"] == 2
    assert summary["VoltageSource"] == 1
    assert summary["nodes"] == 2


def test_has_node():
    ckt = _divider()
    assert ckt.has_node(GROUND)
    assert ckt.has_node("mid")
    assert not ckt.has_node("xyz")


def test_empty_node_name_rejected():
    ckt = Circuit()
    with pytest.raises(NetlistError):
        ckt.add(Resistor("R", "", "0", 1.0))
