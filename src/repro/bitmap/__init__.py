"""Analog and digital bitmaps plus spatial signature analysis.

The paper's diagnostic payoff: "build an Analog Bitmap of the capacitor
values of the cells in the memory array.  This analog bitmap can be
treated in the same way than the digital one, with signatures
categorization depending on the capacitor values."

- :class:`AnalogBitmap` — per-cell codes + capacitance estimates from a
  measurement scan,
- :class:`DigitalBitmap` — classical pass/fail map from a march test,
- :mod:`repro.bitmap.signatures` — spatial signature categorization
  (single cell / paired cells / row / column / cluster) and gradient
  extraction,
- :mod:`repro.bitmap.compare` — scoring of analog vs digital diagnosis
  against injected ground truth (experiment E2),
- :mod:`repro.bitmap.export` — terminal-friendly renderings.
"""

from repro.bitmap.analog import AnalogBitmap
from repro.bitmap.digital import DigitalBitmap
from repro.bitmap.signatures import (
    Signature,
    SignatureKind,
    categorize,
    fit_gradient,
    GradientReport,
)
from repro.bitmap.cluster import connected_components, ClusterStats, cluster_stats
from repro.bitmap.compare import DiagnosisComparison
from repro.bitmap.export import render_code_map, render_fail_map
from repro.bitmap.scramble import AddressScrambler

__all__ = [
    "AnalogBitmap",
    "DigitalBitmap",
    "Signature",
    "SignatureKind",
    "categorize",
    "fit_gradient",
    "GradientReport",
    "connected_components",
    "ClusterStats",
    "cluster_stats",
    "DiagnosisComparison",
    "render_code_map",
    "render_fail_map",
    "AddressScrambler",
]
