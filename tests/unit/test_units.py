"""Units and constants."""

import math

import pytest

from repro import units


def test_scale_factors_roundtrip():
    assert units.to_fF(30 * units.fF) == pytest.approx(30.0)
    assert units.to_pF(2.2 * units.pF) == pytest.approx(2.2)
    assert units.to_ns(50 * units.ns) == pytest.approx(50.0)
    assert units.to_uA(7.5 * units.uA) == pytest.approx(7.5)
    assert units.to_mV(0.45) == pytest.approx(450.0)


def test_relative_magnitudes():
    assert units.aF < units.fF < units.pF
    assert units.ps < units.ns < units.us < units.ms
    assert units.fA < units.pA < units.nA < units.uA < units.mA
    assert units.kOhm < units.MOhm < units.GOhm
    assert units.nm < units.um


def test_thermal_voltage_at_nominal():
    vt = units.thermal_voltage()
    assert 0.0255 < vt < 0.0265  # ~25.9 mV at 300.15 K


def test_thermal_voltage_scales_with_temperature():
    assert units.thermal_voltage(600.0) == pytest.approx(
        2.0 * units.thermal_voltage(300.0)
    )


def test_thermal_voltage_rejects_nonpositive_temperature():
    with pytest.raises(ValueError):
        units.thermal_voltage(0.0)
    with pytest.raises(ValueError):
        units.thermal_voltage(-1.0)


def test_cox_magnitude_from_constants():
    # 4 nm SiO2 oxide: Cox = eps0*3.9/4nm ~ 8.6 fF/um^2
    cox = units.EPS0 * units.EPS_SIO2 / (4 * units.nm)
    assert cox == pytest.approx(8.63e-3, rel=0.01)  # F/m^2
