"""Netlist builders: render a macro-cell plus measurement structure.

Two renderings of the same Figure-1 schematic:

- :func:`build_measurement_circuit` — the full transistor-level
  :class:`~repro.circuit.netlist.Circuit` (access devices, S_BLi, PRG,
  LEC, STD, REF, current mirror, sense inverters) with every control
  node driven by the :class:`~repro.measure.phases.PhasePlan` waveforms.
  This is what the MNA transient tier integrates for the Figure-2
  reproduction.
- :func:`build_charge_network` — the ideal-switch
  :class:`~repro.circuit.charge.CapacitorNetwork` equivalent used by the
  exact charge tier (phase 5 is then evaluated statically).

Node-name conventions (shared by both):

====================  =========================================
``plate``             the macro's common plate node
``gate``              C_REF node (gate of REF)
``drain``, ``out``    REF drain and the digital output (MNA only)
``bl{j}``             macro-local bitline ``j``
``s{r}_{j}``          storage node of cell (row r, local col j)
``in``, ``inbl{j}``   IN and IN_BLi drive nodes (MNA only)
====================  =========================================

Defect rendering: OPEN cells lose their capacitor; SHORT cells replace it
with a low resistance (MNA) or a permanently closed switch (charge
network); ACCESS_OPEN cells keep the capacitor but their access device is
removed (MNA) / never closed (charge network); BRIDGE adds a low
resistance / closed switch between adjacent storage nodes.  A bridge
whose partner lies in a neighbouring macro is rendered against that
macro's plate held at V_DD/2 (standard-mode bias) through the partner's
capacitor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.charge import CapacitorNetwork
from repro.circuit.elements import Capacitor, CurrentMirrorOutput, Resistor, VoltageSource
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.edram.array import MacroCell
from repro.edram.defects import DefectKind
from repro.measure.phases import PhasePlan
from repro.measure.structure import MeasurementStructure

#: Resistance used to render dielectric shorts and metal bridges, ohms.
SHORT_RESISTANCE = 200.0
BRIDGE_RESISTANCE = 150.0


@dataclass
class MeasurementNetlist:
    """A built transistor-level measurement circuit plus its plan."""

    circuit: Circuit
    plan: PhasePlan
    structure: MeasurementStructure
    macro: MacroCell
    target_row: int
    target_col: int


def _storage_node(row: int, lcol: int) -> str:
    return f"s{row}_{lcol}"


def _bitline_node(lcol: int) -> str:
    return f"bl{lcol}"


def _bridge_partner_local(macro: MacroCell, row: int, lcol: int) -> tuple[int, bool] | None:
    """Local col of the in-macro bridge partner, or cross-macro flag.

    ``row`` is tile-local.  Returns ``(partner_lcol, True)`` when the
    partner is inside the macro, ``(global_partner_col, False)`` when it
    is in the neighbouring macro, and ``None`` when the cell has no
    bridge.
    """
    if not macro.cell(row, lcol).has_defect(DefectKind.BRIDGE):
        return None
    global_col = macro.col_start + lcol
    partner_global = global_col + 1
    if partner_global < macro.col_stop:
        return (lcol + 1, True)
    return (partner_global, False)


def _incoming_cross_bridge(macro: MacroCell, row: int) -> bool:
    """True if the cell left of the macro bridges into local column 0."""
    if macro.col_start == 0:
        return False
    left = macro.array.cell(macro.row_start + row, macro.col_start - 1)
    return left.has_defect(DefectKind.BRIDGE)


def build_measurement_circuit(
    macro: MacroCell,
    target_row: int,
    target_col: int,
    structure: MeasurementStructure,
) -> MeasurementNetlist:
    """Build the transistor-level circuit for measuring one cell.

    ``target_col`` is macro-local.  Raises
    :class:`~repro.errors.MeasurementError` on out-of-range targets.
    """
    tech = structure.tech
    design = structure.design
    mc = macro.array.macro_cols
    plan = PhasePlan(tech, design, target_row, target_col, macro.rows, mc)
    ckt = Circuit(
        f"measure[{macro.index}]({target_row},{target_col})"
    )

    # Rails and fixed biases.
    ckt.add(VoltageSource("VDD", "vdd", "0", tech.vdd))
    ckt.add(VoltageSource("VHALF", "vhalf", "0", tech.half_vdd))

    # Control waveforms.
    for row in range(macro.rows):
        ckt.add(VoltageSource(f"VWL{row}", f"wl{row}", "0", plan.wordline(row)))
    for col in range(mc):
        ckt.add(VoltageSource(f"VSBL{col}", f"sbl{col}", "0", plan.bitline_select(col)))
        ckt.add(VoltageSource(f"VINBL{col}", f"inbl{col}", "0", plan.bitline_input(col)))
    ckt.add(VoltageSource("VPRG", "prg", "0", plan.prg()))
    ckt.add(VoltageSource("VLEC", "lec", "0", plan.lec()))
    ckt.add(VoltageSource("VIN", "in", "0", plan.input_in()))
    ckt.add(VoltageSource("VSTD", "std", "0", plan.std()))

    # Plate and bitline parasitics.
    ckt.add(Capacitor("CPP", "plate", "0", macro.plate_parasitic))
    for col in range(mc):
        ckt.add(Capacitor(f"CBL{col}", _bitline_node(col), "0", macro.bitline_capacitance))
        ckt.add(
            Mosfet(
                f"MSBL{col}", f"inbl{col}", f"sbl{col}", _bitline_node(col),
                tech.nmos, w=design.w_switch, l=design.l_switch,
            )
        )

    # Cells.
    for row in range(macro.rows):
        for col in range(mc):
            cell = macro.cell(row, col)
            s = _storage_node(row, col)
            ckt.add(Capacitor(f"CJS{row}_{col}", s, "0", tech.storage_junction_cap))
            if not cell.has_defect(DefectKind.ACCESS_OPEN):
                ckt.add(
                    Mosfet(
                        f"MAC{row}_{col}", _bitline_node(col), f"wl{row}", s,
                        tech.nmos, w=tech.access_w, l=tech.access_l,
                    )
                )
            if cell.has_defect(DefectKind.SHORT):
                ckt.add(Resistor(f"RSHORT{row}_{col}", "plate", s, SHORT_RESISTANCE))
            elif not cell.has_defect(DefectKind.OPEN):
                ckt.add(Capacitor(f"CCELL{row}_{col}", "plate", s, cell.capacitance))
            partner = _bridge_partner_local(macro, row, col)
            if partner is not None:
                p_idx, internal = partner
                if internal:
                    ckt.add(
                        Resistor(
                            f"RBRG{row}_{col}", s, _storage_node(row, p_idx),
                            BRIDGE_RESISTANCE,
                        )
                    )
                else:
                    # Partner cell hangs off the neighbouring macro's
                    # plate, held at V_DD/2 in standard mode.
                    p_cell = macro.array.cell(macro.row_start + row, p_idx)
                    ckt.add(
                        Capacitor(f"CXBRG{row}_{col}", s, "vhalf", p_cell.capacitance)
                    )
        if _incoming_cross_bridge(macro, row):
            left = macro.array.cell(macro.row_start + row, macro.col_start - 1)
            ckt.add(
                Capacitor(
                    f"CXBRGIN{row}", _storage_node(row, 0), "vhalf", left.capacitance
                )
            )

    # Measurement structure devices.
    ckt.add(Mosfet("MPRG", "in", "prg", "plate", tech.nmos, w=design.w_switch, l=design.l_switch))
    ckt.add(Mosfet("MLEC", "plate", "lec", "gate", tech.nmos, w=design.w_switch, l=design.l_switch))
    ckt.add(Mosfet("MSTD", "vhalf", "std", "plate", tech.nmos, w=design.w_switch, l=design.l_switch))
    ckt.add(
        Mosfet(
            "MREF", "drain", "gate", "0", tech.nmos,
            w=design.w_ref, l=design.l_ref, cgs=structure.c_ref,
        )
    )
    ckt.add(Capacitor("CGPAR", "gate", "0", design.gate_parasitic))
    ckt.add(Capacitor("CDPAR", "drain", "0", design.drain_parasitic))
    ckt.add(
        CurrentMirrorOutput(
            "IREFP", "vdd", "drain",
            structure.dac.staircase(plan.convert_start, design.step_duration),
            v_knee=design.mirror_knee,
        )
    )
    structure.sense.add_to_circuit(ckt, "drain", "out", "vdd")
    return MeasurementNetlist(ckt, plan, structure, macro, target_row, target_col)


@dataclass
class ChargeNetlist:
    """A built ideal-switch network plus its bookkeeping.

    ``access_switches[(row, lcol)]`` names the access switch of each cell
    that has one; ``lec_switch`` names the LEC switch.
    """

    network: CapacitorNetwork
    macro: MacroCell
    access_switches: dict[tuple[int, int], str]
    lec_switch: str


def build_charge_network(macro: MacroCell, structure: MeasurementStructure) -> ChargeNetlist:
    """Build the ideal-switch capacitor network of one macro + structure."""
    tech = structure.tech
    net = CapacitorNetwork()
    mc = macro.array.macro_cols

    net.add_capacitor("CPP", "plate", "0", macro.plate_parasitic)
    net.add_capacitor("CREFT", "gate", "0", structure.c_ref_total)
    net.add_switch("LEC", "plate", "gate")
    for col in range(mc):
        net.add_capacitor(f"CBL{col}", _bitline_node(col), "0", macro.bitline_capacitance)

    access: dict[tuple[int, int], str] = {}
    for row in range(macro.rows):
        for col in range(mc):
            cell = macro.cell(row, col)
            s = _storage_node(row, col)
            net.add_capacitor(f"CJS{row}_{col}", s, "0", tech.storage_junction_cap)
            if cell.has_defect(DefectKind.SHORT):
                net.add_switch(f"SHORT{row}_{col}", "plate", s, closed=True)
            elif not cell.has_defect(DefectKind.OPEN):
                net.add_capacitor(f"CCELL{row}_{col}", "plate", s, cell.capacitance)
            if not cell.has_defect(DefectKind.ACCESS_OPEN):
                name = f"AC{row}_{col}"
                net.add_switch(name, _bitline_node(col), s)
                access[(row, col)] = name
            partner = _bridge_partner_local(macro, row, col)
            if partner is not None:
                p_idx, internal = partner
                if internal:
                    net.add_switch(
                        f"BRG{row}_{col}", s, _storage_node(row, p_idx), closed=True
                    )
                else:
                    p_cell = macro.array.cell(macro.row_start + row, p_idx)
                    net.add_node("xplate")
                    net.drive("xplate", tech.half_vdd)
                    net.add_capacitor(f"CXBRG{row}_{col}", s, "xplate", p_cell.capacitance)
        if _incoming_cross_bridge(macro, row):
            left = macro.array.cell(macro.row_start + row, macro.col_start - 1)
            net.add_node("xplate")
            net.drive("xplate", tech.half_vdd)
            net.add_capacitor(f"CXBRGIN{row}", _storage_node(row, 0), "xplate", left.capacitance)
    return ChargeNetlist(net, macro, access, "LEC")
