"""Tracing: nested spans over the measurement hot paths.

The measurement flow is pipeline-shaped — scan → macro → cell →
phase 1–5 — and the production questions about it are pipeline
questions: where does the wall time go, which tier produced which code,
which macro was the straggler.  A :class:`Tracer` answers them by
recording **spans**: named intervals with wall-clock start/end times,
free-form attributes, and a parent link that makes the recording a
forest mirroring the call nesting.

The span taxonomy used by the instrumented hot paths (see
``docs/architecture.md`` for the full table):

- ``scan`` — one whole-array scan,
- ``macro`` — one macro-cell tile inside a scan,
- ``cell`` — one engine-tier cell measurement,
- ``phase:discharge`` / ``phase:charge`` / ``phase:isolate`` /
  ``phase:share`` / ``phase:convert`` — the paper's five measurement
  phases inside one cell flow,
- ``diagnosis`` / ``stage:*`` — the diagnosis pipeline and its stages.

Tracing is strictly opt-in.  Every instrumented call site defaults to
:data:`NULL_TRACER`, whose ``span()`` returns one shared, allocation-free
no-op context manager — the disabled path costs one method call and no
memory, and is pinned bit-exact against the un-instrumented scan by the
test suite.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence, TextIO

from repro.errors import ObservabilityError

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(slots=True)
class Span:
    """One named, timed interval in a trace.

    Attributes
    ----------
    name:
        Span kind (``"scan"``, ``"macro"``, ``"phase:share"``, ...).
    span_id:
        Identifier unique within the producing tracer (start order).
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` for roots.
    start, end:
        Wall-clock instants from the tracer's clock (``perf_counter``
        by default; origin is arbitrary, differences are seconds).
        ``end`` is ``None`` while the span is still open.
    attributes:
        Free-form key→value annotations (tier, cache hit, code, ...).
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Span length in seconds, or ``None`` while open."""
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (one trace-file line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        try:
            return cls(
                name=data["name"],
                span_id=int(data["span_id"]),
                parent_id=None if data["parent_id"] is None else int(data["parent_id"]),
                start=float(data["start"]),
                end=None if data.get("end") is None else float(data["end"]),
                attributes=dict(data.get("attributes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed span record: {data!r}") from exc

    def to_tuple(self) -> tuple[Any, ...]:
        """Compact wire form for shipping spans over the worker ack pipe.

        ``(name, span_id, parent_id, start, end, attr_items)`` — plain
        ints/floats/strings so the tuple pickles small, mirroring the
        footprint-rectangle payloads the pool already ships.
        """
        return (
            self.name,
            self.span_id,
            self.parent_id,
            self.start,
            self.end,
            tuple(self.attributes.items()),
        )

    @classmethod
    def from_tuple(cls, data: Sequence[Any]) -> "Span":
        """Rebuild a span from :meth:`to_tuple` output."""
        try:
            name, span_id, parent_id, start, end, attrs = data
            return cls(
                name=name,
                span_id=int(span_id),
                parent_id=None if parent_id is None else int(parent_id),
                start=float(start),
                end=None if end is None else float(end),
                attributes=dict(attrs),
            )
        except (TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed span tuple: {data!r}") from exc


class _SpanContext:
    """Context manager that closes its span on exit (exceptions included).

    Contexts are pooled per nesting depth on the tracer: strict ``with``
    nesting means the context at depth *d* is always exited before
    another span opens at depth *d*, so each slot can be reused — one
    allocation per depth instead of one per span.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Records a forest of nested spans.

    Nesting follows the ``with`` structure: a span opened while another
    is open becomes its child.  Spans are kept in start order; export
    with :meth:`write_jsonl` (one JSON object per line) and read back
    with :func:`repro.obs.summarize.load_trace`.

    Parameters
    ----------
    clock:
        Monotonic time source, seconds.  Injectable for deterministic
        tests; defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self._clock = clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._contexts: list[_SpanContext] = []

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span named ``name``; use as a context manager.

        The yielded :class:`Span` is live — callers may add attributes
        to it (``span.attributes["code"] = 7``) until the block exits.
        """
        if not name:
            raise ObservabilityError("span name must be non-empty")
        stack = self._stack
        parent = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=len(self.spans),
            parent_id=parent,
            start=self._clock(),
            attributes=attributes,
        )
        self.spans.append(span)
        depth = len(stack)
        stack.append(span)
        if depth < len(self._contexts):
            context = self._contexts[depth]
            context._span = span
        else:
            context = _SpanContext(self, span)
            self._contexts.append(context)
        return context

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order (misnested trace)"
            )
        self._stack.pop()
        span.end = self._clock()

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        """Spans with no parent, in start order."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Yield ``(span, depth)`` depth-first in start order."""
        depth: dict[int, int] = {}
        for span in self.spans:
            d = 0 if span.parent_id is None else depth[span.parent_id] + 1
            depth[span.span_id] = d
            yield span, d

    def to_dicts(self) -> list[dict[str, Any]]:
        """Every span as a JSON-ready dict, in start order."""
        return [span.to_dict() for span in self.spans]

    def merge(
        self,
        spans: Iterable[Span],
        *,
        parent_id: int | None = None,
        graft: bool = True,
        worker_id: int | None = None,
        pid: int | None = None,
    ) -> list[Span]:
        """Graft a remote tracer's spans into this trace.

        ``spans`` must be in start order with parents preceding children
        (the order a :class:`Tracer` records them in).  Each span is
        re-identified into this tracer's id space, internal parent links
        are remapped, and former roots are attached under ``parent_id``
        — or, when ``graft`` is true and ``parent_id`` is ``None``,
        under the currently open span, so a pool can merge worker spans
        while the parent's ``macro``/``scan`` span is still open.
        ``worker_id``/``pid`` are stamped into every merged span's
        attributes, marking which process produced it.

        Returns the merged (re-identified) spans, in start order.
        """
        if parent_id is None and graft and self._stack:
            parent_id = self._stack[-1].span_id
        id_map: dict[int, int] = {}
        merged: list[Span] = []
        for span in spans:
            if span.end is None:
                raise ObservabilityError(
                    f"cannot merge open span {span.name!r} (remote trace "
                    "shipped before the span closed)"
                )
            if span.parent_id is None:
                new_parent = parent_id
            else:
                try:
                    new_parent = id_map[span.parent_id]
                except KeyError:
                    raise ObservabilityError(
                        f"span {span.name!r} arrived before its parent "
                        f"(id {span.parent_id}); merge input must be in "
                        "start order"
                    ) from None
            attributes = dict(span.attributes)
            if worker_id is not None:
                attributes["worker_id"] = worker_id
            if pid is not None:
                attributes["pid"] = pid
            new_span = Span(
                name=span.name,
                span_id=len(self.spans),
                parent_id=new_parent,
                start=span.start,
                end=span.end,
                attributes=attributes,
            )
            id_map[span.span_id] = new_span.span_id
            self.spans.append(new_span)
            merged.append(new_span)
        return merged

    def write_jsonl(self, target: str | TextIO) -> None:
        """Write the trace as JSON lines to a path or open text file.

        Path targets are written atomically (temp sibling + rename) so a
        process killed mid-export can never leave a truncated trace file
        behind for the parent's merge to choke on.
        """
        if self._stack:
            open_names = ", ".join(s.name for s in self._stack)
            raise ObservabilityError(
                f"cannot export a trace with open spans ({open_names})"
            )
        if hasattr(target, "write"):
            for span in self.spans:
                target.write(json.dumps(span.to_dict()) + "\n")  # type: ignore[union-attr]
            return
        path = os.fspath(target)  # type: ignore[arg-type]
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for span in self.spans:
                    fh.write(json.dumps(span.to_dict()) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class _NullAttributes:
    """Attribute sink that accepts writes and stores nothing."""

    __slots__ = ()

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def update(self, *args: Any, **kwargs: Any) -> None:
        pass


class _NullSpan:
    """The span yielded by the no-op tracer; absorbs annotations."""

    __slots__ = ()

    name = ""
    span_id = -1
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes = _NullAttributes()


class _NullSpanContext:
    __slots__ = ()

    _SPAN = _NullSpan()

    def __enter__(self) -> _NullSpan:
        return self._SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """Zero-cost tracer: ``span()`` hands back one shared no-op context.

    Instrumented code is written against this default — no branches, no
    allocations on the disabled path.  ``enabled`` lets call sites skip
    work that only exists to annotate spans (e.g. formatting an
    attribute value) when nobody is listening.
    """

    enabled = False

    _CONTEXT = _NullSpanContext()

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return self._CONTEXT


#: Shared no-op tracer; the default everywhere tracing is optional.
NULL_TRACER = NullTracer()
