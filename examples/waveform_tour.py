#!/usr/bin/env python3
"""Waveform tour: watch the five-phase flow at transistor level.

Reproduces the paper's Figure 2 interactively: the full measurement
netlist (access devices, PRG/LEC/S_BL switches, REF transistor, current
mirror, sense inverters) is integrated through the 50 ns flow for two
capacitor values, and the plate / gate / OUT waveforms are rendered as
ASCII charts with the phase boundaries annotated.

Run:  python examples/waveform_tour.py
"""

from repro import EDRAMArray, design_structure
from repro.measure import MeasurementSequencer
from repro.measure.phases import Phase, PhasePlan
from repro.units import fF, to_ns

structure = design_structure(EDRAMArray(2, 2).tech, 2, 2)
plan = PhasePlan(structure.tech, structure.design, 0, 0, 2, 2)

print("phase plan (paper: five steps of 10 ns):")
for window in plan.windows:
    print(f"  {window.phase.name:<10} {to_ns(window.start):5.1f} .. "
          f"{to_ns(window.end):5.1f} ns")
print()

for cm_ff in (20, 40):
    array = EDRAMArray(2, 2)
    array.cell(0, 0).capacitance = cm_ff * fF
    sequencer = MeasurementSequencer(array.macro(0), structure)
    result, waveform = sequencer.measure_transient(0, 0, return_waveform=True)

    print(f"=== C_m = {cm_ff} fF "
          f"(V_GS = {result.vgs:.3f} V, code = {result.code}) ===")
    print(waveform.ascii_plot(["plate", "gate"], width=76, height=10))
    print()
    print("OUT and the REF drain during the conversion ramp:")
    convert = waveform.window(plan.window(Phase.CONVERT).start, plan.total_duration)
    print(convert.ascii_plot(["drain", "out"], width=76, height=10))
    if result.flip_time is not None:
        step = int((result.flip_time - plan.convert_start)
                   / structure.design.step_duration) + 1
        print(f"OUT flips at {to_ns(result.flip_time):.2f} ns "
              f"(during current step {step}) -> code {result.code}")
    else:
        print("OUT never flips -> full-scale code")
    print()

print("shape check vs Figure 2: the 40 fF extraction flips OUT at a later")
print("current step than the 20 fF one, because the higher V_GS lets REF")
print("sink more of the ramp before its drain crosses V_DD/2.")
