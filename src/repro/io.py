"""Persistence of measurement artefacts.

Scan results and abaci are the two artefacts worth keeping across
sessions (a scan is the raw silicon data; the abacus is the calibration
that decodes it).  Formats:

- scans → ``.npz`` (codes/vgs/tiers arrays plus metadata),
- abaci → ``.json`` (bin edges in attofarads plus the design constants
  needed to verify compatibility on load).

Loading an abacus requires the matching
:class:`~repro.measure.structure.MeasurementStructure`; the file carries
the design fingerprint so mismatches fail loudly instead of silently
decoding with the wrong calibration.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.calibration.abacus import Abacus
from repro.errors import CalibrationError, MeasurementError
from repro.measure.scan import ScanResult
from repro.measure.structure import MeasurementStructure
from repro.units import aF

#: Format 2 added the per-cell quality plane (format-1 files load as
#: all-GOOD — a pre-resilience scan had no way to flag a cell).
_SCAN_FORMAT = 2
_ABACUS_FORMAT = 1


# ---------------------------------------------------------------------------
# Scan results
# ---------------------------------------------------------------------------

def save_scan(result: ScanResult, path: str | Path) -> Path:
    """Write a scan result to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        format=np.array(_SCAN_FORMAT),
        codes=result.codes,
        vgs=result.vgs,
        tiers=result.tiers.astype("<U1"),
        num_steps=np.array(result.num_steps),
        quality=result.quality,
    )
    return path


def load_scan(path: str | Path) -> ScanResult:
    """Read a scan result written by :func:`save_scan`.

    Corruption (truncated download, bad disk, not-an-npz) surfaces as
    :class:`~repro.errors.MeasurementError` naming the file, never a raw
    ``zipfile``/``numpy`` traceback — scan files travel between machines
    and loaders must fail like tools, not like stack dumps.
    """
    path = Path(path)
    if not path.exists():
        raise MeasurementError(f"no scan file at {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            fmt = int(data["format"])
            if fmt not in (1, _SCAN_FORMAT):
                raise MeasurementError(
                    f"unsupported scan format {fmt} in {path}"
                )
            return ScanResult(
                codes=data["codes"].astype(int),
                vgs=data["vgs"].astype(float),
                tiers=data["tiers"],
                num_steps=int(data["num_steps"]),
                quality=data["quality"] if "quality" in data.files else None,
            )
    except MeasurementError:
        raise
    except Exception as exc:  # lint: allow-broad-except - wrapped and re-raised
        raise MeasurementError(f"unreadable scan file {path}: {exc}") from exc


# ---------------------------------------------------------------------------
# Abaci
# ---------------------------------------------------------------------------

def _design_fingerprint(structure: MeasurementStructure) -> dict:
    d = structure.design
    return {
        "num_steps": d.num_steps,
        "w_ref_nm": round(d.w_ref * 1e9, 3),
        "l_ref_nm": round(d.l_ref * 1e9, 3),
        "delta_i_na": round(d.delta_i * 1e9, 6),
        "tech": structure.tech.name,
    }


def save_abacus(abacus: Abacus, path: str | Path) -> Path:
    """Write an abacus to ``path`` (``.json`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    payload = {
        "format": _ABACUS_FORMAT,
        "design": _design_fingerprint(abacus.structure),
        "edges_af": [edge * 1e18 for edge in abacus.edges],
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_abacus(path: str | Path, structure: MeasurementStructure) -> Abacus:
    """Read an abacus and bind it to ``structure`` (fingerprint-checked)."""
    path = Path(path)
    if not path.exists():
        raise CalibrationError(f"no abacus file at {path}")
    payload = json.loads(path.read_text())
    if payload.get("format") != _ABACUS_FORMAT:
        raise CalibrationError(f"unsupported abacus format in {path}")
    expected = _design_fingerprint(structure)
    stored = payload.get("design", {})
    if stored != expected:
        raise CalibrationError(
            f"abacus in {path} was calibrated for a different design/technology: "
            f"stored {stored}, structure is {expected}"
        )
    edges = np.array(payload["edges_af"], dtype=float) * aF
    return Abacus(structure, edges)
