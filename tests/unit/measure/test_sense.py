"""Two-inverter sense chain."""

import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import VoltageSource
from repro.circuit.netlist import Circuit
from repro.errors import MeasurementError
from repro.measure.sense import InverterDesign, SenseChain


def test_inverter_design_validation():
    with pytest.raises(MeasurementError):
        InverterDesign(wn=0.0)


def test_threshold_near_half_vdd(tech):
    chain = SenseChain(tech)
    assert chain.threshold == pytest.approx(tech.half_vdd, abs=0.05)


def test_static_output(tech):
    chain = SenseChain(tech)
    assert chain.output_of(chain.threshold + 0.01)
    assert not chain.output_of(chain.threshold - 0.01)


def test_skewed_inverter_moves_threshold(tech):
    strong_n = SenseChain(tech, InverterDesign(wn=2e-6, wp=1e-6, l=0.18e-6))
    weak_n = SenseChain(tech, InverterDesign(wn=0.3e-6, wp=3e-6, l=0.18e-6))
    assert strong_n.threshold < weak_n.threshold


def test_chain_in_circuit_matches_static_model(tech):
    chain = SenseChain(tech)

    def out_for(v_in):
        ckt = Circuit()
        ckt.add(VoltageSource("VDD", "vdd", "0", tech.vdd))
        ckt.add(VoltageSource("VI", "drain", "0", v_in))
        chain.add_to_circuit(ckt, "drain", "out", "vdd")
        return dc_operating_point(ckt)["out"]

    # Non-inverting overall: high input -> high OUT.
    assert out_for(chain.threshold + 0.15) > tech.vdd - 0.1
    assert out_for(chain.threshold - 0.15) < 0.1


def test_chain_adds_four_transistors(tech):
    from repro.circuit.mosfet import Mosfet

    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", tech.vdd))
    ckt.add(VoltageSource("VI", "in", "0", 0.0))
    mid = SenseChain(tech).add_to_circuit(ckt, "in", "out", "vdd")
    assert len(ckt.elements_of_type(Mosfet)) == 4
    assert ckt.has_node(mid)


def test_chain_dc_transfer_is_monotone(tech):
    chain = SenseChain(tech)
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", tech.vdd))
    vin = ckt.add(VoltageSource("VI", "drain", "0", 0.0))
    chain.add_to_circuit(ckt, "drain", "out", "vdd")
    outs = []
    for v in (0.0, 0.45, 0.9, 1.35, 1.8):
        vin.value = type(vin.value)(v)
        outs.append(dc_operating_point(ckt)["out"])
    assert all(a <= b + 1e-6 for a, b in zip(outs, outs[1:]))
