"""Process-pool fan-out for whole-array scans.

Macro-cells are electrically independent — plate segmentation is the
paper's core idea — so per-macro scans parallelise embarrassingly.  The
fan-out ships the array and structure to each worker once (at pool
start-up, not per task), rebuilds one :class:`ArrayScanner` per process,
and streams macro indices; results come back as
``(index, vgs, codes, tier, seconds)`` tuples the caller reassembles in
index order.

Bit-exactness: every worker runs exactly the serial per-macro code on a
faithful copy of the array, so a parallel scan equals the serial scan
bit for bit (pinned in ``tests/unit/measure/test_scan_perf.py``).

The pool prefers the ``fork`` start method where available (Linux): the
workers then inherit the array by copy-on-write instead of pickling it.
On spawn-only platforms the initializer arguments are pickled once per
worker, which is still amortised across all of that worker's macros.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.edram.array import EDRAMArray
    from repro.measure.structure import MeasurementStructure

#: Per-process scanner state, installed by :func:`_init_worker`.
_WORKER: dict = {}


def _init_worker(array: "EDRAMArray", structure: "MeasurementStructure") -> None:
    # Imported here so worker start-up does not re-trigger the circular
    # scan -> parallel import at module load.
    from repro.measure.scan import ArrayScanner

    _WORKER["scanner"] = ArrayScanner(array, structure)


def _scan_one(
    index: int, force_engine: bool
) -> "tuple[int, np.ndarray, np.ndarray, str, float]":
    from repro.measure.config import ScanConfig

    scanner = _WORKER["scanner"]
    config = ScanConfig(force_engine=force_engine)
    start = perf_counter()
    vgs, codes, tier = scanner.scan_macro(scanner.array.macro(index), config)
    return index, vgs, codes, tier, perf_counter() - start


def scan_macros_parallel(
    array: "EDRAMArray",
    structure: "MeasurementStructure",
    force_engine: bool,
    jobs: int,
) -> "list[tuple[int, np.ndarray, np.ndarray, str, float]]":
    """Scan every macro of ``array`` across ``jobs`` worker processes.

    Returns per-macro results in macro-index order.  ``jobs`` is capped
    at the macro count (extra workers would only idle).
    """
    workers = max(1, min(jobs, array.num_macros))
    if "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
    else:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context()
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(array, structure),
    ) as pool:
        futures = [
            pool.submit(_scan_one, index, force_engine)
            for index in range(array.num_macros)
        ]
        return [future.result() for future in futures]
