"""Reading traces back: load, validate, aggregate, render.

``repro scan --trace out.jsonl`` writes one JSON span per line; this
module is the consumer side — the engine behind the ``repro trace``
subcommand and the programmatic entry point for notebooks:

    from repro.obs import load_trace, summarize_trace
    spans = load_trace("out.jsonl")
    print(summarize_trace(spans).table())

:func:`load_trace` validates tree structure on the way in (parents must
exist and start before their children; a malformed file raises
:class:`~repro.errors.ObservabilityError` instead of producing a
nonsense summary).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, TextIO

from repro.errors import ObservabilityError
from repro.obs.trace import Span, Tracer

__all__ = [
    "SpanAggregate",
    "TraceSummary",
    "load_trace",
    "merge_traces",
    "render_timeline",
    "summarize_trace",
    "timeline_dict",
]


def load_trace(source: str | TextIO) -> list[Span]:
    """Load spans from a JSON-lines trace file (path or open file).

    Returns spans in file order (the producer's start order) after
    validating that every ``parent_id`` refers to an earlier span.
    A missing path, a file with no spans at all, or one cut off
    mid-record (a crashed or still-writing producer), raises
    :class:`~repro.errors.ObservabilityError` naming the offending file
    instead of silently yielding a nonsense summary.
    """
    name = getattr(source, "name", None) if hasattr(source, "read") else source
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        try:
            with open(source, "r", encoding="utf-8") as fh:  # type: ignore[arg-type]
                lines = fh.read().splitlines()
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read trace file {source!s}: {exc}"
            ) from exc
    spans: list[Span] = []
    seen: set[int] = set()
    last_lineno = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()), default=0
    )
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == last_lineno:
                raise ObservabilityError(
                    f"trace line {lineno} is truncated mid-record "
                    f"(incomplete write?): {exc}"
                ) from exc
            raise ObservabilityError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from exc
        span = Span.from_dict(data)
        if span.parent_id is not None and span.parent_id not in seen:
            raise ObservabilityError(
                f"trace line {lineno}: span {span.span_id} references "
                f"unknown parent {span.parent_id}"
            )
        seen.add(span.span_id)
        spans.append(span)
    if not spans:
        where = f" in {name}" if name else ""
        raise ObservabilityError(
            f"trace{where} contains no spans (empty or blank file)"
        )
    return spans


def merge_traces(traces: "Iterable[list[Span]]") -> list[Span]:
    """Combine several span lists into one re-identified trace.

    Used by ``repro trace a.jsonl b.jsonl ...`` to view a parent trace
    together with per-worker spool files: each input keeps its internal
    parent links (re-mapped into one id space), its roots stay roots,
    and the combined list preserves parent-before-child order so
    :func:`summarize_trace` and the timeline renderer accept it
    directly.  Span timestamps are assumed comparable (``perf_counter``
    is system-wide monotonic on Linux, shared across forked workers).
    """
    combined = Tracer()
    for spans in traces:
        combined.merge(spans, graft=False)
    if not combined.spans:
        raise ObservabilityError("cannot merge empty traces (no spans)")
    return combined.spans


def _span_lane(span: Span) -> str:
    worker_id = span.attributes.get("worker_id")
    return "parent" if worker_id is None else f"w{worker_id}"


def timeline_dict(spans: list[Span]) -> dict[str, Any]:
    """Per-worker lane view of a merged trace, JSON-ready.

    Lanes: ``parent`` for spans produced in the parent process, ``w<n>``
    for spans merged from worker ``n`` (the ``worker_id`` attribute the
    merge stamps).  Each lane lists its *lane-root* spans — spans whose
    parent lives in a different lane (or nowhere), i.e. the intervals
    during which that process was doing the work its lane shows.  Times
    are seconds relative to the earliest span start.
    """
    if not spans:
        raise ObservabilityError("cannot render a timeline of an empty trace")
    t0 = min(s.start for s in spans)
    lane_of = {s.span_id: _span_lane(s) for s in spans}
    lanes: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        lane = lane_of[span.span_id]
        parent_lane = (
            lane_of.get(span.parent_id) if span.parent_id is not None else None
        )
        if parent_lane == lane:
            continue
        entry: dict[str, Any] = {
            "name": span.name,
            "start": span.start - t0,
            "end": None if span.end is None else span.end - t0,
            "duration": span.duration,
        }
        pid = span.attributes.get("pid")
        if pid is not None:
            entry["pid"] = pid
        lanes.setdefault(lane, []).append(entry)

    def _lane_key(lane: str) -> tuple[int, float]:
        return (0, 0.0) if lane == "parent" else (1, float(lane[1:]))

    end = max((s.end for s in spans if s.end is not None), default=t0)
    return {
        "duration_seconds": end - t0,
        "lanes": [
            {"lane": lane, "spans": lanes[lane]}
            for lane in sorted(lanes, key=_lane_key)
        ],
    }


def render_timeline(spans: list[Span], width: int = 72) -> str:
    """Text Gantt of the per-worker lanes (the ``--timeline`` view).

    One row per lane; ``█`` marks instants the lane had a lane-root
    span open, ``·`` marks idle.  The right-hand column totals the
    lane's busy seconds and span count — enough to spot a straggler
    worker or a serialized pool at a glance.
    """
    data = timeline_dict(spans)
    total = data["duration_seconds"]
    scale = total if total > 0 else 1.0
    label_width = max(
        (len(lane["lane"]) for lane in data["lanes"]), default=6
    )
    lines = [
        f"timeline: {total * 1e3:.3f} ms total, "
        f"{len(data['lanes'])} lanes ({width} cols)"
    ]
    for lane in data["lanes"]:
        cells = [False] * width
        busy = 0.0
        for entry in lane["spans"]:
            if entry["end"] is None:
                continue
            busy += entry["end"] - entry["start"]
            lo = int(entry["start"] / scale * (width - 1))
            hi = int(entry["end"] / scale * (width - 1))
            for i in range(lo, min(hi, width - 1) + 1):
                cells[i] = True
        bar = "".join("█" if c else "·" for c in cells)
        lines.append(
            f"{lane['lane']:<{label_width}} |{bar}| "
            f"{busy * 1e3:9.3f} ms  {len(lane['spans'])} spans"
        )
    return "\n".join(lines)


@dataclass
class SpanAggregate:
    """Aggregate over every span sharing one name.

    Percentiles are nearest-rank over the group's closed durations —
    the tail figures (p95/p99) are what distinguish a uniformly slow
    phase from a straggler macro.
    """

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0
    p99_seconds: float = 0.0


@dataclass
class TraceSummary:
    """Per-name aggregates plus whole-trace shape facts."""

    aggregates: list[SpanAggregate]
    total_spans: int
    max_depth: int
    names: set[str]

    def covers(self, *names: str) -> bool:
        """True if every given span name appears in the trace."""
        return all(name in self.names for name in names)

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_spans": self.total_spans,
            "max_depth": self.max_depth,
            "spans": [
                {
                    "name": a.name,
                    "count": a.count,
                    "total_seconds": a.total_seconds,
                    "mean_seconds": a.mean_seconds,
                    "max_seconds": a.max_seconds,
                    "p50_seconds": a.p50_seconds,
                    "p95_seconds": a.p95_seconds,
                    "p99_seconds": a.p99_seconds,
                }
                for a in self.aggregates
            ],
        }

    def table(self) -> str:
        """Aligned text table, widest total first."""
        header = (
            f"{'span':<18} {'count':>7} {'total':>12} {'mean':>12} "
            f"{'p50':>12} {'p95':>12} {'p99':>12} {'max':>12}"
        )
        lines = [header, "-" * len(header)]
        for a in self.aggregates:
            lines.append(
                f"{a.name:<18} {a.count:>7} "
                f"{a.total_seconds * 1e3:>10.3f}ms "
                f"{a.mean_seconds * 1e3:>10.4f}ms "
                f"{a.p50_seconds * 1e3:>10.4f}ms "
                f"{a.p95_seconds * 1e3:>10.4f}ms "
                f"{a.p99_seconds * 1e3:>10.4f}ms "
                f"{a.max_seconds * 1e3:>10.4f}ms"
            )
        lines.append(f"{self.total_spans} spans, max depth {self.max_depth}")
        return "\n".join(lines)


def _nearest_rank(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def summarize_trace(spans: list[Span]) -> TraceSummary:
    """Aggregate a span list by name (closed spans only count time).

    An empty span list raises :class:`~repro.errors.ObservabilityError`:
    there is nothing to aggregate, and a zeroed summary downstream reads
    as "the scan did no work" rather than "the trace was empty".
    """
    if not spans:
        raise ObservabilityError("cannot summarize an empty trace (no spans)")
    groups: dict[str, list[float]] = {}
    depth: dict[int, int] = {}
    max_depth = 0
    for span in spans:
        if span.parent_id is None:
            d = 0
        else:
            try:
                d = depth[span.parent_id] + 1
            except KeyError:
                raise ObservabilityError(
                    f"span {span.span_id} references unknown parent {span.parent_id}"
                ) from None
        depth[span.span_id] = d
        max_depth = max(max_depth, d)
        groups.setdefault(span.name, []).append(
            span.duration if span.duration is not None else 0.0
        )
    aggregates = []
    for name, durations in groups.items():
        ordered = sorted(durations)
        aggregates.append(
            SpanAggregate(
                name=name,
                count=len(durations),
                total_seconds=sum(durations),
                mean_seconds=sum(durations) / len(durations),
                max_seconds=ordered[-1],
                p50_seconds=_nearest_rank(ordered, 50),
                p95_seconds=_nearest_rank(ordered, 95),
                p99_seconds=_nearest_rank(ordered, 99),
            )
        )
    aggregates.sort(key=lambda a: -a.total_seconds)
    return TraceSummary(
        aggregates=aggregates,
        total_spans=len(spans),
        max_depth=max_depth,
        names=set(groups),
    )
