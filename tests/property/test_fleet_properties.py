"""Property-based tests of fleet sharding.

The fleet's whole correctness story reduces to one invariant: measuring
a wafer in ANY partition of contiguous die ranges and stitching the
slices back together is bit-identical to the unsharded walk.  Hypothesis
draws arbitrary cut points (not just the planner's balanced splits) so
the RNG fast-forward in :meth:`WaferModel.measure_dies` is exercised at
every alignment, and separately checks that the canonical planner can
only ever emit exact tilings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import plan_shards, validate_partition
from repro.wafer import WaferModel

SEED = 13

_PLANES = (
    "die_means", "die_sigmas", "die_vgs", "die_codes",
    "die_cell_quality", "die_quality",
)

#: Unsharded reference scans, one per wafer diameter (they're pure
#: functions of (diameter, SEED), so caching across examples is sound).
_references: dict[int, object] = {}


def _reference(diameter: int):
    if diameter not in _references:
        model = WaferModel(diameter_dies=diameter, seed=SEED)
        total = len(model.sites())
        _references[diameter] = model.measure_dies((0, total))
    return _references[diameter]


@st.composite
def partitions(draw):
    """(diameter, ranges): arbitrary contiguous cuts of a small wafer."""
    diameter = draw(st.sampled_from([3, 4, 5]))
    total = len(WaferModel(diameter_dies=diameter, seed=SEED).sites())
    cuts = draw(st.lists(
        st.integers(min_value=1, max_value=total - 1),
        unique=True, max_size=5,
    ))
    bounds = [0, *sorted(cuts), total]
    return diameter, list(zip(bounds[:-1], bounds[1:]))


@given(partitions())
@settings(max_examples=12, deadline=None)
def test_any_partition_merges_bit_exact(partition):
    diameter, ranges = partition
    reference = _reference(diameter)
    total = reference.total_dies

    merged = {
        name: np.zeros_like(getattr(reference, name)) for name in _PLANES
    }
    merged["die_means"][:] = np.nan
    merged["die_sigmas"][:] = np.nan
    for lo, hi in ranges:
        model = WaferModel(diameter_dies=diameter, seed=SEED)
        scan = model.measure_dies((lo, hi))
        assert scan.die_range == (lo, hi)
        assert scan.total_dies == total
        for name in _PLANES:
            merged[name][lo:hi] = getattr(scan, name)[lo:hi]

    for name in _PLANES:
        np.testing.assert_array_equal(
            merged[name], getattr(reference, name), err_msg=name
        )


@given(
    total=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_plan_shards_always_tiles_exactly(total, data):
    shards = data.draw(st.integers(min_value=1, max_value=total))
    ranges = plan_shards(total, shards)
    validate_partition(ranges, total)  # raises FleetError on any defect
    counts = [r.count for r in ranges]
    assert sum(counts) == total
    assert max(counts) - min(counts) <= 1
    assert [r.shard_id for r in ranges] == list(range(shards))
