"""FIG1 — structural audit of the Figure-1 schematic.

The paper's Figure 1 is a schematic: a macro-cell (four cells shown)
with the capacitor-extraction structure on its plate node.  This bench
builds the transistor-level netlist of exactly that configuration and
reports its element census and key connectivity, then times netlist
construction (the per-measurement fixed cost of the transient tier).
"""

from conftest import report

from repro.edram.array import EDRAMArray
from repro.measure.netlist_builder import build_charge_network, build_measurement_circuit


def bench_fig1_structure_audit(benchmark, tech, structure_2x2):
    array = EDRAMArray(2, 2, tech=tech)
    macro = array.macro(0)

    built = benchmark(build_measurement_circuit, macro, 0, 0, structure_2x2)
    counts = built.circuit.summary()

    charge = build_charge_network(macro, structure_2x2)
    lines = [
        "transistor-level rendering of Figure 1 (2x2 macro + structure):",
        f"  MOSFETs          : {counts['Mosfet']:>3}  "
        "(4 access, 2 S_BL, PRG, LEC, STD, REF, 4 sense)",
        f"  capacitors       : {counts['Capacitor']:>3}  "
        "(4 cells, 4 junctions, 2 bitlines, plate, gate, drain)",
        f"  sources          : {counts['VoltageSource']:>3}  (rails + control waveforms)",
        f"  current mirror   : {counts['CurrentMirrorOutput']:>3}  (I_REFP output leg)",
        f"  circuit nodes    : {counts['nodes']:>3}",
        "",
        "ideal-switch rendering (charge tier):",
        f"  nodes            : {len(charge.network.node_names):>3}",
        f"  access switches  : {len(charge.access_switches):>3}",
        "",
        "paper-named devices present: "
        + ", ".join(
            name
            for name in ("MPRG", "MLEC", "MSTD", "MREF", "IREFP")
            if name in built.circuit
        ),
    ]
    report("FIG1: measurement structure census", "\n".join(lines))

    assert counts["Mosfet"] == 14
    assert "MREF" in built.circuit
