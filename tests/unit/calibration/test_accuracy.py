"""Accuracy sweeps (the paper's 6 % claim)."""

import numpy as np
import pytest

from repro.calibration.accuracy import AccuracyReport, accuracy_sweep
from repro.errors import CalibrationError
from repro.units import fF


@pytest.fixture(scope="module")
def report(abacus_2x2):
    return accuracy_sweep(abacus_2x2)


def test_sweep_validation(abacus_2x2):
    with pytest.raises(CalibrationError):
        accuracy_sweep(abacus_2x2, points=1)
    with pytest.raises(CalibrationError):
        accuracy_sweep(abacus_2x2, c_start=10 * fF, c_stop=5 * fF)


def test_in_range_mask_excludes_extremes(report):
    assert not report.in_range_mask[0]  # 5 fF is below the floor
    assert not report.in_range_mask[-1]  # 60 fF is above the ceiling
    assert report.in_range_mask.sum() > 150


def test_midrange_error_meets_paper_claim(report):
    # The paper quotes ~6 % accuracy; the mid-range quantization error of
    # our design must be at or below that.
    assert report.error_at(30 * fF) < 0.06
    assert report.error_at(35 * fF) < 0.06


def test_mean_error_is_small(report):
    assert report.mean_error < 0.05


def test_max_error_is_bounded(report):
    # Worst case occurs in the wide first bin; still bounded.
    assert report.max_error < 0.25


def test_estimates_track_truth(report):
    in_range = report.in_range_mask
    err = np.abs(report.estimates[in_range] - report.capacitances[in_range])
    assert err.max() < 3 * fF


def test_worst_quantization_step(report):
    # No in-range bin wider than ~6 fF for the 2x2 design.
    assert report.worst_quantization_step() < 6.5 * fF


def test_summary_renders(report):
    text = report.summary()
    assert "max relative error" in text


def test_errors_on_empty_in_range():
    empty = AccuracyReport(
        capacitances=np.array([1.0, 2.0]),
        codes=np.array([0, 0]),
        estimates=np.array([np.nan, np.nan]),
        relative_errors=np.array([np.nan, np.nan]),
    )
    with pytest.raises(CalibrationError):
        _ = empty.max_error
    with pytest.raises(CalibrationError):
        _ = empty.mean_error
    with pytest.raises(CalibrationError):
        empty.worst_quantization_step()


def test_finer_converter_is_more_accurate(tech):
    from repro.calibration.abacus import Abacus
    from repro.calibration.design import design_structure

    coarse = Abacus.analytic(design_structure(tech, 2, 2, num_steps=8), 2, 2)
    fine = Abacus.analytic(design_structure(tech, 2, 2, num_steps=32), 2, 2)
    err_coarse = accuracy_sweep(coarse).error_at(30 * fF)
    err_fine = accuracy_sweep(fine).error_at(30 * fF)
    assert err_fine < err_coarse
