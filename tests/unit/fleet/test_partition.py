"""Shard partitioning: the exactly-once tiling invariant."""

import pytest

from repro.errors import FleetError
from repro.fleet import (
    ShardRange,
    partition_defects,
    plan_shards,
    validate_partition,
)


class TestShardRange:
    def test_valid_range(self):
        r = ShardRange(0, 2, 5)
        assert r.count == 3
        assert r.as_tuple() == (2, 5)

    def test_empty_range_rejected(self):
        with pytest.raises(FleetError, match="empty or inverted"):
            ShardRange(0, 3, 3)

    def test_inverted_range_rejected(self):
        with pytest.raises(FleetError, match="empty or inverted"):
            ShardRange(0, 5, 2)

    def test_negative_start_rejected(self):
        with pytest.raises(FleetError):
            ShardRange(0, -1, 2)

    def test_negative_shard_id_rejected(self):
        with pytest.raises(FleetError, match="shard id"):
            ShardRange(-1, 0, 2)


class TestPlanShards:
    def test_exact_cover_and_order(self):
        ranges = plan_shards(10, 3)
        assert [r.as_tuple() for r in ranges] == [(0, 4), (4, 7), (7, 10)]
        assert [r.shard_id for r in ranges] == [0, 1, 2]

    def test_sizes_differ_by_at_most_one(self):
        for total in range(1, 40):
            for shards in range(1, total + 1):
                counts = [r.count for r in plan_shards(total, shards)]
                assert sum(counts) == total
                assert max(counts) - min(counts) <= 1

    def test_single_shard_is_whole_wafer(self):
        (only,) = plan_shards(7, 1)
        assert only.as_tuple() == (0, 7)

    def test_more_shards_than_dies_rejected(self):
        with pytest.raises(FleetError, match="at least one die per shard"):
            plan_shards(2, 3)

    def test_bad_counts_rejected(self):
        with pytest.raises(FleetError):
            plan_shards(0, 1)
        with pytest.raises(FleetError):
            plan_shards(5, 0)


class TestPartitionDefects:
    def test_exact_partition_is_clean(self):
        assert partition_defects(plan_shards(21, 4), 21) == []

    def test_gap_detected(self):
        defects = partition_defects([(0, 3), (5, 10)], 10)
        kinds = [kind for kind, _ in defects]
        assert kinds == ["gap"]
        assert "[3, 5)" in defects[0][1]

    def test_overlap_detected(self):
        defects = partition_defects([(0, 6), (4, 10)], 10)
        kinds = [kind for kind, _ in defects]
        assert kinds == ["overlap"]
        assert "[4, 6)" in defects[0][1]

    def test_out_of_bounds_is_overlap_class(self):
        defects = partition_defects([(0, 12)], 10)
        assert any(
            kind == "overlap" and "outside" in message
            for kind, message in defects
        )

    def test_empty_range_is_gap_class(self):
        defects = partition_defects([(0, 0), (0, 10)], 10)
        assert any(
            kind == "gap" and "covers nothing" in message
            for kind, message in defects
        )

    def test_accepts_triples_and_objects(self):
        triples = [(0, 0, 5), (1, 5, 9)]
        objects = [ShardRange(0, 0, 5), ShardRange(1, 5, 9)]
        assert partition_defects(triples, 9) == []
        assert partition_defects(objects, 9) == []


class TestValidatePartition:
    def test_exact_passes(self):
        validate_partition(plan_shards(9, 3), 9)

    def test_defective_raises_with_detail(self):
        with pytest.raises(FleetError, match="exactly once"):
            validate_partition([(0, 4), (6, 9)], 9)
