"""Fleet rules (FLT001-002): the partition must tile the wafer exactly."""

from repro.lint import lint_project
from repro.lint.diagnostics import Severity

_FLT = ("FLT001", "FLT002")


def _lint(ranges, total_dies):
    return lint_project(
        only=_FLT, context={"ranges": ranges, "total_dies": total_dies}
    )


def test_exact_partition_is_clean():
    report = _lint([(0, 4), (4, 7), (7, 10)], 10)
    assert report.codes() == set()


def test_flt001_flags_overlap():
    report = _lint([(0, 6), (4, 10)], 10)
    assert report.codes() == {"FLT001"}
    d = next(iter(report))
    assert d.severity is Severity.ERROR
    assert "[4, 6)" in d.message
    assert "10 dies" in (d.subject or "")


def test_flt001_flags_out_of_bounds_range():
    report = _lint([(0, 12)], 10)
    assert report.codes() == {"FLT001"}
    assert "outside" in next(iter(report)).message


def test_flt002_flags_gap():
    report = _lint([(0, 3), (5, 10)], 10)
    assert report.codes() == {"FLT002"}
    d = next(iter(report))
    assert d.severity is Severity.ERROR
    assert "[3, 5)" in d.message


def test_flt002_flags_empty_range():
    report = _lint([(0, 0), (0, 10)], 10)
    assert "FLT002" in report.codes()
    assert any("covers nothing" in d.message for d in report)


def test_accepts_shard_id_triples():
    report = _lint([[0, 0, 5], [1, 5, 9]], 9)
    assert report.codes() == set()


def test_gap_and_overlap_report_separately():
    # [0,6) and [4,8) overlap on [4,6); die 8 is unclaimed.
    report = _lint([(0, 6), (4, 8)], 9)
    assert report.codes() == {"FLT001", "FLT002"}


def test_no_context_self_checks_the_planner():
    # The canonical planner always tiles exactly, so the self-check
    # sweep over plan_shards must come back clean.
    report = lint_project(only=_FLT)
    assert report.codes() == set()
