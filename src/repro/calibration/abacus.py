"""The abacus: code ↔ capacitance calibration map (paper Figure 3).

The paper builds its abacus "from a set of simulation": sweep the target
capacitance, record the current step at which OUT switches, and use the
resulting staircase to translate codes back into capacitance.  This
module provides that map two ways:

- :meth:`Abacus.analytic` inverts the closed-form transfer chain
  (charge-sharing algebra → REF sink current → code boundary) exactly;
- :meth:`Abacus.from_simulation` reproduces the paper's procedure by
  bisecting each code boundary with real charge-tier measurements on a
  nominal macro.

Both agree (pinned by tests) because the closed form *is* the charge
algebra.  An abacus is specific to one structure design and one macro
geometry — exactly like the paper's, which is specific to their design
and their 0.18 µm kit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.design import nominal_background
from repro.edram.array import EDRAMArray
from repro.errors import CalibrationError
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.structure import MeasurementStructure
from repro.units import aF, fF, to_fF, to_uA


@dataclass(frozen=True)
class AbacusRow:
    """One line of the abacus table.

    ``c_min``/``c_max`` bound the capacitances producing ``code``
    (farads; ``c_max`` is ``inf`` for the over-range code), and
    ``current`` is the DAC output at that step.
    """

    code: int
    c_min: float
    c_max: float
    current: float

    @property
    def c_mid(self) -> float:
        """Bin midpoint (the capacitance estimate for this code), farads."""
        if np.isinf(self.c_max):
            return self.c_min
        return 0.5 * (self.c_min + self.c_max)

    @property
    def width(self) -> float:
        """Bin width in farads (inf for the over-range code)."""
        return self.c_max - self.c_min


class Abacus:
    """Calibrated code ↔ capacitance map for one structure + macro geometry.

    Construct through :meth:`analytic` or :meth:`from_simulation`; the
    raw constructor takes explicit bin edges (farads), where ``edges[k]``
    is the capacitance at which the code transitions ``k → k+1``.
    """

    def __init__(self, structure: MeasurementStructure, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=float)
        if edges.shape != (structure.design.num_steps,):
            raise CalibrationError(
                f"need {structure.design.num_steps} edges, got {edges.shape}"
            )
        if np.any(np.diff(edges) < 0):
            raise CalibrationError("abacus edges must be non-decreasing")
        self.structure = structure
        self.edges = edges

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_array(cls, structure: MeasurementStructure, array: "EDRAMArray") -> "Abacus":
        """Analytic abacus matching an array's macro tiling."""
        return cls.analytic(
            structure, array.macro_rows, array.macro_cols, bitline_rows=array.rows
        )

    @classmethod
    def analytic(
        cls,
        structure: MeasurementStructure,
        rows: int,
        macro_cols: int,
        bitline_rows: int | None = None,
    ) -> "Abacus":
        """Exact abacus from the closed-form transfer chain."""
        tech = structure.tech
        background = nominal_background(tech, rows, macro_cols, bitline_rows)
        creft = structure.c_ref_total
        edges = []
        for code in range(1, structure.design.num_steps + 1):
            v = structure.vgs_for_code_boundary(code)
            if v >= tech.vdd:
                raise CalibrationError(
                    f"code {code} boundary requires V_GS {v:.3f} V >= V_DD; "
                    "the design cannot reach full scale on this macro"
                )
            x = creft * v / (tech.vdd - v)
            edges.append(max(0.0, x - background))
        return cls(structure, np.maximum.accumulate(np.asarray(edges)))

    @classmethod
    def from_simulation(
        cls,
        structure: MeasurementStructure,
        rows: int,
        macro_cols: int,
        c_max_search: float = 100.0 * fF,
        tolerance: float = 0.005 * fF,
        bitline_rows: int | None = None,
    ) -> "Abacus":
        """The paper's procedure: locate each boundary by simulation.

        Bisects the target capacitance of cell (0, 0) of a nominal macro
        with the exact charge tier until each code transition is pinned
        to ``tolerance``.
        """
        total_rows = bitline_rows if bitline_rows is not None else rows
        if total_rows % rows != 0:
            raise CalibrationError(
                f"bitline_rows ({total_rows}) must be a multiple of the tile rows ({rows})"
            )

        def code_of(cm: float) -> int:
            array = EDRAMArray(
                total_rows,
                macro_cols,
                tech=structure.tech,
                macro_cols=macro_cols,
                macro_rows=rows,
            )
            array.cell(0, 0).capacitance = max(cm, 1.0 * aF)
            sequencer = MeasurementSequencer(array.macro(0), structure)
            return sequencer.measure_charge(0, 0).code

        edges = []
        lo = 0.0
        for code in range(1, structure.design.num_steps + 1):
            if code_of(c_max_search) < code:
                # Boundary beyond the search ceiling: saturate.
                edges.append(c_max_search)
                continue
            a, b = lo, c_max_search
            while b - a > tolerance:
                mid = 0.5 * (a + b)
                if code_of(mid) < code:
                    a = mid
                else:
                    b = mid
            edge = 0.5 * (a + b)
            edges.append(edge)
            lo = edge  # boundaries are ordered; restart from the last one
        return cls(structure, np.asarray(edges))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def num_steps(self) -> int:
        """Converter depth of the underlying structure."""
        return self.structure.design.num_steps

    @property
    def range_floor(self) -> float:
        """Lowest capacitance distinguishable from code 0, farads."""
        return float(self.edges[0])

    @property
    def range_ceiling(self) -> float:
        """Capacitance at which the code saturates, farads."""
        return float(self.edges[-1])

    def code_for_capacitance(self, capacitance: float) -> int:
        """Code an ideal measurement of ``capacitance`` would produce."""
        if capacitance < 0:
            raise CalibrationError(f"capacitance must be >= 0, got {capacitance}")
        return int(np.searchsorted(self.edges, capacitance, side="right"))

    def row(self, code: int) -> AbacusRow:
        """The abacus line for ``code``."""
        if not 0 <= code <= self.num_steps:
            raise CalibrationError(f"code {code} outside 0..{self.num_steps}")
        c_min = 0.0 if code == 0 else float(self.edges[code - 1])
        c_max = float("inf") if code == self.num_steps else float(self.edges[code])
        return AbacusRow(
            code=code,
            c_min=c_min,
            c_max=c_max,
            current=code * self.structure.design.delta_i,
        )

    def rows(self) -> list[AbacusRow]:
        """All abacus lines, code 0 to full scale."""
        return [self.row(code) for code in range(self.num_steps + 1)]

    def estimate(self, code: int) -> float | None:
        """Capacitance estimate for ``code`` (bin midpoint), farads.

        Returns ``None`` for the two out-of-range codes: code 0 is
        ambiguous (under-range / short / open, per the paper) and the
        full-scale code only bounds the value from below.
        """
        if code == 0 or code == self.num_steps:
            return None
        return self.row(code).c_mid

    def estimate_matrix(self, codes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate`; out-of-range codes become NaN."""
        codes = np.asarray(codes)
        mids = np.array(
            [self.row(k).c_mid for k in range(self.num_steps + 1)]
        )
        out = mids[codes]
        out = np.where((codes == 0) | (codes == self.num_steps), np.nan, out)
        return out

    def quantization_error(self, capacitance: float) -> float:
        """Worst-case relative error of the estimate at ``capacitance``.

        Half the bin width over the value; ``inf`` outside the range.
        """
        code = self.code_for_capacitance(capacitance)
        if code == 0 or code == self.num_steps:
            return float("inf")
        return 0.5 * self.row(code).width / capacitance

    def table(self) -> str:
        """Human-readable abacus table (the Figure-3 data, as text)."""
        lines = [f"{'code':>4}  {'I (uA)':>8}  {'C range (fF)':>20}  {'estimate (fF)':>13}"]
        for row in self.rows():
            if np.isinf(row.c_max):
                c_range = f">= {to_fF(row.c_min):6.2f}"
                est = "(over range)"
            elif row.code == 0:
                c_range = f"<  {to_fF(row.c_max):6.2f}"
                est = "(ambiguous)"
            else:
                c_range = f"{to_fF(row.c_min):6.2f} .. {to_fF(row.c_max):6.2f}"
                est = f"{to_fF(row.c_mid):13.2f}"
            lines.append(
                f"{row.code:>4}  {to_uA(row.current):8.3f}  {c_range:>20}  {est:>13}"
            )
        return "\n".join(lines)
