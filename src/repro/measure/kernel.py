"""Batched closed-form measurement kernel: the whole array in one pass.

The per-macro closed form in :mod:`repro.measure.scan` already avoids
per-cell Python, but a whole-array scan still pays Python once per macro
tile — mask slicing, branch-term algebra, two reductions and a
``searchsorted`` per tile, plus a tracer span and a timing record each.
On a 128×64 array that is 256 trips through the interpreter for ~30
numpy operations' worth of real work.

This kernel evaluates the identical algebra for **every macro at once**
on the array's bulk planes (capacitance, defect kinds — gathered as
arrays, never as per-cell Python objects).  The only macro-dependent
parts of the closed form are its two reductions, and both vectorize as
reshapes of the row-major planes:

- per-tile row sums (``tile.sum(axis=1)`` for every tile) are
  ``plane.reshape(rows, cols // mc, mc).sum(axis=2)`` — each length-
  ``mc`` row segment is contiguous, so numpy's pairwise summation walks
  the same values in the same order as the per-tile call;
- per-tile totals (``tile.sum()`` for every tile) need the tile laid
  out contiguously first: ``reshape(Tr, mr, Tc, mc)`` +
  ``transpose(0, 2, 1, 3)`` + ``ascontiguousarray`` rebuilds each tile
  as a flat ``mr·mc`` run, and summing that run reproduces the
  per-tile flat sum bit for bit.

Bit-exactness against the per-macro path is therefore not a tolerance
claim but an operation-order identity, pinned by
``tests/property/test_kernel_properties.py`` across random shapes,
variation maps and defect populations.

The kernel covers the **closed-form tier only**.  Macros that need the
exact engine (bridges), and scans running under a tracer, fault plan,
checkpoint or ``force_engine``, keep the per-macro drivers — the scan
engine's dispatch planner (:meth:`ArrayScanner.scan`) decides per scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.edram.defects import KIND_CODES, DefectKind

__all__ = [
    "KernelConstants",
    "closed_form_vgs_plane",
    "tile_row_sums",
    "tile_totals",
]

_SHORT = KIND_CODES[DefectKind.SHORT]
_OPEN = KIND_CODES[DefectKind.OPEN]
_ACCOPEN = KIND_CODES[DefectKind.ACCESS_OPEN]


def _series(a: float | np.ndarray, b: float | np.ndarray) -> np.ndarray:
    """Series combination a·b/(a+b), safely 0 when either plate is 0."""
    a = np.asarray(a, dtype=float)
    total = a + b
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(total > 0.0, a * b / np.where(total > 0.0, total, 1.0), 0.0)
    return out


@dataclass(frozen=True)
class KernelConstants:
    """Macro-independent closed-form constants (silicon copies are exact).

    Attributes
    ----------
    cjs:
        Storage-junction capacitance hanging on every floating cell.
    cbl:
        Full-height bitline parasitic (bitlines cannot be segmented).
    cpp:
        Plate-node parasitic of one macro tile.
    creft:
        Total reference-side capacitance (C_REF + wiring), joins the
        charge share discharged.
    vdd:
        Supply rail; every plate-side branch pre-charges to it.
    macro_rows, macro_cols:
        Tile geometry of the array being scanned.
    """

    cjs: float
    cbl: float
    cpp: float
    creft: float
    vdd: float
    macro_rows: int
    macro_cols: int


def tile_row_sums(plane: np.ndarray, macro_cols: int) -> np.ndarray:
    """``tile.sum(axis=1)`` for every tile, as one (rows, tiles_across) array.

    Each length-``macro_cols`` segment of a row is contiguous in the
    row-major plane, so the reduction order — and therefore every bit of
    the result — matches the per-tile call.
    """
    rows, cols = plane.shape
    return plane.reshape(rows, cols // macro_cols, macro_cols).sum(axis=2)


def tile_totals(plane: np.ndarray, macro_rows: int, macro_cols: int) -> np.ndarray:
    """``tile.sum()`` for every tile, as one (tiles_down, tiles_across) array.

    The transpose + copy lays each tile out as one contiguous
    ``macro_rows·macro_cols`` run, reproducing the flat pairwise
    summation of the per-tile call bit for bit.
    """
    rows, cols = plane.shape
    tr, tc = rows // macro_rows, cols // macro_cols
    tiles = np.ascontiguousarray(
        plane.reshape(tr, macro_rows, tc, macro_cols).transpose(0, 2, 1, 3)
    ).reshape(tr, tc, macro_rows * macro_cols)
    return tiles.sum(axis=2)


def closed_form_vgs_plane(
    cap: np.ndarray, kinds: np.ndarray, constants: KernelConstants
) -> np.ndarray:
    """V_GS for every cell of every macro in one vectorized pass.

    Parameters
    ----------
    cap:
        (rows, cols) as-fabricated capacitance plane (farads).
    kinds:
        (rows, cols) defect-kind code plane (0 = healthy).
    constants:
        The shared closed-form constants and tile geometry.

    Matches :meth:`ArrayScanner.closed_form_vgs` bit for bit on every
    closed-form tile; engine tiles (bridges) produce the same number the
    per-macro closed form would, which the caller overwrites.
    """
    cjs, cbl, cpp = constants.cjs, constants.cbl, constants.cpp
    creft, vdd = constants.creft, constants.vdd
    mr, mc = constants.macro_rows, constants.macro_cols
    rows, cols = cap.shape

    short = None
    if not kinds.any():
        # Defect-free plane: the branch equivalents collapse to the
        # healthy-cell terms — same algebra and operation order as the
        # masked path below, minus its ~15 whole-plane np.where calls.
        tgt_term = cap
        off_term = cap * cjs / (cap + cjs)
        nbr_term = cap * (cbl + cjs) / (cap + (cbl + cjs))
    else:
        short = kinds == _SHORT
        open_ = kinds == _OPEN
        accopen = kinds == _ACCOPEN
        normal = ~(short | open_ | accopen)

        # Branch equivalents per cell in each role, exactly as derived
        # in repro.measure.scan (all pre-charged to V_DD).
        floating_series = _series(cap, cjs)
        off_term = np.where(normal | accopen, floating_series, 0.0)
        off_term = np.where(short, cjs, off_term)

        nbr_term = np.where(normal, _series(cap, cbl + cjs), 0.0)
        nbr_term = np.where(accopen, floating_series, nbr_term)
        nbr_term = np.where(short, cbl + cjs, nbr_term)

        tgt_term = np.where(normal, cap, 0.0)
        tgt_term = np.where(accopen, floating_series, tgt_term)

    off_rows = tile_row_sums(off_term, mc)  # (rows, tiles_across)
    nbr_rows = tile_row_sums(nbr_term, mc)
    # Per-tile totals, broadcast back to one value per (row, tile).
    off_all = np.repeat(tile_totals(off_term, mr, mc), mr, axis=0)

    tc = cols // mc
    x = (
        tgt_term.reshape(rows, tc, mc)
        + cpp
        + (nbr_rows[:, :, None] - nbr_term.reshape(rows, tc, mc))
        + (off_all - off_rows)[:, :, None]
    )
    vgs = (vdd * x / (x + creft)).reshape(rows, cols)
    if short is not None:
        # A shorted target clamps the plate to its grounded bitline.
        vgs = np.where(short, 0.0, vgs)
    return vgs
