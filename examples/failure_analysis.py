#!/usr/bin/env python3
"""Failure analysis: from injected defects to root-caused findings.

The scenario the paper's introduction motivates: an eDRAM lot shows
yield loss; classical digital bitmapping shows *which* cells fail but
not *why*.  This example injects a realistic defect population, runs the
digital baseline and the analog scan, and shows how the analog bitmap
separates defect classes the digital map merges — ending with the
signature categorization and root-cause report.

Run:  python examples/failure_analysis.py
"""

import numpy as np

from repro import (
    AnalogBitmap,
    ArrayScanner,
    Abacus,
    CellClassifier,
    CellDefect,
    DefectInjector,
    DefectKind,
    EDRAMArray,
    FailureAnalyzer,
    SpecificationWindow,
    design_structure,
    march_c_minus,
)
from repro.baselines import retention_test
from repro.bitmap import DiagnosisComparison, render_code_map, render_fail_map
from repro.edram import compose_maps, mismatch_map, uniform_map
from repro.edram.operations import ArrayOperations
from repro.units import fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 32, 16, 8, 2

# --- build the failing lot -------------------------------------------------
capacitance = compose_maps(
    uniform_map((ROWS, COLS), 30 * fF),
    mismatch_map((ROWS, COLS), 0.7 * fF, seed=7),
)
array = EDRAMArray(ROWS, COLS, macro_cols=MACRO_COLS, macro_rows=MACRO_ROWS,
                   capacitance_map=capacitance)
injector = DefectInjector(array, seed=8)
injector.inject(5, 3, CellDefect(DefectKind.SHORT))
injector.inject(12, 9, CellDefect(DefectKind.OPEN))
injector.inject(20, 6, CellDefect(DefectKind.BRIDGE))
injector.inject(27, 13, CellDefect(DefectKind.RETENTION, factor=5000.0))
injector.cluster(DefectKind.LOW_CAP, center=(9, 12), radius=1, factor=0.6)
print(f"injected {len(injector.injected)} defects into a {ROWS}x{COLS} array\n")

# --- classical digital bitmapping ------------------------------------------
march = march_c_minus().run(ArrayOperations(array))
retention = retention_test(ArrayOperations(array), pause=0.2)
digital = march.merge(retention)
print(f"digital bitmap ({digital.source}): {digital.fail_count} failing cells")
print(render_fail_map(digital.fails))
print()

# --- the paper's analog bitmapping ------------------------------------------
structure = design_structure(array.tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
abacus = Abacus.for_array(structure, array)
bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
print("analog bitmap (codes 0-9, a-k; note the low-cap cluster that the")
print("digital map cannot see):")
print(render_code_map(bitmap.codes))
print()

# --- head-to-head scoring ----------------------------------------------------
comparison = DiagnosisComparison.score(
    injector.injected, bitmap.out_of_spec(window), digital.fails
)
print("detection comparison against the injected ground truth:")
print(comparison.table())
print()

# --- classification and root cause ------------------------------------------
classifier = CellClassifier(bitmap, window, macro_cols=MACRO_COLS)
verdicts = classifier.classify_all(digital.fails)
findings = FailureAnalyzer().analyze(verdicts)
print("root-caused findings (signature -> suspected process cause):")
print(FailureAnalyzer().report(findings))

# Count how many injected defect *classes* the analog flow separated.
separated = {f.cause for f in findings}
print(f"\ndistinct root causes separated: {len(separated)}")
