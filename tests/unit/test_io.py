"""Persistence of scans and abaci."""

import numpy as np
import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.errors import CalibrationError, MeasurementError
from repro.io import load_abacus, load_scan, save_abacus, save_scan
from repro.measure.scan import ArrayScanner


@pytest.fixture()
def scan(tech, structure_2x2):
    array = EDRAMArray(4, 4, tech=tech)
    return ArrayScanner(array, structure_2x2).scan()


class TestScanIO:
    def test_roundtrip(self, scan, tmp_path):
        path = save_scan(scan, tmp_path / "scan")
        assert path.suffix == ".npz"
        loaded = load_scan(path)
        assert np.array_equal(loaded.codes, scan.codes)
        assert np.allclose(loaded.vgs, scan.vgs)
        assert np.array_equal(loaded.tiers, scan.tiers)
        assert loaded.num_steps == scan.num_steps

    def test_missing_file(self, tmp_path):
        with pytest.raises(MeasurementError):
            load_scan(tmp_path / "nope.npz")

    def test_explicit_suffix_kept(self, scan, tmp_path):
        path = save_scan(scan, tmp_path / "data.npz")
        assert path.name == "data.npz"


class TestAbacusIO:
    def test_roundtrip(self, structure_2x2, abacus_2x2, tmp_path):
        path = save_abacus(abacus_2x2, tmp_path / "abacus")
        assert path.suffix == ".json"
        loaded = load_abacus(path, structure_2x2)
        assert np.allclose(loaded.edges, abacus_2x2.edges, atol=1e-21)

    def test_missing_file(self, structure_2x2, tmp_path):
        with pytest.raises(CalibrationError):
            load_abacus(tmp_path / "nope.json", structure_2x2)

    def test_fingerprint_mismatch_rejected(self, tech, abacus_2x2, tmp_path):
        path = save_abacus(abacus_2x2, tmp_path / "abacus")
        other = design_structure(tech, 8, 2)  # different design
        with pytest.raises(CalibrationError):
            load_abacus(path, other)

    def test_codes_survive_roundtrip(self, structure_2x2, abacus_2x2, tmp_path):
        from repro.units import fF

        path = save_abacus(abacus_2x2, tmp_path / "abacus")
        loaded = load_abacus(path, structure_2x2)
        for cm in (12, 30, 50):
            assert loaded.code_for_capacitance(cm * fF) == (
                abacus_2x2.code_for_capacitance(cm * fF)
            )
