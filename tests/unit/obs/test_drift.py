"""Drift engine: EWMA/CUSUM charts, ledger gating, bench trajectories."""

import pytest

from repro.errors import LedgerError
from repro.lint.diagnostics import Severity
from repro.obs import (
    DEFAULT_SCALARS,
    DriftEngine,
    RunLedger,
    RunManifest,
    ScalarSpec,
    check_bench_history,
    check_ledger,
)


def manifest(run_id, scalars, kind="scan"):
    return RunManifest(kind=kind, run_id=run_id, scalars=scalars)


class TestEngineValidation:
    def test_lambda_range(self):
        with pytest.raises(LedgerError):
            DriftEngine(lam=0.0)
        with pytest.raises(LedgerError):
            DriftEngine(lam=1.5)

    def test_negative_widths_rejected(self):
        with pytest.raises(LedgerError):
            DriftEngine(ewma_k=-1)

    def test_min_runs_floor(self):
        with pytest.raises(LedgerError):
            DriftEngine(min_runs=1)


class TestCheckSeries:
    def test_empty_series_raises(self):
        with pytest.raises(LedgerError):
            DriftEngine().check_series("x", [])

    def test_flat_series_in_control(self):
        check = DriftEngine().check_series("x", [30.0] * 8, sigma=0.5)
        assert check.in_control
        assert check.target == 30.0

    def test_step_shift_flagged(self):
        values = [30.0, 30.1, 29.9, 30.0, 26.0, 26.1]
        check = DriftEngine().check_series("cap", values, sigma=0.5)
        assert not check.in_control
        flagged_methods = {m for i in check.flagged for m in check.methods[i]}
        assert "ewma" in flagged_methods or "cusum" in flagged_methods

    def test_slow_drift_caught_by_cusum(self):
        # 0.8σ per step: too small for the EWMA band early on, but the
        # one-sided sum accumulates past h = 4 within the series.
        values = [30.0 + 0.4 * i for i in range(10)]
        check = DriftEngine().check_series("cap", values, sigma=0.5)
        assert any("cusum" in check.methods[i] for i in check.flagged)

    def test_first_point_never_flagged(self):
        check = DriftEngine().check_series("x", [10.0, 10.0], sigma=1.0)
        assert 0 not in check.flagged

    def test_zero_sigma_fallback_is_finite(self):
        check = DriftEngine().check_series("x", [5.0, 5.0, 5.0])
        assert check.sigma > 0
        assert check.in_control

    def test_moving_range_fallback_cannot_alarm_on_two_points(self):
        # Throughput-style scalars get their σ from the series itself;
        # with 2 points the estimate scales with the observed jump, so a
        # CI gate over a fresh pair of runs cannot flake.
        check = DriftEngine().check_series("cells_per_second", [1e5, 3e5])
        assert check.in_control

    def test_chart_traces_have_series_length(self):
        values = [1.0, 2.0, 3.0]
        check = DriftEngine().check_series("x", values, sigma=1.0)
        assert len(check.ewma) == len(values)
        assert len(check.ewma_limits) == len(values)
        assert len(check.cusum_hi) == len(values)


class TestCheckRuns:
    def test_insufficient_history_is_info(self):
        report = DriftEngine().check_runs([manifest("r0001", {"cap_mean_fF": 30.0})])
        assert report.ok
        assert [d.code for d in report.diagnostics] == ["DRF000"]
        assert report.diagnostics[0].severity is Severity.INFO

    def test_stable_history_passes(self):
        runs = [
            manifest(f"r{i:04d}", {"cap_mean_fF": 30.0 + 0.01 * (i % 2),
                                   "cap_sigma_fF": 1.0})
            for i in range(1, 6)
        ]
        report = DriftEngine().check_runs(runs)
        assert report.ok
        assert report.exit_code == 0

    def test_physics_drift_is_error(self):
        runs = [
            manifest("r0001", {"cap_mean_fF": 30.0, "cap_sigma_fF": 1.0}),
            manifest("r0002", {"cap_mean_fF": 30.05, "cap_sigma_fF": 1.0}),
            manifest("r0003", {"cap_mean_fF": 24.0, "cap_sigma_fF": 1.0}),
        ]
        report = DriftEngine().check_runs(runs)
        assert not report.ok
        assert report.exit_code == 1
        codes = {d.code for d in report.diagnostics}
        assert codes <= {"DRF001", "DRF002"}
        assert any("r0003" in d.nodes for d in report.diagnostics)

    def test_throughput_drift_is_warning_only(self):
        spec = (ScalarSpec("cells_per_second", severity=Severity.WARNING),)
        runs = [
            manifest(f"r{i:04d}", {"cells_per_second": v})
            for i, v in enumerate([1e5, 1.01e5, 0.99e5, 1e5, 3e4], start=1)
        ]
        report = DriftEngine().check_runs(runs, specs=spec)
        assert report.exit_code == 0  # warnings never gate
        assert any(d.severity is Severity.WARNING for d in report.diagnostics)

    def test_scalar_missing_from_history_skipped(self):
        runs = [manifest(f"r{i}", {"unrelated": 1.0}) for i in range(5)]
        report = DriftEngine().check_runs(runs, specs=DEFAULT_SCALARS)
        assert report.ok


class TestCheckLedger:
    def test_kind_filter(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(manifest("", {"cap_mean_fF": 30.0}, kind="scan"))
        ledger.record(manifest("", {"cap_mean_fF": 11.0}, kind="wafer"))
        ledger.record(manifest("", {"cap_mean_fF": 30.0}, kind="scan"))
        # Mixing kinds would look like wild drift; the filter keeps the
        # scan series clean.
        assert check_ledger(ledger, kind="scan").ok

    def test_empty_ledger_reports_info(self, tmp_path):
        report = check_ledger(RunLedger(tmp_path / "runs"))
        assert report.ok
        assert [d.code for d in report.diagnostics] == ["DRF000"]


class TestBenchHistory:
    def test_regression_warns(self):
        history = [
            {"git_rev": f"c{i}", "cells_per_second": v,
             "speedup_serial_vs_seed": 30.0}
            for i, v in enumerate([2e5, 2.02e5, 1.98e5, 2e5, 0.4e5])
        ]
        report = check_bench_history(history)
        assert any(d.code == "DRF003" for d in report.diagnostics)
        assert report.exit_code == 0  # advisory only

    def test_improvement_not_flagged(self):
        history = [
            {"git_rev": f"c{i}", "cells_per_second": v}
            for i, v in enumerate([2e5, 2.01e5, 1.99e5, 2e5, 9e5])
        ]
        report = check_bench_history(history)
        assert not any(d.code == "DRF003" for d in report.diagnostics)

    def test_kernel_speedup_regression_warns(self):
        # Entries predating the batched kernel (no figure) are skipped;
        # the series still charts once enough kernel-era entries exist.
        history = [{"git_rev": "old", "cells_per_second": 2e5}] + [
            {"git_rev": f"c{i}", "kernel_speedup_vs_serial": v}
            for i, v in enumerate([28.0, 28.3, 27.9, 28.1, 4.0])
        ]
        report = check_bench_history(history)
        assert any(
            d.code == "DRF003" and "kernel_speedup_vs_serial" in d.message
            for d in report.diagnostics
        )

    def test_short_or_malformed_history_ignored(self):
        assert check_bench_history([]).ok
        assert check_bench_history([{"cells_per_second": 1e5}, "junk"]).ok
