"""Golden reference cells and instrument gain recovery."""

import numpy as np
import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.reference import (
    InstrumentCheck,
    InstrumentStatus,
    ReferenceBank,
)
from repro.edram.array import EDRAMArray
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.errors import CalibrationError
from repro.measure.scan import ArrayScanner
from repro.measure.structure import MeasurementDesign, MeasurementStructure
from repro.units import fF, to_fF


def _setup(tech, structure=None):
    capacitance = compose_maps(
        uniform_map((16, 4), 30 * fF), mismatch_map((16, 4), 1 * fF, seed=3)
    )
    array = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8,
                       capacitance_map=capacitance)
    bank = ReferenceBank(array, seed=4)
    nominal = design_structure(tech, 8, 2, bitline_rows=16)
    abacus = Abacus.analytic(nominal, 8, 2, bitline_rows=16)
    scan_structure = structure if structure is not None else nominal
    scan = ArrayScanner(array, scan_structure).scan()
    check = InstrumentCheck(abacus, bank, rows=8, macro_cols=2, bitline_rows=16)
    return array, bank, abacus, scan, check, nominal


def _drifted_structure(tech, nominal, gain):
    """A structure whose physical C_REF drifted by ``gain``."""
    from dataclasses import replace
    import math

    design = nominal.design
    # Scale the REF gate area so c_ref_total scales by `gain`.
    target = gain * (design.c_ref(tech) + design.gate_parasitic) - design.gate_parasitic
    scale = math.sqrt(target / design.c_ref(tech))
    return MeasurementStructure(
        tech, replace(design, w_ref=design.w_ref * scale, l_ref=design.l_ref * scale)
    )


class TestReferenceBank:
    def test_one_reference_per_macro(self, tech):
        array, bank, *_ = _setup(tech)
        assert len(bank.positions) == array.num_macros
        mask = bank.mask()
        assert int(mask.sum()) == array.num_macros

    def test_reference_cells_are_precise(self, tech):
        array, bank, *_ = _setup(tech)
        for row, col in bank.positions:
            assert array.cell(row, col).capacitance == pytest.approx(
                30 * fF, rel=0.02
            )

    def test_validation(self, tech):
        array = EDRAMArray(4, 2, tech=tech)
        with pytest.raises(CalibrationError):
            ReferenceBank(array, value=0.0)
        with pytest.raises(CalibrationError):
            ReferenceBank(array, tolerance=0.5)


class TestInstrumentCheck:
    def test_healthy_instrument_passes(self, tech):
        *_, scan, check, _ = _setup(tech)
        verdict = check.evaluate(scan)
        assert verdict.status is InstrumentStatus.OK
        assert verdict.gain == 1.0
        assert verdict.corrected_abacus is None

    @pytest.mark.parametrize("gain", [1.2, 0.8])
    def test_drift_detected_and_estimated(self, tech, gain):
        nominal = design_structure(tech, 8, 2, bitline_rows=16)
        drifted = _drifted_structure(tech, nominal, gain)
        *_, scan, check, _ = _setup(tech, structure=drifted)
        verdict = check.evaluate(scan)
        assert verdict.status is InstrumentStatus.GAIN_DRIFT
        assert verdict.gain == pytest.approx(gain, rel=0.08)
        assert verdict.corrected_abacus is not None

    def test_corrected_abacus_recovers_estimates(self, tech):
        gain = 1.2
        nominal = design_structure(tech, 8, 2, bitline_rows=16)
        drifted = _drifted_structure(tech, nominal, gain)
        array, bank, abacus, scan, check, _ = _setup(tech, structure=drifted)
        verdict = check.evaluate(scan)
        corrected = verdict.corrected_abacus
        # A healthy 30 fF cell measured through the drifted instrument:
        probe_row, probe_col = 3, 1  # not a reference position
        code = int(scan.codes[probe_row, probe_col])
        wrong = abacus.estimate(code)
        fixed = corrected.estimate(code)
        true = array.cell(probe_row, probe_col).capacitance
        assert abs(fixed - true) < abs(wrong - true)
        assert to_fF(abs(fixed - true)) < 2.5

    def test_broken_instrument_flags_faulty(self, tech):
        *_, scan, check, _ = _setup(tech)
        dead = scan.codes.copy()
        dead[:, :] = 0  # e.g. LEC stuck open
        from repro.measure.scan import ScanResult

        verdict = check.evaluate(
            ScanResult(codes=dead, vgs=scan.vgs, num_steps=scan.num_steps,
                       tiers=scan.tiers)
        )
        assert verdict.status is InstrumentStatus.FAULTY

    def test_tolerance_validation(self, tech):
        *_, check, _ = _setup(tech)
        with pytest.raises(CalibrationError):
            InstrumentCheck(check.abacus, check.bank, 8, 2, code_tolerance=0.0)
