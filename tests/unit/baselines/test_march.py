"""March tests (digital baseline)."""

import pytest

from repro.baselines.march import (
    MarchElement,
    MarchTest,
    Op,
    Order,
    march_b,
    march_c_minus,
    march_catalog,
    mats,
    mats_pp,
    retention_test,
)
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.operations import ArrayOperations
from repro.errors import DiagnosisError


def _ops(tech, defect=None, where=(1, 1)):
    arr = EDRAMArray(4, 4, tech=tech)
    if defect is not None:
        arr.cell(*where).apply_defect(defect)
    return ArrayOperations(arr)


class TestParsing:
    def test_parse_ops(self):
        el = MarchElement.parse(Order.ASCENDING, "r0,w1")
        assert el.ops == (Op(read=True, value=False), Op(read=False, value=True))

    def test_bad_spec_rejected(self):
        with pytest.raises(DiagnosisError):
            MarchElement.parse(Order.ANY, "x1")
        with pytest.raises(DiagnosisError):
            MarchElement.parse(Order.ANY, "r2")

    def test_empty_test_rejected(self):
        with pytest.raises(DiagnosisError):
            MarchTest("empty", [])

    def test_op_count(self):
        assert mats().op_count_per_cell == 4
        assert mats_pp().op_count_per_cell == 6
        assert march_c_minus().op_count_per_cell == 10
        assert march_b().op_count_per_cell == 17

    def test_catalog_is_ordered_by_cost(self):
        catalog = march_catalog()
        costs = [t.op_count_per_cell for t in catalog.values()]
        assert costs == sorted(costs)
        assert set(catalog) == {"MATS", "MATS++", "March C-", "March B"}


class TestHealthyArrays:
    @pytest.mark.parametrize("algorithm", [mats, mats_pp, march_c_minus, march_b])
    def test_healthy_array_passes(self, tech, algorithm):
        bitmap = algorithm().run(_ops(tech))
        assert bitmap.fail_count == 0

    def test_retention_test_passes_within_target(self, tech):
        bitmap = retention_test(_ops(tech), pause=0.01)
        assert bitmap.fail_count == 0


class TestDefectDetection:
    @pytest.mark.parametrize("kind", [DefectKind.SHORT, DefectKind.OPEN, DefectKind.ACCESS_OPEN])
    def test_hard_faults_detected(self, tech, kind):
        bitmap = mats_pp().run(_ops(tech, CellDefect(kind)))
        assert bitmap.fails[1, 1]

    @pytest.mark.parametrize("algorithm", [march_c_minus, march_b])
    def test_bridge_detected_by_coupling_tests(self, tech, algorithm):
        ops = _ops(tech, CellDefect(DefectKind.BRIDGE), where=(2, 1))
        bitmap = algorithm().run(ops)
        assert bitmap.fails[2, 1] or bitmap.fails[2, 2]

    def test_fresh_low_cap_escapes_march(self, tech):
        """The paper's motivating escape: parametric cells pass."""
        ops = _ops(tech, CellDefect(DefectKind.LOW_CAP, factor=0.4))
        assert march_c_minus().run(ops).fail_count == 0

    def test_retention_defect_escapes_march_but_fails_pause(self, tech):
        defect = CellDefect(DefectKind.RETENTION, factor=5000.0)
        assert march_c_minus().run(_ops(tech, defect)).fail_count == 0
        bitmap = retention_test(_ops(tech, defect), pause=0.2)
        assert bitmap.fails[1, 1]
        assert bitmap.fail_count == 1

    def test_bitmap_source_labels(self, tech):
        assert mats_pp().run(_ops(tech)).source == "MATS++"
        assert "retention" in retention_test(_ops(tech), 0.01).source


class TestRetentionValidation:
    def test_negative_pause_rejected(self, tech):
        with pytest.raises(DiagnosisError):
            retention_test(_ops(tech), pause=-1.0)

    def test_zero_pattern_variant(self, tech):
        bitmap = retention_test(_ops(tech), pause=0.01, value=False)
        assert bitmap.fail_count == 0
