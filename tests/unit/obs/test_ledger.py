"""Run ledger: manifests, provenance, artifacts, diffs."""

import json

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.errors import LedgerError
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.obs import (
    MetricsRegistry,
    RunLedger,
    RunManifest,
    config_fingerprint,
    config_hash,
    scan_scalars,
)


def small_array(seed=0, nominal_fF=30.0):
    from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
    from repro.units import fF

    shape = (16, 8)
    capacitance = compose_maps(
        uniform_map(shape, nominal_fF * fF),
        mismatch_map(shape, 0.8 * fF, seed=seed),
    )
    return EDRAMArray(16, 8, macro_rows=8, macro_cols=2, capacitance_map=capacitance)


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "runs")


class TestProvenance:
    def test_fingerprint_covers_data_fields_only(self):
        fp = config_fingerprint(ScanConfig(jobs=2, tier="transient"))
        assert fp == {
            "jobs": 2, "preflight": False, "force_engine": False,
            "tier": "transient", "technology": "edram",
        }

    def test_hash_stable_and_sensitive(self):
        base = ScanConfig()
        assert config_hash(base) == config_hash(ScanConfig())
        assert config_hash(base) != config_hash(ScanConfig(jobs=2))

    def test_hash_ignores_observers(self):
        assert config_hash(ScanConfig()) == config_hash(
            ScanConfig(metrics=MetricsRegistry())
        )

    def test_scan_scalars_shape(self):
        result = ArrayScanner(small_array()).scan()
        scalars = scan_scalars(result)
        assert {
            "code_centroid", "code_sigma", "vgs_mean", "vgs_sigma",
            "flip_step_mean", "flip_step_p95", "wall_seconds",
            "cells_per_second",
        } <= set(scalars)
        assert scalars["code_sigma"] >= 0
        assert scalars["cells_per_second"] > 0


class TestManifestRoundTrip:
    def test_to_from_dict(self):
        manifest = RunManifest(
            kind="scan", run_id="r0001", timestamp="t", seed=3,
            scalars={"x": 1.5}, extra={"note": "hi"},
        )
        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone == manifest

    def test_malformed_dict_raises(self):
        with pytest.raises(LedgerError, match="malformed"):
            RunManifest.from_dict({"run_id": "r0001"})  # no kind


class TestRecording:
    def test_record_scan_assigns_identity(self, ledger):
        result = ArrayScanner(small_array()).scan()
        m1 = ledger.record_scan(result, ScanConfig(), seed=1, label="a")
        m2 = ledger.record_scan(result, ScanConfig(), seed=2)
        assert [m1.run_id, m2.run_id] == ["r0001", "r0002"]
        assert m1.timestamp and m1.version
        assert m1.config_hash == config_hash(ScanConfig())
        assert m1.seed == 1 and m1.label == "a"

    def test_artifact_round_trip(self, ledger):
        result = ArrayScanner(small_array()).scan()
        manifest = ledger.record_scan(result, ScanConfig())
        loaded = ledger.load_artifact(ledger.get(manifest.run_id))
        assert np.array_equal(loaded.codes, result.codes)

    def test_artifact_optional(self, ledger):
        result = ArrayScanner(small_array()).scan()
        manifest = ledger.record_scan(result, save_artifact=False)
        assert manifest.artifact is None
        with pytest.raises(LedgerError, match="no scan artifact"):
            ledger.load_artifact(manifest)

    def test_metrics_snapshot_captured(self, ledger):
        metrics = MetricsRegistry()
        config = ScanConfig(metrics=metrics)
        result = ArrayScanner(small_array()).scan(config)
        manifest = ledger.record_scan(result, config)
        assert manifest.metrics is not None
        assert "scan.cells" in manifest.metrics

    def test_scan_via_config_ledger(self, ledger):
        config = ScanConfig(ledger=ledger)
        ArrayScanner(small_array()).scan(config)
        runs = ledger.runs()
        assert len(runs) == 1
        assert runs[0].kind == "scan"
        assert runs[0].cpu_seconds is not None
        assert runs[0].tech == "generic-0.18um-edram"

    def test_wafer_via_config_ledger(self, ledger):
        from repro.wafer import WaferModel

        model = WaferModel(
            diameter_dies=3, die_rows=8, die_cols=4,
            macro_rows=4, macro_cols=2, seed=5,
        )
        model.measure_wafer(config=ScanConfig(ledger=ledger))
        runs = ledger.runs()
        # One wafer manifest; the per-die scans stay unrecorded.
        assert [m.kind for m in runs] == ["wafer"]
        assert runs[0].seed == 5
        assert {
            "cap_mean_fF", "cap_sigma_fF", "radial_centre_fF",
            "radial_drop_fF", "dies",
        } <= set(runs[0].scalars)


class TestReading:
    def test_empty_ledger(self, ledger):
        assert ledger.runs() == []
        assert len(ledger) == 0

    def test_get_unknown_run_raises(self, ledger):
        with pytest.raises(LedgerError, match="no run"):
            ledger.get("r0042")

    def test_corrupt_manifest_line_raises(self, ledger):
        ledger.record_scan(ArrayScanner(small_array()).scan())
        with open(ledger.manifest_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "scan", "run_id"')  # truncated write
        with pytest.raises(LedgerError, match="not valid JSON"):
            ledger.runs()

    def test_latest_and_series(self, ledger):
        result = ArrayScanner(small_array()).scan()
        for _ in range(3):
            ledger.record_scan(result)
        assert [m.run_id for m in ledger.latest(2)] == ["r0002", "r0003"]
        series = ledger.series("code_centroid", kind="scan")
        assert len(series) == 3
        assert series[0][0] == "r0001"

    def test_manifest_line_is_plain_json(self, ledger):
        ledger.record_scan(ArrayScanner(small_array()).scan())
        line = ledger.manifest_path.read_text().splitlines()[0]
        record = json.loads(line)
        assert record["format"] == 1
        assert record["kind"] == "scan"


class TestDiff:
    def test_identical_runs_diff_clean(self, ledger):
        result = ArrayScanner(small_array(seed=7)).scan()
        ledger.record_scan(result, ScanConfig())
        ledger.record_scan(result, ScanConfig())
        diff = ledger.diff("r0001", "r0002")
        assert diff.config_changes == {}
        assert diff.bitmap["cells_changed"] == 0
        assert "identical" in diff.format_text()

    def test_config_change_surfaces(self, ledger):
        result = ArrayScanner(small_array()).scan()
        ledger.record_scan(result, ScanConfig())
        ledger.record_scan(result, ScanConfig(force_engine=True))
        diff = ledger.diff("r0001", "r0002")
        assert diff.config_changes == {"force_engine": (False, True)}

    def test_bitmap_delta_detects_shift(self, ledger):
        from repro.calibration.design import design_structure

        # The designed structure's code scale resolves a 4 fF process
        # shift (the default reference design is coarser).
        a, b = small_array(nominal_fF=30.0), small_array(nominal_fF=26.0)
        structure = design_structure(a.tech, 8, 2, bitline_rows=16)
        ledger.record_scan(ArrayScanner(a, structure).scan())
        ledger.record_scan(ArrayScanner(b, structure).scan())
        diff = ledger.diff("r0001", "r0002")
        assert diff.bitmap["cells_changed"] > 0
        assert diff.bitmap["mean_code_delta"] < 0  # lower caps, lower codes
        assert diff.scalar_deltas["code_centroid"][2] < 0

    def test_missing_artifact_reason(self, ledger):
        result = ArrayScanner(small_array()).scan()
        ledger.record_scan(result, save_artifact=False)
        ledger.record_scan(result)
        diff = ledger.diff("r0001", "r0002")
        assert "reason" in diff.bitmap

    def test_to_dict_shape(self, ledger):
        result = ArrayScanner(small_array()).scan()
        ledger.record_scan(result)
        ledger.record_scan(result)
        d = ledger.diff("r0001", "r0002").to_dict()
        assert d["a"] == "r0001" and d["b"] == "r0002"
        assert {"config_changes", "scalar_deltas", "metric_deltas", "bitmap"} <= set(d)


# ---------------------------------------------------------------------------
# Advisory locking
# ---------------------------------------------------------------------------


def test_locked_times_out_with_clear_error(tmp_path):
    import pytest

    from repro.errors import LedgerError

    ledger = RunLedger(tmp_path)
    with ledger.locked():
        # flock is per open file description, so a second acquisition
        # through a fresh fd contends even within one process.
        with pytest.raises(LedgerError, match="timed out waiting for ledger lock"):
            with ledger.locked(timeout=0.2):
                pass  # pragma: no cover - never entered


def test_locked_serialises_concurrent_run_id_allocation(tmp_path):
    # Two processes racing to append must never claim the same id.
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()

    def allocate():
        ledger = RunLedger(tmp_path)
        barrier.wait()
        for _ in range(5):
            with ledger.locked():
                run_id = ledger.next_run_id()
                ledger.checkpoint_dir.mkdir(parents=True, exist_ok=True)
                (ledger.checkpoint_dir / f"{run_id}.npz").write_bytes(b"x")
            queue.put(run_id)

    procs = [ctx.Process(target=allocate) for _ in range(2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(30)
    ids = [queue.get(timeout=5) for _ in range(10)]
    assert len(set(ids)) == 10  # no id claimed twice
