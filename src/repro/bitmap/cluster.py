"""Connected-component utilities for bitmap masks.

Spatial grouping of flagged cells is the first step of signature
categorization.  Components are built on a :mod:`networkx` grid graph
with 8-connectivity (diagonal neighbours count — a scratch crossing the
array diagonally is one signature, not forty).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import DiagnosisError

#: 8-connected neighbour offsets.
_NEIGHBOURS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]


def connected_components(mask: np.ndarray) -> list[set[tuple[int, int]]]:
    """8-connected components of a boolean mask, largest first."""
    mask = np.asarray(mask)
    if mask.ndim != 2 or mask.dtype != bool:
        raise DiagnosisError("mask must be a 2-D boolean array")
    graph = nx.Graph()
    rows, cols = np.nonzero(mask)
    cells = list(zip(rows.tolist(), cols.tolist()))
    graph.add_nodes_from(cells)
    cell_set = set(cells)
    for r, c in cells:
        for dr, dc in _NEIGHBOURS:
            neighbour = (r + dr, c + dc)
            if neighbour in cell_set:
                graph.add_edge((r, c), neighbour)
    components = [set(comp) for comp in nx.connected_components(graph)]
    return sorted(components, key=len, reverse=True)


@dataclass(frozen=True)
class ClusterStats:
    """Geometry summary of one component."""

    size: int
    row_min: int
    row_max: int
    col_min: int
    col_max: int
    centroid: tuple[float, float]

    @property
    def height(self) -> int:
        """Rows spanned."""
        return self.row_max - self.row_min + 1

    @property
    def width(self) -> int:
        """Columns spanned."""
        return self.col_max - self.col_min + 1

    @property
    def density(self) -> float:
        """Cells over bounding-box area."""
        return self.size / (self.height * self.width)


def cluster_stats(component: set[tuple[int, int]]) -> ClusterStats:
    """Compute :class:`ClusterStats` for one component."""
    if not component:
        raise DiagnosisError("component is empty")
    rows = [r for r, _ in component]
    cols = [c for _, c in component]
    return ClusterStats(
        size=len(component),
        row_min=min(rows),
        row_max=max(rows),
        col_min=min(cols),
        col_max=max(cols),
        centroid=(sum(rows) / len(rows), sum(cols) / len(cols)),
    )
