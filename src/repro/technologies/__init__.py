"""Pluggable cell-technology backends behind the measurement seam.

The paper's measurement structure only touches the array through three
electrical terminals — the shared **plate**, the **bitlines**, and the
**wordlines**.  Everything memory-technology-specific (cell electrical
model, defect semantics, variation maps, parameter corners, quality
thresholds) lives behind that seam, so the same sequencer, scan engine,
closed-form kernel, shared-memory fan-out, resilience ladder, run-ledger
fingerprints and drift charts can measure other memories unchanged.

This package owns the seam.  A backend implements
:class:`~repro.technologies.base.CellTechnology` and registers under a
short name; consumers resolve it with :func:`get`:

    from repro.technologies import get

    backend = get("fecap")
    array = backend.build_array(32, 16, macro_rows=8, seed=0)
    structure = backend.design_structure(array)

Shipped backends:

- ``edram`` — the paper's 1T1C eDRAM stack (the default; bit-exact with
  the pre-registry construction path),
- ``fecap`` — ferroelectric-capacitor array with hysteretic polarization
  state and cumulative read-disturb (capacitive read per
  arXiv:2506.09480),
- ``1t``    — capacitorless 1T floating-body array whose headline
  measurement is retention time (arXiv:1910.03907).

Registration is **lazy**: importing this module imports no backend, so
:func:`names` is cheap enough for ``ScanConfig`` validation on every
construction.  A backend module is imported the first time :func:`get`
resolves its name, and the instance is cached for the process lifetime
(backends are stateless; per-array state lives on the arrays).
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

from repro.errors import TechnologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.technologies.base import CellTechnology

__all__ = ["get", "names", "register", "unregister", "CellTechnology"]

#: Lazy registry: name -> (module, attribute) of the backend class.
_SPECS: dict[str, tuple[str, str]] = {
    "edram": ("repro.technologies.edram", "EDRAMTechnology"),
    "fecap": ("repro.technologies.fecap", "FeCapTechnology"),
    "1t": ("repro.technologies.one_t", "Capacitorless1TTechnology"),
}

#: Resolved singleton backends, filled on first :func:`get`.
_INSTANCES: dict[str, "CellTechnology"] = {}


def names() -> tuple[str, ...]:
    """Registered backend names, in registration order.  Import-free."""
    return tuple(_SPECS)


def get(name: str) -> "CellTechnology":
    """Resolve a backend by name (importing its module on first use).

    Raises :class:`~repro.errors.TechnologyError` for unknown names,
    listing what *is* registered — the CLI and ``ScanConfig`` surface
    this message directly.
    """
    backend = _INSTANCES.get(name)
    if backend is not None:
        return backend
    spec = _SPECS.get(name)
    if spec is None:
        raise TechnologyError(
            f"unknown cell technology {name!r} "
            f"(registered: {', '.join(names())})"
        )
    module, attribute = spec
    backend = getattr(importlib.import_module(module), attribute)()
    if backend.name != name:
        raise TechnologyError(
            f"backend {module}:{attribute} says its name is "
            f"{backend.name!r} but is registered as {name!r}"
        )
    _INSTANCES[name] = backend
    return backend


def register(name: str, backend: "CellTechnology | tuple[str, str]") -> None:
    """Register a backend under ``name``.

    ``backend`` is either a ready :class:`CellTechnology` instance or a
    lazy ``(module, attribute)`` pair.  Re-registering an existing name
    replaces it (last registration wins) — tests use this to install
    probe backends; pair it with :func:`unregister` in a ``finally``.
    """
    if isinstance(backend, tuple):
        _SPECS[name] = backend
        _INSTANCES.pop(name, None)
        return
    if backend.name != name:
        raise TechnologyError(
            f"backend name {backend.name!r} does not match "
            f"registration name {name!r}"
        )
    _SPECS[name] = (type(backend).__module__, type(backend).__qualname__)
    _INSTANCES[name] = backend


def unregister(name: str) -> None:
    """Remove a registered backend (unknown names are a no-op)."""
    _SPECS.pop(name, None)
    _INSTANCES.pop(name, None)


def __getattr__(attr: str):  # pragma: no cover - import convenience
    # ``from repro.technologies import CellTechnology`` without paying
    # the base-module import on plain registry use.
    if attr == "CellTechnology":
        from repro.technologies.base import CellTechnology

        return CellTechnology
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")
