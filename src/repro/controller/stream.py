"""Bit-level serialization of code maps for off-chip transfer.

A 256×256 analog bitmap is 65,536 codes; squeezed through a narrow test
port, encoding matters.  Codes 0..20 need 5 raw bits, but healthy arrays
are *extremely* repetitive (most cells sit within a few codes of
nominal), so a run-length layer on top of the raw packing routinely
compresses 3-10x.

Format (documented so a tester-side decoder could be written):

- header: 16-bit rows, 16-bit cols, 8-bit bits-per-code,
  8-bit flags (bit0: RLE),
- raw mode: row-major fixed-width codes,
- RLE mode: records of ``code`` (bits_per_code) + ``run-1`` (8 bits),
  runs longer than 256 split into multiple records.

Everything is modelled as a Python ``bytes`` payload via a small bit
writer/reader; :class:`StreamStats` reports sizes and transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


class _BitWriter:
    """MSB-first bit packer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, bits: int) -> None:
        if value < 0 or value >= (1 << bits):
            raise MeasurementError(f"value {value} does not fit in {bits} bits")
        self._acc = (self._acc << bits) | value
        self._nbits += bits
        while self._nbits >= 8:
            self._nbits -= 8
            self._bytes.append((self._acc >> self._nbits) & 0xFF)

    def finish(self) -> bytes:
        if self._nbits:
            self._bytes.append((self._acc << (8 - self._nbits)) & 0xFF)
            self._acc = 0
            self._nbits = 0
        return bytes(self._bytes)


class _BitReader:
    """MSB-first bit unpacker."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read(self, bits: int) -> int:
        value = 0
        for _ in range(bits):
            byte_idx, bit_idx = divmod(self._pos, 8)
            if byte_idx >= len(self._data):
                raise MeasurementError("bitstream truncated")
            bit = (self._data[byte_idx] >> (7 - bit_idx)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value


@dataclass(frozen=True)
class StreamStats:
    """Size/efficiency summary of one encoded stream."""

    cells: int
    raw_bits: int
    encoded_bits: int

    @property
    def compression_ratio(self) -> float:
        """raw/encoded; > 1 means the RLE layer helped."""
        return self.raw_bits / self.encoded_bits if self.encoded_bits else float("inf")

    def transfer_time(self, clock_hz: float) -> float:
        """Seconds to shift the encoded stream through a serial port."""
        if clock_hz <= 0:
            raise MeasurementError("clock must be positive")
        return self.encoded_bits / clock_hz


class CodeStream:
    """Encoder/decoder for code maps.

    Parameters
    ----------
    bits_per_code:
        Fixed code width; must cover the converter depth (5 for 20
        steps).
    """

    _HEADER_BITS = 16 + 16 + 8 + 8
    _RUN_BITS = 8

    def __init__(self, bits_per_code: int = 5) -> None:
        if not 1 <= bits_per_code <= 16:
            raise MeasurementError(f"bits_per_code must be 1..16, got {bits_per_code}")
        self.bits_per_code = bits_per_code

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _check(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise MeasurementError("codes must be a 2-D array")
        if codes.size == 0:
            raise MeasurementError("codes must be non-empty")
        if codes.min() < 0 or codes.max() >= (1 << self.bits_per_code):
            raise MeasurementError(
                f"codes outside 0..{(1 << self.bits_per_code) - 1}"
            )
        if max(codes.shape) >= (1 << 16):
            raise MeasurementError("dimensions exceed the 16-bit header fields")
        return codes

    def encode(self, codes: np.ndarray, rle: bool | str = "auto") -> bytes:
        """Serialize a code map.

        ``rle`` may be True, False, or ``"auto"`` (default): auto encodes
        both ways and ships the smaller payload — noisy maps defeat
        run-length coding (runs of ~2 cost 13 bits per record against 10
        raw bits), while healthy uniform maps compress 30-70x.
        """
        if rle == "auto":
            packed_rle = self.encode(codes, rle=True)
            packed_raw = self.encode(codes, rle=False)
            return packed_rle if len(packed_rle) < len(packed_raw) else packed_raw
        codes = self._check(codes)
        writer = _BitWriter()
        rows, cols = codes.shape
        writer.write(rows, 16)
        writer.write(cols, 16)
        writer.write(self.bits_per_code, 8)
        writer.write(1 if rle else 0, 8)
        flat = codes.ravel()
        if not rle:
            for code in flat:
                writer.write(int(code), self.bits_per_code)
            return writer.finish()
        idx = 0
        max_run = 1 << self._RUN_BITS
        while idx < flat.size:
            code = int(flat[idx])
            run = 1
            while (
                idx + run < flat.size
                and int(flat[idx + run]) == code
                and run < max_run
            ):
                run += 1
            writer.write(code, self.bits_per_code)
            writer.write(run - 1, self._RUN_BITS)
            idx += run
        return writer.finish()

    def decode(self, payload: bytes) -> np.ndarray:
        """Reconstruct the code map from a stream."""
        reader = _BitReader(payload)
        rows = reader.read(16)
        cols = reader.read(16)
        bits = reader.read(8)
        flags = reader.read(8)
        if bits != self.bits_per_code:
            raise MeasurementError(
                f"stream was encoded with {bits} bits/code, decoder uses "
                f"{self.bits_per_code}"
            )
        total = rows * cols
        out = np.empty(total, dtype=int)
        if flags & 1:
            idx = 0
            while idx < total:
                code = reader.read(bits)
                run = reader.read(self._RUN_BITS) + 1
                if idx + run > total:
                    raise MeasurementError("RLE run overflows the declared map size")
                out[idx : idx + run] = code
                idx += run
        else:
            for i in range(total):
                out[i] = reader.read(bits)
        return out.reshape(rows, cols)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self, codes: np.ndarray, rle: bool | str = "auto") -> StreamStats:
        """Encode and report sizes."""
        codes = self._check(codes)
        payload = self.encode(codes, rle=rle)
        return StreamStats(
            cells=int(codes.size),
            raw_bits=int(codes.size) * self.bits_per_code + self._HEADER_BITS,
            encoded_bits=len(payload) * 8,
        )
