"""Pre-flight hooks: sequencer/scanner integration, waivers, ERC-aided errors."""

import pytest

from repro.edram.defects import CellDefect, DefectKind
from repro.errors import RuleViolation, SingularCircuitError
from repro.lint import preflight_array, preflight_macro, raise_on_errors
from repro.measure.scan import ArrayScanner
from repro.measure.sequencer import MeasurementSequencer
from tests.unit.lint import fixtures


def _healthy():
    array = fixtures.small_array()
    return array, fixtures.structure_for(array)


def _shorted():
    array = fixtures.small_array()
    array.cell(1, 0).apply_defect(CellDefect(DefectKind.SHORT))
    return array, fixtures.structure_for(array)


# ---------------------------------------------------------------------------
# preflight_macro / preflight_array
# ---------------------------------------------------------------------------


def test_healthy_macro_preflight_is_empty():
    array, structure = _healthy()
    report = preflight_macro(array.macro(0), structure)
    assert len(report) == 0


def test_known_defect_findings_are_waived():
    array, structure = _shorted()
    report = preflight_macro(array.macro(0), structure)
    assert report.ok
    waived = [d for d in report if d.waived]
    assert waived and waived[0].code == "ERC004"
    assert "s1_0" in waived[0].nodes


def test_strict_preflight_keeps_defect_errors():
    array, structure = _shorted()
    report = preflight_macro(array.macro(0), structure, waive_known_defects=False)
    assert not report.ok
    assert report.errors[0].code == "ERC004"


def test_preflight_array_merges_all_macros():
    array, structure = _shorted()
    report = preflight_array(array, structure, waive_known_defects=False)
    assert "ERC004" in report.codes()
    assert preflight_array(array, structure).ok


# ---------------------------------------------------------------------------
# raise_on_errors
# ---------------------------------------------------------------------------


def test_raise_on_errors_passes_clean_reports_through():
    array, structure = _healthy()
    report = preflight_macro(array.macro(0), structure)
    assert raise_on_errors(report) is report


def test_raise_on_errors_names_codes_and_nodes():
    array, structure = _shorted()
    report = preflight_macro(array.macro(0), structure, waive_known_defects=False)
    with pytest.raises(RuleViolation, match="ERC004") as excinfo:
        raise_on_errors(report)
    assert "s1_0" in str(excinfo.value)
    assert excinfo.value.diagnostics
    assert excinfo.value.diagnostics[0].code == "ERC004"


# ---------------------------------------------------------------------------
# Sequencer / scanner hooks
# ---------------------------------------------------------------------------


def test_sequencer_preflight_uses_cached_network():
    array, structure = _shorted()
    seq = MeasurementSequencer(array.macro(0), structure)
    assert seq.preflight().ok
    assert not seq.preflight(waive_known_defects=False).ok


def test_measure_charge_with_preflight_on_healthy_macro():
    array, structure = _healthy()
    seq = MeasurementSequencer(array.macro(0), structure)
    plain = seq.measure_charge(0, 0)
    checked = seq.measure_charge(0, 0, preflight=True)
    assert checked.code == plain.code


def test_measure_charge_preflight_tolerates_known_defects():
    # The waiver is the point: scans must still measure defective arrays.
    array, structure = _shorted()
    seq = MeasurementSequencer(array.macro(0), structure)
    result = seq.measure_charge(0, 0, preflight=True)
    assert result.code >= 0


def test_measure_charge_preflight_raises_on_sabotaged_network():
    # Damage the *cached* network in a way no injected defect explains:
    # hang an unreachable charged node off the C_REF side.
    array, structure = _healthy()
    seq = MeasurementSequencer(array.macro(0), structure)
    built = seq._charge_network()
    built.network.add_capacitor("CSNEAK", "sneak", "gate", 5e-15)
    seq._pristine = built.network.snapshot()  # re-baseline the sabotaged topology
    with pytest.raises(RuleViolation, match="ERC003"):
        seq.measure_charge(0, 0, preflight=True)


def test_scan_preflight_matches_plain_scan():
    array, structure = _shorted()
    plain = ArrayScanner(array, structure).scan()
    checked = ArrayScanner(array, structure).scan(preflight=True)
    assert (plain.codes == checked.codes).all()


# ---------------------------------------------------------------------------
# ERC-aided solver errors
# ---------------------------------------------------------------------------


def test_singular_mna_error_names_offending_nodes():
    from repro.circuit.dc import dc_operating_point

    with pytest.raises(SingularCircuitError) as excinfo:
        dc_operating_point(fixtures.bad_vsource_loop())
    err = excinfo.value
    assert "ERC diagnosis" in str(err)
    assert "ERC005" in str(err)
    assert "in" in err.nodes
    assert any(d.code == "ERC005" for d in err.diagnostics)


def test_charge_conflict_error_names_shorted_nodes():
    net = fixtures.good_charge_network()
    net.drive("gate", 1.0)
    net.close_switch("LEC")
    with pytest.raises(SingularCircuitError) as excinfo:
        net.settle()
    assert set(excinfo.value.nodes) == {"plate", "gate"}
