"""Cross-run drift detection: EWMA / CUSUM control charts over the ledger.

The analog bitmap's industrial job is SPC — watching the capacitor
module walk out of spec across dies and lots before functional test
notices.  This module runs that watch over **recorded runs**: each
scalar the ledger keeps per run (capacitance mean/σ, code-histogram
centroid, converter flip-step size, scan throughput) becomes an
individuals series, and two standard control charts flag excursions:

- **EWMA** (exponentially weighted moving average) with time-varying
  control limits — sensitive to small sustained shifts,
- **tabular CUSUM** (one-sided high/low cumulative sums) — sensitive to
  slow drifts that never trip a single-point rule.

The control σ for a physics scalar comes from the *within-run* spread
recorded alongside it (e.g. ``cap_sigma_fF`` guards ``cap_mean_fF``) —
robust with the short histories a CI gate sees; scalars without a
companion fall back to a moving-range estimate, which deliberately
cannot alarm on two points (no flaky throughput gates).

Findings are the same structured :class:`~repro.lint.diagnostics.Diagnostic`
shape the lint subsystem uses, collected into a
:class:`~repro.lint.diagnostics.LintReport` whose exit-code semantics
make ``repro runs check`` usable directly as a CI gate: physics drift is
``ERROR`` (exit 1), performance drift is ``WARNING`` (reported, exit 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import LedgerError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.obs.ledger import RunLedger, RunManifest

__all__ = [
    "ScalarSpec",
    "SeriesCheck",
    "DriftEngine",
    "DEFAULT_SCALARS",
    "LOT_SCALARS",
    "check_ledger",
    "check_bench_history",
]


@dataclass(frozen=True)
class ScalarSpec:
    """What to chart for one per-run scalar.

    Attributes
    ----------
    name:
        Scalar key in :attr:`RunManifest.scalars`.
    sigma_from:
        Companion scalar holding the within-run spread used as the
        control σ (``None`` → moving-range estimate from the series).
    severity:
        Severity of out-of-control findings; ``WARNING`` keeps noisy
        performance scalars out of the exit code.
    """

    name: str
    sigma_from: str | None = None
    severity: Severity = Severity.ERROR


#: The scalars ``repro runs check`` charts by default.
DEFAULT_SCALARS: tuple[ScalarSpec, ...] = (
    ScalarSpec("cap_mean_fF", "cap_sigma_fF"),
    ScalarSpec("vgs_mean", "vgs_sigma"),
    ScalarSpec("code_centroid", "code_sigma"),
    ScalarSpec("flip_step_mean"),
    ScalarSpec("cells_per_second", severity=Severity.WARNING),
    # Resilience quality scalars: both are 0 on healthy runs, so the
    # flat-history epsilon sigma makes any regression flag immediately.
    # DEGRADED cells still carry a usable value -> WARNING; FAILED
    # cells are placeholders -> ERROR.
    ScalarSpec("degraded_cells", severity=Severity.WARNING),
    ScalarSpec("failed_cells"),
    # Pool-health scalars: retries/timeouts/respawns are 0 on a healthy
    # pool, so any sustained supervision churn charts immediately.
    # Advisory (perf) severity — a struggling pool degrades throughput,
    # never the planes, so it must not fail the run gate.
    ScalarSpec("macro_retries", severity=Severity.WARNING),
    ScalarSpec("macro_timeouts", severity=Severity.WARNING),
    ScalarSpec("worker_respawns", severity=Severity.WARNING),
)

#: The scalars charted for ``kind="lot"`` manifests — the fleet merge's
#: cross-fab/cross-lot diet, including the radial and zone spatial
#: signatures the paper's process-monitoring use case watches.
LOT_SCALARS: tuple[ScalarSpec, ...] = (
    ScalarSpec("cap_mean_fF", "cap_sigma_fF"),
    ScalarSpec("radial_centre_fF", "cap_sigma_fF"),
    ScalarSpec("radial_drop_fF", "cap_sigma_fF"),
    ScalarSpec("zone_centre_fF", "cap_sigma_fF"),
    ScalarSpec("zone_mid_fF", "cap_sigma_fF"),
    ScalarSpec("zone_edge_fF", "cap_sigma_fF"),
    # Coverage scalars are 0 on healthy lots, so the flat-history
    # epsilon sigma flags the first lot that loses a die range.  Lost
    # coverage is an ERROR; supervision churn that still produced a
    # complete lot is advisory.
    ScalarSpec("failed_dies"),
    ScalarSpec("shard_respawns", severity=Severity.WARNING),
)


@dataclass
class SeriesCheck:
    """Chart evaluation of one scalar series.

    ``flagged`` holds the indices (into ``values``) that any chart put
    out of control; ``methods[i]`` names the chart(s) that fired there.
    """

    name: str
    values: list[float]
    target: float
    sigma: float
    ewma: list[float] = field(default_factory=list)
    ewma_limits: list[float] = field(default_factory=list)
    cusum_hi: list[float] = field(default_factory=list)
    cusum_lo: list[float] = field(default_factory=list)
    flagged: list[int] = field(default_factory=list)
    methods: dict[int, list[str]] = field(default_factory=dict)

    @property
    def in_control(self) -> bool:
        return not self.flagged


def _moving_range_sigma(values: list[float]) -> float:
    """Individuals-chart σ estimate: mean moving range / d2 (d2=1.128)."""
    if len(values) < 2:
        return 0.0
    ranges = [abs(b - a) for a, b in zip(values, values[1:])]
    return (sum(ranges) / len(ranges)) / 1.128


class DriftEngine:
    """EWMA + CUSUM evaluator over per-run scalar series.

    Parameters
    ----------
    lam:
        EWMA smoothing weight (0 < λ ≤ 1); 0.3 reacts within 2–3 runs.
    ewma_k:
        EWMA control-limit width in σ units.
    cusum_k:
        CUSUM allowance (slack) in σ units — drifts smaller than this
        accumulate nothing.
    cusum_h:
        CUSUM decision interval in σ units.
    min_runs:
        Series shorter than this are reported as insufficient history
        (``INFO``) instead of being charted.
    """

    def __init__(
        self,
        lam: float = 0.3,
        ewma_k: float = 3.0,
        cusum_k: float = 0.5,
        cusum_h: float = 4.0,
        min_runs: int = 2,
    ) -> None:
        if not 0.0 < lam <= 1.0:
            raise LedgerError(f"EWMA lambda must be in (0, 1], got {lam}")
        if min(ewma_k, cusum_k, cusum_h) < 0:
            raise LedgerError("chart widths must be non-negative")
        if min_runs < 2:
            raise LedgerError("drift detection needs min_runs >= 2")
        self.lam = lam
        self.ewma_k = ewma_k
        self.cusum_k = cusum_k
        self.cusum_h = cusum_h
        self.min_runs = min_runs

    # -- charts ---------------------------------------------------------

    def check_series(
        self,
        name: str,
        values: list[float],
        sigma: float | None = None,
        target: float | None = None,
    ) -> SeriesCheck:
        """Chart one series; the first value anchors the target baseline."""
        if not values:
            raise LedgerError(f"cannot chart an empty series for {name!r}")
        values = [float(v) for v in values]
        target = values[0] if target is None else float(target)
        if sigma is None or sigma <= 0.0:
            sigma = _moving_range_sigma(values)
        if sigma <= 0.0:
            # A perfectly flat history: any departure at all is a shift.
            # Scale-free epsilon keeps the charts finite.
            sigma = max(abs(target), 1.0) * 1e-9
        check = SeriesCheck(name=name, values=values, target=target, sigma=sigma)

        lam, k = self.lam, self.ewma_k
        z = target
        s_hi = s_lo = 0.0
        for i, x in enumerate(values):
            z = lam * x + (1.0 - lam) * z
            limit = (
                k * sigma
                * math.sqrt(lam / (2.0 - lam) * (1.0 - (1.0 - lam) ** (2 * (i + 1))))
            )
            check.ewma.append(z)
            check.ewma_limits.append(limit)
            zscore = (x - target) / sigma
            s_hi = max(0.0, s_hi + zscore - self.cusum_k)
            s_lo = max(0.0, s_lo - zscore - self.cusum_k)
            check.cusum_hi.append(s_hi)
            check.cusum_lo.append(s_lo)
            if i == 0:
                continue  # the baseline point defines the target
            methods = []
            if abs(z - target) > limit:
                methods.append("ewma")
            if s_hi > self.cusum_h or s_lo > self.cusum_h:
                methods.append("cusum")
            if methods:
                check.flagged.append(i)
                check.methods[i] = methods
        return check

    # -- ledger-level evaluation ----------------------------------------

    def check_runs(
        self,
        manifests: list[RunManifest],
        specs: tuple[ScalarSpec, ...] = DEFAULT_SCALARS,
        subject: str = "run ledger",
    ) -> LintReport:
        """Chart every spec'd scalar over ``manifests``; returns a report.

        Finding codes: ``DRF001`` (EWMA out of control), ``DRF002``
        (CUSUM drift), ``DRF000`` (insufficient history, ``INFO``).
        """
        report = LintReport()
        if len(manifests) < self.min_runs:
            report.add(Diagnostic(
                code="DRF000",
                slug="insufficient-history",
                severity=Severity.INFO,
                message=(
                    f"only {len(manifests)} recorded run(s); drift detection "
                    f"needs at least {self.min_runs}"
                ),
                subject=subject,
            ))
            return report
        for spec in specs:
            rows = [
                (m.run_id, m.scalars[spec.name], m.scalars.get(spec.sigma_from or ""))
                for m in manifests
                if spec.name in m.scalars
            ]
            if len(rows) < self.min_runs:
                continue
            run_ids = [r[0] for r in rows]
            values = [r[1] for r in rows]
            sigmas = [r[2] for r in rows if r[2] is not None]
            sigma = _median(sigmas) if sigmas else None
            check = self.check_series(spec.name, values, sigma=sigma)
            for i in check.flagged:
                methods = "+".join(check.methods[i])
                code = "DRF001" if "ewma" in check.methods[i] else "DRF002"
                slug = (
                    "ewma-out-of-control"
                    if code == "DRF001" else "cusum-drift"
                )
                report.add(Diagnostic(
                    code=code,
                    slug=slug,
                    severity=spec.severity,
                    message=(
                        f"{spec.name} out of control at run {run_ids[i]} "
                        f"({methods}): value {values[i]:.6g}, "
                        f"target {check.target:.6g}, sigma {check.sigma:.3g}"
                    ),
                    subject=subject,
                    nodes=(run_ids[i],),
                ))
        return report


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_ledger(
    ledger: RunLedger,
    kind: str | None = None,
    specs: tuple[ScalarSpec, ...] = DEFAULT_SCALARS,
    engine: DriftEngine | None = None,
) -> LintReport:
    """Run the drift engine over a ledger (optionally one run kind).

    Charting ``kind="lot"`` with the default spec set automatically
    switches to :data:`LOT_SCALARS` — lot manifests carry spatial and
    coverage scalars the per-scan defaults know nothing about.
    """
    engine = engine if engine is not None else DriftEngine()
    if kind == "lot" and specs is DEFAULT_SCALARS:
        specs = LOT_SCALARS
    manifests = ledger.runs()
    if kind is not None:
        manifests = [m for m in manifests if m.kind == kind]
    return engine.check_runs(manifests, specs, subject=str(ledger.root))


def check_bench_history(
    history: list[dict],
    engine: DriftEngine | None = None,
    subject: str = "BENCH_scan.json",
) -> LintReport:
    """Chart the benchmark trajectory (throughput + speedup, WARNING).

    ``history`` is the list kept in ``BENCH_scan.json``; entries missing
    a charted figure are skipped.  Performance regressions are reported
    as ``DRF003`` warnings — visible in CI logs, never a hard gate.
    """
    engine = engine if engine is not None else DriftEngine()
    report = LintReport()
    for name in (
        "cells_per_second",
        "speedup_serial_vs_seed",
        # Kernel-vs-serial ratio is intra-run (same machine, same load)
        # so it charts cleanly across hosts; older entries predate the
        # batched kernel and are skipped by the isinstance filter.
        "kernel_speedup_vs_serial",
    ):
        rows = [
            (str(e.get("git_rev", f"#{i}")), float(e[name]))
            for i, e in enumerate(history)
            if isinstance(e, dict) and isinstance(e.get(name), (int, float))
        ]
        if len(rows) < engine.min_runs:
            continue
        check = engine.check_series(name, [v for _, v in rows])
        for i in check.flagged:
            # Only regressions warn; a faster run is not a defect.
            improving = (
                check.values[i] > check.target
            )
            if improving:
                continue
            report.add(Diagnostic(
                code="DRF003",
                slug="bench-regression",
                severity=Severity.WARNING,
                message=(
                    f"{name} regressed at {rows[i][0]}: "
                    f"{check.values[i]:.6g} vs baseline {check.target:.6g}"
                ),
                subject=subject,
                nodes=(rows[i][0],),
            ))
    return report
