"""FIG2 — transient extraction waveforms for C_m = 20 fF and 40 fF.

Reproduces Figure 2 of the paper: the full five-phase flow simulated at
transistor level for two capacitor values.  The paper's observable is
the OUT switching instant — it moves to a later current step for the
larger capacitor.  The bench reports the V_GS plateau after charge
sharing, the OUT flip time, and the extracted code for both cases, plus
ASCII renderings of the waveforms.
"""

import pytest
from conftest import report

from repro.edram.array import EDRAMArray
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF, to_ns


def _measure(tech, structure, cm):
    array = EDRAMArray(2, 2, tech=tech)
    array.cell(0, 0).capacitance = cm
    sequencer = MeasurementSequencer(array.macro(0), structure)
    return sequencer.measure_transient(0, 0, return_waveform=True)


def bench_fig2_transient_waveforms(benchmark, tech, structure_2x2):
    results = {}
    waves = {}
    for cm_ff in (20, 40):
        result, waveform = _measure(tech, structure_2x2, cm_ff * fF)
        results[cm_ff] = result
        waves[cm_ff] = waveform

    # Time one full transistor-level measurement (the paper's figure is
    # one such simulation).
    benchmark.pedantic(
        _measure, args=(tech, structure_2x2, 30 * fF), rounds=2, iterations=1
    )

    lines = [
        f"{'C_m':>6}  {'V_GS after share':>17}  {'OUT flip time':>14}  {'code':>5}",
    ]
    for cm_ff, result in results.items():
        flip = f"{to_ns(result.flip_time):9.2f} ns" if result.flip_time else "never"
        lines.append(
            f"{cm_ff:>4} fF  {result.vgs:>15.3f} V  {flip:>14}  {result.code:>5}"
        )
    lines.append("")
    lines.append("paper shape check: the 40 fF flip occurs at a later current")
    lines.append("step than the 20 fF flip (Figure 2a vs 2b).")
    for cm_ff in (20, 40):
        lines.append("")
        lines.append(f"waveforms for C_m = {cm_ff} fF (plate, gate, OUT):")
        lines.append(waves[cm_ff].ascii_plot(["plate", "gate", "out"], width=72, height=10))
    report("FIG2: capacitor extraction transients", "\n".join(lines))

    assert results[40].flip_time > results[20].flip_time
    assert results[40].code > results[20].code
    for cm_ff in (20, 40):
        assert results[cm_ff].flip_time == pytest.approx(
            results[cm_ff].flip_time, abs=1e-9
        )
