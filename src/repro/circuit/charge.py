"""Exact charge-redistribution solver for switched-capacitor networks.

The measurement flow's first four phases are pure switched-capacitor
operations: capacitors are grounded, charged, isolated, and finally
shared.  For those, transistor dynamics only determine *how fast* nodes
settle (fractions of a nanosecond against 10 ns phases), not *where* they
settle — so an exact charge-conservation solve over the capacitor network
gives the same final voltages as the full transient at a tiny fraction of
the cost.  This is the engine behind array-scale scans (10⁴+ cells);
``tests/integration/test_solver_agreement.py`` pins it against the MNA
transient.

Model
-----
- Named nodes, each *driven* (ideal source) or *floating*.
- Linear capacitors between nodes.
- Named ideal switches that short two nodes when closed.

After any reconfiguration, :meth:`CapacitorNetwork.settle` computes the
new node voltages: switch closures merge nodes into electrical islands;
each floating island conserves the total plate charge it held before the
reconfiguration; driven islands take their source voltage.

The engine assumes pass devices transfer full levels (valid here because
wordlines are boosted to V_PP > V_DD + V_TH; the MNA tier models the real
devices and the cross-validation tests confirm agreement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.errors import NetlistError, SingularCircuitError
from repro.obs.metrics import active_metrics


@dataclass(frozen=True)
class ChargeState:
    """Snapshot of node voltages after a settle, keyed by node name."""

    voltages: dict[str, float]

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]


class _UnionFind:
    """Minimal union-find over integer indices."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class CapacitorNetwork:
    """A reconfigurable network of capacitors, sources and ideal switches.

    Typical usage::

        net = CapacitorNetwork()
        net.add_capacitor("CM", "plate", "0", 30e-15)
        net.add_capacitor("CREF", "gate", "0", 28e-15)
        net.add_switch("LEC", "plate", "gate")
        net.drive("plate", 1.8)
        net.settle()
        net.float_node("plate")
        net.close_switch("LEC")
        state = net.settle()
        state["gate"]   # charge-sharing result

    The ground node ``"0"`` always exists and is driven at 0 V.
    """

    GROUND = "0"

    def __init__(self) -> None:
        self._index: dict[str, int] = {self.GROUND: 0}
        self._voltage = [0.0]
        self._driven: dict[int, float] = {0: 0.0}
        # capacitors: name -> (node_a, node_b, farads)
        self._caps: dict[str, tuple[int, int, float]] = {}
        # switches: name -> (node_a, node_b, closed)
        self._switches: dict[str, tuple[int, int, bool]] = {}
        # settle() runs several times per measured cell; cache its
        # counter per ambient registry to keep the per-settle cost at
        # one contextvar read plus an identity check.
        self._metrics_registry: object | None = None
        self._settle_counter: Any = None

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_node(self, name: str, voltage: float = 0.0) -> str:
        """Register a floating node (idempotent); returns the name."""
        if not name:
            raise NetlistError("node name must be non-empty")
        if name not in self._index:
            self._index[name] = len(self._voltage)
            self._voltage.append(float(voltage))
        return name

    def add_capacitor(self, name: str, a: str, b: str, capacitance: float) -> None:
        """Add a linear capacitor between nodes ``a`` and ``b``."""
        if capacitance < 0:
            raise NetlistError(f"capacitor {name!r}: capacitance must be >= 0")
        if name in self._caps:
            raise NetlistError(f"duplicate capacitor name {name!r}")
        ia = self._index[self.add_node(a)]
        ib = self._index[self.add_node(b)]
        self._caps[name] = (ia, ib, float(capacitance))

    def set_capacitance(self, name: str, capacitance: float) -> None:
        """Change the value of an existing capacitor (defect injection)."""
        if name not in self._caps:
            raise NetlistError(f"no capacitor named {name!r}")
        if capacitance < 0:
            raise NetlistError("capacitance must be >= 0")
        ia, ib, _ = self._caps[name]
        self._caps[name] = (ia, ib, float(capacitance))

    def capacitance(self, name: str) -> float:
        """Value of capacitor ``name`` in farads."""
        try:
            return self._caps[name][2]
        except KeyError:
            raise NetlistError(f"no capacitor named {name!r}") from None

    def add_switch(self, name: str, a: str, b: str, closed: bool = False) -> None:
        """Add an ideal switch between nodes ``a`` and ``b``."""
        if name in self._switches:
            raise NetlistError(f"duplicate switch name {name!r}")
        ia = self._index[self.add_node(a)]
        ib = self._index[self.add_node(b)]
        self._switches[name] = (ia, ib, bool(closed))

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    def drive(self, node: str, voltage: float) -> None:
        """Attach an ideal source holding ``node`` at ``voltage``."""
        idx = self._index[self.add_node(node)]
        self._driven[idx] = float(voltage)

    def float_node(self, node: str) -> None:
        """Detach any source from ``node``; it keeps its present voltage."""
        if node == self.GROUND:
            raise NetlistError("the ground node cannot be floated")
        idx = self._index[self.add_node(node)]
        self._driven.pop(idx, None)

    def is_driven(self, node: str) -> bool:
        """True if ``node`` currently has a source attached."""
        return self._index.get(node, -1) in self._driven

    def close_switch(self, name: str) -> None:
        """Close (short) the named switch."""
        self._set_switch(name, True)

    def open_switch(self, name: str) -> None:
        """Open the named switch."""
        self._set_switch(name, False)

    def _set_switch(self, name: str, closed: bool) -> None:
        try:
            ia, ib, _ = self._switches[name]
        except KeyError:
            raise NetlistError(f"no switch named {name!r}") from None
        self._switches[name] = (ia, ib, closed)

    def switch_closed(self, name: str) -> bool:
        """True if the named switch is currently closed."""
        try:
            return self._switches[name][2]
        except KeyError:
            raise NetlistError(f"no switch named {name!r}") from None

    # ------------------------------------------------------------------
    # State snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture voltages, drives and switch states for :meth:`restore`.

        The snapshot covers *state* only, not topology: restoring a
        snapshot on a network whose nodes or switches changed since the
        capture raises.  Taking a snapshot right after construction and
        restoring it before each reuse makes a cached network exactly
        equivalent to a freshly built one.
        """
        return (
            list(self._voltage),
            dict(self._driven),
            {name: closed for name, (_, _, closed) in self._switches.items()},
        )

    def restore(self, snap: tuple) -> None:
        """Return the network to a snapshot taken on this same topology."""
        voltages, driven, switches = snap
        if len(voltages) != len(self._voltage) or switches.keys() != self._switches.keys():
            raise NetlistError("snapshot belongs to a different network topology")
        self._voltage = list(voltages)
        self._driven = dict(driven)
        for name, closed in switches.items():
            ia, ib, _ = self._switches[name]
            self._switches[name] = (ia, ib, closed)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def voltage(self, node: str) -> float:
        """Present voltage of ``node`` (as of the last settle/drive)."""
        try:
            return self._voltage[self._index[node]]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    @property
    def node_names(self) -> list[str]:
        """All node names including ground."""
        return list(self._index)

    def _node_name(self, index: int) -> str:
        for name, i in self._index.items():
            if i == index:
                return name
        raise NetlistError(f"no node with index {index}")  # pragma: no cover - internal

    def capacitors(self) -> Iterator[tuple[str, str, str, float]]:
        """Yield ``(name, node_a, node_b, farads)`` for every capacitor.

        Read-only topology view for inspection tooling (the ERC linter);
        insertion order.
        """
        names = {i: n for n, i in self._index.items()}
        for cap_name, (ia, ib, c) in self._caps.items():
            yield (cap_name, names[ia], names[ib], c)

    def switches(self) -> Iterator[tuple[str, str, str, bool]]:
        """Yield ``(name, node_a, node_b, closed)`` for every switch.

        Read-only topology view for inspection tooling; insertion order.
        """
        names = {i: n for n, i in self._index.items()}
        for sw_name, (ia, ib, closed) in self._switches.items():
            yield (sw_name, names[ia], names[ib], closed)

    def island_of(self, node: str) -> set[str]:
        """Names of all nodes electrically shorted to ``node`` right now."""
        uf = self._build_islands()
        root = uf.find(self._index[node])
        names = {n for n, i in self._index.items() if uf.find(i) == root}
        return names

    def total_charge(self, nodes: set[str]) -> float:
        """Total plate charge (coulombs) held by the given node set."""
        indices = {self._index[n] for n in nodes}
        q = 0.0
        for ia, ib, c in self._caps.values():
            va, vb = self._voltage[ia], self._voltage[ib]
            if ia in indices:
                q += c * (va - vb)
            if ib in indices:
                q += c * (vb - va)
        return q

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def _build_islands(self) -> _UnionFind:
        uf = _UnionFind(len(self._voltage))
        for ia, ib, closed in self._switches.values():
            if closed:
                uf.union(ia, ib)
        return uf

    def settle(self) -> ChargeState:
        """Compute post-reconfiguration voltages and return a snapshot.

        Raises :class:`SingularCircuitError` if two sources with different
        voltages are shorted together.
        """
        metrics = active_metrics()
        if metrics is not self._metrics_registry:
            self._metrics_registry = metrics
            self._settle_counter = metrics.counter(
                "charge.settles", "charge-network settle solves"
            )
        self._settle_counter.inc()
        uf = self._build_islands()
        n_nodes = len(self._voltage)
        roots = sorted({uf.find(i) for i in range(n_nodes)})
        root_pos = {r: k for k, r in enumerate(roots)}

        # Determine per-island drive (and detect conflicts).
        island_drive: dict[int, float] = {}
        drive_holder: dict[int, int] = {}  # island root -> first driven node
        for idx, v in self._driven.items():
            r = uf.find(idx)
            if r in island_drive and abs(island_drive[r] - v) > 1e-12:
                holder = self._node_name(drive_holder[r])
                offender = self._node_name(idx)
                raise SingularCircuitError(
                    f"sources at {island_drive[r]} V (node {holder!r}) and "
                    f"{v} V (node {offender!r}) are shorted together",
                    nodes=(holder, offender),
                )
            island_drive[r] = v
            drive_holder.setdefault(r, idx)

        floating = [r for r in roots if r not in island_drive]
        pos_f = {r: k for k, r in enumerate(floating)}
        nf = len(floating)
        a_matrix = np.zeros((nf, nf))
        b_vector = np.zeros(nf)

        # Initial charge of each floating island (from pre-settle voltages).
        for ia, ib, c in self._caps.values():
            va, vb = self._voltage[ia], self._voltage[ib]
            ra, rb = uf.find(ia), uf.find(ib)
            if ra in pos_f:
                b_vector[pos_f[ra]] += c * (va - vb)
            if rb in pos_f:
                b_vector[pos_f[rb]] += c * (vb - va)

        # Capacitive coupling terms.
        for ia, ib, c in self._caps.values():
            ra, rb = uf.find(ia), uf.find(ib)
            if ra == rb:
                continue  # internal to one island: no net island charge
            for r_self, r_other in ((ra, rb), (rb, ra)):
                if r_self not in pos_f:
                    continue
                i = pos_f[r_self]
                a_matrix[i, i] += c
                if r_other in pos_f:
                    a_matrix[i, pos_f[r_other]] -= c
                else:
                    b_vector[i] += c * island_drive[r_other]

        # Isolated floating islands (no incident capacitance) keep their
        # previous (representative) voltage.
        for r in floating:
            i = pos_f[r]
            if a_matrix[i, i] == 0.0:
                a_matrix[i, i] = 1.0
                b_vector[i] = self._voltage[r]

        # Groups of floating islands coupled only to each other have an
        # indeterminate common mode (the matrix block is rank-deficient):
        # physically that common mode is set by history, so solve for the
        # minimal-norm *update* around the previous voltages.  For
        # well-posed systems this equals the direct solve.
        if nf:
            x_prev = np.array([self._voltage[r] for r in floating])
            try:
                x = np.linalg.solve(a_matrix, b_vector)
            except np.linalg.LinAlgError:
                active_metrics().counter(
                    "charge.minnorm_fallbacks",
                    "rank-deficient settles solved via minimal-norm update",
                ).inc()
                delta, *_ = np.linalg.lstsq(
                    a_matrix, b_vector - a_matrix @ x_prev, rcond=None
                )
                x = x_prev + delta
            if not np.all(np.isfinite(x)):
                delta, *_ = np.linalg.lstsq(
                    a_matrix, b_vector - a_matrix @ x_prev, rcond=None
                )
                x = x_prev + delta
            if not np.all(np.isfinite(x)):  # pragma: no cover - defensive
                raise SingularCircuitError("charge solve produced non-finite voltages")
        else:
            x = np.empty(0)

        new_v = list(self._voltage)
        for idx in range(n_nodes):
            r = uf.find(idx)
            if r in island_drive:
                new_v[idx] = island_drive[r]
            else:
                new_v[idx] = float(x[pos_f[r]])
        self._voltage = new_v
        return ChargeState({name: new_v[i] for name, i in self._index.items()})
