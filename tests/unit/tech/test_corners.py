"""Process corner generation."""

import pytest

from repro.tech.corners import CORNER_SHIFTS, Corner, all_corners, corner_technology


def test_tt_corner_is_identity_on_devices(tech):
    tt = corner_technology(Corner.TT, tech)
    assert tt.nmos.vth0 == pytest.approx(tech.nmos.vth0)
    assert tt.nmos.kp == pytest.approx(tech.nmos.kp)
    assert tt.cell_capacitance == pytest.approx(tech.cell_capacitance)


def test_ff_is_faster_ss_is_slower(tech):
    ff = corner_technology(Corner.FF, tech)
    ss = corner_technology(Corner.SS, tech)
    assert ff.nmos.vth0 < tech.nmos.vth0 < ss.nmos.vth0
    assert ff.nmos.kp > tech.nmos.kp > ss.nmos.kp
    assert abs(ff.pmos.vth0) < abs(tech.pmos.vth0) < abs(ss.pmos.vth0)


def test_skewed_corners_split_polarities(tech):
    fs = corner_technology(Corner.FS, tech)
    assert fs.nmos.vth0 < tech.nmos.vth0  # fast n
    assert abs(fs.pmos.vth0) > abs(tech.pmos.vth0)  # slow p
    sf = corner_technology(Corner.SF, tech)
    assert sf.nmos.vth0 > tech.nmos.vth0
    assert abs(sf.pmos.vth0) < abs(tech.pmos.vth0)


def test_corner_names_are_tagged(tech):
    ss = corner_technology(Corner.SS, tech)
    assert ss.name.endswith("-ss")


def test_cell_capacitance_tracks_corner(tech):
    ff = corner_technology(Corner.FF, tech)
    ss = corner_technology(Corner.SS, tech)
    assert ff.cell_capacitance > tech.cell_capacitance > ss.cell_capacitance


def test_all_corners_covers_every_corner(tech):
    cards = all_corners(tech)
    assert set(cards) == set(Corner)
    assert len({card.name for card in cards.values()}) == len(Corner)


def test_corner_shift_table_covers_every_corner():
    assert set(CORNER_SHIFTS) == set(Corner)


def test_default_base_card_used_when_none():
    card = corner_technology(Corner.FF)
    assert card.name.startswith("generic-0.18um-edram")
