"""E2 — analog bitmap vs digital bitmap diagnosis.

The paper's conclusion: the analog bitmap enables "a diagnosis
methodology based on analog bitmapping complementary to the classical
digital bitmapping. Thus, the diagnosis of failure of each cell in the
array is improved."  This bench injects a mixed defect population into a
realistic array, runs both methodologies, and reports the per-class
detection table plus the root-caused findings only the analog map can
produce.
"""

from conftest import report

from repro.baselines.march import march_c_minus, retention_test
from repro.bitmap.analog import AnalogBitmap
from repro.bitmap.compare import DiagnosisComparison
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.window import SpecificationWindow
from repro.diagnosis.classifier import CellClassifier
from repro.diagnosis.failure_analysis import FailureAnalyzer
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.edram.operations import ArrayOperations
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.measure.scan import ArrayScanner
from repro.units import fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 32, 16, 8, 2


def _build_array(tech):
    cap = compose_maps(
        uniform_map((ROWS, COLS), 30 * fF),
        mismatch_map((ROWS, COLS), 0.7 * fF, seed=21),
    )
    array = EDRAMArray(ROWS, COLS, tech=tech, macro_cols=MACRO_COLS,
                       macro_rows=MACRO_ROWS, capacitance_map=cap)
    injector = DefectInjector(array, seed=22)
    injector.scatter(DefectKind.SHORT, 2)
    injector.scatter(DefectKind.OPEN, 2)
    injector.scatter(DefectKind.LOW_CAP, 4, factor=0.6)
    injector.scatter(DefectKind.HIGH_CAP, 2, factor=1.45)
    injector.scatter(DefectKind.RETENTION, 2, factor=5000.0)
    injector.scatter(DefectKind.BRIDGE, 1)
    return array, injector


def _analog_flags(tech, array):
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
    abacus = Abacus.analytic(structure, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
    bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
    window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
    return bitmap, window, bitmap.out_of_spec(window)


def bench_e2_diagnosis_improvement(benchmark, tech):
    array, injector = _build_array(tech)

    bitmap, window, analog_flags = benchmark.pedantic(
        _analog_flags, args=(tech, array), rounds=2, iterations=1
    )
    digital = march_c_minus().run(ArrayOperations(array)).merge(
        retention_test(ArrayOperations(array), pause=0.2)
    )
    comparison = DiagnosisComparison.score(
        injector.injected, analog_flags, digital.fails
    )

    classifier = CellClassifier(bitmap, window, macro_cols=MACRO_COLS)
    verdicts = classifier.classify_all(digital.fails)
    findings = FailureAnalyzer().analyze(verdicts)

    lines = [
        f"array {ROWS}x{COLS}, tiles {MACRO_ROWS}x{MACRO_COLS}, "
        f"{len(injector.injected)} injected defects",
        "",
        "detection rates (march C- + 200 ms retention pause vs analog scan):",
        comparison.table(),
        "",
        "root-caused findings from the analog bitmap:",
        FailureAnalyzer().report(findings),
        "",
        "shape check (paper's complementarity): parametric LOW/HIGH_CAP",
        "defects are invisible to the digital test but fully flagged by the",
        "analog bitmap; RETENTION leaks are the reverse; hard faults are",
        "caught by both.",
    ]
    report("E2: analog vs digital diagnosis", "\n".join(lines))

    assert comparison.scores[DefectKind.LOW_CAP].analog_rate == 1.0
    assert comparison.scores[DefectKind.LOW_CAP].digital_rate == 0.0
    assert comparison.scores[DefectKind.HIGH_CAP].analog_rate == 1.0
    assert comparison.scores[DefectKind.HIGH_CAP].digital_rate == 0.0
    assert comparison.scores[DefectKind.RETENTION].digital_rate == 1.0
    assert comparison.scores[DefectKind.SHORT].analog_rate == 1.0
    assert comparison.scores[DefectKind.SHORT].digital_rate == 1.0
