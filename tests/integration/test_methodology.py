"""Integration of the extension layers: controller + qualification +
combined leakage methodology + persistence, end to end on one device.
"""

import numpy as np
import pytest

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.reference import InstrumentCheck, InstrumentStatus, ReferenceBank
from repro.controller.address import ScanOrder
from repro.controller.bist import BISTController
from repro.diagnosis.leakage_map import extract_leakage, retention_ladder
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.operations import ArrayOperations
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.io import load_abacus, load_scan, save_abacus, save_scan
from repro.measure.faults import fault_signature
from repro.measure.scan import ArrayScanner
from repro.units import fF


@pytest.fixture(scope="module")
def device(tech):
    capacitance = compose_maps(
        uniform_map((32, 8), 30 * fF), mismatch_map((32, 8), 0.8 * fF, seed=41)
    )
    array = EDRAMArray(32, 8, tech=tech, macro_cols=2, macro_rows=8,
                       capacitance_map=capacitance)
    bank = ReferenceBank(array, seed=42)
    array.cell(10, 3).apply_defect(CellDefect(DefectKind.RETENTION, factor=2000.0))
    array.cell(20, 5).apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.6))
    structure = design_structure(tech, 8, 2, bitline_rows=32)
    abacus = Abacus.analytic(structure, 8, 2, bitline_rows=32)
    return array, bank, structure, abacus


def test_qualify_then_measure_then_diagnose(device):
    array, bank, structure, abacus = device

    # 1. BIST campaign produces the scan through the tester path.
    controller = BISTController(array, structure)
    report = controller.run(ScanOrder.MACRO_MAJOR)
    assert report.coverage == 1.0

    # 2. Instrument qualification on the same data.
    assert fault_signature(report.codes) is None
    check = InstrumentCheck(abacus, bank, rows=8, macro_cols=2, bitline_rows=32)
    scan = ArrayScanner(array, structure).scan()
    assert check.evaluate(scan).status is InstrumentStatus.OK

    # 3. Combined capacitance + retention methodology.
    bitmap = AnalogBitmap(scan, abacus)
    pauses = [0.01, 0.1, 1.0]
    ladder = retention_ladder(ArrayOperations(array), pauses)
    bounds = extract_leakage(bitmap, ladder, pauses, v_write=1.8, v_min=0.9)
    # The retention defect is provably leaky; the low-C cell is not.
    assert (10, 3) in bounds.leaky_cells(1e-13)
    assert (20, 5) not in bounds.leaky_cells(1e-13)
    # And conversely: the low-C cell is an analog outlier, the leaky
    # cell's capacitance is normal.
    assert bitmap.estimates[20, 5] < 22 * fF
    assert 26 * fF < bitmap.estimates[10, 3] < 34 * fF


def test_artifacts_roundtrip_through_disk(device, tmp_path):
    array, _, structure, abacus = device
    scan = ArrayScanner(array, structure).scan()
    scan_path = save_scan(scan, tmp_path / "die0")
    abacus_path = save_abacus(abacus, tmp_path / "cal")

    loaded_scan = load_scan(scan_path)
    loaded_abacus = load_abacus(abacus_path, structure)
    bitmap = AnalogBitmap(loaded_scan, loaded_abacus)
    direct = AnalogBitmap(scan, abacus)
    assert bitmap.mean_capacitance() == pytest.approx(direct.mean_capacitance())
    assert np.array_equal(bitmap.codes, direct.codes)


def test_reference_positions_excluded_from_population(device):
    array, bank, structure, abacus = device
    scan = ArrayScanner(array, structure).scan()
    bitmap = AnalogBitmap(scan, abacus)
    mask = bank.mask()
    # Reference cells are ordinary mid-range codes; excluding them must
    # not move the population mean materially.
    with_refs = bitmap.mean_capacitance()
    without = float(np.nanmean(np.where(~mask & bitmap.in_range,
                                        bitmap.estimates, np.nan)))
    assert abs(with_refs - without) < 0.5 * fF
