"""DC operating-point analysis with a continuation fallback ladder.

Damped Newton iteration on the MNA system, backed by two continuation
fallbacks that climb in aggressiveness:

1. **Newton** from the supplied guess — almost always sufficient for
   this library's small, mostly capacitive, gently nonlinear circuits.
2. **gmin stepping** — restart with a large conductance to ground on
   every node and relax it geometrically down to the target gmin,
   using each converged solution as the next initial guess.
3. **source stepping** — ramp every independent source from zero to
   its programmed value (``StampContext.source_scale``), walking the
   circuit up to its operating point along a physically continuous
   path.  A point reached only this way is flagged
   :class:`~repro.resilience.quality.CellQuality.DEGRADED`.

:func:`dc_solve_vector` keeps the historical contract (a vector or a
raised error); :func:`dc_solve_ladder` is the resilient entry — it
never raises on convergence trouble, returning a best-effort vector
tagged with the :class:`~repro.resilience.quality.CellQuality` rung
that produced it (``FAILED`` = zeros placeholder, do not trust).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MnaSystem, StampContext
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError, SingularCircuitError
from repro.obs.metrics import active_metrics
from repro.resilience.faults import fault_point
from repro.resilience.quality import CellQuality


#: Default absolute KCL residual tolerance, amperes.
DEFAULT_ABSTOL = 1e-10
#: Default voltage update tolerance, volts.
DEFAULT_VTOL = 1e-8
#: Maximum Newton step per iteration, volts (damping limit).
MAX_STEP_V = 0.6
#: Source-stepping ramp: source_scale values walked in order (the final
#: point is exactly 1.0 so the last solve is the true circuit).
SOURCE_RAMP = np.linspace(0.0, 1.0, 11)


def _newton(
    sys: MnaSystem,
    ctx: StampContext,
    v0: np.ndarray,
    max_iter: int,
    vtol: float,
) -> np.ndarray:
    """Run damped Newton from ``v0``; return the full unknown vector."""
    fault_point("solver.newton")
    n = sys.num_nodes
    x = np.zeros(sys.size)
    x[:n] = v0
    for iteration in range(max_iter):
        ctx.v_iter = x[:n]
        sys.assemble(ctx)
        x_new = sys.solve()
        dv = x_new[:n] - x[:n]
        worst = float(np.max(np.abs(dv))) if n else 0.0
        if worst > MAX_STEP_V:
            x_new = x.copy()
            x_new[:n] = x[:n] + dv * (MAX_STEP_V / worst)
        x = x_new
        if worst <= vtol:
            ctx.v_iter = x[:n]
            active_metrics().histogram(
                "solver.newton_iterations", "Newton iterations per converged solve"
            ).observe(iteration + 1)
            return x
    raise ConvergenceError(
        f"Newton failed to converge in {max_iter} iterations "
        f"(last max dV = {worst:.3e} V)",
        iterations=max_iter,
        residual=worst,
    )


def _gmin_steps(
    sys: MnaSystem,
    time: float,
    guess: np.ndarray,
    max_iter: int,
    gmin: float,
    vtol: float,
) -> np.ndarray:
    """Converge a heavily damped circuit first, then relax toward gmin."""
    x: np.ndarray | None = None
    for g in np.geomspace(1e-3, gmin, 12):
        ctx = StampContext(time=time, dt=None, gmin=float(g))
        x = _newton(sys, ctx, guess, max_iter, vtol)
        guess = x[: sys.num_nodes]
    if x is None:  # pragma: no cover - geomspace always yields points
        raise SingularCircuitError("gmin stepping produced no solution")
    return x


def _source_steps(
    sys: MnaSystem,
    time: float,
    guess: np.ndarray,
    max_iter: int,
    gmin: float,
    vtol: float,
) -> np.ndarray:
    """Ramp every source from 0 to full value, carrying guesses along."""
    x: np.ndarray | None = None
    for scale in SOURCE_RAMP:
        ctx = StampContext(
            time=time, dt=None, gmin=gmin, source_scale=float(scale)
        )
        x = _newton(sys, ctx, guess, max_iter, vtol)
        guess = x[: sys.num_nodes]
    if x is None:  # pragma: no cover - linspace always yields points
        raise SingularCircuitError("source stepping produced no solution")
    return x


def _dc_solve_with_quality(
    circuit: Circuit,
    time: float,
    initial_guess: np.ndarray | None,
    max_iter: int,
    gmin: float,
    vtol: float,
) -> tuple[np.ndarray, CellQuality]:
    """Climb the fallback ladder; return (vector, quality of the rung)."""
    fault_point("solver.dc", title=circuit.title)
    sys = MnaSystem(circuit)
    v0 = (
        np.zeros(circuit.num_nodes)
        if initial_guess is None
        else np.asarray(initial_guess, dtype=float).copy()
    )
    ctx = StampContext(time=time, dt=None, gmin=gmin)
    try:
        return _newton(sys, ctx, v0, max_iter, vtol), CellQuality.GOOD
    except ConvergenceError:
        active_metrics().counter(
            "solver.gmin_fallbacks", "plain Newton failures rescued by gmin stepping"
        ).inc()
    try:
        return _gmin_steps(sys, time, v0, max_iter, gmin, vtol), CellQuality.GOOD
    except ConvergenceError:
        active_metrics().counter(
            "solver.source_fallbacks",
            "gmin-stepping failures rescued by source stepping",
        ).inc()
    return (
        _source_steps(sys, time, v0, max_iter, gmin, vtol),
        CellQuality.DEGRADED,
    )


def dc_solve_vector(
    circuit: Circuit,
    time: float = 0.0,
    initial_guess: np.ndarray | None = None,
    max_iter: int = 200,
    gmin: float = 1e-12,
    vtol: float = DEFAULT_VTOL,
) -> np.ndarray:
    """Solve the DC operating point and return the raw unknown vector.

    ``time`` is passed to time-dependent stimuli so the "DC" point can be
    evaluated with sources frozen at any instant (used for transient
    initial conditions).  Climbs the full fallback ladder; raises
    :class:`ConvergenceError` only when even source stepping fails.
    """
    x, _ = _dc_solve_with_quality(circuit, time, initial_guess, max_iter, gmin, vtol)
    return x


def dc_solve_ladder(
    circuit: Circuit,
    time: float = 0.0,
    initial_guess: np.ndarray | None = None,
    max_iter: int = 200,
    gmin: float = 1e-12,
    vtol: float = DEFAULT_VTOL,
) -> tuple[np.ndarray, CellQuality]:
    """Resilient DC solve: always returns ``(vector, quality)``.

    - ``GOOD`` — Newton or gmin stepping converged (trustworthy),
    - ``DEGRADED`` — only source stepping reached the operating point,
    - ``FAILED`` — every rung failed; the vector is a zeros placeholder
      and must not enter statistics.

    Convergence trouble becomes data instead of an exception, which is
    what lets one pathological cell flag itself in the analog bitmap
    rather than abort a million-cell scan.
    """
    try:
        return _dc_solve_with_quality(
            circuit, time, initial_guess, max_iter, gmin, vtol
        )
    except (ConvergenceError, SingularCircuitError):
        active_metrics().counter(
            "solver.best_effort",
            "DC ladder exhausted; zeros placeholder flagged FAILED",
        ).inc()
        size = MnaSystem(circuit).size
        return np.zeros(size), CellQuality.FAILED


def dc_operating_point(
    circuit: Circuit,
    time: float = 0.0,
    initial_guess: dict[str, float] | None = None,
    max_iter: int = 200,
    gmin: float = 1e-12,
) -> dict[str, float]:
    """Solve the DC operating point; return ``{node_name: voltage}``.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    time:
        Instant at which time-dependent sources are evaluated.
    initial_guess:
        Optional per-node starting voltages (unlisted nodes start at 0 V).
    """
    guess_vec = None
    if initial_guess:
        guess_vec = np.zeros(circuit.num_nodes)
        for node, voltage in initial_guess.items():
            idx = circuit.node_index(node)
            if idx >= 0:
                guess_vec[idx] = voltage
    x = dc_solve_vector(circuit, time, guess_vec, max_iter, gmin)
    return {name: float(x[circuit.node_index(name)]) for name in circuit.node_names}
