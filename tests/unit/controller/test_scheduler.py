"""Test-time accounting."""

import pytest

from repro.controller.address import ScanOrder
from repro.controller.scheduler import TestScheduler
from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError


@pytest.fixture()
def scheduler(tech, structure_8x2):
    array = EDRAMArray(16, 8, tech=tech, macro_cols=2, macro_rows=8)
    return TestScheduler(array, structure_8x2)


def test_validation(tech, structure_8x2):
    array = EDRAMArray(8, 2, tech=tech)
    with pytest.raises(MeasurementError):
        TestScheduler(array, structure_8x2, macro_setup_time=-1.0)
    with pytest.raises(MeasurementError):
        TestScheduler(array, structure_8x2, bits_per_code=0)
    with pytest.raises(MeasurementError):
        TestScheduler(array, structure_8x2, readout_clock_hz=0.0)


def test_full_plan_time_breakdown(scheduler, structure_8x2):
    plan = scheduler.plan(ScanOrder.MACRO_MAJOR)
    assert plan.cells == 128
    assert plan.flow_time == pytest.approx(
        128 * structure_8x2.design.flow_duration
    )
    # 8 macros -> 7 transitions + initial setup.
    assert plan.setup_time == pytest.approx(8 * scheduler.macro_setup_time)
    assert plan.readout_time == pytest.approx(128 * 5 / 50e6)
    assert plan.total_time == plan.flow_time + plan.setup_time + plan.readout_time


def test_repeats_scale_flow_time(scheduler):
    single = scheduler.plan(ScanOrder.MACRO_MAJOR, repeats=1)
    dithered = scheduler.plan(ScanOrder.MACRO_MAJOR, repeats=8)
    assert dithered.flow_time == pytest.approx(8 * single.flow_time)
    assert dithered.readout_time == pytest.approx(single.readout_time)


def test_repeats_validation(scheduler):
    with pytest.raises(MeasurementError):
        scheduler.plan(repeats=0)


def test_sparse_is_fastest(scheduler):
    plans = scheduler.compare_strategies()
    assert plans[-1].order is ScanOrder.SPARSE
    assert plans[-1].total_time < plans[0].total_time


def test_macro_major_beats_raster(scheduler):
    raster = scheduler.plan(ScanOrder.FULL_RASTER)
    grouped = scheduler.plan(ScanOrder.MACRO_MAJOR)
    assert grouped.total_time < raster.total_time
    assert grouped.cells == raster.cells


def test_time_per_cell(scheduler):
    plan = scheduler.plan(ScanOrder.MACRO_MAJOR)
    assert plan.time_per_cell == pytest.approx(plan.total_time / plan.cells)


def test_probe_comparison(scheduler):
    plan = scheduler.plan(ScanOrder.MACRO_MAJOR)
    assert scheduler.probe_station_equivalent(10) == pytest.approx(18000.0)
    assert scheduler.speedup_vs_probe(plan) > 1e6
    with pytest.raises(MeasurementError):
        scheduler.probe_station_equivalent(-1)


def test_describe_renders(scheduler):
    text = scheduler.plan(ScanOrder.SPARSE).describe()
    assert "sparse" in text
    assert "total" in text


class TestConversionStrategies:
    def test_full_is_the_paper_flow(self, scheduler, structure_8x2):
        plan = scheduler.plan(ScanOrder.MACRO_MAJOR, conversion="full")
        expected = 128 * structure_8x2.design.flow_duration
        assert plan.flow_time == pytest.approx(expected)

    def test_early_stop_is_cheaper_for_low_codes(self, scheduler):
        full = scheduler.plan(conversion="full")
        early = scheduler.plan(conversion="early_stop", expected_code=5)
        assert early.flow_time < full.flow_time

    def test_early_stop_full_scale_equals_full(self, scheduler, structure_8x2):
        n = structure_8x2.design.num_steps
        plan = scheduler.plan(conversion="early_stop", expected_code=n)
        assert plan.flow_time == pytest.approx(
            scheduler.plan(conversion="full").flow_time
        )

    def test_sar_beats_everything(self, scheduler):
        sar = scheduler.plan(conversion="sar")
        early = scheduler.plan(conversion="early_stop", expected_code=8)
        assert sar.flow_time < early.flow_time

    def test_sar_step_count(self, scheduler):
        # 20 levels + under/over need ceil(log2(21)) = 5 trials.
        assert scheduler.conversion_steps("sar") == 5.0

    def test_unknown_strategy_rejected(self, scheduler):
        with pytest.raises(MeasurementError):
            scheduler.plan(conversion="psychic")
        with pytest.raises(MeasurementError):
            scheduler.conversion_steps("early_stop", expected_code=99)
