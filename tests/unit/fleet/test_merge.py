"""Lot merge: bit-exactness, idempotence, degradation, and refusals."""

import json
import os
import shutil
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import FleetError
from repro.fleet import FleetOrchestrator, merge_lot
from repro.fleet.orchestrator import EXIT_DEGRADED, EXIT_HEALTHY
from repro.obs.ledger import RunLedger
from repro.wafer import DieQuality, WaferModel

DIAMETER = 3  # 9 dies
SEED = 7

_PLANES = (
    "die_means", "die_sigmas", "die_vgs", "die_codes",
    "die_cell_quality", "die_quality",
)


@pytest.fixture(scope="module")
def fleet_root(tmp_path_factory):
    """One real, healthy 2-shard fleet run shared by the whole module."""
    root = tmp_path_factory.mktemp("fleet") / "run"
    report = FleetOrchestrator(
        root,
        wafer={"diameter_dies": DIAMETER, "seed": SEED},
        shards=2,
        poll_seconds=0.02,
    ).run()
    assert report.state == "healthy"
    return root


@pytest.fixture(scope="module")
def reference():
    """The unsharded ground truth for the same wafer."""
    return WaferModel(diameter_dies=DIAMETER, seed=SEED).measure_dies((0, 9))


def _copy(fleet_root, tmp_path):
    clone = tmp_path / "clone"
    shutil.copytree(fleet_root, clone)
    # fleet.json records absolute paths: repoint them at the clone so
    # lease/result edits below affect what the merge actually reads.
    path = clone / "fleet.json"
    path.write_text(
        path.read_text(encoding="utf-8").replace(str(fleet_root), str(clone)),
        encoding="utf-8",
    )
    return clone


def _edit_state(root, mutate):
    path = root / "fleet.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    mutate(payload)
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestHealthyMerge:
    def test_bit_exact_with_unsharded_run(self, fleet_root, reference):
        lot = merge_lot(fleet_root)
        assert lot.state == "healthy"
        assert lot.exit_code == EXIT_HEALTHY
        assert lot.total_dies == 9
        assert lot.failed_ranges == []
        for name in _PLANES:
            np.testing.assert_array_equal(
                getattr(lot, name), getattr(reference, name), err_msg=name
            )

    def test_shard_provenance_recorded(self, fleet_root):
        lot = merge_lot(fleet_root)
        assert sorted(lot.shard_runs) == ["s00", "s01"]
        assert all(run_id for run_id in lot.shard_runs.values())
        meta = json.loads((fleet_root / "lot.json").read_text(encoding="utf-8"))
        assert meta["state"] == "healthy"
        assert meta["shard_runs"] == lot.shard_runs
        assert meta["scalars"]["measured_fraction"] == 1.0

    def test_idempotent_byte_identical_artifacts(self, fleet_root):
        merge_lot(fleet_root)
        first_npz = (fleet_root / "lot.npz").read_bytes()
        first_json = (fleet_root / "lot.json").read_bytes()
        merge_lot(fleet_root)
        assert (fleet_root / "lot.npz").read_bytes() == first_npz
        assert (fleet_root / "lot.json").read_bytes() == first_json

    def test_ledger_record_kind_lot(self, fleet_root, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        lot = merge_lot(fleet_root, ledger=ledger, label="lot-7")
        assert lot.run_id is not None
        (line,) = (tmp_path / "ledger" / "manifest.jsonl").read_text(
            encoding="utf-8"
        ).splitlines()
        manifest = json.loads(line)
        assert manifest["kind"] == "lot"
        assert manifest["label"] == "lot-7"
        assert manifest["run_id"] == lot.run_id
        assert manifest["scalars"]["dies"] == 9.0
        assert manifest["extra"]["state"] == "healthy"


class TestDegradedMerge:
    def test_failed_shard_becomes_failed_range(
        self, fleet_root, reference, tmp_path
    ):
        clone = _copy(fleet_root, tmp_path)
        (clone / "results" / "s01.npz").unlink()

        def fail_shard_one(payload):
            payload["shard_status"][1]["state"] = "failed"

        _edit_state(clone, fail_shard_one)
        lot = merge_lot(clone)
        assert lot.state == "degraded"
        assert lot.exit_code == EXIT_DEGRADED
        (start, stop) = lot.failed_ranges[0]
        assert (start, stop) == (5, 9)
        assert (lot.die_quality[start:stop] == int(DieQuality.FAILED)).all()
        assert np.isnan(lot.die_means[start:stop]).all()
        assert lot.shard_runs["s01"] is None
        # The surviving shard's planes are untouched by the failure.
        np.testing.assert_array_equal(
            lot.die_means[:start], reference.die_means[:start]
        )
        scalars = lot.scalars
        assert scalars["failed_dies"] == float(stop - start)
        assert scalars["measured_fraction"] == pytest.approx(5 / 9)


def _edit_lease(root, shard, mutate):
    path = root / "leases" / f"s{shard:02d}.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    mutate(payload)
    path.write_text(json.dumps(payload), encoding="utf-8")


def _dead_pid():
    """A pid guaranteed dead: a just-reaped child of this process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestStaleRunningFleet:
    """fleet.json frozen at "running" by a crashed orchestrator."""

    def _freeze_running(self, payload):
        payload["state"] = "running"
        for shard in payload["shard_status"]:
            shard["state"] = "running"

    def test_all_workers_finished_merges_healthy(
        self, fleet_root, reference, tmp_path
    ):
        # Orchestrator SIGKILLed after every worker finished: the shard
        # leases say done, so the merge recovers the whole lot.
        clone = _copy(fleet_root, tmp_path)
        _edit_state(clone, self._freeze_running)
        lot = merge_lot(clone)
        assert lot.state == "healthy"
        assert lot.failed_ranges == []
        for name in _PLANES:
            np.testing.assert_array_equal(
                getattr(lot, name), getattr(reference, name), err_msg=name
            )

    def test_dead_worker_range_degrades(self, fleet_root, tmp_path):
        # Shard 1's worker also died mid-range (lease still "running",
        # pid gone): its range merges as FAILED, never partial planes.
        clone = _copy(fleet_root, tmp_path)
        _edit_state(clone, self._freeze_running)
        dead = _dead_pid()
        _edit_lease(clone, 1, lambda p: p.update(state="running", pid=dead))
        lot = merge_lot(clone)
        assert lot.state == "degraded"
        assert lot.failed_ranges == [(5, 9)]


class TestMergeRefusals:
    def test_refuses_running_fleet_with_live_worker(self, fleet_root, tmp_path):
        clone = _copy(fleet_root, tmp_path)

        def shard0_in_flight(payload):
            payload["state"] = "running"
            payload["shard_status"][0]["state"] = "running"

        _edit_state(clone, shard0_in_flight)
        # A live "running" lease: this test process's own pid.
        _edit_lease(
            clone, 0,
            lambda p: p.update(state="running", pid=os.getpid()),
        )
        with pytest.raises(FleetError, match="still running"):
            merge_lot(clone)
        # force merges past the live worker; its range degrades.
        lot = merge_lot(clone, force=True)
        assert lot.state == "degraded"
        assert lot.failed_ranges == [(0, 5)]

    def test_refuses_mixed_config_fingerprints(self, fleet_root, tmp_path):
        clone = _copy(fleet_root, tmp_path)

        def tamper(payload):
            payload["fingerprint"]["config"]["technology"] = "other"

        _edit_state(clone, tamper)
        with pytest.raises(FleetError, match="mixed lots"):
            merge_lot(clone)

    def test_refuses_defective_partition(self, fleet_root, tmp_path):
        clone = _copy(fleet_root, tmp_path)

        def punch_gap(payload):
            payload["partition"][0] = [0, 0, 3]  # leaves [3, 5) uncovered

        _edit_state(clone, punch_gap)
        with pytest.raises(FleetError, match="FLT"):
            merge_lot(clone)

    def test_refuses_missing_fleet_json(self, tmp_path):
        with pytest.raises(FleetError):
            merge_lot(tmp_path / "nowhere")
