"""E9 — yield economics of analog-aware repair (extension).

The paper motivates its structure with yield ("integration of the DRAM
capacitor process into a logic process is challenging to get
satisfactory yields").  This bench closes the loop: Monte-Carlo dies
under a Poisson defect model, repaired three ways —

- not at all,
- from the functional-test (hard-fail) map only,
- from the analog bitmap (hard fails + marginal capacitors).

The interesting trade-off the simulation surfaces: analog-aware repair
ships **zero marginal cells** (field-return risk) but *spends spares on
them*, so at high defect densities it under-yields hard-only repair —
redundancy budgeting must account for the parametric population.
"""

from conftest import report

from repro.diagnosis.yield_model import YieldSimulator


def bench_e9_yield_vs_density(benchmark, tech):
    simulator = YieldSimulator(
        rows=32, cols=16, macro_rows=8, macro_cols=2,
        spare_rows=2, spare_cols=2, hard_fraction=0.5, tech=tech,
    )
    densities = [0.5, 1.0, 2.0, 4.0, 6.0]
    results = simulator.sweep(densities, dies=30, seed=90)
    benchmark.pedantic(simulator.run, args=(1.0,), kwargs={"dies": 5}, rounds=1,
                       iterations=1)

    lines = [
        "32x16 dies, 2+2 spares, half of defects parametric (LOW_CAP):",
        "",
        f"{'lam/die':>8}  {'no repair':>10}  {'hard-only':>10}  {'analog-aware':>13}  "
        f"{'marginal shipped':>17}",
    ]
    for result in results:
        lines.append(
            f"{result.defects_per_die:>8.1f}  "
            f"{100 * result.yield_no_repair:>9.0f}%  "
            f"{100 * result.yield_hard_repair:>9.0f}%  "
            f"{100 * result.yield_analog_repair:>12.0f}%  "
            f"{result.field_risks_left:>15.2f}/die"
        )
    lines.append("")
    lines.append("analog-aware repair trades a few points of yield at high")
    lines.append("defect density for zero shipped marginal cells; hard-only")
    lines.append("repair ships an increasing field-return risk it cannot see.")
    report("E9: yield with analog-aware repair", "\n".join(lines))

    low = results[0]
    high = results[-1]
    assert low.yield_hard_repair >= 0.9
    assert high.field_risks_left > low.field_risks_left
    # Analog-aware repair never ships marginal cells when it succeeds.
    assert all(r.yield_analog_repair <= r.yield_hard_repair + 1e-9 for r in results)
