"""Fleet (FLT) rules: the shard partition must tile the wafer exactly.

The fleet's merge is only bit-exact because every die is measured by
exactly one shard.  That invariant is enforced at runtime by
:func:`repro.fleet.partition.validate_partition`, but a recorded plan
(``fleet.json``) travels through disk and human hands, so the lint
layer re-checks it as a project rule with stable codes a CI gate can
select:

``FLT001 shard-overlap``
    A die is claimed by more than one shard, or a shard's range reaches
    outside the wafer.  Two shards racing to define the same die's
    planes makes the merge order-dependent — an ERROR.

``FLT002 shard-gap``
    A die is claimed by no shard (including empty/inverted ranges that
    cover nothing).  The merged lot would silently miss coverage — an
    ERROR.

Both rules read ``context["ranges"]`` (``(start, stop)`` or
``(shard_id, start, stop)`` sequences) and ``context["total_dies"]``.
Without a context they self-check the live planner: every
:func:`~repro.fleet.partition.plan_shards` split over a sweep of
(wafer size, shard count) pairs must be exact, so the canonical
partitioner can never regress without this rule firing.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import rule

#: (total_dies, shards) pairs the no-context self-check sweeps.
_SELF_CHECK_SWEEP = (
    (1, 1), (2, 1), (2, 2), (5, 2), (9, 3), (21, 4), (57, 5), (97, 8),
)


def _context_partition(context: dict[str, object]):
    """The (ranges, total) pair under check, or ``None`` for self-check."""
    ranges = context.get("ranges")
    total = context.get("total_dies")
    if ranges is None or total is None:
        return None
    return list(ranges), int(total)  # type: ignore[arg-type, call-overload]


def _defect_findings(spec, wanted_kind: str, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Shared body of both FLT rules: report defects of one kind."""
    from repro.fleet.partition import partition_defects, plan_shards

    explicit = _context_partition(context)
    if explicit is not None:
        ranges, total = explicit
        for kind, message in partition_defects(ranges, total):
            if kind == wanted_kind:
                yield spec.diagnostic(
                    message,
                    subject=f"shard partition of {total} dies",
                )
        return
    # Self-check: the canonical planner must always tile exactly.
    for total, shards in _SELF_CHECK_SWEEP:
        planned = plan_shards(total, shards)
        for kind, message in partition_defects(planned, total):
            if kind == wanted_kind:
                yield spec.diagnostic(
                    f"plan_shards({total}, {shards}) is defective: {message}",
                    subject="repro.fleet.partition.plan_shards",
                )


@rule(
    "FLT001",
    "shard-overlap",
    target="project",
    summary="a die is claimed by more than one shard (or outside the wafer)",
)
def check_shard_overlap(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """A die claimed twice makes the lot merge order-dependent."""
    yield from _defect_findings(check_shard_overlap, "overlap", context)


@rule(
    "FLT002",
    "shard-gap",
    target="project",
    summary="a die is claimed by no shard — silent coverage loss",
)
def check_shard_gap(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """A die claimed by nobody silently vanishes from the merged lot."""
    yield from _defect_findings(check_shard_gap, "gap", context)
