"""Technology card and MOSFET parameter validation."""

import pytest

from repro.errors import TechnologyError
from repro.tech.parameters import MosfetParams, TechnologyCard, default_technology
from repro.units import fF, um


class TestMosfetParams:
    def test_nmos_defaults_are_physical(self, tech):
        n = tech.nmos
        assert n.polarity == "nmos"
        assert 0.3 < n.vth0 < 0.6
        assert 100e-6 < n.kp < 600e-6
        assert n.cox > 0

    def test_pmos_threshold_is_negative(self, tech):
        assert tech.pmos.vth0 < 0

    def test_rejects_bad_polarity(self):
        with pytest.raises(TechnologyError):
            MosfetParams(polarity="cmos", vth0=0.4, kp=1e-4)

    def test_rejects_wrong_sign_threshold(self):
        with pytest.raises(TechnologyError):
            MosfetParams(polarity="nmos", vth0=-0.4, kp=1e-4)
        with pytest.raises(TechnologyError):
            MosfetParams(polarity="pmos", vth0=0.4, kp=1e-4)

    def test_rejects_nonpositive_kp_and_tox(self):
        with pytest.raises(TechnologyError):
            MosfetParams(polarity="nmos", vth0=0.45, kp=0.0)
        with pytest.raises(TechnologyError):
            MosfetParams(polarity="nmos", vth0=0.45, kp=1e-4, tox=0.0)

    def test_gate_capacitance_scales_with_area(self, tech):
        c1 = tech.nmos.gate_capacitance(1 * um, 1 * um)
        c2 = tech.nmos.gate_capacitance(2 * um, 2 * um)
        assert c2 == pytest.approx(4 * c1)
        # ~8.6 fF per square micron for 4 nm oxide
        assert c1 == pytest.approx(8.6 * fF, rel=0.05)

    def test_gate_capacitance_rejects_bad_geometry(self, tech):
        with pytest.raises(TechnologyError):
            tech.nmos.gate_capacitance(0.0, 1e-6)

    def test_beta_is_kp_times_aspect(self, tech):
        assert tech.nmos.beta(2e-6, 1e-6) == pytest.approx(2 * tech.nmos.kp)

    def test_with_shift_moves_magnitude_for_both_polarities(self, tech):
        n = tech.nmos.with_shift(dvth=0.05)
        p = tech.pmos.with_shift(dvth=0.05)
        assert n.vth0 == pytest.approx(tech.nmos.vth0 + 0.05)
        assert p.vth0 == pytest.approx(tech.pmos.vth0 - 0.05)  # |vth| grows

    def test_with_shift_scales_kp(self, tech):
        assert tech.nmos.with_shift(kp_scale=1.1).kp == pytest.approx(1.1 * tech.nmos.kp)


class TestTechnologyCard:
    def test_default_card_headline_values(self, tech):
        assert tech.vdd == pytest.approx(1.8)
        assert tech.cell_capacitance == pytest.approx(30 * fF)
        assert tech.vpp > tech.vdd + abs(tech.nmos.vth0)

    def test_half_vdd(self, tech):
        assert tech.half_vdd == pytest.approx(0.9)

    def test_bitline_capacitance_grows_linearly(self, tech):
        c0 = tech.bitline_capacitance(0)
        c128 = tech.bitline_capacitance(128)
        assert c128 == pytest.approx(c0 + 128 * tech.bitline_cap_per_cell)

    def test_bitline_capacitance_rejects_negative_rows(self, tech):
        with pytest.raises(TechnologyError):
            tech.bitline_capacitance(-1)

    def test_plate_parasitic_grows_with_cells(self, tech):
        assert tech.plate_parasitic(64) > tech.plate_parasitic(4)

    def test_rejects_vpp_below_vdd(self):
        with pytest.raises(TechnologyError):
            TechnologyCard(vpp=1.0)

    def test_rejects_nonpositive_cell_capacitance(self):
        with pytest.raises(TechnologyError):
            TechnologyCard(cell_capacitance=0.0)

    def test_default_technology_returns_fresh_equal_cards(self):
        a = default_technology()
        b = default_technology()
        assert a == b
        assert a is not b

    def test_access_transistor_beta_positive(self, tech):
        assert tech.access_transistor_beta() > 0
