"""Chaos drills: the resilience contract, end to end.

The ISSUE-level acceptance scenario: a parallel scan survives a worker
kill *and* a cell whose solver fails *and* a mid-run interrupt, resumes
from its checkpoint, and still produces planes bit-exact with an
uninterrupted run — with the affected cells flagged, never missing.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.errors import SingularCircuitError
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.obs.ledger import RunLedger
from repro.resilience import (
    CellQuality,
    Checkpointer,
    Fault,
    FaultPlan,
    RetryPolicy,
    list_checkpoints,
)

#: 8x8 array in 4 macro tiles of 4x4 — small enough for engine tier.
GEOMETRY = dict(macro_rows=4, macro_cols=4)
RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, seed=0)

#: The solver-failure cell (global address, lives in macro 0).
SICK_CELL = {"row": 1, "col": 1}


def _array():
    return EDRAMArray(8, 8, **GEOMETRY)


def _cell_fault():
    return Fault(
        "sequencer.measure",
        error=SingularCircuitError("injected: plate shorted mid-measure"),
        match=SICK_CELL,
    )


def _kill_fault():
    # Attempt 0 on macro 1 dies in every worker that tries it; the
    # retry (attempt 1) passes.  Matching on the attempt keeps the
    # plan deterministic across respawned workers, which install a
    # fresh copy of the plan (counters reset).
    return Fault("worker.scan_macro", kind="kill", match={"macro": 1, "attempt": 0}, times=None)


def test_chaos_scan_interrupt_resume_bit_exact(tmp_path):
    # Reference: uninterrupted serial run with only the sick cell.
    reference = ArrayScanner(_array(), None).scan(
        ScanConfig(force_engine=True, faults=FaultPlan([_cell_fault()]))
    )
    assert reference.quality[1, 1] == CellQuality.DEGRADED

    ledger = RunLedger(tmp_path)
    interrupt = Fault(
        "scan.macro_done", error=KeyboardInterrupt(), after=1, times=1
    )
    chaos_config = ScanConfig(
        jobs=2,
        force_engine=True,
        retry=RETRY,
        faults=FaultPlan([_cell_fault(), _kill_fault(), interrupt]),
        checkpoint=Checkpointer(ledger),
        ledger=ledger,
    )
    with pytest.raises(KeyboardInterrupt):
        ArrayScanner(_array(), None).scan(chaos_config)

    # The interrupted run left a checkpoint with partial progress and
    # recorded nothing in the manifest.
    states = list_checkpoints(ledger)
    assert [s.run_id for s in states] == ["r0001"]
    assert 1 <= len(states[0].completed) < 4
    assert ledger.runs() == []

    resume_config = ScanConfig(
        jobs=2,
        force_engine=True,
        retry=RETRY,
        faults=FaultPlan([_cell_fault(), _kill_fault()]),
        checkpoint=Checkpointer(ledger, resume="r0001"),
        ledger=ledger,
    )
    result = ArrayScanner(_array(), None).scan(resume_config)

    # Bit-exact planes: resume recomputed exactly the missing macros.
    np.testing.assert_array_equal(result.codes, reference.codes)
    np.testing.assert_array_equal(result.vgs, reference.vgs)
    np.testing.assert_array_equal(result.tiers, reference.tiers)

    # The sick cell is flagged, not missing; nothing else is flagged
    # (the killed macro recovered on retry).
    degraded = np.argwhere(result.quality == CellQuality.DEGRADED)
    assert degraded.tolist() == [[1, 1]] or result.quality[1, 1] == CellQuality.DEGRADED
    assert not (result.quality == CellQuality.FAILED).any()
    assert result.quality_counts()["failed"] == 0

    # Checkpoint consumed; manifest recorded under the reserved id with
    # the quality scalars the drift charts watch.
    assert list_checkpoints(ledger) == []
    runs = ledger.runs()
    assert [m.run_id for m in runs] == ["r0001"]
    assert runs[0].scalars["degraded_cells"] == 1.0
    assert runs[0].scalars["failed_cells"] == 0.0


def test_kill_every_attempt_rescues_in_process_and_flags(tmp_path):
    # Kill *all* attempts of macro 2: the pool exhausts its retries and
    # the scan's final rung re-runs the macro in-process, flagging its
    # cells DEGRADED — values present and bit-exact, provenance marked.
    serial = ArrayScanner(_array(), None).scan(ScanConfig())
    plan = FaultPlan(
        [Fault("worker.scan_macro", kind="kill", match={"macro": 2}, times=None)]
    )
    rescued = ArrayScanner(_array(), None).scan(
        ScanConfig(jobs=2, faults=plan, retry=RETRY)
    )
    np.testing.assert_array_equal(rescued.codes, serial.codes)
    macro = _array().macro(2)
    tile = rescued.quality[macro.row_start:macro.row_stop,
                           macro.col_start:macro.col_stop]
    assert (tile == CellQuality.DEGRADED).all()
    counts = rescued.quality_counts()
    assert counts["degraded"] == tile.size
    assert counts["good"] == serial.codes.size - tile.size
    assert rescued.stats.worker_respawns >= 1
    assert rescued.stats.macro_retries >= RETRY.max_attempts - 1


def test_chaos_kill_retry_under_fecap_backend():
    # The resilience rungs are backend-agnostic: a worker kill plus
    # retry under the FeCap backend recovers bit-exactly.  Scans
    # disturb FeCap state, so the serial reference runs on an
    # identically-seeded twin array rather than a second pass over the
    # chaos array.
    from repro.technologies import get

    backend = get("fecap")
    config = ScanConfig(technology="fecap")
    serial_array = backend.build_array(8, 8, seed=3, with_defects=True, **GEOMETRY)
    chaos_array = backend.build_array(8, 8, seed=3, with_defects=True, **GEOMETRY)
    structure = backend.design_structure(serial_array)

    serial = ArrayScanner(serial_array, structure).scan(config)
    chaos = ArrayScanner(chaos_array, structure).scan(
        ScanConfig(
            technology="fecap",
            jobs=2,
            retry=RETRY,
            faults=FaultPlan([_kill_fault()]),
        )
    )
    np.testing.assert_array_equal(chaos.codes, serial.codes)
    np.testing.assert_array_equal(chaos.vgs, serial.vgs)
    np.testing.assert_array_equal(chaos.quality, serial.quality)
    assert not (chaos.quality == CellQuality.FAILED).any()
    assert chaos.stats.worker_respawns >= 1
    # Both twins took exactly one read of disturb — the chaos retries
    # re-measured, they never re-read the ferroelectric state twice.
    assert serial_array.reads == 1
    assert chaos_array.reads == 1
    np.testing.assert_array_equal(
        serial_array.polarization_view(), chaos_array.polarization_view()
    )


def test_whole_macro_solver_failure_is_flagged_failed():
    # When even the closed form fails for a macro, the tile is zeros +
    # FAILED — visible in the planes, excluded from statistics.
    plan = FaultPlan(
        [Fault(
            "scan.closed_form",
            error=SingularCircuitError("injected: macro calibration dead"),
            match={"macro": 3},
            times=None,
        )]
    )
    result = ArrayScanner(_array(), None).scan(ScanConfig(faults=plan))
    macro = _array().macro(3)
    tile = result.quality[macro.row_start:macro.row_stop,
                          macro.col_start:macro.col_stop]
    assert (tile == CellQuality.FAILED).all()
    assert (result.codes[macro.row_start:macro.row_stop,
                         macro.col_start:macro.col_stop] == 0).all()
    assert result.stats.failed_cells == tile.size


_CTRL_C_SCRIPT = """
import sys
import multiprocessing as mp

from repro.edram.array import EDRAMArray
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.resilience import Fault, FaultPlan

plan = FaultPlan([Fault("worker.scan_macro", kind="sleep", seconds=60.0, times=None)])
array = EDRAMArray(16, 8, macro_rows=4, macro_cols=2)
print("START", flush=True)
try:
    ArrayScanner(array, None).scan(ScanConfig(jobs=2, faults=plan))
except KeyboardInterrupt:
    print("CLEAN" if not mp.active_children() else "ORPHANS", flush=True)
    sys.exit(130)
print("NOINT", flush=True)
"""


def test_ctrl_c_tears_down_workers_within_two_seconds():
    env = dict(os.environ)
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-c", _CTRL_C_SCRIPT],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == "START"
        time.sleep(1.0)  # let the workers spawn and hit their stalls
        t0 = time.monotonic()
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=10)
        elapsed = time.monotonic() - t0
    finally:
        if proc.poll() is None:  # pragma: no cover - only on failure
            proc.kill()
    assert proc.returncode == 130, (out, err)
    assert "CLEAN" in out
    # Forced shutdown is bounded to ~2 s; allow scheduling slack.
    assert elapsed < 4.0, f"teardown took {elapsed:.1f}s"


def test_wafer_interrupt_resume_bit_exact(tmp_path):
    from repro.wafer import WaferModel

    reference = WaferModel(diameter_dies=3, seed=5).measure_wafer()

    ledger = RunLedger(tmp_path)
    interrupt = FaultPlan(
        [Fault("wafer.die_done", error=KeyboardInterrupt(), after=2, times=1)]
    )
    with pytest.raises(KeyboardInterrupt):
        WaferModel(diameter_dies=3, seed=5).measure_wafer(
            config=ScanConfig(checkpoint=Checkpointer(ledger), faults=interrupt)
        )
    states = list_checkpoints(ledger)
    assert [s.kind for s in states] == ["wafer"]
    assert len(states[0].completed) == 2

    # Resume on a *fresh* model: the wafer RNG is fast-forwarded past
    # the checkpointed dies, so the remaining dies print identically.
    report = WaferModel(diameter_dies=3, seed=5).measure_wafer(
        config=ScanConfig(checkpoint=Checkpointer(ledger, resume="r0001"))
    )
    assert list_checkpoints(ledger) == []
    for die, ref in zip(report.dies, reference.dies):
        assert (die.x, die.y) == (ref.x, ref.y)
        assert die.mean_capacitance == ref.mean_capacitance
        assert die.sigma_capacitance == ref.sigma_capacitance


def test_traced_scan_survives_worker_kill_with_complete_merged_trace(tmp_path):
    """A worker kill under ``--trace`` loses no spans and no cells.

    Only the winning attempt's spans ship with its ack, so the killed
    attempt contributes nothing and the respawned worker's retry fills
    the hole — the merged tree still covers every macro exactly once,
    and the trace file lands atomically.
    """
    from repro.obs import Tracer, load_trace

    reference = ArrayScanner(_array(), None).scan(ScanConfig(force_engine=True))

    tracer = Tracer()
    config = ScanConfig(
        jobs=2,
        force_engine=True,
        retry=RETRY,
        faults=FaultPlan([_kill_fault()]),
        tracer=tracer,
    )
    result = ArrayScanner(_array(), None).scan(config)

    np.testing.assert_array_equal(result.codes, reference.codes)
    np.testing.assert_array_equal(result.vgs, reference.vgs)
    assert result.stats.worker_respawns >= 1

    # One macro span per macro, each stamped with a worker identity and
    # parented under the single scan root — no duplicates from the
    # killed attempt, no gaps from the respawn.
    spans = tracer.spans
    scan_spans = [s for s in spans if s.name == "scan"]
    assert len(scan_spans) == 1
    macro_spans = [s for s in spans if s.name == "macro"]
    assert sorted(s.attributes["index"] for s in macro_spans) == [0, 1, 2, 3]
    assert all(s.parent_id == scan_spans[0].span_id for s in macro_spans)
    assert all(s.attributes["worker_id"] >= 0 for s in macro_spans)
    assert all(s.attributes["pid"] > 0 for s in macro_spans)
    assert all(s.end is not None for s in spans)

    # The export round-trips through the atomic writer.
    path = tmp_path / "chaos-trace.jsonl"
    tracer.write_jsonl(path)
    assert len(load_trace(path)) == len(spans)
    assert not list(tmp_path.glob("*.tmp.*"))
