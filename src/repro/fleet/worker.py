"""Shard worker: one supervised subprocess measuring one die range.

Launched by the orchestrator as ``python -m repro.fleet.worker
<spec.json>``; the spec file carries everything the worker needs —
wafer parameters, die range, scan options, lease/progress/result paths,
an optional checkpoint to resume and an optional serialized fault plan
(the chaos drill's kill switch).  Keeping the contract on disk rather
than in a pipe means a respawned worker needs nothing from the parent
but the spec path, and a human can re-run a dead shard by hand.

Crash-safety ordering is the point of this module:

1. measure the range (checkpoint persists after every die, atomically),
2. write ``result.npz`` (tmp + rename),
3. record the shard manifest into the shard's run ledger,
4. **only then** delete the checkpoint (``Checkpointer.finish``),
5. flip the lease to ``done``.

A kill between any two steps loses at most one die of work: the
checkpoint outlives the result write, so the respawned worker resumes
instead of restarting, and a duplicate manifest/result write is
idempotent (same planes, same reserved run id).
"""

from __future__ import annotations

import builtins
import json
import os
import sys
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import FleetError, ResilienceError

__all__ = ["fault_plan_from_spec", "load_spec", "run_shard", "main"]

#: ``result.npz`` format version.
_RESULT_FORMAT = 1


def fault_plan_from_spec(payload: dict[str, Any] | None):
    """Build a :class:`~repro.resilience.FaultPlan` from JSON.

    ``payload`` is ``{"seed": int, "faults": [{...}, ...]}`` where each
    fault dict carries ``site`` plus the optional :class:`Fault` fields
    (``kind``, ``match``, ``times``, ``after``, ``seconds``,
    ``probability``); ``kind="raise"`` names a builtin exception type in
    ``error`` (e.g. ``"RuntimeError"``).  Returns ``None`` when
    ``payload`` is ``None`` — the disarmed fast path.
    """
    if payload is None:
        return None
    from repro.resilience.faults import Fault, FaultPlan

    faults = []
    for entry in payload.get("faults", ()):
        error = None
        error_name = entry.get("error")
        if error_name is not None:
            exc_type = getattr(builtins, str(error_name), None)
            if exc_type is None or not (
                isinstance(exc_type, type)
                and issubclass(exc_type, BaseException)
            ):
                raise ResilienceError(
                    f"fault spec error {error_name!r} is not a builtin "
                    "exception type"
                )
            error = exc_type(entry.get("message", "injected fault"))
        faults.append(Fault(
            site=str(entry["site"]),
            error=error,
            kind=str(entry.get("kind", "raise")),
            match=dict(entry.get("match", {})),
            times=entry.get("times", 1),
            after=int(entry.get("after", 0)),
            seconds=float(entry.get("seconds", 0.0)),
            probability=entry.get("probability"),
        ))
    return FaultPlan(faults, seed=int(payload.get("seed", 0)))


def load_spec(path: str | Path) -> dict[str, Any]:
    """Read and minimally validate one worker spec file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FleetError(f"unreadable shard spec {path}: {exc}") from exc
    for key in ("shard_id", "die_range", "wafer", "ledger_root",
                "lease_path", "result_path"):
        if key not in spec:
            raise FleetError(f"shard spec {path} is missing {key!r}")
    return spec


def _write_result(path: Path, scan, meta: dict[str, Any]) -> None:
    """Persist the shard planes atomically (tmp + rename).

    Uncompressed on purpose: results live only until the merge reads
    them, and compressing multi-megabyte die planes costs the worker
    more wall time than the disk it saves.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps({"format": _RESULT_FORMAT, **meta})
    tmp = path.with_suffix(".tmp.npz")
    np.savez(
        tmp,
        meta=np.array(payload),
        die_means=scan.die_means,
        die_sigmas=scan.die_sigmas,
        die_vgs=scan.die_vgs,
        die_codes=scan.die_codes,
        die_cell_quality=scan.die_cell_quality,
        die_quality=scan.die_quality,
    )
    os.replace(tmp, path)


def _shard_scalars(scan) -> dict[str, float]:
    """Per-shard summary scalars (the shard manifest's drift diet)."""
    from repro.resilience.quality import CellQuality
    from repro.units import to_fF

    lo, hi = scan.die_range
    means = scan.die_means[lo:hi]
    cells = scan.die_cell_quality[lo:hi]
    return {
        "dies": float(hi - lo),
        "cap_mean_fF": float(to_fF(np.mean(means))),
        "cap_sigma_fF": float(to_fF(np.std(means))),
        "degraded_cells": float((cells == int(CellQuality.DEGRADED)).sum()),
        "failed_cells": float((cells == int(CellQuality.FAILED)).sum()),
    }


def run_shard(spec: dict[str, Any]) -> int:
    """Execute one shard spec to completion; returns the exit status."""
    from time import monotonic, perf_counter

    from repro.fleet.lease import ShardLease, write_lease
    from repro.measure.config import ScanConfig
    from repro.obs.ledger import RunLedger
    from repro.obs.progress import NULL_PROGRESS, JsonlProgress
    from repro.resilience.checkpoint import Checkpointer, resume_fingerprint
    from repro.resilience.faults import install_plan, mark_worker_process
    from repro.wafer import WaferModel

    # Kill faults only fire in marked worker processes; marking first
    # means a chaos plan can never misfire before supervision exists.
    mark_worker_process()
    install_plan(fault_plan_from_spec(spec.get("faults")))

    shard_id = int(spec["shard_id"])
    lo, hi = (int(v) for v in spec["die_range"])
    wafer_kwargs = dict(spec["wafer"])
    model = WaferModel(**wafer_kwargs)
    ledger = RunLedger(spec["ledger_root"])
    # Throttled persistence: a crash re-runs at most one window of
    # dies (bit-exact via RNG fast-forward) instead of paying a full
    # atomic plane write per die.
    checkpointer = Checkpointer(
        ledger,
        resume=spec.get("resume"),
        meta={"shard_id": shard_id, "die_range": [lo, hi]},
        min_save_seconds=float(spec.get("checkpoint_every_seconds", 0.25)),
    )
    progress_path = spec.get("progress_path")
    if progress_path:
        Path(progress_path).parent.mkdir(parents=True, exist_ok=True)
        progress = JsonlProgress(progress_path, min_interval=0.1)
    else:
        progress = NULL_PROGRESS
    config = ScanConfig(
        technology=wafer_kwargs.get("technology", "edram"),
        force_engine=bool(spec.get("force_engine", False)),
        progress=progress,
        checkpoint=checkpointer,
    )

    lease_path = Path(spec["lease_path"])
    lease = ShardLease(
        shard_id=shard_id, start=lo, stop=hi, pid=os.getpid(),
        generation=int(spec.get("generation", 0)),
    )
    write_lease(lease_path, lease.touch())

    # Heartbeats are throttled like checkpoints: the supervisor only
    # checks staleness at multi-second granularity, so a per-die atomic
    # rename would be pure overhead on large shards.
    heartbeat_every = float(spec.get("heartbeat_every_seconds", 0.2))
    last_beat = 0.0

    def on_die(index: int, done: int) -> None:
        nonlocal last_beat
        lease.run_id = checkpointer.run_id
        lease.dies_done = done
        now = monotonic()
        if now - last_beat >= heartbeat_every:
            write_lease(lease_path, lease.touch(dies_done=done))
            last_beat = now

    start = perf_counter()
    try:
        scan = model.measure_dies(
            (lo, hi), config, on_die=on_die, finish_checkpoint=False
        )
    except BaseException:
        lease.state = "failed"
        write_lease(lease_path, lease.touch())
        raise
    wall = perf_counter() - start

    meta = {
        "shard_id": shard_id,
        "die_range": [lo, hi],
        "total_dies": scan.total_dies,
        "run_id": scan.run_id,
        "fingerprint": resume_fingerprint(config),
        "wafer": wafer_kwargs,
    }
    _write_result(Path(spec["result_path"]), scan, meta)

    from repro.obs.ledger import RunManifest, config_fingerprint, config_hash

    manifest = RunManifest(
        kind="shard",
        label=spec.get("label", f"shard[{lo},{hi})"),
        config=config_fingerprint(config),
        config_hash=config_hash(config),
        seed=wafer_kwargs.get("seed"),
        tech=model.tech.name,
        wall_seconds=wall,
        scalars=_shard_scalars(scan),
        extra={"shard_id": shard_id, "die_range": [lo, hi],
               "generation": lease.generation},
    )
    ledger.record(manifest, run_id=scan.run_id)
    # The checkpoint dies only after the result and manifest are
    # durable — a crash before this line re-runs zero dies on respawn.
    checkpointer.finish()

    lease.state = "done"
    lease.run_id = scan.run_id
    write_lease(lease_path, lease.touch(dies_done=hi - lo))
    return 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.fleet.worker <spec.json>`` entry point."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.fleet.worker <spec.json>",
              file=sys.stderr)
        return 2
    try:
        return run_shard(load_spec(argv[0]))
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
