"""T1 — accuracy of the converter (paper: "an accuracy of 6 %").

Dense capacitance sweep scoring the abacus inversion against truth,
plus the converter-depth ablation (8/20/32/64 steps) showing how the
paper's choice of 20 steps sits on the accuracy-vs-area trade-off.
"""

import numpy as np
from conftest import report

from repro.calibration.abacus import Abacus
from repro.calibration.accuracy import accuracy_sweep
from repro.calibration.design import design_structure
from repro.units import fF, to_fF


def bench_t1_accuracy(benchmark, tech, abacus_2x2):
    full = benchmark(accuracy_sweep, abacus_2x2)

    lines = [
        "accuracy of the 20-step converter over the design range:",
        f"  {full.summary()}",
        "",
        f"{'C_m (fF)':>9}  {'code':>5}  {'estimate (fF)':>14}  {'rel. error':>11}",
    ]
    for cm_ff in (12, 15, 20, 25, 30, 35, 40, 45, 50, 54):
        idx = int(np.argmin(np.abs(full.capacitances - cm_ff * fF)))
        code = int(full.codes[idx])
        est = full.estimates[idx]
        err = full.relative_errors[idx]
        est_s = f"{to_fF(est):.2f}" if np.isfinite(est) else "-"
        err_s = f"{100 * err:.1f} %" if np.isfinite(err) else "-"
        lines.append(f"{cm_ff:>9}  {code:>5}  {est_s:>14}  {err_s:>11}")
    lines.append("")
    lines.append(f"paper claim: ~6 % accuracy; measured at 30 fF: "
                 f"{100 * full.error_at(30 * fF):.1f} %")

    lines.append("")
    lines.append("converter-depth ablation (same 10-55 fF range):")
    lines.append(f"{'steps':>6}  {'err @30fF':>10}  {'mean err':>9}  {'worst bin (fF)':>15}")
    for depth in (8, 20, 32, 64):
        structure = design_structure(tech, 2, 2, num_steps=depth)
        abacus = Abacus.analytic(structure, 2, 2)
        sweep = accuracy_sweep(abacus)
        lines.append(
            f"{depth:>6}  {100 * sweep.error_at(30 * fF):>9.1f}%  "
            f"{100 * sweep.mean_error:>8.1f}%  "
            f"{to_fF(sweep.worst_quantization_step()):>15.2f}"
        )
    report("T1: converter accuracy + depth ablation", "\n".join(lines))

    assert full.error_at(30 * fF) < 0.06


def bench_t1_accuracy_vs_range_width(benchmark, tech):
    """Secondary sweep: a narrower requested range buys finer resolution.

    The achievable converter depth shrinks with the requested range (the
    endpoint current ratio sets it), so the narrow screen uses a shallow
    5-step converter — and still resolves the 30 fF target much more
    finely than the full-range 20-step design.
    """

    def build_and_sweep(c_lo_ff, c_hi_ff, steps):
        structure = design_structure(
            tech, 2, 2, c_lo=c_lo_ff * fF, c_hi=c_hi_ff * fF, num_steps=steps
        )
        abacus = Abacus.analytic(structure, 2, 2)
        return accuracy_sweep(
            abacus, c_start=c_lo_ff * fF * 1.05, c_stop=c_hi_ff * fF * 0.95
        )

    narrow = benchmark(build_and_sweep, 25, 35, 5)
    wide = build_and_sweep(10, 55, 20)
    lines = [
        f"{'range':>12}  {'steps':>6}  {'err @30fF':>10}",
        f"{'25-35 fF':>12}  {5:>6}  {100 * narrow.error_at(30 * fF):>9.2f}%",
        f"{'10-55 fF':>12}  {20:>6}  {100 * wide.error_at(30 * fF):>9.2f}%",
        "",
        "a production screen around the 30 fF target can trade range for",
        "resolution and converter area simultaneously.",
    ]
    report("T1b: range-vs-resolution trade", "\n".join(lines))
    assert narrow.error_at(30 * fF) < wide.error_at(30 * fF)
