"""March functional tests — the digital bitmapping baseline.

A march test is a sequence of *march elements*; each element visits
every cell in a fixed address order and applies a short op string
(read-expect / write).  The classics implemented here:

- **MATS++**: ``{⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}`` — detects stuck-at and
  address faults.
- **March C−**: ``{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0);
  ⇕(r0)}`` — adds coupling-fault coverage (catches storage bridges).
- **Retention test**: write a band, pause beyond the refresh interval,
  read back — catches leaky cells that march elements are too fast for.

Each run yields a :class:`~repro.bitmap.digital.DigitalBitmap` marking
every cell that miscompared at least once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.bitmap.digital import DigitalBitmap
from repro.edram.operations import ArrayOperations
from repro.errors import DiagnosisError


class Order(enum.Enum):
    """Address order of one march element."""

    ASCENDING = "up"
    DESCENDING = "down"
    ANY = "any"  # conventionally run ascending


@dataclass(frozen=True)
class Op:
    """One operation of a march element.

    ``read`` selects read-and-compare (expected value = ``value``) vs
    write (``value`` written).
    """

    read: bool
    value: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{'r' if self.read else 'w'}{int(self.value)}"


def _parse_ops(spec: str) -> tuple[Op, ...]:
    """Parse ``"r0,w1"``-style op strings."""
    ops = []
    for token in spec.split(","):
        token = token.strip()
        if len(token) != 2 or token[0] not in "rw" or token[1] not in "01":
            raise DiagnosisError(f"bad march op {token!r} (expected e.g. 'r0' or 'w1')")
        ops.append(Op(read=token[0] == "r", value=token[1] == "1"))
    return tuple(ops)


@dataclass(frozen=True)
class MarchElement:
    """One march element: an order plus an op string."""

    order: Order
    ops: tuple[Op, ...]

    @classmethod
    def parse(cls, order: Order, spec: str) -> "MarchElement":
        """Build from an op string like ``"r0,w1"``."""
        return cls(order=order, ops=_parse_ops(spec))


class MarchTest:
    """A named sequence of march elements, runnable against an array."""

    def __init__(self, name: str, elements: list[MarchElement]) -> None:
        if not elements:
            raise DiagnosisError("march test needs at least one element")
        self.name = name
        self.elements = elements

    @property
    def op_count_per_cell(self) -> int:
        """Total operations applied to each cell (complexity metric)."""
        return sum(len(e.ops) for e in self.elements)

    def _addresses(self, ops: ArrayOperations, order: Order) -> list[tuple[int, int]]:
        addresses = [
            (r, c) for r in range(ops.array.rows) for c in range(ops.array.cols)
        ]
        if order is Order.DESCENDING:
            addresses.reverse()
        return addresses

    def run(self, ops: ArrayOperations) -> DigitalBitmap:
        """Execute against an array; returns the fail bitmap."""
        fails = np.zeros((ops.array.rows, ops.array.cols), dtype=bool)
        for element in self.elements:
            for row, col in self._addresses(ops, element.order):
                for op in element.ops:
                    if op.read:
                        if ops.read(row, col) != op.value:
                            fails[row, col] = True
                    else:
                        ops.write(row, col, op.value)
        return DigitalBitmap(fails, source=self.name)


# ---------------------------------------------------------------------------
# Standard algorithms
# ---------------------------------------------------------------------------


def mats_pp() -> MarchTest:
    """MATS++: {⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}."""
    return MarchTest(
        "MATS++",
        [
            MarchElement.parse(Order.ANY, "w0"),
            MarchElement.parse(Order.ASCENDING, "r0,w1"),
            MarchElement.parse(Order.DESCENDING, "r1,w0,r0"),
        ],
    )


def march_c_minus() -> MarchTest:
    """March C−: {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}."""
    return MarchTest(
        "March C-",
        [
            MarchElement.parse(Order.ANY, "w0"),
            MarchElement.parse(Order.ASCENDING, "r0,w1"),
            MarchElement.parse(Order.ASCENDING, "r1,w0"),
            MarchElement.parse(Order.DESCENDING, "r0,w1"),
            MarchElement.parse(Order.DESCENDING, "r1,w0"),
            MarchElement.parse(Order.ANY, "r0"),
        ],
    )


def mats() -> MarchTest:
    """MATS: {⇕(w0); ⇕(r0,w1); ⇕(r1)} — minimal stuck-at coverage."""
    return MarchTest(
        "MATS",
        [
            MarchElement.parse(Order.ANY, "w0"),
            MarchElement.parse(Order.ANY, "r0,w1"),
            MarchElement.parse(Order.ANY, "r1"),
        ],
    )


def march_b() -> MarchTest:
    """March B: {⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1);
    ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)} — adds linked coupling-fault coverage.
    """
    return MarchTest(
        "March B",
        [
            MarchElement.parse(Order.ANY, "w0"),
            MarchElement.parse(Order.ASCENDING, "r0,w1,r1,w0,r0,w1"),
            MarchElement.parse(Order.ASCENDING, "r1,w0,w1"),
            MarchElement.parse(Order.DESCENDING, "r1,w0,w1,w0"),
            MarchElement.parse(Order.DESCENDING, "r0,w1,w0"),
        ],
    )


def march_catalog() -> dict[str, MarchTest]:
    """Every bundled march algorithm, keyed by name.

    Ordered by op count — the classical test-time vs coverage ladder.
    """
    tests = [mats(), mats_pp(), march_c_minus(), march_b()]
    return {t.name: t for t in sorted(tests, key=lambda t: t.op_count_per_cell)}


def retention_test(ops: ArrayOperations, pause: float, value: bool = True) -> DigitalBitmap:
    """Write-pause-read retention screen.

    Writes ``value`` everywhere, idles ``pause`` seconds (no refresh),
    then reads back.  Cells that drooped below the sense margin fail.
    """
    if pause < 0:
        raise DiagnosisError(f"pause must be >= 0, got {pause}")
    ops.write_solid(value)
    ops.pause(pause)
    fails = np.zeros((ops.array.rows, ops.array.cols), dtype=bool)
    for row in range(ops.array.rows):
        for col in range(ops.array.cols):
            if ops.read(row, col) != value:
                fails[row, col] = True
    return DigitalBitmap(fails, source=f"retention({pause * 1e3:.0f} ms)")
