"""Per-cell defect classification from the analog bitmap.

The paper notes that code 0 is three-way ambiguous: "The capacitor value
is under 10 fF; the capacitor is shorted; the capacitor behaves like an
open."  The classifier resolves much of that ambiguity with context the
analog bitmap itself provides:

- A **dielectric short** couples the shorted cell's bitline capacitance
  onto the plate, so the *same-row neighbours inside the macro* read a
  visibly elevated code.  No other code-0 cause does that.
- An **open** (or deep-low) capacitor leaves the neighbours untouched.

Digital test results, when supplied, refine things further (a code-0
cell that still *reads and writes* correctly cannot be open — it is a
below-floor capacitor that happens to retain enough signal).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.window import SpecificationWindow, SpecVerdict
from repro.errors import DiagnosisError


class CellVerdict(enum.Enum):
    """Refined per-cell classification."""

    IN_SPEC = "in_spec"
    LOW_CAP = "low_cap"
    HIGH_CAP = "high_cap"
    SHORT = "short"
    OPEN_OR_UNDER = "open_or_under"  # code 0 without a short fingerprint
    UNDER_FLOOR = "under_floor"  # code 0 but digitally functional
    OVER_RANGE = "over_range"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CellClassifier:
    """Classify every cell of an analog bitmap.

    Parameters
    ----------
    bitmap:
        The calibrated analog bitmap.
    window:
        Specification window for pass/parametric verdicts.
    macro_cols:
        Macro width of the scanned array (needed to know which
        neighbours share a plate with a candidate short).
    short_code_lift:
        Minimum code elevation of same-row macro neighbours (relative to
        the array's median code) for a code-0 cell to be called SHORT.
    """

    def __init__(
        self,
        bitmap: AnalogBitmap,
        window: SpecificationWindow,
        macro_cols: int,
        short_code_lift: int = 2,
    ) -> None:
        if macro_cols < 1:
            raise DiagnosisError(f"macro_cols must be >= 1, got {macro_cols}")
        if bitmap.shape[1] % macro_cols != 0:
            raise DiagnosisError(
                f"macro_cols {macro_cols} does not divide bitmap width {bitmap.shape[1]}"
            )
        self.bitmap = bitmap
        self.window = window
        self.macro_cols = macro_cols
        self.short_code_lift = short_code_lift

    def _row_neighbour_codes(self, row: int, col: int) -> list[int]:
        """Codes of the same-row cells sharing the macro plate."""
        start = (col // self.macro_cols) * self.macro_cols
        return [
            int(self.bitmap.codes[row, c])
            for c in range(start, start + self.macro_cols)
            if c != col
        ]

    def classify_cell(
        self, row: int, col: int, digital_fail: bool | None = None
    ) -> CellVerdict:
        """Verdict for one cell; ``digital_fail`` refines code-0 cases."""
        code = int(self.bitmap.codes[row, col])
        verdict = self.window.classify(code)
        if verdict is SpecVerdict.PASS:
            return CellVerdict.IN_SPEC
        if verdict is SpecVerdict.FAIL_LOW:
            return CellVerdict.LOW_CAP
        if verdict is SpecVerdict.FAIL_HIGH:
            return CellVerdict.HIGH_CAP
        if verdict is SpecVerdict.OVER_RANGE:
            return CellVerdict.OVER_RANGE
        # Code 0: disambiguate with the macro-neighbour fingerprint.
        neighbours = self._row_neighbour_codes(row, col)
        median = float(np.median(self.bitmap.codes))
        if neighbours and min(neighbours) >= median + self.short_code_lift:
            return CellVerdict.SHORT
        if digital_fail is False:
            return CellVerdict.UNDER_FLOOR
        return CellVerdict.OPEN_OR_UNDER

    def classify_all(self, digital_fails: np.ndarray | None = None) -> np.ndarray:
        """Verdict matrix for the whole bitmap (dtype = object of enums)."""
        rows, cols = self.bitmap.shape
        if digital_fails is not None:
            digital_fails = np.asarray(digital_fails)
            if digital_fails.shape != (rows, cols):
                raise DiagnosisError(
                    f"digital_fails shape {digital_fails.shape} != bitmap {self.bitmap.shape}"
                )
        out = np.empty((rows, cols), dtype=object)
        for r in range(rows):
            for c in range(cols):
                fail = None if digital_fails is None else bool(digital_fails[r, c])
                out[r, c] = self.classify_cell(r, c, fail)
        return out

    def verdict_counts(self, verdicts: np.ndarray) -> dict[CellVerdict, int]:
        """Histogram of a verdict matrix."""
        counts: dict[CellVerdict, int] = {}
        for verdict in verdicts.ravel():
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts
