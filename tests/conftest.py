"""Shared fixtures.

Expensive objects (designed structures, abaci) are session-scoped: they
are pure functions of the technology card and geometry, so sharing them
across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.tech.parameters import default_technology


@pytest.fixture(scope="session")
def tech():
    """The nominal 0.18 µm eDRAM technology card."""
    return default_technology()


@pytest.fixture(scope="session")
def structure_2x2(tech):
    """Structure designed for the paper's Figure-1-like 2×2 macro."""
    return design_structure(tech, 2, 2)


@pytest.fixture(scope="session")
def abacus_2x2(structure_2x2):
    """Analytic abacus for the 2×2 reference configuration."""
    return Abacus.analytic(structure_2x2, 2, 2)


@pytest.fixture(scope="session")
def structure_8x2(tech):
    """Structure for an 8×2 macro (used by mid-size scan tests)."""
    return design_structure(tech, 8, 2)


@pytest.fixture(scope="session")
def abacus_8x2(structure_8x2):
    """Analytic abacus for the 8×2 configuration."""
    return Abacus.analytic(structure_8x2, 8, 2)


@pytest.fixture()
def array_2x2(tech):
    """A fresh healthy 2×2 array (one macro)."""
    return EDRAMArray(2, 2, tech=tech, macro_cols=2)


@pytest.fixture()
def array_8x4(tech):
    """A fresh healthy 8×4 array (two 8×2 macros)."""
    return EDRAMArray(8, 4, tech=tech, macro_cols=2)
