"""Execution of the five-phase measurement flow.

:class:`MeasurementSequencer` measures one cell of one macro through
either tier:

- :meth:`measure_charge` — walks the exact ideal-switch network through
  phases 1–4, then converts the resulting V_GS statically (the paper's
  phase 5 ramp reduced to its endpoint condition).  Exact, fast, and the
  reference for the closed-form scan tier.
- :meth:`measure_transient` — integrates the full transistor netlist
  through all five phases, drives the real current staircase through the
  shift register model, and decodes the OUT flip exactly as a tester
  would.  Slow but honest; this is the Figure-2 tier.

Both return :class:`~repro.measure.result.MeasurementResult` with the
same code for the same cell (cross-validated in the integration tests,
±1 code for converter-edge cases).
"""

from __future__ import annotations

from repro.circuit.charge import CapacitorNetwork
from repro.circuit.transient import TransientOptions, transient_analysis
from repro.circuit.waveform import Waveform
from repro.edram.array import MacroCell
from repro.errors import MeasurementError
from repro.measure.netlist_builder import (
    ChargeNetlist,
    build_charge_network,
    build_measurement_circuit,
    _bitline_node,
)
from repro.measure.phases import Phase, PhasePlan
from repro.measure.result import FlowTrace, MeasurementResult
from repro.measure.shift_register import ShiftRegister
from repro.measure.structure import MeasurementStructure
from repro.obs.metrics import active_metrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.resilience.faults import fault_point


class MeasurementSequencer:
    """Runs measurement flows against one macro-cell.

    Parameters
    ----------
    macro:
        The macro-cell under test.
    structure:
        The (designed) measurement structure attached to its plate.
    """

    def __init__(self, macro: MacroCell, structure: MeasurementStructure) -> None:
        self.macro = macro
        self.structure = structure
        self._built: ChargeNetlist | None = None
        self._built_version: int | None = None
        self._pristine: tuple | None = None

    def _charge_network(self) -> ChargeNetlist:
        """The macro's charge netlist, built once and reset per flow.

        The netlist is rebuilt when the array reports a mutation
        (capacitance edit, defect injection) since the last build;
        otherwise the cached network is restored to its as-built state,
        which is exactly equivalent to a fresh build.  This turns the
        engine tier's per-cell cost from build + solve into solve only.
        Hit/miss counts report to the ambient metrics registry.
        """
        version = self.macro.array.version
        if self._built is None or self._built_version != version:
            active_metrics().counter(
                "sequencer.netlist_cache_misses", "charge netlists built"
            ).inc()
            self._built = build_charge_network(self.macro, self.structure)
            self._pristine = self._built.network.snapshot()
            self._built_version = version
        else:
            active_metrics().counter(
                "sequencer.netlist_cache_hits", "charge netlists restored"
            ).inc()
            if self._pristine is None:
                raise MeasurementError(
                    "cached charge netlist has no pristine snapshot to restore"
                )
            self._built.network.restore(self._pristine)
        return self._built

    def _check_target(self, row: int, lcol: int) -> None:
        if not 0 <= row < self.macro.rows:
            raise MeasurementError(f"target row {row} outside 0..{self.macro.rows - 1}")
        if not 0 <= lcol < self.macro.array.macro_cols:
            raise MeasurementError(
                f"target local col {lcol} outside 0..{self.macro.array.macro_cols - 1}"
            )

    # ------------------------------------------------------------------
    # Static pre-flight
    # ------------------------------------------------------------------

    def preflight(self, waive_known_defects: bool = True) -> "object":
        """Run the static ERC pass on this macro's network and flow.

        Returns the :class:`~repro.lint.LintReport`.  Findings anchored
        to storage nodes of *known* (injected) defects are waived when
        ``waive_known_defects`` — a scan exists to measure those; only
        unexpected structural damage should fail the check.  No solver
        runs.
        """
        from repro.lint import preflight_macro

        return preflight_macro(
            self.macro,
            self.structure,
            built=self._charge_network(),
            waive_known_defects=waive_known_defects,
        )

    # ------------------------------------------------------------------
    # Charge tier
    # ------------------------------------------------------------------

    def measure_charge(
        self,
        row: int,
        lcol: int,
        trace: FlowTrace | None = None,
        preflight: bool = False,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ) -> MeasurementResult:
        """Measure cell (row, lcol) through the exact charge tier.

        With ``preflight=True`` the static ERC pass runs first and a
        structurally bad network raises
        :class:`~repro.errors.RuleViolation` naming the violated rule
        codes instead of failing inside the charge solver.  ``tracer``
        receives a ``cell`` span with one child per measurement phase
        (1–4 inside :meth:`run_charge_phases`, the phase-5 conversion
        here).
        """
        self._check_target(row, lcol)
        fault_point(
            "sequencer.measure",
            macro=self.macro.index,
            row=self.macro.row_start + row,
            col=self.macro.col_start + lcol,
        )
        if preflight:
            from repro.lint import raise_on_errors

            raise_on_errors(self.preflight())
        with tracer.span(
            "cell",
            row=self.macro.row_start + row,
            col=self.macro.col_start + lcol,
            tier="charge",
        ) as span:
            built = self._charge_network()
            vgs = self.run_charge_phases(built, row, lcol, trace, tracer)
            # Phase 5 — CONVERT: the current-ramp endpoint condition,
            # evaluated statically.
            with tracer.span("phase:convert"):
                code = self.structure.code_for_vgs(vgs)
            span.attributes["code"] = code
        return MeasurementResult(
            code=code,
            num_steps=self.structure.design.num_steps,
            vgs=vgs,
            tier="charge",
            address=(self.macro.row_start + row, self.macro.col_start + lcol),
        )

    def run_charge_phases(
        self,
        built: ChargeNetlist,
        row: int,
        lcol: int,
        trace: FlowTrace | None = None,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ) -> float:
        """Drive the network through phases 1–4; return the final V_GS."""
        net = built.network
        mc = self.macro.array.macro_cols
        vdd = self.structure.tech.vdd

        # Phase 1 — DISCHARGE: all wordlines on, everything driven low.
        with tracer.span("phase:discharge"):
            for name in built.access_switches.values():
                net.close_switch(name)
            for col in range(mc):
                net.drive(_bitline_node(col), 0.0)
            net.drive("plate", 0.0)
            net.close_switch(built.lec_switch)
            state = net.settle()
        if trace is not None:
            trace.record("discharge", state["plate"], state["gate"])

        # Phase 2 — CHARGE C_m: only the target row stays selected; other
        # bitlines rise to V_DD; LEC opens; the plate is driven to V_DD.
        #
        # Defect shorts (dielectric shorts, storage bridges) can tie
        # nodes with different intended drives together; physically those
        # contentions resolve through on-resistances during the phase and
        # the *grounded target bitline always wins by the end of the
        # ISOLATE phase* (it is the only drive left standing).  The
        # ideal-switch model renders that as priority-resolved driving:
        # the target bitline claims its island first, then the plate,
        # then the neighbour bitlines; later claims on an already-claimed
        # island with a different level are skipped (left to follow).
        with tracer.span("phase:charge"):
            for (r, _c), name in built.access_switches.items():
                if r != row:
                    net.open_switch(name)
            net.open_switch(built.lec_switch)
            for col in range(mc):
                if col != lcol:
                    net.float_node(_bitline_node(col))
            net.float_node("plate")
            desired: list[tuple[str, float]] = [
                (_bitline_node(lcol), 0.0), ("plate", vdd)
            ]
            desired += [
                (_bitline_node(col), vdd) for col in range(mc) if col != lcol
            ]
            claimed: dict[frozenset, float] = {}
            for node, level in desired:
                island = frozenset(net.island_of(node))
                holder = claimed.get(island)
                if holder is not None and holder != level:
                    continue  # a higher-priority drive owns this island
                claimed[island] = level
                net.drive(node, level)
            state = net.settle()
        if trace is not None:
            trace.record("charge", state["plate"], state["gate"])

        # Phase 3 — ISOLATE: PRG opens, every non-target bitline floats.
        with tracer.span("phase:isolate"):
            if net.is_driven("plate"):
                net.float_node("plate")
            for col in range(mc):
                if col != lcol:
                    net.float_node(_bitline_node(col))
            state = net.settle()
        if trace is not None:
            trace.record("isolate", state["plate"], state["gate"])

        # Phase 4 — SHARE: LEC closes; C_m shares with C_REF.
        with tracer.span("phase:share"):
            net.close_switch(built.lec_switch)
            state = net.settle()
        if trace is not None:
            trace.record("share", state["plate"], state["gate"])
        return state["gate"]

    # ------------------------------------------------------------------
    # Transient tier
    # ------------------------------------------------------------------

    def measure_transient(
        self,
        row: int,
        lcol: int,
        dt: float = 25e-12,
        return_waveform: bool = False,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ) -> MeasurementResult | tuple[MeasurementResult, Waveform]:
        """Measure cell (row, lcol) through the full MNA transient tier.

        The shift-register model is clocked once per current step and
        frozen on the OUT flip, exactly as the on-chip controller would;
        the returned code therefore exercises the register path too.
        ``tracer`` records a ``cell`` span with ``integrate`` (the MNA
        transient over all five phases) and ``phase:convert`` (register
        decode) children — the transient tier cannot split phases 1–4
        into separate spans because they share one integration.
        """
        self._check_target(row, lcol)
        with tracer.span(
            "cell",
            row=self.macro.row_start + row,
            col=self.macro.col_start + lcol,
            tier="transient",
        ) as cell_span:
            built = build_measurement_circuit(self.macro, row, lcol, self.structure)
            plan: PhasePlan = built.plan
            record = ["plate", "gate", "drain", "out"]
            with tracer.span("integrate", dt=dt):
                waveform = transient_analysis(
                    built.circuit,
                    t_stop=plan.total_duration,
                    options=TransientOptions(dt=dt, record=record),
                )
            share_end = plan.window(Phase.SHARE).end
            vgs = waveform.value_at("gate", share_end - dt)

            with tracer.span("phase:convert"):
                threshold = self.structure.tech.half_vdd
                flips = [
                    t
                    for t in waveform.crossings("out", threshold, "rise")
                    if t >= plan.convert_start
                ]
                flip_time = flips[0] if flips else None

                register = ShiftRegister(self.structure.design.num_steps)
                staircase = self.structure.dac.staircase(
                    plan.convert_start, self.structure.design.step_duration
                )
                for step in range(1, self.structure.design.num_steps + 1):
                    t_step = staircase.step_start_time(step)
                    if flip_time is not None and flip_time < t_step:
                        break
                    register.clock()
                if flip_time is not None:
                    register.freeze()
                code = register.extract_code()
            cell_span.attributes["code"] = code

        result = MeasurementResult(
            code=code,
            num_steps=self.structure.design.num_steps,
            vgs=vgs,
            flip_time=flip_time,
            tier="transient",
            address=(self.macro.row_start + row, self.macro.col_start + lcol),
        )
        if return_waveform:
            return result, waveform
        return result

    # ------------------------------------------------------------------
    # Standard-mode check
    # ------------------------------------------------------------------

    def standard_mode_plate_voltage(self) -> float:
        """Plate voltage with the structure switched off (STD on).

        In standard operation the structure must be invisible: STD holds
        the plate at V_DD/2 and every other switch is open.  Returns the
        settled plate voltage (should equal V_DD/2 exactly in the
        ideal-switch view).
        """
        built = self._charge_network()
        net: CapacitorNetwork = built.network
        net.drive("plate", self.structure.tech.half_vdd)  # via STD
        state = net.settle()
        return state["plate"]
