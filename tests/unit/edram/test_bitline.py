"""Bitline charge-sharing arithmetic."""

import pytest

from repro.edram.bitline import Bitline
from repro.errors import ArrayConfigError
from repro.units import fF


@pytest.fixture()
def bitline():
    return Bitline(capacitance=200 * fF, precharge_voltage=0.9)


def test_rejects_nonpositive_capacitance():
    with pytest.raises(ArrayConfigError):
        Bitline(capacitance=0.0, precharge_voltage=0.9)


def test_share_with_full_one(bitline):
    v = bitline.share_with_cell(30 * fF, 1.8)
    expected = (200 * 0.9 + 30 * 1.8) / 230
    assert v == pytest.approx(expected)


def test_share_with_zero_cap_is_precharge(bitline):
    assert bitline.share_with_cell(0.0, 1.8) == pytest.approx(0.9)


def test_read_signal_sign(bitline):
    assert bitline.read_signal(30 * fF, 1.8) > 0  # stored '1'
    assert bitline.read_signal(30 * fF, 0.0) < 0  # stored '0'
    assert bitline.read_signal(30 * fF, 0.9) == pytest.approx(0.0)


def test_read_signal_magnitude(bitline):
    # dV = (V_cell - V_pre) * C / (C + C_BL)
    dv = bitline.read_signal(30 * fF, 1.8)
    assert dv == pytest.approx(0.9 * 30 / 230)


def test_transfer_ratio(bitline):
    assert bitline.transfer_ratio(30 * fF) == pytest.approx(30 / 230)
    assert bitline.transfer_ratio(0.0) == 0.0


def test_negative_cell_capacitance_rejected(bitline):
    with pytest.raises(ArrayConfigError):
        bitline.share_with_cell(-1.0, 0.0)
    with pytest.raises(ArrayConfigError):
        bitline.transfer_ratio(-1.0)


def test_signal_shrinks_with_longer_bitline():
    short = Bitline(50 * fF, 0.9)
    long = Bitline(400 * fF, 0.9)
    assert short.read_signal(30 * fF, 1.8) > long.read_signal(30 * fF, 1.8)
