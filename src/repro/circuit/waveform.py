"""Waveform container and measurement utilities.

:class:`Waveform` holds the result of a transient analysis: a shared time
axis plus one voltage trace per node.  It offers the handful of
measurements the benches need — value sampling, threshold-crossing
detection (used to find when OUT flips), and window extraction — plus a
compact ASCII rendering for terminal-friendly "figures".
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ReproError


class Waveform:
    """Immutable set of traces over a common time axis.

    Parameters
    ----------
    time:
        Strictly increasing sample times in seconds.
    traces:
        Mapping of node name to a voltage array of the same length.
    """

    def __init__(self, time: np.ndarray, traces: Mapping[str, np.ndarray]) -> None:
        self.time = np.asarray(time, dtype=float)
        if self.time.ndim != 1 or len(self.time) < 2:
            raise ReproError("waveform needs a 1-D time axis with >= 2 samples")
        if np.any(np.diff(self.time) <= 0):
            raise ReproError("waveform time axis must be strictly increasing")
        self.traces = {name: np.asarray(v, dtype=float) for name, v in traces.items()}
        for name, values in self.traces.items():
            if values.shape != self.time.shape:
                raise ReproError(
                    f"trace {name!r} has {values.shape[0] if values.ndim else 0} samples, "
                    f"time axis has {self.time.shape[0]}"
                )

    def __contains__(self, node: str) -> bool:
        return node in self.traces

    def __getitem__(self, node: str) -> np.ndarray:
        try:
            return self.traces[node]
        except KeyError:
            raise ReproError(
                f"no trace for node {node!r}; available: {sorted(self.traces)}"
            ) from None

    @property
    def t_start(self) -> float:
        """First sample time, seconds."""
        return float(self.time[0])

    @property
    def t_stop(self) -> float:
        """Last sample time, seconds."""
        return float(self.time[-1])

    def value_at(self, node: str, time: float) -> float:
        """Linearly interpolated voltage of ``node`` at ``time``."""
        if not self.t_start <= time <= self.t_stop:
            raise ReproError(
                f"time {time} outside waveform range [{self.t_start}, {self.t_stop}]"
            )
        return float(np.interp(time, self.time, self[node]))

    def final(self, node: str) -> float:
        """Voltage of ``node`` at the last sample."""
        return float(self[node][-1])

    def crossings(self, node: str, threshold: float, direction: str = "rise") -> list[float]:
        """Times at which ``node`` crosses ``threshold``.

        ``direction`` is ``"rise"``, ``"fall"`` or ``"both"``.  Each
        crossing time is linearly interpolated between the bracketing
        samples.
        """
        if direction not in ("rise", "fall", "both"):
            raise ReproError(f"direction must be rise/fall/both, got {direction!r}")
        v = self[node]
        above = v > threshold
        out: list[float] = []
        for i in range(1, len(v)):
            if above[i] == above[i - 1]:
                continue
            rising = above[i] and not above[i - 1]
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and rising:
                continue
            t0, t1 = self.time[i - 1], self.time[i]
            v0, v1 = v[i - 1], v[i]
            out.append(float(t0 + (threshold - v0) * (t1 - t0) / (v1 - v0)))
        return out

    def first_crossing(self, node: str, threshold: float, direction: str = "rise") -> float | None:
        """First crossing time, or ``None`` if the trace never crosses."""
        times = self.crossings(node, threshold, direction)
        return times[0] if times else None

    def window(self, t_from: float, t_to: float) -> "Waveform":
        """Sub-waveform restricted to ``[t_from, t_to]`` (inclusive)."""
        if t_to <= t_from:
            raise ReproError(f"empty window [{t_from}, {t_to}]")
        mask = (self.time >= t_from) & (self.time <= t_to)
        if int(mask.sum()) < 2:
            raise ReproError(f"window [{t_from}, {t_to}] contains fewer than 2 samples")
        return Waveform(self.time[mask], {k: v[mask] for k, v in self.traces.items()})

    def slew_rate(self, node: str, v_from: float, v_to: float) -> float:
        """Average slew between the first crossings of two levels, V/s.

        Positive for rising transitions (``v_to > v_from``), negative for
        falling ones.  Raises when either level is never crossed.
        """
        direction = "rise" if v_to > v_from else "fall"
        t_from = self.first_crossing(node, v_from, direction)
        t_to = self.first_crossing(node, v_to, direction)
        if t_from is None or t_to is None or t_to <= t_from:
            raise ReproError(
                f"trace {node!r} does not traverse [{v_from}, {v_to}] cleanly"
            )
        return (v_to - v_from) / (t_to - t_from)

    def settling_time(
        self, node: str, target: float, tolerance: float, t_from: float | None = None
    ) -> float:
        """Time after which the trace stays within ``±tolerance`` of ``target``.

        Measured from ``t_from`` (default: start).  Raises when the trace
        never settles.
        """
        if tolerance <= 0:
            raise ReproError(f"tolerance must be positive, got {tolerance}")
        start = self.t_start if t_from is None else t_from
        mask = self.time >= start
        values = self[node][mask]
        times = self.time[mask]
        inside = np.abs(values - target) <= tolerance
        if not inside[-1]:
            raise ReproError(f"trace {node!r} never settles to {target}±{tolerance}")
        # Last excursion outside the band marks the settling instant.
        outside = np.nonzero(~inside)[0]
        if outside.size == 0:
            return float(times[0])
        last_out = outside[-1]
        return float(times[min(last_out + 1, len(times) - 1)])

    def overshoot(self, node: str, target: float, t_from: float | None = None) -> float:
        """Peak excursion beyond ``target`` after ``t_from``, volts (>= 0)."""
        start = self.t_start if t_from is None else t_from
        values = self[node][self.time >= start]
        if values.size == 0:
            raise ReproError("empty measurement window")
        return max(0.0, float(values.max()) - target)

    def ascii_plot(self, nodes: list[str], width: int = 72, height: int = 12) -> str:
        """Render the selected traces as a small ASCII chart.

        One character per column; traces are overlaid with distinct
        symbols.  Good enough to eyeball Figure-2-style waveforms in a
        terminal log.
        """
        symbols = "*o+x#@"
        lo = min(float(self[n].min()) for n in nodes)
        hi = max(float(self[n].max()) for n in nodes)
        if hi - lo < 1e-12:
            hi = lo + 1.0
        grid = [[" "] * width for _ in range(height)]
        t_axis = np.linspace(self.t_start, self.t_stop, width)
        for k, node in enumerate(nodes):
            resampled = np.interp(t_axis, self.time, self[node])
            for col, value in enumerate(resampled):
                row = int(round((hi - value) / (hi - lo) * (height - 1)))
                grid[row][col] = symbols[k % len(symbols)]
        legend = "  ".join(
            f"{symbols[k % len(symbols)]}={node}" for k, node in enumerate(nodes)
        )
        lines = [f"{hi:8.3f} |" + "".join(grid[0])]
        lines += ["         |" + "".join(row) for row in grid[1:-1]]
        lines += [f"{lo:8.3f} |" + "".join(grid[-1])]
        lines.append(
            f"          t: {self.t_start:.3e} .. {self.t_stop:.3e} s    {legend}"
        )
        return "\n".join(lines)
