"""Property tests: the batched kernel is bit-exact vs the per-macro path.

The vectorized whole-array kernel
(:func:`repro.measure.kernel.closed_form_vgs_plane`) promises *bit*
equality with the per-macro closed form — not ``allclose``, equality.
These tests hammer that promise across random macro geometries
(including 1-row/1-column edge shapes), random capacitance maps, and
random defect populations, then confirm the scan-level dispatch keeps
quality planes (DEGRADED / FAILED cells) identical to the legacy path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import SingularCircuitError
from repro.measure.config import ScanConfig
from repro.measure.kernel import closed_form_vgs_plane
from repro.measure.scan import ArrayScanner
from repro.resilience.faults import Fault, FaultPlan
from repro.resilience.quality import CellQuality
from repro.tech.parameters import default_technology
from repro.units import fF

_TECH = default_technology()

#: Kinds the closed form handles directly (BRIDGE forces the engine
#: tier and is exercised separately in the scan-level test below).
_KERNEL_KINDS = (
    DefectKind.SHORT,
    DefectKind.OPEN,
    DefectKind.ACCESS_OPEN,
    DefectKind.LOW_CAP,
    DefectKind.HIGH_CAP,
    DefectKind.RETENTION,
)


def _defect(kind: DefectKind) -> CellDefect:
    if kind is DefectKind.LOW_CAP:
        return CellDefect(kind, factor=0.4)
    if kind in (DefectKind.HIGH_CAP, DefectKind.RETENTION):
        return CellDefect(kind, factor=2.5)
    return CellDefect(kind)


@st.composite
def _arrays(draw) -> EDRAMArray:
    """A random array: random tile grid, caps, and defect population."""
    macro_rows = draw(st.integers(1, 4))
    macro_cols = draw(st.integers(1, 3))
    rows = macro_rows * draw(st.integers(1, 3))
    cols = macro_cols * draw(st.integers(1, 3))
    caps = draw(
        st.lists(
            st.floats(10.0, 60.0), min_size=rows * cols, max_size=rows * cols
        )
    )
    array = EDRAMArray(
        rows,
        cols,
        tech=_TECH,
        macro_rows=macro_rows,
        macro_cols=macro_cols,
        capacitance_map=np.array(caps).reshape(rows, cols) * fF,
    )
    for _ in range(draw(st.integers(0, 4))):
        row = draw(st.integers(0, rows - 1))
        col = draw(st.integers(0, cols - 1))
        cell = array.cell(row, col)
        if cell.defect is None:
            cell.apply_defect(_defect(draw(st.sampled_from(_KERNEL_KINDS))))
    return array


@given(array=_arrays())
@settings(max_examples=60, deadline=None)
def test_kernel_matches_per_macro_closed_form(array):
    # The whole-array plane, sliced per tile, must equal the per-macro
    # closed form bit for bit — same algebra, same reduction order.
    scanner = ArrayScanner(array, None)
    plane = closed_form_vgs_plane(
        array.capacitance_view(),
        array.defect_kind_view(),
        scanner.kernel_constants(),
    )
    assert plane.shape == (array.rows, array.cols)
    for macro in array.macros():
        tile = plane[
            macro.row_start : macro.row_stop, macro.col_start : macro.col_stop
        ]
        np.testing.assert_array_equal(tile, scanner.closed_form_vgs(macro))


@given(array=_arrays())
@settings(max_examples=40, deadline=None)
def test_kernel_scan_matches_legacy_scan(array):
    # Scan-level dispatch: the kernel path must reproduce the legacy
    # per-macro serial scan exactly — codes, V_GS, tiers and quality.
    fast = ArrayScanner(array, None).scan()
    slow = ArrayScanner(array, None, use_kernel=False).scan()
    np.testing.assert_array_equal(fast.vgs, slow.vgs)
    np.testing.assert_array_equal(fast.codes, slow.codes)
    np.testing.assert_array_equal(fast.tiers, slow.tiers)
    np.testing.assert_array_equal(fast.quality, slow.quality)
    assert fast.stats.kernel_cells == array.num_cells
    assert slow.stats.kernel_cells == 0


@given(array=_arrays(), data=st.data())
@settings(max_examples=20, deadline=None)
def test_failed_tiles_survive_kernel_dispatch(array, data):
    # An armed fault plan disables the kernel (fault points live inside
    # the per-macro path); the fallback must be automatic and the FAILED
    # placeholder tile identical to the legacy scanner's.
    target = data.draw(st.integers(0, array.num_macros - 1))

    def plan() -> FaultPlan:
        # Fresh instance per scan: firing counters are runtime state.
        return FaultPlan(
            [
                Fault(
                    "scan.closed_form",
                    error=SingularCircuitError("injected: dead calibration"),
                    match={"macro": target},
                    times=None,
                )
            ]
        )

    fast = ArrayScanner(array, None).scan(ScanConfig(faults=plan()))
    slow = ArrayScanner(array, None, use_kernel=False).scan(
        ScanConfig(faults=plan())
    )
    np.testing.assert_array_equal(fast.vgs, slow.vgs)
    np.testing.assert_array_equal(fast.codes, slow.codes)
    np.testing.assert_array_equal(fast.quality, slow.quality)
    assert fast.stats.kernel_cells == 0
    macro = array.macro(target)
    tile = fast.quality[
        macro.row_start : macro.row_stop, macro.col_start : macro.col_stop
    ]
    assert (tile == CellQuality.FAILED).all()


def test_degraded_engine_cells_survive_kernel_dispatch():
    # A BRIDGE forces its macro onto the engine tier on both paths; an
    # injected solver failure inside that macro exercises the per-cell
    # closed-form rescue, so the scan carries a DEGRADED cell.  The
    # kernel-enabled scanner must fall back (fault plan armed) and land
    # on identical planes, DEGRADED flag included.
    def build() -> EDRAMArray:
        array = EDRAMArray(8, 4, tech=_TECH, macro_rows=4, macro_cols=2)
        array.cell(1, 0).apply_defect(CellDefect(DefectKind.BRIDGE))
        return array

    def plan() -> FaultPlan:
        return FaultPlan(
            [
                Fault(
                    "sequencer.measure",
                    error=SingularCircuitError("injected: cell solve died"),
                    match={"row": 2, "col": 1},
                    times=None,
                )
            ]
        )

    fast = ArrayScanner(build(), None).scan(ScanConfig(faults=plan()))
    slow = ArrayScanner(build(), None, use_kernel=False).scan(
        ScanConfig(faults=plan())
    )
    np.testing.assert_array_equal(fast.vgs, slow.vgs)
    np.testing.assert_array_equal(fast.codes, slow.codes)
    np.testing.assert_array_equal(fast.tiers, slow.tiers)
    np.testing.assert_array_equal(fast.quality, slow.quality)
    assert fast.quality[2, 1] == CellQuality.DEGRADED
    assert fast.stats.degraded_cells == 1


def test_bridge_macros_ride_engine_tier_next_to_kernel_macros():
    # Without faults the kernel handles every closed-form macro while
    # bridge macros take the exact engine — mixed tiers, one result.
    def build() -> EDRAMArray:
        array = EDRAMArray(8, 4, tech=_TECH, macro_rows=4, macro_cols=2)
        array.cell(5, 2).apply_defect(CellDefect(DefectKind.BRIDGE))
        return array

    fast = ArrayScanner(build(), None).scan()
    slow = ArrayScanner(build(), None, use_kernel=False).scan()
    np.testing.assert_array_equal(fast.vgs, slow.vgs)
    np.testing.assert_array_equal(fast.codes, slow.codes)
    np.testing.assert_array_equal(fast.tiers, slow.tiers)
    assert (fast.tiers[4:8, 2:4] == "e").all()
    assert fast.stats.kernel_cells == fast.vgs.size - 8
