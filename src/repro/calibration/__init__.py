"""Calibration layer: structure sizing, abacus, accuracy, spec windows.

The paper extracts capacitance in two moves: *design* the structure so
that the capacitance range of interest spans the 20-step code scale, and
*calibrate* with an abacus ("Using the abacus obtained from a set of
simulation, Figure 3 shows the current steps versus the capacitor
values").  This package implements both:

- :func:`design_structure` sizes C_REF and the DAC step ΔI for a given
  macro geometry so that ``[c_lo, c_hi]`` maps onto codes 0..num_steps;
- :class:`Abacus` is the code ↔ capacitance map, generated analytically
  or by sweeping the charge engine (the paper's way), with inversion and
  bin arithmetic;
- :class:`AccuracyReport` quantifies the quantization accuracy (the
  paper's "6 %" claim);
- :class:`SpecificationWindow` expresses pass/fail limits in the current
  domain, as the paper specifies.
"""

from repro.calibration.design import design_structure, nominal_background
from repro.calibration.abacus import Abacus, AbacusRow
from repro.calibration.accuracy import AccuracyReport, accuracy_sweep
from repro.calibration.window import SpecificationWindow
from repro.calibration.dither import DitheredConverter, DitheredResult
from repro.calibration.sensitivity import plate_error_from_cbl, plate_error_from_vth
from repro.calibration.linearity import LinearityReport, analyze_linearity, lazy_linear_estimate
from repro.calibration.reference import InstrumentCheck, InstrumentStatus, InstrumentVerdict, ReferenceBank

__all__ = [
    "design_structure",
    "nominal_background",
    "Abacus",
    "AbacusRow",
    "AccuracyReport",
    "accuracy_sweep",
    "SpecificationWindow",
    "DitheredConverter",
    "DitheredResult",
    "plate_error_from_cbl",
    "plate_error_from_vth",
    "LinearityReport",
    "analyze_linearity",
    "lazy_linear_estimate",
    "InstrumentCheck",
    "InstrumentStatus",
    "InstrumentVerdict",
    "ReferenceBank",
]
