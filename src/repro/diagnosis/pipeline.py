"""One-call diagnosis pipeline.

Everything the library does to a device under test, orchestrated in the
order a test program would run it:

1. functional test (March C− + retention pause) → digital bitmap,
2. analog scan through the embedded structures → analog bitmap,
3. per-cell classification (analog codes refined with digital results),
4. signature categorization + root-cause analysis,
5. process statistics (Cpk, gradient),
6. BISR repair allocation over the union of must-repair cells.

The :class:`PipelineReport` bundles every artefact plus a text summary;
``examples/failure_analysis.py`` shows the pieces individually, this is
the production wrapper.
"""

from __future__ import annotations

from contextlib import nullcontext as _null
from dataclasses import dataclass, field
from time import perf_counter, process_time

import numpy as np

from repro.baselines.march import march_c_minus, retention_test
from repro.bitmap.analog import AnalogBitmap
from repro.bitmap.digital import DigitalBitmap
from repro.calibration.abacus import Abacus
from repro.calibration.window import SpecificationWindow
from repro.diagnosis.classifier import CellClassifier, CellVerdict
from repro.diagnosis.failure_analysis import FailureAnalyzer, Finding
from repro.diagnosis.process_monitor import ProcessMonitor, ProcessReport
from repro.diagnosis.repair import RepairPlan, RepairPlanner
from repro.edram.array import EDRAMArray
from repro.edram.operations import ArrayOperations
from repro.errors import DiagnosisError
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner, ScanResult
from repro.measure.structure import MeasurementStructure
from repro.obs.metrics import use_metrics


@dataclass
class PipelineReport:
    """Every artefact one pipeline run produced."""

    digital: DigitalBitmap
    scan: ScanResult
    analog: AnalogBitmap
    verdicts: np.ndarray
    findings: list[Finding]
    process: ProcessReport
    repair: RepairPlan
    must_repair: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def summary(self) -> str:
        """Human-readable run summary."""
        counts: dict[CellVerdict, int] = {}
        for verdict in self.verdicts.ravel():
            counts[verdict] = counts.get(verdict, 0) + 1
        anomalies = sum(
            n for v, n in counts.items() if v is not CellVerdict.IN_SPEC
        )
        lines = [
            f"digital fails       : {self.digital.fail_count}",
            f"analog anomalies    : {anomalies}",
            "verdicts            : "
            + ", ".join(f"{v.value}={n}" for v, n in sorted(
                counts.items(), key=lambda kv: -kv[1]
            )),
            f"process             : {self.process.summary()}",
            f"findings            : {len(self.findings)} root-caused groups",
            f"repair              : "
            + ("SUCCESS" if self.repair.success else f"{len(self.repair.uncovered)} uncovered")
            + f" (rows {sorted(self.repair.spare_rows_used)}, "
            f"cols {sorted(self.repair.spare_cols_used)})",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable summary (the CLI's ``--json`` payload)."""
        counts: dict[str, int] = {}
        for verdict in self.verdicts.ravel():
            counts[verdict.value] = counts.get(verdict.value, 0) + 1
        return {
            "digital_fails": int(self.digital.fail_count),
            "verdicts": counts,
            "findings": [finding.describe() for finding in self.findings],
            "process": self.process.summary(),
            "repair": {
                "success": bool(self.repair.success),
                "uncovered": len(self.repair.uncovered),
                "spare_rows_used": sorted(self.repair.spare_rows_used),
                "spare_cols_used": sorted(self.repair.spare_cols_used),
            },
            "scan_stats": (
                self.scan.stats.to_dict() if self.scan.stats is not None else None
            ),
        }


class DiagnosisPipeline:
    """Configured pipeline, reusable across dies of one product.

    Parameters
    ----------
    spec_lo, spec_hi:
        Capacitance specification, farads.
    spare_rows, spare_cols:
        Redundancy budget for the repair stage.
    retention_pause:
        Pause of the retention screen, seconds.
    structure:
        Optional pre-designed structure; designed on first use otherwise.
    """

    def __init__(
        self,
        spec_lo: float,
        spec_hi: float,
        spare_rows: int = 4,
        spare_cols: int = 4,
        retention_pause: float = 0.2,
        structure: MeasurementStructure | None = None,
    ) -> None:
        if not 0 < spec_lo < spec_hi:
            raise DiagnosisError(f"need 0 < spec_lo < spec_hi, got [{spec_lo}, {spec_hi}]")
        if retention_pause < 0:
            raise DiagnosisError("retention_pause must be >= 0")
        self.spec_lo = spec_lo
        self.spec_hi = spec_hi
        self.spare_rows = spare_rows
        self.spare_cols = spare_cols
        self.retention_pause = retention_pause
        self._structure = structure
        self._abacus: Abacus | None = None
        self._geometry: tuple[int, int, int, str] | None = None

    def _structure_for(self, array: EDRAMArray) -> tuple[MeasurementStructure, Abacus]:
        # Structure sizing is technology-aware: the backend supplies the
        # measurement range the converter must cover (for eDRAM this is
        # the historical 10-55 fF default, bit-identically).  The cache
        # key carries the technology so a pipeline reused across arrays
        # of different memories re-designs.
        from repro.technologies import get as get_technology

        technology = getattr(array, "technology", "edram")
        geometry = (array.macro_rows, array.macro_cols, array.rows, technology)
        if self._structure is None or self._geometry != geometry:
            self._structure = get_technology(technology).design_structure(
                array, bitline_rows=array.rows
            )
            self._abacus = Abacus.for_array(self._structure, array)
            self._geometry = geometry
        elif self._abacus is None:
            self._abacus = Abacus.for_array(self._structure, array)
        return self._structure, self._abacus

    def run(self, array: EDRAMArray, config: ScanConfig | None = None) -> PipelineReport:
        """Run the full pipeline against one array.

        ``config`` carries the scan options (jobs, tracer, metrics)
        through to the analog-scan stage; its tracer additionally
        records one ``diagnosis`` span with a ``stage:*`` child per
        pipeline stage, and its metrics registry is installed ambiently
        for the whole run.  When ``config.ledger`` is set the pipeline
        records one ``diagnosis`` manifest (the scan stage itself stays
        unrecorded — one run, one ledger line).
        """
        # A default config inherits the array's technology (the scan
        # stage validates the pairing); an explicit config must already
        # match.
        config = (
            config
            if config is not None
            else ScanConfig(technology=getattr(array, "technology", "edram"))
        )
        tracer = config.tracer
        ledger = config.ledger
        if ledger is not None:
            config = config.with_options(ledger=None)
        structure, abacus = self._structure_for(array)
        start = perf_counter()
        cpu_start = process_time()

        with use_metrics(config.metrics) if config.metrics.enabled else _null():
            with tracer.span("diagnosis", rows=array.rows, cols=array.cols):
                # 1. Functional + retention baseline.
                with tracer.span("stage:functional"):
                    digital = march_c_minus().run(ArrayOperations(array)).merge(
                        retention_test(
                            ArrayOperations(array), pause=self.retention_pause
                        )
                    )

                # 2. Analog scan.
                with tracer.span("stage:scan"):
                    scan = ArrayScanner(array, structure).scan(config)
                analog = AnalogBitmap(scan, abacus)
                window = SpecificationWindow.from_capacitance(
                    abacus, self.spec_lo, self.spec_hi
                )

                # 3. Classification (digital results refine code-0 cells).
                with tracer.span("stage:classify"):
                    classifier = CellClassifier(
                        analog, window, macro_cols=array.macro_cols
                    )
                    verdicts = classifier.classify_all(digital.fails)

                # 4. Root-cause analysis.
                with tracer.span("stage:root_cause"):
                    findings = FailureAnalyzer().analyze(verdicts)

                # 5. Process statistics.
                with tracer.span("stage:process"):
                    process = ProcessMonitor(self.spec_lo, self.spec_hi).report(
                        analog
                    )

                # 6. Repair over the union of hard fails and out-of-spec cells.
                with tracer.span("stage:repair"):
                    must_repair = digital.fails | analog.out_of_spec(window)
                    repair = RepairPlanner(self.spare_rows, self.spare_cols).plan(
                        must_repair
                    )

        report = PipelineReport(
            digital=digital,
            scan=scan,
            analog=analog,
            verdicts=verdicts,
            findings=findings,
            process=process,
            repair=repair,
            must_repair=must_repair,
        )
        if ledger is not None:
            ledger.record_diagnosis(
                report,
                config,
                tech=array.tech.name,
                wall_seconds=perf_counter() - start,
                cpu_seconds=process_time() - cpu_start,
            )
        return report
