"""Command-line interface.

Exposes the library's main flows without writing Python:

- ``python -m repro design``   — size a structure for a macro geometry
- ``python -m repro abacus``   — print the Figure-3 calibration table
- ``python -m repro scan``     — synthesize an array (optionally with
  defects), scan it, render the analog bitmap; ``--trace``/``--metrics``
  attach the observability layer, ``--json`` emits a machine-readable
  report
- ``python -m repro diagnose`` — full pipeline on a synthesized array
- ``python -m repro trace``    — summarize a trace written by ``--trace``
- ``python -m repro lint``     — static ERC / parameter / unit analysis
- ``python -m repro wafer``    — wafer-level monitoring demo

Common options are factored into shared parent parsers so every
subcommand spells them identically: ``--seed``, ``--jobs``, and
``--format text|json`` (with ``--json`` as a shorthand for
``--format json``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.units import fF, to_fF, to_ns, to_uA


# ----------------------------------------------------------------------
# Shared parent parsers — one spelling per option, reused by subcommands.
# ----------------------------------------------------------------------


def _geometry_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--rows", type=int, default=32, help="array rows")
    parent.add_argument("--cols", type=int, default=16, help="array cols")
    parent.add_argument("--macro-rows", type=int, default=8, help="plate tile rows")
    parent.add_argument("--macro-cols", type=int, default=2, help="plate tile cols")
    return parent


def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0, help="randomness seed")
    return parent


def _jobs_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    return parent


def _format_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--format", choices=("text", "json"), default="text",
                        help="output rendering")
    parent.add_argument("--json", dest="format", action="store_const",
                        const="json", help="shorthand for --format json")
    return parent


def _build_array(args, with_defects: bool):
    from repro.edram.array import EDRAMArray
    from repro.edram.defects import DefectInjector, DefectKind
    from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map

    shape = (args.rows, args.cols)
    capacitance = compose_maps(
        uniform_map(shape, 30 * fF), mismatch_map(shape, 0.8 * fF, seed=args.seed)
    )
    array = EDRAMArray(
        args.rows, args.cols, macro_cols=args.macro_cols,
        macro_rows=args.macro_rows, capacitance_map=capacitance,
    )
    if with_defects:
        injector = DefectInjector(array, seed=args.seed + 1)
        injector.scatter(DefectKind.SHORT, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.OPEN, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.LOW_CAP, max(2, array.num_cells // 200), factor=0.6)
        # A sprinkle of bridges exercises the engine-tier fallback, so
        # traced demo scans show the full scan→macro→cell→phase tree.
        injector.scatter(DefectKind.BRIDGE, max(1, array.num_cells // 500))
    return array


def _design_for(args, array):
    from repro.calibration.design import design_structure

    return design_structure(
        array.tech, args.macro_rows, args.macro_cols, bitline_rows=args.rows
    )


def cmd_design(args) -> int:
    array = _build_array(args, with_defects=False)
    structure = _design_for(args, array)
    d = structure.design
    print(f"structure for {args.macro_rows}x{args.macro_cols} tiles on "
          f"{args.rows}-row columns:")
    print(f"  C_REF        : {to_fF(structure.c_ref):.2f} fF "
          f"(REF {d.w_ref * 1e6:.2f} x {d.l_ref * 1e6:.2f} um)")
    print(f"  DAC step     : {to_uA(d.delta_i):.3f} uA x {d.num_steps} steps")
    print(f"  phase clock  : {to_ns(d.phase_duration):.1f} ns "
          f"({'slew-safe' if structure.is_slew_safe else 'SLEW LIMITED'})")
    print(f"  flow         : {to_ns(d.flow_duration):.1f} ns per cell")
    return 0


def cmd_abacus(args) -> int:
    from repro.calibration.abacus import Abacus

    array = _build_array(args, with_defects=False)
    structure = _design_for(args, array)
    abacus = Abacus.for_array(structure, array)
    print(abacus.table())
    return 0


def cmd_scan(args) -> int:
    from repro.bitmap.analog import AnalogBitmap
    from repro.bitmap.export import render_code_map
    from repro.calibration.abacus import Abacus
    from repro.measure.config import ScanConfig
    from repro.measure.scan import ArrayScanner
    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    tracer = Tracer() if args.trace else NULL_TRACER
    want_metrics = args.metrics or args.metrics_out or args.format == "json"
    metrics = MetricsRegistry() if want_metrics else NULL_METRICS

    array = _build_array(args, with_defects=not args.healthy)
    structure = _design_for(args, array)
    abacus = Abacus.for_array(structure, array)
    config = ScanConfig(
        jobs=args.jobs,
        force_engine=args.force_engine,
        preflight=args.preflight,
        tracer=tracer,
        metrics=metrics,
    )
    scan = ArrayScanner(array, structure).scan(config)
    bitmap = AnalogBitmap(scan, abacus)

    if args.trace:
        tracer.write_jsonl(args.trace)
    if args.metrics_out:
        metrics.write_jsonl(args.metrics_out)
    saved_to = None
    if args.save:
        from repro.io import save_scan

        saved_to = str(save_scan(scan, args.save))

    if args.format == "json":
        payload = {
            "geometry": {
                "rows": args.rows, "cols": args.cols,
                "macro_rows": args.macro_rows, "macro_cols": args.macro_cols,
                "macros": array.num_macros,
            },
            "cells": array.num_cells,
            "num_steps": scan.num_steps,
            "mean_fF": to_fF(bitmap.mean_capacitance()),
            "sigma_fF": to_fF(bitmap.std_capacitance()),
            "code_histogram": {str(k): v for k, v in scan.code_histogram().items()},
            "stats": scan.stats.to_dict() if scan.stats is not None else None,
            "metrics": metrics.to_dict() if metrics.enabled else None,
            "trace": args.trace,
            "saved": saved_to,
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(f"scanned {array.num_cells} cells "
          f"({array.num_macros} tiles of {args.macro_rows}x{args.macro_cols})")
    if scan.stats is not None:
        print(scan.stats.summary())
    print(f"mean {to_fF(bitmap.mean_capacitance()):.2f} fF, "
          f"sigma {to_fF(bitmap.std_capacitance()):.2f} fF")
    print(render_code_map(scan.codes))
    if args.metrics:
        print("metrics:")
        print(metrics.summary_table())
    if args.trace:
        print(f"trace written to {args.trace} "
              f"({len(tracer.spans)} spans; summarize with `repro trace`)")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if saved_to:
        print(f"scan saved to {saved_to}")
    return 0


def cmd_diagnose(args) -> int:
    from repro.diagnosis.pipeline import DiagnosisPipeline
    from repro.measure.config import ScanConfig

    array = _build_array(args, with_defects=True)
    pipeline = DiagnosisPipeline(spec_lo=24 * fF, spec_hi=36 * fF)
    report = pipeline.run(array, ScanConfig(jobs=args.jobs))
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(report.summary())
    print()
    print("findings:")
    for finding in report.findings:
        print(f"  {finding.describe()}")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import load_trace, summarize_trace

    spans = load_trace(args.path)
    summary = summarize_trace(spans)
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(summary.table())
    return 0


def cmd_lint(args) -> int:
    from repro.lint import (
        LintReport,
        lint_circuit,
        lint_source,
        lint_technology,
        preflight_macro,
    )
    from repro.measure.netlist_builder import build_measurement_circuit

    report = LintReport()
    if not args.source_only:
        array = _build_array(args, with_defects=args.defects)
        structure = _design_for(args, array)
        report.merge(lint_technology(array.tech))
        macro0 = array.macro(0)
        built = build_measurement_circuit(macro0, 0, 0, structure)
        report.merge(lint_circuit(built.circuit))
        for macro in array.macros():
            report.merge(
                preflight_macro(
                    macro, structure, waive_known_defects=not args.strict_defects
                )
            )
    if args.source:
        report.merge(lint_source(args.source))

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code


def cmd_wafer(args) -> int:
    from repro.wafer import WaferModel

    model = WaferModel(diameter_dies=args.diameter, seed=args.seed)
    report = model.measure_wafer(jobs=args.jobs)
    print(report.ascii_map())
    a, b = report.radial_profile()
    print(f"radial profile: centre {to_fF(a):.2f} fF, "
          f"centre-to-edge drop {to_fF(-b):.2f} fF")
    for label, mean, count in report.zonal_means():
        print(f"  zone {label}: {to_fF(mean):6.2f} fF ({count} dies)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Embedded eDRAM capacitor measurement (DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    geometry = _geometry_parent()
    seed = _seed_parent()
    jobs = _jobs_parent()
    fmt = _format_parent()

    p = sub.add_parser("design", parents=[geometry, seed],
                       help="size a measurement structure")
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("abacus", parents=[geometry, seed],
                       help="print the calibration abacus")
    p.set_defaults(func=cmd_abacus)

    p = sub.add_parser("scan", parents=[geometry, seed, jobs, fmt],
                       help="scan a synthesized array")
    p.add_argument("--healthy", action="store_true", help="no injected defects")
    p.add_argument("--save", help="write the scan to this .npz path")
    p.add_argument("--force-engine", action="store_true",
                   help="route every macro through the exact charge engine")
    p.add_argument("--preflight", action="store_true",
                   help="run the static ERC pass before scanning")
    p.add_argument("--trace", metavar="PATH",
                   help="record a span trace of the scan to this JSON-lines "
                        "path (summarize with `repro trace PATH`)")
    p.add_argument("--metrics", action="store_true",
                   help="collect and print the scan metrics summary table")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write collected metrics as JSON lines to this path")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("diagnose", parents=[geometry, seed, jobs, fmt],
                       help="full diagnosis pipeline")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("trace", parents=[fmt],
                       help="summarize a span trace written by `scan --trace`")
    p.add_argument("path", help="JSON-lines trace file")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "lint",
        parents=[geometry, seed, fmt],
        help="static ERC / parameter / unit analysis (no solver runs)",
    )
    p.add_argument("--defects", action="store_true",
                   help="inject defects into the linted array (their findings "
                        "are waived unless --strict-defects)")
    p.add_argument("--strict-defects", action="store_true",
                   help="do not waive findings on known-defective cells")
    p.add_argument("--source", nargs="+", metavar="PATH",
                   help="also AST-lint these Python files/directories "
                        "(raw SI literals, bare asserts)")
    p.add_argument("--source-only", action="store_true",
                   help="skip netlist analysis; lint only --source paths")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("wafer", parents=[seed, jobs],
                       help="wafer-level monitoring demo")
    p.add_argument("--diameter", type=int, default=7, help="wafer width in dies")
    p.set_defaults(func=cmd_wafer)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
