"""Trace files read back: load, validate, aggregate."""

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs import Tracer, load_trace, summarize_trace


def make_clock():
    ticks = iter(range(10_000))
    return lambda: float(next(ticks))


def sample_tracer():
    tracer = Tracer(clock=make_clock())
    with tracer.span("scan"):
        for _ in range(2):
            with tracer.span("macro"):
                with tracer.span("cell"):
                    pass
    return tracer


class TestLoadTrace:
    def test_round_trip_through_file(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        spans = load_trace(str(path))
        assert spans == tracer.spans

    def test_round_trip_through_stream(self):
        tracer = sample_tracer()
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        spans = load_trace(io.StringIO(buf.getvalue()))
        assert [s.name for s in spans] == [s.name for s in tracer.spans]

    def test_blank_lines_skipped(self):
        tracer = sample_tracer()
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        noisy = "\n" + buf.getvalue().replace("\n", "\n\n")
        assert len(load_trace(io.StringIO(noisy))) == len(tracer.spans)

    def test_invalid_json_line_raises(self):
        with pytest.raises(ObservabilityError, match="line 1"):
            load_trace(io.StringIO("not json\n"))

    def test_unknown_parent_raises(self):
        line = (
            '{"name": "orphan", "span_id": 0, "parent_id": 99, '
            '"start": 0.0, "end": 1.0, "attributes": {}}'
        )
        with pytest.raises(ObservabilityError, match="unknown parent"):
            load_trace(io.StringIO(line + "\n"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="no spans"):
            load_trace(str(path))

    def test_blank_only_file_raises(self):
        with pytest.raises(ObservabilityError, match="no spans"):
            load_trace(io.StringIO("\n\n  \n"))

    def test_truncated_final_line_raises(self):
        tracer = sample_tracer()
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        cut = buf.getvalue().rstrip("\n")[:-10]  # chop the last record
        with pytest.raises(ObservabilityError, match="truncated mid-record"):
            load_trace(io.StringIO(cut))


class TestSummarize:
    def test_aggregates_by_name(self):
        summary = summarize_trace(sample_tracer().spans)
        by_name = {a.name: a for a in summary.aggregates}
        assert by_name["scan"].count == 1
        assert by_name["macro"].count == 2
        assert by_name["cell"].count == 2
        assert summary.total_spans == 5
        assert summary.max_depth == 2

    def test_aggregates_sorted_by_total_time(self):
        summary = summarize_trace(sample_tracer().spans)
        totals = [a.total_seconds for a in summary.aggregates]
        assert totals == sorted(totals, reverse=True)

    def test_covers(self):
        summary = summarize_trace(sample_tracer().spans)
        assert summary.covers("scan", "macro", "cell")
        assert not summary.covers("scan", "phase:share")

    def test_mean_consistent_with_total(self):
        summary = summarize_trace(sample_tracer().spans)
        for a in summary.aggregates:
            assert a.mean_seconds == pytest.approx(a.total_seconds / a.count)
            assert a.max_seconds <= a.total_seconds + 1e-12

    def test_table_lists_every_name(self):
        summary = summarize_trace(sample_tracer().spans)
        table = summary.table()
        for name in summary.names:
            assert name in table
        assert "max depth 2" in table

    def test_to_dict_shape(self):
        d = summarize_trace(sample_tracer().spans).to_dict()
        assert d["total_spans"] == 5
        assert d["max_depth"] == 2
        assert {row["name"] for row in d["spans"]} == {"scan", "macro", "cell"}

    def test_unknown_parent_in_span_list_raises(self):
        spans = sample_tracer().spans
        spans[1].parent_id = 77
        with pytest.raises(ObservabilityError):
            summarize_trace(spans)

    def test_empty_trace_raises(self):
        with pytest.raises(ObservabilityError, match="empty trace"):
            summarize_trace([])

    def test_percentiles_nearest_rank(self):
        tracer = Tracer(clock=make_clock())
        for _ in range(10):  # durations 1s each under an uneven parent
            with tracer.span("macro"):
                pass
        summary = summarize_trace(tracer.spans)
        macro = next(a for a in summary.aggregates if a.name == "macro")
        # Every macro span lasts exactly 1 tick under the fake clock.
        assert macro.p50_seconds == pytest.approx(1.0)
        assert macro.p95_seconds == pytest.approx(1.0)
        assert macro.p99_seconds == pytest.approx(1.0)
        assert macro.p50_seconds <= macro.p95_seconds <= macro.p99_seconds
        assert macro.p99_seconds <= macro.max_seconds

    def test_percentiles_in_table_and_dict(self):
        summary = summarize_trace(sample_tracer().spans)
        table = summary.table()
        for column in ("p50", "p95", "p99"):
            assert column in table
        for row in summary.to_dict()["spans"]:
            assert {"p50_seconds", "p95_seconds", "p99_seconds"} <= set(row)
