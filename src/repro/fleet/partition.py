"""Die-range partitioning: split one wafer into shard work units.

The fleet's correctness rests on a single invariant: the shard ranges
tile the wafer's die-index space **exactly once**.  An overlap would
double-measure dies (and, worse, let two shards disagree about a die's
planes at merge time); a gap would silently drop coverage.  This module
owns that invariant in one place:

- :func:`plan_shards` builds the canonical near-equal contiguous split,
- :func:`partition_defects` is the pure checker behind both
  :func:`validate_partition` (raises :class:`~repro.errors.FleetError`)
  and the ``FLT`` lint family (:mod:`repro.lint.rules_flt`), so the
  runtime guard and the static gate can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import FleetError

__all__ = [
    "ShardRange",
    "plan_shards",
    "partition_defects",
    "validate_partition",
]


@dataclass(frozen=True)
class ShardRange:
    """One shard's contiguous die-index range ``[start, stop)``."""

    shard_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise FleetError(f"shard id must be >= 0, got {self.shard_id}")
        if not 0 <= self.start < self.stop:
            raise FleetError(
                f"shard {self.shard_id}: die range [{self.start}, "
                f"{self.stop}) is empty or inverted"
            )

    @property
    def count(self) -> int:
        return self.stop - self.start

    def as_tuple(self) -> tuple[int, int]:
        return (self.start, self.stop)


def plan_shards(total_dies: int, shards: int) -> tuple[ShardRange, ...]:
    """The canonical partition: ``shards`` contiguous near-equal ranges.

    The first ``total_dies % shards`` ranges carry one extra die, so
    range sizes differ by at most one and the union is exact by
    construction.
    """
    if total_dies < 1:
        raise FleetError(f"cannot shard a wafer with {total_dies} dies")
    if shards < 1:
        raise FleetError(f"shard count must be >= 1, got {shards}")
    if shards > total_dies:
        raise FleetError(
            f"cannot split {total_dies} dies across {shards} shards "
            "(at least one die per shard)"
        )
    base, extra = divmod(total_dies, shards)
    ranges = []
    start = 0
    for shard_id in range(shards):
        count = base + (1 if shard_id < extra else 0)
        ranges.append(ShardRange(shard_id, start, start + count))
        start += count
    return tuple(ranges)


def partition_defects(
    ranges: Iterable[ShardRange | Sequence[int]],
    total_dies: int,
) -> list[tuple[str, str]]:
    """Every way ``ranges`` fails to tile ``[0, total_dies)`` exactly once.

    Returns ``(kind, message)`` pairs with ``kind`` one of ``"overlap"``
    (a die claimed by more than one shard, or a range outside the
    wafer — both are double/phantom claims, the FLT001 failure class)
    and ``"gap"`` (a die no shard claims — FLT002).  An empty list means
    the partition is exact.  Accepts :class:`ShardRange` objects or
    plain ``(start, stop)`` / ``(shard_id, start, stop)`` sequences so
    the lint rule can check serialized plans without importing them
    through the orchestrator.
    """
    if total_dies < 1:
        return [("gap", f"wafer has {total_dies} dies; nothing to cover")]
    normalised: list[tuple[int, int, int]] = []
    for index, entry in enumerate(ranges):
        if isinstance(entry, ShardRange):
            normalised.append((entry.shard_id, entry.start, entry.stop))
        elif len(entry) == 3:
            normalised.append((int(entry[0]), int(entry[1]), int(entry[2])))
        else:
            start, stop = entry
            normalised.append((index, int(start), int(stop)))

    defects: list[tuple[str, str]] = []
    claims = [0] * total_dies
    for shard_id, start, stop in normalised:
        if start >= stop:
            defects.append((
                "gap",
                f"shard {shard_id}: die range [{start}, {stop}) is empty "
                "or inverted — it covers nothing",
            ))
            continue
        if start < 0 or stop > total_dies:
            defects.append((
                "overlap",
                f"shard {shard_id}: die range [{start}, {stop}) reaches "
                f"outside the wafer's {total_dies} printed dies",
            ))
        for die in range(max(start, 0), min(stop, total_dies)):
            claims[die] += 1

    die = 0
    while die < total_dies:
        if claims[die] == 1:
            die += 1
            continue
        kind = "gap" if claims[die] == 0 else "overlap"
        run_start = die
        while die < total_dies and (claims[die] == 0) == (kind == "gap") and claims[die] != 1:
            die += 1
        if kind == "gap":
            defects.append((
                "gap",
                f"dies [{run_start}, {die}) are claimed by no shard — "
                "the merged lot would silently miss them",
            ))
        else:
            defects.append((
                "overlap",
                f"dies [{run_start}, {die}) are claimed by more than one "
                "shard — two shards would race to define their planes",
            ))
    return defects


def validate_partition(
    ranges: Iterable[ShardRange | Sequence[int]],
    total_dies: int,
) -> None:
    """Raise :class:`FleetError` unless ``ranges`` tile the wafer exactly."""
    defects = partition_defects(list(ranges), total_dies)
    if defects:
        detail = "; ".join(message for _, message in defects)
        raise FleetError(
            f"shard partition does not cover the wafer exactly once: {detail}"
        )
