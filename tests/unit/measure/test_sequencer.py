"""Measurement sequencer: charge tier flow and defect outcomes."""

import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import MeasurementError
from repro.measure.result import FlowTrace
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF


def _sequencer(tech, structure, rows=2, cols=2, defect=None, where=(0, 0), cm=None):
    arr = EDRAMArray(rows, cols, tech=tech, macro_cols=cols)
    if cm is not None:
        arr.cell(0, 0).capacitance = cm
    if defect is not None:
        arr.cell(*where).apply_defect(defect)
    return MeasurementSequencer(arr.macro(0), structure), arr


class TestChargeFlow:
    def test_nominal_cell_lands_mid_scale(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2)
        result = seq.measure_charge(0, 0)
        assert 5 <= result.code <= 15
        assert result.tier == "charge"
        assert result.in_range

    def test_flow_trace_matches_paper_narrative(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2)
        trace = FlowTrace()
        result = seq.measure_charge(0, 0, trace=trace)
        assert trace.plate["discharge"] == pytest.approx(0.0)
        assert trace.gate["discharge"] == pytest.approx(0.0)
        assert trace.plate["charge"] == pytest.approx(tech.vdd)
        assert trace.gate["charge"] == pytest.approx(0.0)  # LEC open
        assert trace.plate["isolate"] == pytest.approx(tech.vdd)
        # After sharing, plate and gate are the same node voltage = V_GS.
        assert trace.plate["share"] == pytest.approx(trace.gate["share"])
        assert trace.gate["share"] == pytest.approx(result.vgs)
        assert 0 < result.vgs < tech.vdd

    def test_vgs_increases_with_capacitance(self, tech, structure_2x2):
        codes = []
        for cm in (15 * fF, 30 * fF, 45 * fF):
            seq, _ = _sequencer(tech, structure_2x2, cm=cm)
            codes.append(seq.measure_charge(0, 0).vgs)
        assert codes[0] < codes[1] < codes[2]

    def test_target_bounds_checked(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2)
        with pytest.raises(MeasurementError):
            seq.measure_charge(2, 0)
        with pytest.raises(MeasurementError):
            seq.measure_charge(0, 5)

    def test_address_is_global(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        seq = MeasurementSequencer(arr.macro(3), structure_8x2)
        result = seq.measure_charge(2, 1)
        assert result.address == (10, 3)


class TestDefectOutcomes:
    def test_shorted_target_reads_code_zero(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2, defect=CellDefect(DefectKind.SHORT))
        result = seq.measure_charge(0, 0)
        assert result.code == 0
        assert result.vgs == pytest.approx(0.0, abs=1e-9)

    def test_open_target_reads_code_zero(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2, defect=CellDefect(DefectKind.OPEN))
        assert seq.measure_charge(0, 0).code == 0

    def test_access_open_target_reads_like_open(self, tech, structure_2x2):
        seq, _ = _sequencer(
            tech, structure_2x2, defect=CellDefect(DefectKind.ACCESS_OPEN)
        )
        assert seq.measure_charge(0, 0).code == 0

    def test_under_range_capacitance_reads_code_zero(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2, cm=5 * fF)
        assert seq.measure_charge(0, 0).code == 0

    def test_over_range_capacitance_saturates(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2, cm=70 * fF)
        assert seq.measure_charge(0, 0).code == structure_2x2.design.num_steps

    def test_low_cap_reads_low_code(self, tech, structure_2x2):
        healthy, _ = _sequencer(tech, structure_2x2)
        low, _ = _sequencer(
            tech, structure_2x2, defect=CellDefect(DefectKind.LOW_CAP, factor=0.6)
        )
        assert low.measure_charge(0, 0).code < healthy.measure_charge(0, 0).code

    def test_shorted_neighbour_lifts_target_code(self, tech, structure_8x2):
        # The fingerprint scales with the bitline parasitic, so use a
        # tall array (64 rows) tiled into 8-row plate segments.
        def seq_for(defect):
            arr = EDRAMArray(64, 2, tech=tech, macro_cols=2, macro_rows=8)
            if defect is not None:
                arr.cell(0, 1).apply_defect(defect)
            return MeasurementSequencer(arr.macro(0), structure_8x2)

        healthy = seq_for(None).measure_charge(0, 0)
        shorted = seq_for(CellDefect(DefectKind.SHORT)).measure_charge(0, 0)
        # Measuring (0, 0) next to the short: the short couples the
        # neighbour's full bitline capacitance onto the plate.
        assert shorted.code >= healthy.code + 2

    def test_bridged_pair_reads_roughly_double(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2, defect=CellDefect(DefectKind.BRIDGE))
        healthy, _ = _sequencer(tech, structure_2x2)
        code_bridged = seq.measure_charge(0, 0).code
        code_healthy = healthy.measure_charge(0, 0).code
        assert code_bridged >= min(
            code_healthy + 5, structure_2x2.design.num_steps
        )

    def test_retention_defect_measures_normal_capacitance(self, tech, structure_2x2):
        # The analog measurement sees capacitance, not leakage.
        leaky, _ = _sequencer(
            tech, structure_2x2, defect=CellDefect(DefectKind.RETENTION, factor=1000)
        )
        healthy, _ = _sequencer(tech, structure_2x2)
        assert leaky.measure_charge(0, 0).code == healthy.measure_charge(0, 0).code


class TestStandardMode:
    def test_plate_held_at_half_vdd(self, tech, structure_2x2):
        seq, _ = _sequencer(tech, structure_2x2)
        assert seq.standard_mode_plate_voltage() == pytest.approx(tech.half_vdd)
