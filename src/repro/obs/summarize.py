"""Reading traces back: load, validate, aggregate, render.

``repro scan --trace out.jsonl`` writes one JSON span per line; this
module is the consumer side — the engine behind the ``repro trace``
subcommand and the programmatic entry point for notebooks:

    from repro.obs import load_trace, summarize_trace
    spans = load_trace("out.jsonl")
    print(summarize_trace(spans).table())

:func:`load_trace` validates tree structure on the way in (parents must
exist and start before their children; a malformed file raises
:class:`~repro.errors.ObservabilityError` instead of producing a
nonsense summary).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, TextIO

from repro.errors import ObservabilityError
from repro.obs.trace import Span

__all__ = ["SpanAggregate", "TraceSummary", "load_trace", "summarize_trace"]


def load_trace(source: str | TextIO) -> list[Span]:
    """Load spans from a JSON-lines trace file (path or open file).

    Returns spans in file order (the producer's start order) after
    validating that every ``parent_id`` refers to an earlier span.
    A file with no spans at all, or one cut off mid-record (a crashed
    or still-writing producer), raises
    :class:`~repro.errors.ObservabilityError` naming the problem
    instead of silently yielding a nonsense summary.
    """
    name = getattr(source, "name", None) if hasattr(source, "read") else source
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as fh:  # type: ignore[arg-type]
            lines = fh.read().splitlines()
    spans: list[Span] = []
    seen: set[int] = set()
    last_lineno = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()), default=0
    )
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == last_lineno:
                raise ObservabilityError(
                    f"trace line {lineno} is truncated mid-record "
                    f"(incomplete write?): {exc}"
                ) from exc
            raise ObservabilityError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from exc
        span = Span.from_dict(data)
        if span.parent_id is not None and span.parent_id not in seen:
            raise ObservabilityError(
                f"trace line {lineno}: span {span.span_id} references "
                f"unknown parent {span.parent_id}"
            )
        seen.add(span.span_id)
        spans.append(span)
    if not spans:
        where = f" in {name}" if name else ""
        raise ObservabilityError(
            f"trace{where} contains no spans (empty or blank file)"
        )
    return spans


@dataclass
class SpanAggregate:
    """Aggregate over every span sharing one name.

    Percentiles are nearest-rank over the group's closed durations —
    the tail figures (p95/p99) are what distinguish a uniformly slow
    phase from a straggler macro.
    """

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0
    p99_seconds: float = 0.0


@dataclass
class TraceSummary:
    """Per-name aggregates plus whole-trace shape facts."""

    aggregates: list[SpanAggregate]
    total_spans: int
    max_depth: int
    names: set[str]

    def covers(self, *names: str) -> bool:
        """True if every given span name appears in the trace."""
        return all(name in self.names for name in names)

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_spans": self.total_spans,
            "max_depth": self.max_depth,
            "spans": [
                {
                    "name": a.name,
                    "count": a.count,
                    "total_seconds": a.total_seconds,
                    "mean_seconds": a.mean_seconds,
                    "max_seconds": a.max_seconds,
                    "p50_seconds": a.p50_seconds,
                    "p95_seconds": a.p95_seconds,
                    "p99_seconds": a.p99_seconds,
                }
                for a in self.aggregates
            ],
        }

    def table(self) -> str:
        """Aligned text table, widest total first."""
        header = (
            f"{'span':<18} {'count':>7} {'total':>12} {'mean':>12} "
            f"{'p50':>12} {'p95':>12} {'p99':>12} {'max':>12}"
        )
        lines = [header, "-" * len(header)]
        for a in self.aggregates:
            lines.append(
                f"{a.name:<18} {a.count:>7} "
                f"{a.total_seconds * 1e3:>10.3f}ms "
                f"{a.mean_seconds * 1e3:>10.4f}ms "
                f"{a.p50_seconds * 1e3:>10.4f}ms "
                f"{a.p95_seconds * 1e3:>10.4f}ms "
                f"{a.p99_seconds * 1e3:>10.4f}ms "
                f"{a.max_seconds * 1e3:>10.4f}ms"
            )
        lines.append(f"{self.total_spans} spans, max depth {self.max_depth}")
        return "\n".join(lines)


def _nearest_rank(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def summarize_trace(spans: list[Span]) -> TraceSummary:
    """Aggregate a span list by name (closed spans only count time).

    An empty span list raises :class:`~repro.errors.ObservabilityError`:
    there is nothing to aggregate, and a zeroed summary downstream reads
    as "the scan did no work" rather than "the trace was empty".
    """
    if not spans:
        raise ObservabilityError("cannot summarize an empty trace (no spans)")
    groups: dict[str, list[float]] = {}
    depth: dict[int, int] = {}
    max_depth = 0
    for span in spans:
        if span.parent_id is None:
            d = 0
        else:
            try:
                d = depth[span.parent_id] + 1
            except KeyError:
                raise ObservabilityError(
                    f"span {span.span_id} references unknown parent {span.parent_id}"
                ) from None
        depth[span.span_id] = d
        max_depth = max(max_depth, d)
        groups.setdefault(span.name, []).append(
            span.duration if span.duration is not None else 0.0
        )
    aggregates = []
    for name, durations in groups.items():
        ordered = sorted(durations)
        aggregates.append(
            SpanAggregate(
                name=name,
                count=len(durations),
                total_seconds=sum(durations),
                mean_seconds=sum(durations) / len(durations),
                max_seconds=ordered[-1],
                p50_seconds=_nearest_rank(ordered, 50),
                p95_seconds=_nearest_rank(ordered, 95),
                p99_seconds=_nearest_rank(ordered, 99),
            )
        )
    aggregates.sort(key=lambda a: -a.total_seconds)
    return TraceSummary(
        aggregates=aggregates,
        total_spans=len(spans),
        max_depth=max_depth,
        names=set(groups),
    )
