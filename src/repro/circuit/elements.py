"""Linear and switched circuit elements.

Every element subclasses :class:`Element` and knows how to stamp itself
into an :class:`~repro.circuit.mna.MnaSystem` given a
:class:`~repro.circuit.mna.StampContext`.  The MOSFET lives in its own
module (:mod:`repro.circuit.mosfet`); waveform-valued sources take a
:class:`~repro.circuit.stimulus.Stimulus` (or a plain float) as value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.circuit.mna import MnaSystem, StampContext
from repro.circuit.netlist import Circuit
from repro.circuit.stimulus import Stimulus, as_stimulus
from repro.errors import NetlistError


class Element(ABC):
    """Base class for netlist elements.

    Subclasses set ``num_branches`` to 1 if they own an MNA branch-current
    unknown (voltage sources do).
    """

    num_branches = 0

    def __init__(self, name: str) -> None:
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name

    @abstractmethod
    def nodes(self) -> tuple[str, ...]:
        """The node names this element connects to."""

    @abstractmethod
    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        """Stamp this element's contribution for the given context."""

    def _idx(self, circuit: Circuit) -> tuple[int, ...]:
        return tuple(circuit.node_index(n) for n in self.nodes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes()})"


class TwoTerminal(Element):
    """Common plumbing for elements with exactly two terminals ``a``/``b``."""

    def __init__(self, name: str, a: str, b: str) -> None:
        super().__init__(name)
        self.a = a
        self.b = b

    def nodes(self) -> tuple[str, str]:
        return (self.a, self.b)


class Resistor(TwoTerminal):
    """Ideal linear resistor.

    ``resistance`` must be positive and finite; use :class:`Switch` for
    controllable on/off paths.
    """

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        super().__init__(name, a, b)
        if not (resistance > 0.0) or resistance != resistance or resistance == float("inf"):
            raise NetlistError(f"resistor {name!r}: resistance must be positive finite, got {resistance}")
        self.resistance = resistance

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        sys.add_conductance(ia, ib, 1.0 / self.resistance)


class Capacitor(TwoTerminal):
    """Ideal linear capacitor with optional initial voltage.

    In DC analysis the capacitor stamps nothing (an open); the solver's
    gmin keeps cap-only nodes well-posed.  In transient analysis the
    companion model depends on the integrator:

    - backward Euler:  ``g = C/h``, ``I_eq = (C/h)·v_n``
    - trapezoidal:     ``g = 2C/h``, ``I_eq = (2C/h)·v_n + i_n``

    where ``v_n``/``i_n`` are the branch voltage/current at the previous
    accepted timepoint (``i_n`` is tracked by the transient solver in
    ``ctx.cap_current_prev``).
    """

    def __init__(self, name: str, a: str, b: str, capacitance: float, ic: float | None = None) -> None:
        super().__init__(name, a, b)
        if not (capacitance >= 0.0):
            raise NetlistError(f"capacitor {name!r}: capacitance must be >= 0, got {capacitance}")
        self.capacitance = capacitance
        self.ic = ic

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        if ctx.dt is None or self.capacitance == 0.0:
            return  # open in DC
        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        v_prev = ctx.voltage(ia, "prev") - ctx.voltage(ib, "prev")
        if ctx.integrator == "trap":
            g = 2.0 * self.capacitance / ctx.dt
            i_eq = g * v_prev + ctx.cap_current_prev.get(self.name, 0.0)
        else:  # backward Euler
            g = self.capacitance / ctx.dt
            i_eq = g * v_prev
        sys.add_conductance(ia, ib, g)
        # Companion current source pushes current from b to a (into a).
        sys.add_current(ia, i_eq)
        sys.add_current(ib, -i_eq)

    def branch_current(self, sys: MnaSystem, ctx: StampContext, v_now: "object") -> float:
        """Capacitor current i = C·dv/dt implied by the step just solved.

        Used by the transient solver to maintain trapezoidal state.
        """
        import numpy as np

        if ctx.dt is None:
            raise NetlistError(
                f"capacitor {self.name!r}: branch_current requires a transient "
                "stamp context (ctx.dt is None)"
            )
        v = np.asarray(v_now)
        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        va = 0.0 if ia < 0 else float(v[ia])
        vb = 0.0 if ib < 0 else float(v[ib])
        v_new = va - vb
        v_prev = ctx.voltage(ia, "prev") - ctx.voltage(ib, "prev")
        if ctx.integrator == "trap":
            i_prev = ctx.cap_current_prev.get(self.name, 0.0)
            return 2.0 * self.capacitance / ctx.dt * (v_new - v_prev) - i_prev
        return self.capacitance / ctx.dt * (v_new - v_prev)


class VoltageSource(TwoTerminal):
    """Ideal voltage source; ``value`` may be a float or a Stimulus.

    Owns one MNA branch current (positive current flows out of the ``a``
    terminal through the external circuit back into ``b``... i.e. the MNA
    branch current is the current *into* the positive terminal).
    """

    num_branches = 1

    def __init__(self, name: str, a: str, b: str, value: float | Stimulus) -> None:
        super().__init__(name, a, b)
        self.value = as_stimulus(value)

    def voltage_at(self, time: float) -> float:
        """Source voltage at ``time`` in volts."""
        return self.value(time)

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        branch = sys.branch_index(self.name)
        sys.stamp_voltage_source(
            branch, ia, ib, ctx.source_scale * self.value(ctx.time)
        )


class CurrentSource(TwoTerminal):
    """Ideal current source pushing current from terminal ``a`` to ``b``
    through the source (i.e. *into* node ``b`` externally).

    A positive value therefore pulls node ``a`` down and pushes node ``b``
    up.  ``value`` may be a float or a Stimulus.
    """

    def __init__(self, name: str, a: str, b: str, value: float | Stimulus) -> None:
        super().__init__(name, a, b)
        self.value = as_stimulus(value)

    def current_at(self, time: float) -> float:
        """Source current at ``time`` in amperes."""
        return self.value(time)

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        i = ctx.source_scale * self.value(ctx.time)
        sys.add_current(ia, -i)
        sys.add_current(ib, i)


class CurrentMirrorOutput(TwoTerminal):
    """Output leg of a current mirror sourcing from a supply node.

    Pushes ``value(t)`` amperes into node ``b`` (the output), drawn from
    node ``a`` (the supply) — but unlike an ideal source the output
    current collapses as the output node approaches the supply rail:

    ``i(v) = I(t) · (1 − exp(−max(s, 0)))``,  ``s = (v_a − v_b)/v_knee``.

    This models the compliance of the paper's programmable current
    reference I_REFP (a mirror can pull its output no higher than its
    supply) and keeps the MNA system well-posed when the REF transistor
    underneath is off: the drain then settles just below the rail instead
    of running away through gmin.
    """

    def __init__(self, name: str, a: str, b: str, value: float | Stimulus, v_knee: float = 0.05) -> None:
        super().__init__(name, a, b)
        if v_knee <= 0:
            raise NetlistError(f"mirror {name!r}: v_knee must be positive, got {v_knee}")
        self.value = as_stimulus(value)
        self.v_knee = v_knee

    def output_current(self, time: float, v_a: float, v_b: float) -> float:
        """Actual output current given the terminal voltages."""
        import math

        headroom = max((v_a - v_b) / self.v_knee, 0.0)
        return self.value(time) * (1.0 - math.exp(-headroom))

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        import math

        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        va = ctx.voltage(ia)
        vb = ctx.voltage(ib)
        i_prog = ctx.source_scale * self.value(ctx.time)
        s = (va - vb) / self.v_knee
        if s > 0:
            i = i_prog * (1.0 - math.exp(-s))
            di_ds = i_prog * math.exp(-s)
        else:
            i = 0.0
            di_ds = 0.0
        g = di_ds / self.v_knee  # d i / d (va - vb)
        # Newton companion: current i into b, out of a, linearized in (va-vb).
        i_eq = i - g * (va - vb)
        if ib >= 0:
            if ia >= 0:
                sys.matrix[ib, ia] -= g
            sys.matrix[ib, ib] += g
            sys.rhs[ib] += i_eq
        if ia >= 0:
            if ib >= 0:
                sys.matrix[ia, ib] -= g
            sys.matrix[ia, ia] += g
            sys.rhs[ia] -= i_eq


class Switch(TwoTerminal):
    """Time-controlled ideal switch modelled as a two-state resistor.

    ``control`` is a :class:`Stimulus` (or float); the switch is *on* when
    the control value exceeds ``threshold``.  This is the idealized
    companion of driving a MOSFET's gate — the full measurement netlist
    uses real MOSFETs, while simplified netlists and unit tests use
    switches.
    """

    def __init__(
        self,
        name: str,
        a: str,
        b: str,
        control: float | Stimulus,
        r_on: float = 1e3,
        r_off: float = 1e12,
        threshold: float = 0.5,
    ) -> None:
        super().__init__(name, a, b)
        if r_on <= 0 or r_off <= 0 or r_on >= r_off:
            raise NetlistError(
                f"switch {name!r}: need 0 < r_on < r_off, got r_on={r_on}, r_off={r_off}"
            )
        self.control = as_stimulus(control)
        self.r_on = r_on
        self.r_off = r_off
        self.threshold = threshold

    def is_on(self, time: float) -> bool:
        """True when the control stimulus exceeds the threshold at ``time``."""
        return self.control(time) > self.threshold

    def stamp(self, sys: MnaSystem, ctx: StampContext) -> None:
        ia = sys.circuit.node_index(self.a)
        ib = sys.circuit.node_index(self.b)
        r = self.r_on if self.is_on(ctx.time) else self.r_off
        sys.add_conductance(ia, ib, 1.0 / r)
