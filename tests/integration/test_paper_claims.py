"""The paper's quantitative claims, asserted end to end.

Every numbered claim of §2 of the paper is pinned here against the
reproduction (see EXPERIMENTS.md for the full paper-vs-measured record).
"""

import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.accuracy import accuracy_sweep
from repro.edram.array import EDRAMArray
from repro.measure.phases import Phase, PhasePlan
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.structure import MeasurementDesign
from repro.units import fF, ns


class TestFlowTiming:
    """Claim: "The measurement flow is composed of five steps of 10 ns"."""

    def test_five_phases(self, tech):
        plan = PhasePlan(tech, MeasurementDesign(), 0, 0, 2, 2)
        assert len(plan.windows) == 5
        assert [w.phase for w in plan.windows] == list(Phase)

    def test_ten_ns_each(self, tech):
        plan = PhasePlan(tech, MeasurementDesign(), 0, 0, 2, 2)
        for w in plan.windows:
            assert w.end - w.start == pytest.approx(10 * ns)


class TestConverter:
    """Claim: "a numerical linear ramp of current with 20 steps"."""

    def test_twenty_steps(self, structure_2x2):
        assert structure_2x2.design.num_steps == 20

    def test_ramp_is_linear(self, structure_2x2):
        dac = structure_2x2.dac
        increments = [
            dac.current_at_step(k + 1) - dac.current_at_step(k) for k in range(20)
        ]
        assert all(inc == pytest.approx(increments[0]) for inc in increments)


class TestRange:
    """Claim: "scaled in a range of eDRAM capacitor of 10 fF - 55 fF"."""

    def test_range_endpoints(self, abacus_2x2):
        assert abacus_2x2.range_floor == pytest.approx(10 * fF, rel=0.01)
        assert abacus_2x2.range_ceiling == pytest.approx(55 * fF, rel=0.01)

    def test_abacus_monotone_like_figure3(self, abacus_2x2):
        codes = [
            abacus_2x2.code_for_capacitance(c * fF) for c in range(10, 56, 3)
        ]
        assert all(a <= b for a, b in zip(codes, codes[1:]))
        assert codes[0] <= 1
        assert codes[-1] >= 19


class TestAccuracy:
    """Claim: "with an accuracy of 6 %"."""

    def test_midrange_accuracy(self, abacus_2x2):
        report = accuracy_sweep(abacus_2x2, c_start=20 * fF, c_stop=50 * fF)
        assert report.max_error <= 0.065
        assert report.error_at(30 * fF) <= 0.06


class TestCodeZeroSemantics:
    """Claim: code 0 is ambiguous between <10 fF, shorted, and open."""

    def test_three_way_ambiguity(self, tech, structure_2x2):
        from repro.edram.defects import CellDefect, DefectKind

        outcomes = []
        for setup in ("under", "short", "open"):
            arr = EDRAMArray(2, 2, tech=tech)
            if setup == "under":
                arr.cell(0, 0).capacitance = 6 * fF
            elif setup == "short":
                arr.cell(0, 0).apply_defect(CellDefect(DefectKind.SHORT))
            else:
                arr.cell(0, 0).apply_defect(CellDefect(DefectKind.OPEN))
            seq = MeasurementSequencer(arr.macro(0), structure_2x2)
            outcomes.append(seq.measure_charge(0, 0).code)
        assert outcomes == [0, 0, 0]


class TestCodeTwentySemantics:
    """Claim: code 20 means the value is equal or superior to 55 fF."""

    def test_saturation(self, tech, structure_2x2):
        for cm in (55.5, 70, 120):
            arr = EDRAMArray(2, 2, tech=tech)
            arr.cell(0, 0).capacitance = cm * fF
            seq = MeasurementSequencer(arr.macro(0), structure_2x2)
            assert seq.measure_charge(0, 0).code == 20


class TestFigure2Behaviour:
    """Claim (Figure 2): larger C_m flips OUT at a later current step."""

    @pytest.mark.slow
    def test_flip_ordering_20_vs_40_ff(self, tech, structure_2x2):
        flips = {}
        for cm in (20, 40):
            arr = EDRAMArray(2, 2, tech=tech)
            arr.cell(0, 0).capacitance = cm * fF
            seq = MeasurementSequencer(arr.macro(0), structure_2x2)
            result = seq.measure_transient(0, 0)
            assert result.flip_time is not None
            plan = PhasePlan(tech, structure_2x2.design, 0, 0, 2, 2)
            assert result.flip_time > plan.convert_start
            flips[cm] = (result.flip_time, result.code)
        assert flips[40][0] > flips[20][0]
        assert flips[40][1] > flips[20][1]


class TestStandardModeTransparency:
    """Claim: the structure is off in standard mode; plate sits at VDD/2."""

    def test_plate_bias(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        assert seq.standard_mode_plate_voltage() == pytest.approx(tech.half_vdd)
