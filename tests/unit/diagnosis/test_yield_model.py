"""Yield modelling with redundancy."""

import pytest

from repro.diagnosis.yield_model import YieldSimulator
from repro.errors import DiagnosisError


@pytest.fixture(scope="module")
def simulator():
    return YieldSimulator(rows=16, cols=8, macro_rows=8, spare_rows=2, spare_cols=2)


def test_validation(simulator):
    with pytest.raises(DiagnosisError):
        YieldSimulator(hard_fraction=1.5)
    with pytest.raises(DiagnosisError):
        simulator.run(-1.0)
    with pytest.raises(DiagnosisError):
        simulator.run(1.0, dies=0)


def test_zero_defects_full_yield(simulator):
    result = simulator.run(0.0, dies=10, seed=3)
    assert result.yield_no_repair == 1.0
    assert result.yield_hard_repair == 1.0
    assert result.yield_analog_repair == 1.0
    assert result.field_risks_left == 0.0


def test_yield_decreases_with_density(simulator):
    low = simulator.run(0.5, dies=20, seed=4)
    high = simulator.run(5.0, dies=20, seed=4)
    assert high.yield_no_repair <= low.yield_no_repair


def test_repair_buys_yield(simulator):
    result = simulator.run(1.5, dies=20, seed=5)
    assert result.yield_hard_repair >= result.yield_no_repair
    assert result.yield_hard_repair > 0.5


def test_hard_only_repair_leaves_marginal_cells(simulator):
    # With half the defects parametric, hard-only repair ships risk.
    result = simulator.run(3.0, dies=20, seed=6)
    assert result.field_risks_left > 0


def test_determinism(simulator):
    a = simulator.run(2.0, dies=10, seed=7)
    b = simulator.run(2.0, dies=10, seed=7)
    assert a == b


def test_sweep_shapes(simulator):
    results = simulator.sweep([0.5, 2.0], dies=8, seed=8)
    assert [r.defects_per_die for r in results] == [0.5, 2.0]
    assert all(0.0 <= r.yield_hard_repair <= 1.0 for r in results)


def test_summary_renders(simulator):
    text = simulator.run(1.0, dies=5, seed=9).summary()
    assert "repair" in text
