#!/usr/bin/env python3
"""Process monitoring: watching the capacitor module drift across a lot.

The paper's core industrial motivation: "the specific process of DRAM
capacitor ... induce[s] problems of process monitoring".  This example
simulates a lot of eight dies whose capacitor deposition drifts thinner
die by die and develops a tilt, then shows the analog bitmap catching
the excursion long before functional test would: Cpk degrades and the
drift alarm fires while every die still passes march test.

Run:  python examples/process_monitoring.py
"""

from repro import (
    AnalogBitmap,
    ArrayScanner,
    Abacus,
    EDRAMArray,
    ProcessMonitor,
    design_structure,
    march_c_minus,
)
from repro.edram import compose_maps, linear_tilt_map, mismatch_map, uniform_map
from repro.edram.operations import ArrayOperations
from repro.units import fF, to_fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 32, 16, 8, 2
NUM_DIES = 8
DRIFT_PER_DIE = -0.7 * fF  # deposition thinning, die to die
TILT_GROWTH = 0.01 * fF  # per-column tilt appearing mid-lot

structure = design_structure(
    EDRAMArray(2, 2).tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS
)
abacus = Abacus.analytic(structure, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
monitor = ProcessMonitor(spec_lo=24 * fF, spec_hi=36 * fF)

bitmaps = []
print(f"{'die':>4}  {'mean (fF)':>10}  {'sigma (fF)':>11}  {'Cpk':>6}  "
      f"{'tilt':>12}  {'march test':>11}")
for die in range(NUM_DIES):
    mean = 30 * fF + die * DRIFT_PER_DIE
    tilt = TILT_GROWTH * max(0, die - 3)
    capacitance = compose_maps(
        uniform_map((ROWS, COLS), mean),
        mismatch_map((ROWS, COLS), 0.8 * fF, seed=100 + die),
        linear_tilt_map((ROWS, COLS), col_slope=tilt),
    )
    array = EDRAMArray(ROWS, COLS, macro_cols=MACRO_COLS, macro_rows=MACRO_ROWS,
                       capacitance_map=capacitance)
    bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
    bitmaps.append(bitmap)
    report = monitor.report(bitmap)
    march = march_c_minus().run(ArrayOperations(array))
    tilt_s = "SIGNIFICANT" if report.gradient.significant else "none"
    march_s = "PASS" if march.fail_count == 0 else f"{march.fail_count} fails"
    print(f"{die:>4}  {to_fF(report.mean):>10.2f}  {to_fF(report.sigma):>11.2f}  "
          f"{report.cpk:>6.2f}  {tilt_s:>12}  {march_s:>11}")

print()
for upto in range(2, NUM_DIES + 1):
    if monitor.detect_drift(bitmaps[:upto]):
        print(f"drift alarm fires at die {upto - 1} "
              f"(mean moved {to_fF(abs(monitor.drift_series(bitmaps[:upto])[-1] - 30 * fF)):.1f} fF)")
        break
else:
    print("no drift detected across the lot")

last = monitor.report(bitmaps[-1])
print(f"\nlot-end state: mean {to_fF(last.mean):.2f} fF, Cpk {last.cpk:.2f}, "
      f"failing fraction {100 * monitor.failing_fraction(bitmaps[-1]):.1f} %")
print("every die still PASSES functional test — the analog bitmap is the")
print("only signal that the capacitor module is walking out of spec.")
