"""Analysis drivers: run registered rules over concrete subjects.

The functions here are the public face of the lint subsystem.  Each
takes one analyzable thing — a :class:`~repro.circuit.netlist.Circuit`,
a :class:`~repro.circuit.charge.CapacitorNetwork`, a built macro flow, a
technology card, a source tree — runs the matching registered rules, and
returns a :class:`~repro.lint.diagnostics.LintReport`.  Nothing in this
module invokes a solver; every check is purely structural.

:func:`preflight_macro` / :func:`preflight_array` are the hooks the
measurement layer calls (``scan(..., preflight=True)``): they lint the
macro's charge network and five-phase flow, waive findings anchored on
the storage nodes of *known* defects (those are expected — the scan
exists to measure them), and raise
:class:`~repro.errors.RuleViolation` on anything else.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.circuit.charge import CapacitorNetwork
from repro.circuit.netlist import Circuit
from repro.errors import RuleViolation
from repro.lint.diagnostics import LintReport
from repro.lint.registry import REGISTRY
from repro.lint.rules_unt import check_charge_network_units
from repro.tech.parameters import TechnologyCard

# Rule modules register themselves on import; pull them in explicitly so
# "import repro.lint.analyzer" alone yields the full built-in rule set.
# (The CCY101/102 footprint rules live with their subject in
# repro.sanitize.footprint and register when a sanitized scan imports it.)
from repro.lint import (  # noqa: F401
    pylint_rules,
    rules_ccy,
    rules_det,
    rules_erc,
    rules_flt,
    rules_prm,
    rules_unt,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edram.array import EDRAMArray, MacroCell
    from repro.measure.netlist_builder import ChargeNetlist
    from repro.measure.structure import MeasurementStructure


def lint_circuit(circuit: Circuit, only: Iterable[str] | None = None) -> LintReport:
    """Run all circuit-target rules (ERC001/002/005, UNT001) on a netlist."""
    report = LintReport()
    for spec in REGISTRY.for_target("circuit", only):
        report.extend(spec.run(circuit))
    return report


def lint_charge_network(
    net: CapacitorNetwork,
    subject: str = "charge-network",
    only: Iterable[str] | None = None,
) -> LintReport:
    """Run charge-network rules (ERC003) plus the UNT001 value check."""
    report = LintReport()
    context: dict[str, object] = {"subject": subject}
    for spec in REGISTRY.for_target("charge", only):
        report.extend(spec.run(net, context))
    if only is None or "UNT001" in set(only):
        report.extend(check_charge_network_units(net, subject))
    return report


def lint_flow(
    built: "ChargeNetlist",
    row: int = 0,
    subject: str | None = None,
    only: Iterable[str] | None = None,
) -> LintReport:
    """Run flow rules (ERC004) on a built macro charge netlist."""
    report = LintReport()
    context: dict[str, object] = {"row": row}
    if subject is not None:
        context["subject"] = subject
    for spec in REGISTRY.for_target("flow", only):
        report.extend(spec.run(built, context))
    return report


def lint_technology(tech: TechnologyCard, only: Iterable[str] | None = None) -> LintReport:
    """Run technology-card rules (PRM001)."""
    report = LintReport()
    for spec in REGISTRY.for_target("technology", only):
        report.extend(spec.run(tech))
    return report


def lint_source(
    paths: Iterable[str | Path], only: Iterable[str] | None = None
) -> LintReport:
    """Run AST source rules (PY/ERC006/CCY/DET) over files and directories."""
    report = LintReport()
    specs = REGISTRY.for_target("source", only)
    for path in pylint_rules.iter_python_files([Path(p) for p in paths]):
        tree, context = pylint_rules.parse_source(path)
        for spec in specs:
            report.extend(spec.run(tree, context))
    return report


def lint_project(
    only: Iterable[str] | None = None,
    context: dict[str, object] | None = None,
) -> LintReport:
    """Run project-invariant rules (CCY004, FLT) — no per-file subject.

    These rules introspect the live codebase (dataclass fields vs the
    ledger fingerprint, the fleet's canonical shard planner) rather
    than a parsed artifact, so they take no subject and run once per
    lint invocation.  ``context`` forwards to every rule — the fleet
    merge passes its recorded partition through it so the FLT rules
    validate *that* plan instead of self-checking the planner.
    """
    report = LintReport()
    for spec in REGISTRY.for_target("project", only):
        report.extend(spec.run(None, context))
    return report


def expand_codes(selection: Iterable[str]) -> list[str]:
    """Expand code prefixes (``CCY``, ``DET``) into registered rule codes.

    Each token must match at least one registered code exactly or as a
    prefix; raises :class:`~repro.errors.LintError` on tokens matching
    nothing (a typo silently selecting zero rules would pass every gate).
    """
    from repro.errors import LintError

    codes = REGISTRY.codes()
    expanded: list[str] = []
    for token in selection:
        matches = [c for c in codes if c == token or c.startswith(token)]
        if not matches:
            raise LintError(
                f"--select token {token!r} matches no registered rule "
                f"(known: {', '.join(codes)})"
            )
        expanded.extend(c for c in matches if c not in expanded)
    return expanded


# ---------------------------------------------------------------------------
# Measurement pre-flight
# ---------------------------------------------------------------------------


def _defective_storage_nodes(macro: "MacroCell") -> set[str]:
    """Local storage-node names of every cell carrying a defect.

    These are the nodes whose ERC findings a pre-flight check waives:
    the injector put the fault there on purpose, and the measurement
    flow is designed to survive (and report) it.
    """
    nodes: set[str] = set()
    for row in range(macro.rows):
        for col in range(macro.array.macro_cols):
            if macro.cell(row, col).defect is not None:
                nodes.add(f"s{row}_{col}")
    return nodes


def preflight_macro(
    macro: "MacroCell",
    structure: "MeasurementStructure",
    built: "ChargeNetlist | None" = None,
    waive_known_defects: bool = True,
) -> LintReport:
    """Static checks for one macro's charge network and flow.

    Builds (or reuses) the macro's ideal-switch network, runs ERC003 +
    UNT001 on the network and ERC004 on the flow schedule, and — when
    ``waive_known_defects`` — marks findings on intentionally defective
    storage nodes as waived so only *unexpected* structure problems
    remain errors.
    """
    from repro.measure.netlist_builder import build_charge_network

    if built is None:
        built = build_charge_network(macro, structure)
    subject = f"macro[{macro.index}]"
    report = lint_charge_network(built.network, subject=subject)
    report.merge(lint_flow(built, subject=subject))
    if waive_known_defects:
        report.waive_nodes(_defective_storage_nodes(macro))
    return report


def preflight_array(
    array: "EDRAMArray",
    structure: "MeasurementStructure",
    waive_known_defects: bool = True,
) -> LintReport:
    """Pre-flight every macro of an array; one merged report."""
    report = LintReport()
    for macro in array.macros():
        report.merge(preflight_macro(macro, structure, waive_known_defects=waive_known_defects))
    return report


def raise_on_errors(report: LintReport) -> LintReport:
    """Raise :class:`~repro.errors.RuleViolation` if the report has errors.

    The exception message lists every violated rule code with its nodes,
    so a bad network is diagnosed as e.g. ``ERC004 phase-isolation-
    violation (plate, s1_0)`` instead of a singular-matrix blow-up three
    layers down.  Returns the report unchanged when clean.
    """
    errors = report.errors
    if errors:
        details = "; ".join(
            f"{d.code} {d.slug}" + (f" ({', '.join(d.nodes)})" if d.nodes else "")
            for d in errors
        )
        raise RuleViolation(
            f"pre-flight check failed with {len(errors)} violation(s): {details}",
            diagnostics=tuple(errors),
        )
    return report
