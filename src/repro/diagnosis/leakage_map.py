"""Per-cell leakage extraction: the analog bitmap's second dividend.

The paper stops at capacitance, but its bitmap composes with the
classical retention screen into a *leakage bitmap*: a cell that retains
a '1' for at least ``t`` holds ``I ≤ C·(V_write − V_min)/t``, and one
that fails by ``t`` has ``I ≥ C·(V_write − V_min)/t``.  With the
per-cell ``C`` from the measurement structure (instead of the nominal
value every classical flow assumes) and a ladder of pause times, each
cell gets a two-sided leakage-current bound — turning pass/fail
retention data into a parametric junction-quality map.

This matters diagnostically: a retention fail on a *small* capacitor is
a capacitor-module problem; the same fail time on a *full-size*
capacitor is a junction-leakage problem.  Classical flows cannot tell
them apart; the combined map can.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.march import retention_test
from repro.bitmap.analog import AnalogBitmap
from repro.edram.operations import ArrayOperations
from repro.errors import DiagnosisError


@dataclass(frozen=True)
class LeakageBounds:
    """Per-cell leakage-current bounds, amperes.

    ``lower`` is 0 where the cell never failed (only an upper bound is
    known); ``upper`` is ``inf`` where the cell failed even the shortest
    pause.  NaN marks cells whose capacitance was out of measurement
    range (no usable C estimate).
    """

    lower: np.ndarray
    upper: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols)."""
        return self.lower.shape  # type: ignore[return-value]

    def midpoint(self) -> np.ndarray:
        """Geometric midpoint estimate where both bounds are finite."""
        with np.errstate(invalid="ignore"):
            both = (self.lower > 0) & np.isfinite(self.upper)
            out = np.full(self.lower.shape, np.nan)
            out[both] = np.sqrt(self.lower[both] * self.upper[both])
        return out

    def leaky_cells(self, threshold: float) -> list[tuple[int, int]]:
        """Cells whose *lower* bound exceeds ``threshold`` (provably leaky)."""
        if threshold <= 0:
            raise DiagnosisError("threshold must be positive")
        rows, cols = np.nonzero(self.lower > threshold)
        return [(int(r), int(c)) for r, c in zip(rows, cols)]


def retention_ladder(
    ops: ArrayOperations, pauses: list[float], value: bool = True
) -> np.ndarray:
    """First failing pause index per cell (len(pauses) = never failed).

    Runs one write-pause-read screen per pause, shortest first.  Returns
    an int matrix: entry ``k`` means the cell passed pauses[0..k-1] and
    failed pauses[k]; ``len(pauses)`` means it survived all of them.
    """
    if not pauses:
        raise DiagnosisError("need at least one pause")
    if any(p <= 0 for p in pauses) or any(
        a >= b for a, b in zip(pauses, pauses[1:])
    ):
        raise DiagnosisError("pauses must be positive and strictly increasing")
    shape = (ops.array.rows, ops.array.cols)
    first_fail = np.full(shape, len(pauses), dtype=int)
    for k, pause in enumerate(pauses):
        bitmap = retention_test(ops, pause, value=value)
        newly = bitmap.fails & (first_fail == len(pauses))
        first_fail[newly] = k
    return first_fail


def extract_leakage(
    bitmap: AnalogBitmap,
    first_fail: np.ndarray,
    pauses: list[float],
    v_write: float,
    v_min: float,
) -> LeakageBounds:
    """Combine a capacitance bitmap with a retention ladder.

    For a cell of measured capacitance C with charge budget
    ``Q = C·(v_write − v_min)``:

    - passing a pause ``t`` means the droop ``I·t`` stayed under the
      budget, so ``I ≤ Q/t``; the longest *passed* pause
      (``pauses[k−1]``) gives the tightest **upper** bound;
    - failing a pause ``t`` means the droop exceeded the budget, so
      ``I ≥ Q/t``; the shortest *failed* pause (``pauses[k]``) gives
      the tightest **lower** bound.
    """
    if v_min >= v_write:
        raise DiagnosisError("need v_min < v_write")
    first_fail = np.asarray(first_fail)
    if first_fail.shape != bitmap.shape:
        raise DiagnosisError(
            f"ladder shape {first_fail.shape} != bitmap {bitmap.shape}"
        )
    budget = bitmap.estimates * (v_write - v_min)  # NaN where out of range
    rows, cols = bitmap.shape
    lower = np.zeros((rows, cols))
    upper = np.full((rows, cols), np.inf)
    for r in range(rows):
        for c in range(cols):
            q = budget[r, c]
            if not np.isfinite(q):
                lower[r, c] = np.nan
                upper[r, c] = np.nan
                continue
            k = int(first_fail[r, c])
            if k < len(pauses):
                lower[r, c] = q / pauses[k]
            if k > 0:
                upper[r, c] = q / pauses[k - 1]
    return LeakageBounds(lower=lower, upper=upper)
