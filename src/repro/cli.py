"""Command-line interface.

Exposes the library's main flows without writing Python:

- ``python -m repro design``   — size a structure for a macro geometry
- ``python -m repro abacus``   — print the Figure-3 calibration table
- ``python -m repro scan``     — synthesize an array (optionally with
  defects), scan it, render the analog bitmap
- ``python -m repro diagnose`` — full pipeline on a synthesized array
- ``python -m repro wafer``    — wafer-level monitoring demo
"""

from __future__ import annotations

import argparse
import sys

from repro.units import fF, to_fF, to_ns, to_uA


def _add_geometry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=32, help="array rows")
    parser.add_argument("--cols", type=int, default=16, help="array cols")
    parser.add_argument("--macro-rows", type=int, default=8, help="plate tile rows")
    parser.add_argument("--macro-cols", type=int, default=2, help="plate tile cols")
    parser.add_argument("--seed", type=int, default=0, help="randomness seed")


def _build_array(args, with_defects: bool):
    from repro.edram.array import EDRAMArray
    from repro.edram.defects import DefectInjector, DefectKind
    from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map

    shape = (args.rows, args.cols)
    capacitance = compose_maps(
        uniform_map(shape, 30 * fF), mismatch_map(shape, 0.8 * fF, seed=args.seed)
    )
    array = EDRAMArray(
        args.rows, args.cols, macro_cols=args.macro_cols,
        macro_rows=args.macro_rows, capacitance_map=capacitance,
    )
    if with_defects:
        injector = DefectInjector(array, seed=args.seed + 1)
        injector.scatter(DefectKind.SHORT, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.OPEN, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.LOW_CAP, max(2, array.num_cells // 200), factor=0.6)
    return array


def _design_for(args, array):
    from repro.calibration.design import design_structure

    return design_structure(
        array.tech, args.macro_rows, args.macro_cols, bitline_rows=args.rows
    )


def cmd_design(args) -> int:
    array = _build_array(args, with_defects=False)
    structure = _design_for(args, array)
    d = structure.design
    print(f"structure for {args.macro_rows}x{args.macro_cols} tiles on "
          f"{args.rows}-row columns:")
    print(f"  C_REF        : {to_fF(structure.c_ref):.2f} fF "
          f"(REF {d.w_ref * 1e6:.2f} x {d.l_ref * 1e6:.2f} um)")
    print(f"  DAC step     : {to_uA(d.delta_i):.3f} uA x {d.num_steps} steps")
    print(f"  phase clock  : {to_ns(d.phase_duration):.1f} ns "
          f"({'slew-safe' if structure.is_slew_safe else 'SLEW LIMITED'})")
    print(f"  flow         : {to_ns(d.flow_duration):.1f} ns per cell")
    return 0


def cmd_abacus(args) -> int:
    from repro.calibration.abacus import Abacus

    array = _build_array(args, with_defects=False)
    structure = _design_for(args, array)
    abacus = Abacus.for_array(structure, array)
    print(abacus.table())
    return 0


def cmd_scan(args) -> int:
    from repro.bitmap.analog import AnalogBitmap
    from repro.bitmap.export import render_code_map
    from repro.calibration.abacus import Abacus
    from repro.measure.scan import ArrayScanner

    array = _build_array(args, with_defects=not args.healthy)
    structure = _design_for(args, array)
    abacus = Abacus.for_array(structure, array)
    scan = ArrayScanner(array, structure).scan(jobs=args.jobs)
    bitmap = AnalogBitmap(scan, abacus)
    print(f"scanned {array.num_cells} cells "
          f"({array.num_macros} tiles of {args.macro_rows}x{args.macro_cols})")
    if scan.stats is not None:
        print(scan.stats.summary())
    print(f"mean {to_fF(bitmap.mean_capacitance()):.2f} fF, "
          f"sigma {to_fF(bitmap.std_capacitance()):.2f} fF")
    print(render_code_map(scan.codes))
    if args.save:
        from repro.io import save_scan

        path = save_scan(scan, args.save)
        print(f"scan saved to {path}")
    return 0


def cmd_diagnose(args) -> int:
    from repro.diagnosis.pipeline import DiagnosisPipeline

    array = _build_array(args, with_defects=True)
    pipeline = DiagnosisPipeline(spec_lo=24 * fF, spec_hi=36 * fF)
    report = pipeline.run(array)
    print(report.summary())
    print()
    print("findings:")
    for finding in report.findings:
        print(f"  {finding.describe()}")
    return 0


def cmd_lint(args) -> int:
    from repro.lint import (
        LintReport,
        lint_circuit,
        lint_source,
        lint_technology,
        preflight_macro,
    )
    from repro.measure.netlist_builder import build_measurement_circuit

    report = LintReport()
    if not args.source_only:
        array = _build_array(args, with_defects=args.defects)
        structure = _design_for(args, array)
        report.merge(lint_technology(array.tech))
        macro0 = array.macro(0)
        built = build_measurement_circuit(macro0, 0, 0, structure)
        report.merge(lint_circuit(built.circuit))
        for macro in array.macros():
            report.merge(
                preflight_macro(
                    macro, structure, waive_known_defects=not args.strict_defects
                )
            )
    if args.source:
        report.merge(lint_source(args.source))

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code


def cmd_wafer(args) -> int:
    from repro.wafer import WaferModel

    model = WaferModel(diameter_dies=args.diameter, seed=args.seed)
    report = model.measure_wafer(jobs=args.jobs)
    print(report.ascii_map())
    a, b = report.radial_profile()
    print(f"radial profile: centre {to_fF(a):.2f} fF, "
          f"centre-to-edge drop {to_fF(-b):.2f} fF")
    for label, mean, count in report.zonal_means():
        print(f"  zone {label}: {to_fF(mean):6.2f} fF ({count} dies)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Embedded eDRAM capacitor measurement (DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("design", help="size a measurement structure")
    _add_geometry_args(p)
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("abacus", help="print the calibration abacus")
    _add_geometry_args(p)
    p.set_defaults(func=cmd_abacus)

    p = sub.add_parser("scan", help="scan a synthesized array")
    _add_geometry_args(p)
    p.add_argument("--healthy", action="store_true", help="no injected defects")
    p.add_argument("--save", help="write the scan to this .npz path")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the scan (1 = serial)")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("diagnose", help="full diagnosis pipeline")
    _add_geometry_args(p)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser(
        "lint",
        help="static ERC / parameter / unit analysis (no solver runs)",
    )
    _add_geometry_args(p)
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output rendering")
    p.add_argument("--defects", action="store_true",
                   help="inject defects into the linted array (their findings "
                        "are waived unless --strict-defects)")
    p.add_argument("--strict-defects", action="store_true",
                   help="do not waive findings on known-defective cells")
    p.add_argument("--source", nargs="+", metavar="PATH",
                   help="also AST-lint these Python files/directories "
                        "(raw SI literals, bare asserts)")
    p.add_argument("--source-only", action="store_true",
                   help="skip netlist analysis; lint only --source paths")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("wafer", help="wafer-level monitoring demo")
    p.add_argument("--diameter", type=int, default=7, help="wafer width in dies")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per die scan (1 = serial)")
    p.set_defaults(func=cmd_wafer)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
