"""Exception hierarchy contracts."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.NetlistError,
        errors.ConvergenceError,
        errors.SingularCircuitError,
        errors.TechnologyError,
        errors.ArrayConfigError,
        errors.DefectError,
        errors.MeasurementError,
        errors.CalibrationError,
        errors.DiagnosisError,
        errors.LintError,
        errors.RuleViolation,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_convergence_error_carries_diagnostics():
    err = errors.ConvergenceError("no convergence", iterations=42, residual=1e-3)
    assert err.iterations == 42
    assert err.residual == pytest.approx(1e-3)


def test_convergence_error_defaults():
    err = errors.ConvergenceError("plain")
    assert err.iterations == 0
    assert err.residual != err.residual  # NaN


def test_rule_violation_is_a_lint_error():
    assert issubclass(errors.RuleViolation, errors.LintError)


def test_rule_violation_carries_diagnostics():
    err = errors.RuleViolation("bad network", diagnostics=("d1", "d2"))
    assert err.diagnostics == ("d1", "d2")
    assert errors.RuleViolation("plain").diagnostics == ()


def test_singular_circuit_error_carries_nodes():
    err = errors.SingularCircuitError("shorted", nodes=("plate", "gate"))
    assert err.nodes == ("plate", "gate")
    assert errors.SingularCircuitError("plain").nodes == ()
