"""DC operating-point analysis.

Damped Newton iteration on the MNA system with a gmin-stepping fallback:
if plain Newton fails to converge, the analysis restarts with a large
conductance to ground on every node and relaxes it geometrically down to
the target gmin, using each converged solution as the next initial guess.
This is the standard continuation trick and handles every circuit in this
library (small, mostly capacitive, gently nonlinear).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MnaSystem, StampContext
from repro.circuit.netlist import Circuit
from repro.errors import ConvergenceError, SingularCircuitError
from repro.obs.metrics import active_metrics


#: Default absolute KCL residual tolerance, amperes.
DEFAULT_ABSTOL = 1e-10
#: Default voltage update tolerance, volts.
DEFAULT_VTOL = 1e-8
#: Maximum Newton step per iteration, volts (damping limit).
MAX_STEP_V = 0.6


def _newton(
    sys: MnaSystem,
    ctx: StampContext,
    v0: np.ndarray,
    max_iter: int,
    vtol: float,
) -> np.ndarray:
    """Run damped Newton from ``v0``; return the full unknown vector."""
    n = sys.num_nodes
    x = np.zeros(sys.size)
    x[:n] = v0
    for iteration in range(max_iter):
        ctx.v_iter = x[:n]
        sys.assemble(ctx)
        x_new = sys.solve()
        dv = x_new[:n] - x[:n]
        worst = float(np.max(np.abs(dv))) if n else 0.0
        if worst > MAX_STEP_V:
            x_new = x.copy()
            x_new[:n] = x[:n] + dv * (MAX_STEP_V / worst)
        x = x_new
        if worst <= vtol:
            ctx.v_iter = x[:n]
            active_metrics().histogram(
                "solver.newton_iterations", "Newton iterations per converged solve"
            ).observe(iteration + 1)
            return x
    raise ConvergenceError(
        f"Newton failed to converge in {max_iter} iterations "
        f"(last max dV = {worst:.3e} V)",
        iterations=max_iter,
        residual=worst,
    )


def dc_solve_vector(
    circuit: Circuit,
    time: float = 0.0,
    initial_guess: np.ndarray | None = None,
    max_iter: int = 200,
    gmin: float = 1e-12,
    vtol: float = DEFAULT_VTOL,
) -> np.ndarray:
    """Solve the DC operating point and return the raw unknown vector.

    ``time`` is passed to time-dependent stimuli so the "DC" point can be
    evaluated with sources frozen at any instant (used for transient
    initial conditions).
    """
    sys = MnaSystem(circuit)
    v0 = (
        np.zeros(circuit.num_nodes)
        if initial_guess is None
        else np.asarray(initial_guess, dtype=float).copy()
    )
    ctx = StampContext(time=time, dt=None, gmin=gmin)
    try:
        return _newton(sys, ctx, v0, max_iter, vtol)
    except ConvergenceError:
        active_metrics().counter(
            "solver.gmin_fallbacks", "plain Newton failures rescued by gmin stepping"
        ).inc()
    # gmin stepping: converge a heavily damped circuit first, then relax.
    x: np.ndarray | None = None
    guess = v0
    for g in np.geomspace(1e-3, gmin, 12):
        ctx = StampContext(time=time, dt=None, gmin=float(g))
        x = _newton(sys, ctx, guess, max_iter, vtol)
        guess = x[: circuit.num_nodes]
    if x is None:  # pragma: no cover - geomspace always yields points
        raise SingularCircuitError("gmin stepping produced no solution")
    return x


def dc_operating_point(
    circuit: Circuit,
    time: float = 0.0,
    initial_guess: dict[str, float] | None = None,
    max_iter: int = 200,
    gmin: float = 1e-12,
) -> dict[str, float]:
    """Solve the DC operating point; return ``{node_name: voltage}``.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    time:
        Instant at which time-dependent sources are evaluated.
    initial_guess:
        Optional per-node starting voltages (unlisted nodes start at 0 V).
    """
    guess_vec = None
    if initial_guess:
        guess_vec = np.zeros(circuit.num_nodes)
        for node, voltage in initial_guess.items():
            idx = circuit.node_index(node)
            if idx >= 0:
                guess_vec[idx] = voltage
    x = dc_solve_vector(circuit, time, guess_vec, max_iter, gmin)
    return {name: float(x[circuit.node_index(name)]) for name in circuit.node_names}
