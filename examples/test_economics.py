#!/usr/bin/env python3
"""Test economics: campaign planning for the embedded structure.

The structure measures one cell per 50 ns flow — but a production test
program still has to decide *which* cells to measure, how to get the
codes off chip, and whether to spend extra flows on dithered (sub-code)
conversion.  This example walks those decisions for a 128x64 array:

1. compare address strategies (full raster / macro-grouped /
   checkerboard / sparse) on tester time,
2. run the full BIST campaign and look at the streamed bitmap size,
3. run the 2 % sparse monitor and check its population estimate,
4. dial in dithered conversion for a fine-resolution re-measure of the
   cells the screen flagged.

Run:  python examples/test_economics.py
"""

import numpy as np

from repro import EDRAMArray, design_structure
from repro.calibration import Abacus, DitheredConverter, SpecificationWindow
from repro.bitmap import AnalogBitmap
from repro.controller import BISTController, ScanOrder, TestScheduler
from repro.edram import compose_maps, mismatch_map, uniform_map
from repro.measure.scan import ArrayScanner
from repro.units import fF, to_fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 128, 64, 16, 2

capacitance = compose_maps(
    uniform_map((ROWS, COLS), 30 * fF),
    mismatch_map((ROWS, COLS), 0.9 * fF, seed=11),
)
array = EDRAMArray(ROWS, COLS, macro_cols=MACRO_COLS, macro_rows=MACRO_ROWS,
                   capacitance_map=capacitance)

# A handful of marginal capacitors for the fine re-measure step.
from repro import CellDefect, DefectInjector, DefectKind  # noqa: E402

DefectInjector(array, seed=13).scatter(DefectKind.LOW_CAP, 5, factor=0.75)
structure = design_structure(array.tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
abacus = Abacus.for_array(structure, array)

# 1. Strategy comparison.
scheduler = TestScheduler(array, structure)
print(f"campaign options for {array.num_cells} cells:")
for plan in scheduler.compare_strategies():
    print("  " + plan.describe())
print(f"  (a probe station would need "
      f"{scheduler.probe_station_equivalent(array.num_cells) / 3600:.0f} hours)")

# 2. Full campaign with streaming.
controller = BISTController(array, structure, scheduler)
full = controller.run(ScanOrder.MACRO_MAJOR)
print(f"\nfull bitmap: {full.stream.encoded_bits} bits on the test port "
      f"({full.stream.compression_ratio:.1f}x vs raw), "
      f"tester time {full.plan.total_time * 1e6:.0f} us")

# 3. Sparse monitor.
sparse = controller.monitor(fraction=0.02, seed=12)
print(f"sparse monitor: {sparse.plan.cells} cells in "
      f"{sparse.plan.total_time * 1e6:.1f} us, mean code "
      f"{sparse.mean_code():.2f} +- {sparse.sampling_sigma():.2f} "
      f"(full map: {full.mean_code():.2f})")

# 4. Fine re-measure of screened outliers with dithered conversion.
bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
window = SpecificationWindow.from_capacitance(abacus, 26 * fF, 34 * fF)
flagged = np.argwhere(bitmap.out_of_spec(window))
converter = DitheredConverter(structure, MACRO_ROWS, MACRO_COLS, repeats=8,
                              bitline_rows=ROWS)
print(f"\n{len(flagged)} cells flagged by the coarse screen; re-measuring "
      f"with R=8 dither ({converter.effective_resolution() / fF * 1000:.0f} aF LSB):")
for row, col in flagged[:8]:
    macro = array.macro(array.macro_of(int(row), int(col)))
    result = converter.measure(
        macro, int(row) - macro.row_start, int(col) - macro.col_start
    )
    true = array.cell(int(row), int(col)).capacitance
    print(f"  ({row:>3},{col:>2}) fine estimate {to_fF(result.capacitance):6.2f} fF "
          f"(true {to_fF(true):6.2f} fF) in {result.test_time * 1e9:.0f} ns")
if len(flagged) > 8:
    print(f"  ... and {len(flagged) - 8} more")
