"""Sub-code resolution by current-ramp dithering (extension).

The paper's converter quantizes to ΔI (≈ 2.4 fF per code mid-range).  A
classical DFT trick recovers resolution without redesigning the DAC:
repeat the measurement R times, adding a programmable *offset current*
of ``r·ΔI/R`` (one extra binary-weighted leg) to every ramp step of
repetition ``r``.  Each repetition shifts the code boundaries by a
fraction of a step, so the **average** of the R codes estimates the REF
sink current to ΔI/R:

    I_sink ≈ ΔI · ( mean(code_r) + (R − 1) / (2R) )

Inverting the (monotone) sink-current and charge-sharing relations then
yields a continuous capacitance estimate.  Cost: R× the 50 ns flow per
cell — a test-time/resolution dial quantified in the E7 bench.

This module implements the static tier of that scheme plus the full
inversion chain; the measurement itself reuses the exact charge-tier
V_GS (the dither only changes the conversion, not the charge sharing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.design import nominal_background
from repro.edram.array import MacroCell
from repro.errors import CalibrationError
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.structure import MeasurementStructure


@dataclass(frozen=True)
class DitheredResult:
    """Outcome of one dithered measurement.

    ``codes`` holds the R raw codes (offset r·ΔI/R applied to ramp r);
    ``fine_code`` is the fractional code estimate; ``capacitance`` the
    inverted estimate in farads (NaN when out of range); ``test_time``
    the silicon time consumed, seconds.
    """

    codes: tuple[int, ...]
    fine_code: float
    capacitance: float
    test_time: float

    @property
    def repeats(self) -> int:
        """Number of ramp repetitions used."""
        return len(self.codes)


class DitheredConverter:
    """R-repetition dithered conversion bound to a structure + geometry.

    Parameters
    ----------
    structure:
        The measurement structure (provides ΔI, REF device, sense
        threshold and flow timing).
    rows, macro_cols, bitline_rows:
        Macro geometry, needed to invert the charge-sharing background
        exactly like :class:`~repro.calibration.abacus.Abacus` does.
    repeats:
        Number of dithered ramps per cell (R ≥ 1; R = 1 degenerates to
        the paper's plain conversion).
    """

    def __init__(
        self,
        structure: MeasurementStructure,
        rows: int,
        macro_cols: int,
        repeats: int = 4,
        bitline_rows: int | None = None,
    ) -> None:
        if repeats < 1:
            raise CalibrationError(f"repeats must be >= 1, got {repeats}")
        self.structure = structure
        self.repeats = repeats
        self.background = nominal_background(
            structure.tech, rows, macro_cols, bitline_rows
        )

    # ------------------------------------------------------------------
    # Static conversion
    # ------------------------------------------------------------------

    def codes_for_vgs(self, vgs: float) -> tuple[int, ...]:
        """The R raw codes a given V_GS produces.

        Repetition ``r`` adds ``r·ΔI/R`` to every ramp step, so OUT
        flips one step earlier once the offset exceeds the remainder of
        ``I_sink`` modulo ΔI.
        """
        delta_i = self.structure.design.delta_i
        i_sink = self.structure.ref_sink_current(vgs)
        codes = []
        for r in range(self.repeats):
            offset = r * delta_i / self.repeats
            effective = max(0.0, i_sink - offset)
            code = int(effective / delta_i * (1.0 + 1e-12))
            codes.append(min(code, self.structure.design.num_steps))
        return tuple(codes)

    def fine_code(self, codes: tuple[int, ...]) -> float:
        """Fractional code estimate from the R raw codes.

        With ``x = I_sink/ΔI`` and ``code_r = floor(x − r/R)``, counting
        how many repetitions kept the higher code localizes ``x`` to a
        width-1/R interval whose midpoint is ``mean(codes) + 1 − 1/(2R)``
        (for R = 1 this degenerates to the classic bin midpoint
        ``code + 0.5``).
        """
        if len(codes) != self.repeats:
            raise CalibrationError(
                f"expected {self.repeats} codes, got {len(codes)}"
            )
        r = self.repeats
        return float(np.mean(codes)) + 1.0 - 1.0 / (2.0 * r)

    # ------------------------------------------------------------------
    # Inversion chain
    # ------------------------------------------------------------------

    def vgs_for_fine_code(self, fine_code: float) -> float:
        """Invert the REF sink current for a fractional code (bisection)."""
        target = fine_code * self.structure.design.delta_i
        lo, hi = 0.0, 3.0 * self.structure.tech.vdd
        if self.structure.ref_sink_current(hi) < target:
            raise CalibrationError("fine code beyond the REF device's reach")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.structure.ref_sink_current(mid) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def capacitance_for_fine_code(self, fine_code: float) -> float:
        """Continuous capacitance estimate, farads (NaN out of range)."""
        num_steps = self.structure.design.num_steps
        if fine_code <= 1.0 - 1.0 / (2 * self.repeats) or fine_code >= num_steps:
            return float("nan")
        vgs = self.vgs_for_fine_code(fine_code)
        vdd = self.structure.tech.vdd
        if vgs >= vdd:
            return float("nan")
        x = self.structure.c_ref_total * vgs / (vdd - vgs)
        return x - self.background

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(self, macro: MacroCell, row: int, lcol: int) -> DitheredResult:
        """Dither-measure one cell through the exact charge tier.

        The charge-sharing phases are identical across repetitions (the
        dither only offsets the conversion ramp), so the V_GS is computed
        once and converted R times — exactly what the silicon would do,
        minus the per-repetition flow repetition time, which *is*
        accounted in ``test_time``.
        """
        sequencer = MeasurementSequencer(macro, self.structure)
        vgs = sequencer.measure_charge(row, lcol).vgs
        codes = self.codes_for_vgs(vgs)
        fine = self.fine_code(codes)
        return DitheredResult(
            codes=codes,
            fine_code=fine,
            capacitance=self.capacitance_for_fine_code(fine),
            test_time=self.repeats * self.structure.design.flow_duration,
        )

    def effective_resolution(self, at: float | None = None) -> float:
        """Capacitance per fine-code LSB near ``at`` (default 30 fF), farads."""
        from repro.units import fF

        base = 30.0 * fF if at is None else at
        vgs = (
            self.structure.tech.vdd
            * (base + self.background)
            / (base + self.background + self.structure.c_ref_total)
        )
        code = self.structure.code_for_vgs(vgs)
        if not 0 < code < self.structure.design.num_steps:
            raise CalibrationError(f"{base} F is out of range for this design")
        lsb = 1.0 / self.repeats
        lo = self.capacitance_for_fine_code(code + 0.5)
        hi = self.capacitance_for_fine_code(code + 0.5 + lsb)
        return abs(hi - lo)
