#!/usr/bin/env python3
"""Instrument qualification: trust the structure before trusting the data.

The measurement structure is built in the same process it monitors, so a
test program qualifies the *instrument* before reading any analog
bitmap.  This example walks the three qualification layers:

1. **noise floor** — is the converter limited by physics (kT/C,
   comparator) or by quantization?
2. **fault screen** — do the code maps carry any of the structure's own
   failure signatures (stuck switches, dead DAC legs)?
3. **golden references** — do the on-die precision capacitors decode to
   their known values?  If not, estimate the C_REF drift and re-scale
   the abacus on the spot.

Run:  python examples/instrument_qualification.py
"""

import numpy as np

from repro import Abacus, EDRAMArray, design_structure
from repro.calibration.linearity import analyze_linearity
from repro.calibration.reference import InstrumentCheck, InstrumentStatus, ReferenceBank
from repro.edram import compose_maps, mismatch_map, uniform_map
from repro.measure.faults import fault_signature
from repro.measure.noise import NoiseAnalysis
from repro.measure.scan import ArrayScanner
from repro.measure.structure import MeasurementStructure
from repro.units import fF, to_fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 32, 8, 8, 2

# --- the device under test, with golden references installed ---------------
capacitance = compose_maps(
    uniform_map((ROWS, COLS), 30 * fF),
    mismatch_map((ROWS, COLS), 0.9 * fF, seed=17),
)
array = EDRAMArray(ROWS, COLS, macro_cols=MACRO_COLS, macro_rows=MACRO_ROWS,
                   capacitance_map=capacitance)
bank = ReferenceBank(array, value=30 * fF, seed=18)
nominal = design_structure(array.tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
abacus = Abacus.for_array(nominal, array)

# --- layer 1: noise floor ----------------------------------------------------
analysis = NoiseAnalysis(nominal, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
budget = analysis.budget(30 * fF)
linearity = analyze_linearity(abacus)
print("layer 1 — noise & linearity")
print(f"  random noise {to_fF(budget.sigma_total) * 1000:.0f} aF "
      f"({budget.sigma_codes:.3f} LSB), ENOB {analysis.enob(30 * fF):.2f} bits")
print(f"  {linearity.summary()}")
print("  -> quantization-limited; the 20-step code is trustworthy\n")

# --- layer 2: fault screen ---------------------------------------------------
scan = ArrayScanner(array, nominal).scan()
suspicious = fault_signature(scan.codes)
print("layer 2 — instrument fault screen")
print(f"  code-map signature: {suspicious if suspicious else 'none (healthy)'}\n")

# --- layer 3: golden references, on a DRIFTED instrument --------------------
# Emulate a die whose REF gate capacitance came out 18 % large.
from dataclasses import replace
import math

design = nominal.design
target = 1.18 * (design.c_ref(array.tech) + design.gate_parasitic) - design.gate_parasitic
scale = math.sqrt(target / design.c_ref(array.tech))
drifted = MeasurementStructure(
    array.tech, replace(design, w_ref=design.w_ref * scale, l_ref=design.l_ref * scale)
)
drifted_scan = ArrayScanner(array, drifted).scan()
check = InstrumentCheck(abacus, bank, rows=MACRO_ROWS, macro_cols=MACRO_COLS,
                        bitline_rows=ROWS)
verdict = check.evaluate(drifted_scan)
print("layer 3 — golden references (instrument with +18 % C_REF drift)")
print(f"  expected reference code {verdict.expected_code}, observed "
      f"{sorted(set(verdict.observed_codes))}")
print(f"  verdict: {verdict.status}, estimated gain {verdict.gain:.3f}")

if verdict.status is InstrumentStatus.GAIN_DRIFT:
    probe = (3, 1)
    code = int(drifted_scan.codes[probe])
    wrong = abacus.estimate(code)
    fixed = verdict.corrected_abacus.estimate(code)
    true = array.cell(*probe).capacitance
    print(f"  cell {probe}: true {to_fF(true):.2f} fF | stale abacus "
          f"{to_fF(wrong):.2f} fF | corrected {to_fF(fixed):.2f} fF")
    print("  -> the bank caught a drift that is invisible in the bitmap alone")
