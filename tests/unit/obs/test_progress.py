"""Progress reporters: bookkeeping, rendering, JSONL events, null path."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_PROGRESS, JsonlProgress, NullProgress, ProgressReporter


def make_clock(step=1.0):
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestLifecycle:
    def test_start_validates_total(self):
        with pytest.raises(ObservabilityError):
            ProgressReporter(io.StringIO()).start(0)
        with pytest.raises(ObservabilityError):
            ProgressReporter(io.StringIO()).start(-5)

    def test_advance_before_start_raises(self):
        with pytest.raises(ObservabilityError):
            ProgressReporter(io.StringIO()).advance()

    def test_finish_before_start_raises(self):
        with pytest.raises(ObservabilityError):
            ProgressReporter(io.StringIO()).finish()

    def test_counts_accumulate(self):
        p = ProgressReporter(io.StringIO(), min_interval=0.0, clock=make_clock())
        p.start(100)
        p.advance(30)
        p.advance(20)
        assert p.done == 50
        assert p.total == 100


class TestDerivedFigures:
    def test_rate_and_eta(self):
        # Finishing freezes elapsed time, so rate and ETA are computed
        # against the same deterministic clock value.
        p = ProgressReporter(io.StringIO(), min_interval=0.0, clock=make_clock())
        p.start(100)
        p.advance(50)
        p.finish()
        assert p.rate > 0
        assert p.eta_seconds == pytest.approx((100 - 50) / p.rate)

    def test_eta_infinite_before_work(self):
        p = ProgressReporter(io.StringIO(), min_interval=0.0, clock=make_clock())
        p.start(10)
        assert p.eta_seconds == float("inf")
        assert p.snapshot()["eta_seconds"] is None

    def test_elapsed_frozen_after_finish(self):
        p = ProgressReporter(io.StringIO(), min_interval=0.0, clock=make_clock())
        p.start(4)
        p.advance(4)
        p.finish()
        assert p.elapsed == p.elapsed  # stable once finished


class TestReporterRendering:
    def test_status_line_contents(self):
        buf = io.StringIO()
        p = ProgressReporter(buf, min_interval=0.0, clock=make_clock())
        p.start(128, label="scan", units="cells")
        p.advance(64)
        line = p.render_line()
        assert "scan: 64/128 cells" in line
        assert "50%" in line
        assert "ETA" in line
        assert "\r" in buf.getvalue()

    def test_finish_writes_newline(self):
        buf = io.StringIO()
        p = ProgressReporter(buf, min_interval=0.0, clock=make_clock())
        p.start(2)
        p.advance(2)
        p.finish()
        assert buf.getvalue().endswith("\n")

    def test_repaints_throttled(self):
        buf = io.StringIO()
        # 1s ticks but a 10s minimum interval: intermediate advances
        # must not repaint.
        p = ProgressReporter(buf, min_interval=10.0, clock=make_clock())
        p.start(100)
        before = buf.getvalue().count("\r")
        for _ in range(5):
            p.advance(1)
        assert buf.getvalue().count("\r") == before


class TestJsonlProgress:
    def test_event_stream_to_open_stream(self):
        buf = io.StringIO()
        p = JsonlProgress(buf, clock=make_clock())
        p.start(10, label="wafer", units="dies")
        p.advance(4)
        p.finish()
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [e["event"] for e in events] == ["start", "progress", "finish"]
        assert events[1]["done"] == 4
        assert events[-1]["label"] == "wafer"
        assert events[-1]["units"] == "dies"
        assert {"total", "elapsed_seconds", "rate_per_second"} <= set(events[0])

    def test_event_stream_to_path(self, tmp_path):
        target = tmp_path / "progress.jsonl"
        p = JsonlProgress(str(target), clock=make_clock())
        p.start(3)
        p.advance(3)
        p.finish()
        events = [json.loads(line) for line in target.read_text().splitlines()]
        assert events[-1]["event"] == "finish"
        assert events[-1]["done"] == 3

    def test_restartable_after_finish(self, tmp_path):
        target = tmp_path / "progress.jsonl"
        p = JsonlProgress(str(target), clock=make_clock())
        p.start(1)
        p.finish()
        p.start(2)  # a second run reopens the file
        p.finish()
        assert target.exists()


class TestNullProgress:
    def test_noop_everything(self):
        NULL_PROGRESS.advance()  # no start needed, nothing raises
        NULL_PROGRESS.start(10)
        NULL_PROGRESS.finish()

    def test_enabled_flags(self):
        assert NullProgress().enabled is False
        assert ProgressReporter(io.StringIO()).enabled is True
        assert JsonlProgress(io.StringIO()).enabled is True
