"""The ``repro lint`` subcommand."""

import json

from repro.cli import main
from tests.unit.lint import fixtures

GEOMETRY = ["--rows", "8", "--cols", "4", "--macro-rows", "4"]


def test_lint_shipped_netlists_exit_zero(capsys):
    assert main(["lint", *GEOMETRY]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out


def test_lint_with_defects_waives_and_exits_zero(capsys):
    assert main(["lint", *GEOMETRY, "--defects"]) == 0
    out = capsys.readouterr().out
    assert "waived" in out


def test_lint_strict_defects_exits_nonzero(capsys):
    assert main(["lint", *GEOMETRY, "--defects", "--strict-defects"]) == 1
    out = capsys.readouterr().out
    assert "ERC" in out


def test_lint_json_format(capsys):
    assert main(["lint", *GEOMETRY, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["error_count"] == 0


def test_lint_source_only_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(fixtures.BAD_SOURCE, encoding="utf-8")
    assert main(["lint", "--source-only", "--source", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PY001" in out
    assert "PY002" in out


def test_lint_source_only_clean_file(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text(fixtures.GOOD_SOURCE, encoding="utf-8")
    assert main(["lint", "--source-only", "--source", str(good)]) == 0


def test_lint_combined_netlist_and_source(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(fixtures.BAD_SOURCE, encoding="utf-8")
    assert main(["lint", *GEOMETRY, "--source", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PY001" in out


# ---------------------------------------------------------------------------
# --select, --waivers, and exit-code semantics on mixed-severity reports
# ---------------------------------------------------------------------------


def _write_bad(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(fixtures.BAD_SOURCE, encoding="utf-8")
    return bad


def test_lint_select_restricts_rule_families(tmp_path, capsys):
    bad = _write_bad(tmp_path)
    # BAD_SOURCE violates PY001/PY002 but nothing in CCY/DET, so a
    # CCY,DET selection must come back clean with exit 0.
    assert main(["lint", "--source-only", "--source", str(bad),
                 "--select", "CCY,DET", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["diagnostics"] == []
    # Selecting the violated family keeps the nonzero exit.
    assert main(["lint", "--source-only", "--source", str(bad),
                 "--select", "PY002"]) == 1
    assert "PY001" not in capsys.readouterr().out


def test_lint_select_unknown_token_exits_two(tmp_path, capsys):
    bad = _write_bad(tmp_path)
    assert main(["lint", "--source-only", "--source", str(bad),
                 "--select", "NOPE999"]) == 2
    assert "matches no registered rule" in capsys.readouterr().err


def test_lint_waivers_mixed_severity_exit_codes(tmp_path, capsys):
    bad = _write_bad(tmp_path)
    waivers = tmp_path / "waivers.json"
    waivers.write_text(json.dumps([
        # Live waiver: suppresses every PY002 error in the file.
        {"code": "PY002", "location": "bad.py", "reason": "legacy asserts",
         "expires": "2999-01-01"},
        # Expired waiver: PY001 errors come back AND a WVR001 warning
        # surfaces the debt.
        {"code": "PY001", "location": "bad.py", "reason": "magic floats",
         "expires": "2020-01-01"},
    ]), encoding="utf-8")
    # PY001 errors survive (expired) -> exit 1; report mixes waived
    # errors, live errors, and the WVR001 warning.
    assert main(["lint", "--source-only", "--source", str(bad),
                 "--waivers", str(waivers), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "WVR001" in codes
    assert payload["error_count"] >= 1  # PY001 back from the dead
    assert any(d["code"] == "PY002" and d["waived"]
               for d in payload["diagnostics"])
    assert payload["ok"] is False


def test_lint_waivers_all_errors_waived_exits_zero(tmp_path, capsys):
    bad = _write_bad(tmp_path)
    waivers = tmp_path / "waivers.json"
    waivers.write_text(json.dumps([
        {"code": "PY001", "expires": "2999-01-01"},
        {"code": "PY002", "expires": "2999-01-01"},
    ]), encoding="utf-8")
    # Every error waived -> warnings alone never gate -> exit 0.
    assert main(["lint", "--source-only", "--source", str(bad),
                 "--waivers", str(waivers), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["error_count"] == 0
    assert all(d["waived"] for d in payload["diagnostics"])


def test_lint_malformed_waiver_file_exits_two(tmp_path, capsys):
    bad = _write_bad(tmp_path)
    waivers = tmp_path / "waivers.json"
    waivers.write_text("{not json", encoding="utf-8")
    assert main(["lint", "--source-only", "--source", str(bad),
                 "--waivers", str(waivers)]) == 2
    assert "error:" in capsys.readouterr().err
