"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_design_command(capsys):
    assert main(["design", "--rows", "16", "--macro-rows", "8", "--cols", "4"]) == 0
    out = capsys.readouterr().out
    assert "C_REF" in out
    assert "DAC step" in out


def test_abacus_command(capsys):
    assert main(["abacus", "--rows", "8", "--macro-rows", "8", "--cols", "4"]) == 0
    out = capsys.readouterr().out
    assert "over range" in out
    assert "ambiguous" in out


def test_scan_command_healthy(capsys):
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
    ]) == 0
    out = capsys.readouterr().out
    assert "scanned 32 cells" in out


def test_scan_command_saves(tmp_path, capsys):
    target = tmp_path / "scan.npz"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--save", str(target),
    ]) == 0
    assert target.exists()
    from repro.io import load_scan

    loaded = load_scan(target)
    assert loaded.codes.shape == (8, 4)


def test_diagnose_command(capsys):
    assert main(["diagnose", "--rows", "16", "--cols", "8", "--macro-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "repair" in out
    assert "findings:" in out


def test_wafer_command(capsys):
    assert main(["wafer", "--diameter", "5"]) == 0
    out = capsys.readouterr().out
    assert "wafer mean" in out
    assert "radial profile" in out
