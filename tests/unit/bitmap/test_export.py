"""ASCII bitmap renderings."""

import numpy as np
import pytest

from repro.bitmap.export import render_code_map, render_fail_map
from repro.errors import DiagnosisError


def test_code_map_glyphs():
    codes = np.array([[0, 5], [10, 20]])
    art = render_code_map(codes)
    lines = art.splitlines()
    assert lines[0] == "05"
    assert lines[1] == "ak"  # 10 -> 'a', 20 -> 'k'


def test_code_map_decimation_banner():
    codes = np.zeros((100, 300), dtype=int)
    art = render_code_map(codes, max_rows=10, max_cols=50)
    assert art.splitlines()[0].startswith("(decimated")
    body = art.splitlines()[1:]
    assert len(body) <= 10
    assert all(len(line) <= 50 for line in body)


def test_code_map_validation():
    with pytest.raises(DiagnosisError):
        render_code_map(np.zeros(4, dtype=int))
    with pytest.raises(DiagnosisError):
        render_code_map(np.array([[99]]))


def test_fail_map_symbols():
    fails = np.array([[True, False], [False, True]])
    art = render_fail_map(fails)
    assert art.splitlines() == ["#.", ".#"]


def test_fail_map_validation():
    with pytest.raises(DiagnosisError):
        render_fail_map(np.zeros((2, 2)))
