"""eDRAM array geometry: cells, macro-cells, addressing.

An :class:`EDRAMArray` is a ``rows × cols`` grid of
:class:`~repro.edram.cell.DRAMCell`.  Columns are grouped into
**macro-cells** of ``macro_cols`` adjacent bitlines sharing one plate
node; per Figure 1 of the paper, each macro-cell owns one embedded
measurement structure attached to that plate.  (The paper's figure shows
a 2-bitline macro; ``macro_cols`` is a parameter precisely so the
isolation-error ablation can sweep it.)

The array carries structural truth only — behavioural read/write lives
in :mod:`repro.edram.operations`, measurement in :mod:`repro.measure`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.edram.cell import DRAMCell
from repro.edram.defects import CODE_KINDS, KIND_CODES, DefectKind
from repro.errors import ArrayConfigError
from repro.tech.parameters import TechnologyCard, default_technology

#: Defect-kind codes that present ~0 F at the plate when selected
#: (mirrors :meth:`~repro.edram.cell.DRAMCell.effective_capacitance`).
_DEAD_AT_PLATE = (
    KIND_CODES[DefectKind.OPEN],
    KIND_CODES[DefectKind.ACCESS_OPEN],
    KIND_CODES[DefectKind.SHORT],
)


@dataclass(frozen=True, order=True)
class CellAddress:
    """(row, col) address of one cell; ordered row-major."""

    row: int
    col: int


class EDRAMArray:
    """Grid of 1T1C cells organised into plate-sharing macro-cells.

    The plate of an eDRAM array is a bias net, not a signal net, so it
    can be segmented freely; bitlines, by contrast, must span the whole
    column to reach the sense amplifiers.  Macro-cells are therefore
    **tiles**: ``macro_rows × macro_cols`` cells sharing one plate
    segment (and one embedded measurement structure), while every
    bitline keeps the full array height's parasitic capacitance.  This
    asymmetry is exactly why the paper's plate-node connection wins over
    bitline-side measurement (experiment E1).

    Parameters
    ----------
    rows, cols:
        Array dimensions (wordlines × bitlines).
    tech:
        Technology card; defaults to the nominal 0.18 µm eDRAM card.
    macro_cols:
        Bitlines per macro-cell tile (must divide ``cols``).
    macro_rows:
        Wordlines per macro-cell tile (must divide ``rows``); defaults
        to the full array height (column-stripe macros, the simple
        configuration).
    capacitance_map:
        Optional ``(rows, cols)`` array of per-cell capacitances in
        farads; defaults to the uniform nominal value.  Use the
        generators in :mod:`repro.edram.variation_map` to build realistic
        maps.
    leak_map:
        Optional ``(rows, cols)`` array of per-cell junction leakage in
        amperes; defaults to the uniform technology value.
    """

    #: Cell-technology backend name this array class belongs to
    #: (``repro.technologies``).  Subclasses for other memories override;
    #: the scanner checks it against ``ScanConfig.technology``.
    technology = "edram"

    def __init__(
        self,
        rows: int,
        cols: int,
        tech: TechnologyCard | None = None,
        macro_cols: int = 2,
        macro_rows: int | None = None,
        capacitance_map: np.ndarray | None = None,
        leak_map: np.ndarray | None = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ArrayConfigError(f"array must be at least 1x1, got {rows}x{cols}")
        if macro_cols < 1 or cols % macro_cols != 0:
            raise ArrayConfigError(
                f"macro_cols ({macro_cols}) must be >= 1 and divide cols ({cols})"
            )
        if macro_rows is None:
            macro_rows = rows
        if macro_rows < 1 or rows % macro_rows != 0:
            raise ArrayConfigError(
                f"macro_rows ({macro_rows}) must be >= 1 and divide rows ({rows})"
            )
        self.rows = rows
        self.cols = cols
        self.tech = tech if tech is not None else default_technology()
        self.macro_cols = macro_cols
        self.macro_rows = macro_rows

        cap = self._validated_map(capacitance_map, self.tech.cell_capacitance, "capacitance_map")
        leak = self._validated_map(leak_map, self.tech.junction_leak_per_cell, "leak_map")
        self._cells = [
            [
                DRAMCell(capacitance=float(cap[r, c]), leak_current=float(leak[r, c]))
                for c in range(cols)
            ]
            for r in range(rows)
        ]

        # Bulk views maintained incrementally: every watched cell mutation
        # (capacitance edit, defect attachment) is mirrored here through
        # _note_cell_changed, so array-scale consumers get O(1) slices
        # instead of O(rows x cols) Python loops.
        self._cap = cap.astype(float, copy=True)
        self._leak = leak.astype(float, copy=True)
        self._kinds = np.zeros((rows, cols), dtype=np.int8)
        self._kind_counts: dict[DefectKind, int] = dict.fromkeys(DefectKind, 0)
        self._version = 0
        for r in range(rows):
            for c in range(cols):
                self._cells[r][c]._watcher = (self, r, c)

    def _validated_map(self, arr: np.ndarray | None, default: float, name: str) -> np.ndarray:
        if arr is None:
            return np.full((self.rows, self.cols), default)
        arr = np.asarray(arr, dtype=float)
        if arr.shape != (self.rows, self.cols):
            raise ArrayConfigError(
                f"{name} shape {arr.shape} does not match array {self.rows}x{self.cols}"
            )
        if np.any(arr <= 0):
            raise ArrayConfigError(f"{name} must be strictly positive everywhere")
        return arr

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every watched cell mutation.

        Consumers holding derived state (cached netlists, designed
        windows) compare versions to decide whether to rebuild.
        """
        return self._version

    def _note_cell_changed(self, row: int, col: int) -> None:
        """Mirror one cell's mutation into the bulk matrices (cell hook)."""
        cell = self._cells[row][col]
        self._cap[row, col] = cell.capacitance
        self._leak[row, col] = cell.leak_current
        new = 0 if cell.defect is None else KIND_CODES[cell.defect.kind]
        old = int(self._kinds[row, col])
        if old != new:
            if old:
                self._kind_counts[CODE_KINDS[old]] -= 1
            if new:
                self._kind_counts[CODE_KINDS[new]] += 1
            self._kinds[row, col] = new
        self._version += 1

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def cell(self, row: int, col: int) -> DRAMCell:
        """The cell at (row, col); raises on out-of-range addresses."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ArrayConfigError(
                f"address ({row}, {col}) outside array {self.rows}x{self.cols}"
            )
        return self._cells[row][col]

    def addresses(self) -> list[CellAddress]:
        """All cell addresses in row-major order."""
        return [CellAddress(r, c) for r in range(self.rows) for c in range(self.cols)]

    @property
    def num_cells(self) -> int:
        """Total number of cells."""
        return self.rows * self.cols

    # ------------------------------------------------------------------
    # Macro-cells
    # ------------------------------------------------------------------

    @property
    def macros_per_row(self) -> int:
        """Macro tiles across the array width."""
        return self.cols // self.macro_cols

    @property
    def macros_per_col(self) -> int:
        """Macro tiles down the array height."""
        return self.rows // self.macro_rows

    @property
    def num_macros(self) -> int:
        """Number of macro-cell tiles (plate segments)."""
        return self.macros_per_row * self.macros_per_col

    def macro(self, index: int) -> "MacroCell":
        """The macro-cell with the given index (row-major tile order)."""
        if not 0 <= index < self.num_macros:
            raise ArrayConfigError(
                f"macro index {index} out of range 0..{self.num_macros - 1}"
            )
        return MacroCell(self, index)

    def macros(self) -> list["MacroCell"]:
        """All macro-cell tiles, row-major."""
        return [MacroCell(self, i) for i in range(self.num_macros)]

    def macro_of(self, row: int, col: int) -> int:
        """Index of the macro-cell tile containing cell (row, col)."""
        if not 0 <= col < self.cols:
            raise ArrayConfigError(f"col {col} out of range 0..{self.cols - 1}")
        if not 0 <= row < self.rows:
            raise ArrayConfigError(f"row {row} out of range 0..{self.rows - 1}")
        return (row // self.macro_rows) * self.macros_per_row + col // self.macro_cols

    # ------------------------------------------------------------------
    # Bulk views
    # ------------------------------------------------------------------

    def capacitance_matrix(self) -> np.ndarray:
        """Per-cell as-fabricated capacitances, farads, shape (rows, cols)."""
        return self._cap.copy()

    def leak_matrix(self) -> np.ndarray:
        """Per-cell junction leakage, amperes, shape (rows, cols)."""
        return self._leak.copy()

    def capacitance_view(self) -> np.ndarray:
        """Read-only no-copy view of the capacitance plane.

        The vectorized measurement kernel gathers its inputs through
        these views so a whole-array scan allocates nothing per macro;
        hold a :attr:`version` alongside any long-lived reference.
        """
        view = self._cap.view()
        view.flags.writeable = False
        return view

    def defect_kind_view(self) -> np.ndarray:
        """Read-only no-copy view of the defect-kind plane (int8)."""
        view = self._kinds.view()
        view.flags.writeable = False
        return view

    def leak_view(self) -> np.ndarray:
        """Read-only no-copy view of the leakage plane."""
        view = self._leak.view()
        view.flags.writeable = False
        return view

    def defect_kind_matrix(self) -> np.ndarray:
        """Per-cell defect-kind codes, shape (rows, cols), dtype int8.

        0 marks a healthy cell; other codes are
        :data:`repro.edram.defects.KIND_CODES` entries.
        """
        return self._kinds.copy()

    def defect_mask(self, kind: DefectKind) -> np.ndarray:
        """Boolean (rows, cols) mask of cells carrying ``kind``."""
        return self._kinds == KIND_CODES[kind]

    def defect_count(self, kind: DefectKind | None = None) -> int:
        """Number of defective cells (of one kind, or in total).  O(1)."""
        if kind is None:
            return sum(self._kind_counts.values())
        return self._kind_counts[kind]

    def effective_capacitance_matrix(self) -> np.ndarray:
        """Per-cell capacitance presented at the plate (defects applied)."""
        return np.where(np.isin(self._kinds, _DEAD_AT_PLATE), 0.0, self._cap)

    def defect_locations(self) -> list[tuple[int, int]]:
        """Addresses of every cell carrying a defect (row-major)."""
        rows, cols = np.nonzero(self._kinds)
        return [(int(r), int(c)) for r, c in zip(rows, cols)]

    def bitline_capacitance(self) -> float:
        """Parasitic capacitance of one full-height bitline, farads."""
        return self.tech.bitline_capacitance(self.rows)


class MacroCell:
    """View over one plate-sharing tile of an :class:`EDRAMArray`.

    The measurement structure of the paper attaches to
    :attr:`plate_parasitic` worth of stray capacitance plus every cell in
    :meth:`cells`; bitlines within the macro are selected through the
    S_BLi transistors but keep the **full array height's** parasitic
    capacitance — a bitline cannot be segmented the way the plate can.

    All ``row``/``local_col`` arguments to this class are tile-local.
    """

    def __init__(self, array: EDRAMArray, index: int) -> None:
        self.array = array
        self.index = index
        tile_row, tile_col = divmod(index, array.macros_per_row)
        self.row_start = tile_row * array.macro_rows
        self.row_stop = self.row_start + array.macro_rows  # exclusive
        self.col_start = tile_col * array.macro_cols
        self.col_stop = self.col_start + array.macro_cols  # exclusive

    @property
    def rows(self) -> int:
        """Wordlines spanning this tile."""
        return self.array.macro_rows

    @property
    def columns(self) -> range:
        """Global column indices belonging to this macro."""
        return range(self.col_start, self.col_stop)

    @property
    def row_range(self) -> range:
        """Global row indices belonging to this macro."""
        return range(self.row_start, self.row_stop)

    @property
    def num_cells(self) -> int:
        """Cells in this macro tile."""
        return self.rows * self.array.macro_cols

    def _check_local(self, row: int, local_col: int) -> None:
        if not 0 <= local_col < self.array.macro_cols:
            raise ArrayConfigError(
                f"local col {local_col} out of range 0..{self.array.macro_cols - 1}"
            )
        if not 0 <= row < self.rows:
            raise ArrayConfigError(f"local row {row} out of range 0..{self.rows - 1}")

    def cell(self, row: int, local_col: int) -> DRAMCell:
        """Cell at tile-local (row, local_col)."""
        self._check_local(row, local_col)
        return self.array.cell(self.row_start + row, self.col_start + local_col)

    def cells(self) -> list[tuple[int, int, DRAMCell]]:
        """All (local_row, local_col, cell) triples of the macro."""
        return [
            (r, c, self.cell(r, c))
            for r in range(self.rows)
            for c in range(self.array.macro_cols)
        ]

    def capacitance_matrix(self) -> np.ndarray:
        """As-fabricated capacitances of the tile, (rows, macro_cols)."""
        return self.array._cap[
            self.row_start : self.row_stop, self.col_start : self.col_stop
        ].copy()

    def defect_kind_matrix(self) -> np.ndarray:
        """Defect-kind codes of the tile, (rows, macro_cols), int8.

        Codes as in :meth:`EDRAMArray.defect_kind_matrix`.
        """
        return self.array._kinds[
            self.row_start : self.row_stop, self.col_start : self.col_stop
        ].copy()

    def defect_mask(self, kind: "DefectKind") -> np.ndarray:
        """Boolean (rows, macro_cols) mask of tile cells carrying ``kind``."""
        return self.defect_kind_matrix() == KIND_CODES[kind]

    @property
    def plate_parasitic(self) -> float:
        """Stray plate-node capacitance of this macro tile, farads."""
        return self.array.tech.plate_parasitic(self.num_cells)

    @property
    def bitline_capacitance(self) -> float:
        """Parasitic capacitance of one full-height bitline, farads."""
        return self.array.tech.bitline_capacitance(self.array.rows)

    def global_address(self, row: int, local_col: int) -> CellAddress:
        """Translate a macro-local address to a global one."""
        self._check_local(row, local_col)
        return CellAddress(self.row_start + row, self.col_start + local_col)
