"""Parametric Monte-Carlo variation of the technology card.

The paper's diagnosis methodology is motivated by exactly this: the eDRAM
capacitor module drifts with process, and a per-cell capacitance readout
makes the drift observable.  This module samples *global* (die-to-die)
variation of the technology card; *local* per-cell capacitance maps live
in :mod:`repro.edram.variation_map`.

All sampling is deterministic given a seed (``numpy.random.Generator``),
so Monte-Carlo benches are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.errors import TechnologyError
from repro.tech.parameters import TechnologyCard, default_technology
from repro.units import fF


@dataclass(frozen=True)
class VariationModel:
    """One-sigma die-to-die spreads of the card's key parameters.

    Parameters
    ----------
    sigma_vth:
        1σ threshold-voltage shift applied to both device polarities, volts.
    sigma_kp_rel:
        1σ relative transconductance variation (dimensionless).
    sigma_cell_cap:
        1σ nominal cell-capacitance variation, farads.  ~1 fF on 30 fF is
        a healthy eDRAM deposition process; the benches also use larger
        values to emulate a drifting process module.
    sigma_vdd_rel:
        1σ relative supply variation (regulator tolerance).
    """

    sigma_vth: float = 0.015
    sigma_kp_rel: float = 0.04
    sigma_cell_cap: float = 1.0 * fF
    sigma_vdd_rel: float = 0.01

    def __post_init__(self) -> None:
        for name in ("sigma_vth", "sigma_kp_rel", "sigma_cell_cap", "sigma_vdd_rel"):
            if getattr(self, name) < 0:
                raise TechnologyError(f"{name} must be non-negative")


class MonteCarloSampler:
    """Draw randomized :class:`TechnologyCard` instances.

    >>> sampler = MonteCarloSampler(seed=7)
    >>> cards = [sampler.sample() for _ in range(100)]

    Device mismatch between the two polarities is drawn independently;
    the cell capacitance and supply are global per draw.
    """

    def __init__(
        self,
        base: TechnologyCard | None = None,
        model: VariationModel | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.base = base if base is not None else default_technology()
        self.model = model if model is not None else VariationModel()
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._draw_index = 0

    def sample(self) -> TechnologyCard:
        """Return one randomized technology card."""
        m = self.model
        rng = self._rng
        n_dvth = rng.normal(0.0, m.sigma_vth)
        p_dvth = rng.normal(0.0, m.sigma_vth)
        n_kp = max(0.1, 1.0 + rng.normal(0.0, m.sigma_kp_rel))
        p_kp = max(0.1, 1.0 + rng.normal(0.0, m.sigma_kp_rel))
        dcap = rng.normal(0.0, m.sigma_cell_cap)
        vdd_scale = max(0.5, 1.0 + rng.normal(0.0, m.sigma_vdd_rel))
        self._draw_index += 1
        card = self.base
        return replace(
            card,
            name=f"{card.name}-mc{self._draw_index:04d}",
            nmos=card.nmos.with_shift(dvth=n_dvth, kp_scale=n_kp),
            pmos=card.pmos.with_shift(dvth=p_dvth, kp_scale=p_kp),
            cell_capacitance=max(0.5 * fF, card.cell_capacitance + dcap),
            vdd=card.vdd * vdd_scale,
            vpp=card.vpp * vdd_scale,
        )

    def samples(self, count: int) -> Iterator[TechnologyCard]:
        """Yield ``count`` randomized cards."""
        if count < 0:
            raise TechnologyError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.sample()
