"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_design_command(capsys):
    assert main(["design", "--rows", "16", "--macro-rows", "8", "--cols", "4"]) == 0
    out = capsys.readouterr().out
    assert "C_REF" in out
    assert "DAC step" in out


def test_abacus_command(capsys):
    assert main(["abacus", "--rows", "8", "--macro-rows", "8", "--cols", "4"]) == 0
    out = capsys.readouterr().out
    assert "over range" in out
    assert "ambiguous" in out


def test_scan_command_healthy(capsys):
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
    ]) == 0
    out = capsys.readouterr().out
    assert "scanned 32 cells" in out


def test_scan_command_saves(tmp_path, capsys):
    target = tmp_path / "scan.npz"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--save", str(target),
    ]) == 0
    assert target.exists()
    from repro.io import load_scan

    loaded = load_scan(target)
    assert loaded.codes.shape == (8, 4)


def test_scan_command_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.jsonl"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--trace", str(trace_path), "--metrics",
        "--metrics-out", str(metrics_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "scan.cells" in out
    assert trace_path.exists() and metrics_path.exists()

    from repro.obs import load_trace, summarize_trace

    summary = summarize_trace(load_trace(str(trace_path)))
    # The injected bridge routes at least one macro through the engine,
    # so the trace shows the full five-phase tree.
    assert summary.covers(
        "scan", "macro", "cell", "phase:discharge", "phase:charge",
        "phase:isolate", "phase:share", "phase:convert",
    )


def test_scan_command_json(capsys):
    import json

    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cells"] == 32
    assert payload["geometry"]["rows"] == 8
    assert payload["stats"]["total_cells"] == 32
    assert sum(payload["code_histogram"].values()) == 32


def test_scan_command_force_engine(capsys):
    assert main([
        "scan", "--rows", "4", "--cols", "4", "--macro-rows", "4",
        "--macro-cols", "2", "--healthy", "--force-engine",
    ]) == 0
    assert "engine" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
        "--trace", str(trace_path),
    ])
    capsys.readouterr()
    assert main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "scan" in out
    assert "max depth" in out


def test_trace_command_json(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.jsonl"
    main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
        "--trace", str(trace_path),
    ])
    capsys.readouterr()
    assert main(["trace", str(trace_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_spans"] >= 1
    assert {row["name"] for row in payload["spans"]} >= {"scan", "macro"}


def test_diagnose_command_json(capsys):
    import json

    assert main([
        "diagnose", "--rows", "16", "--cols", "8", "--macro-rows", "8", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "verdicts" in payload
    assert "repair" in payload
    assert isinstance(payload["repair"]["success"], bool)


def test_diagnose_command(capsys):
    assert main(["diagnose", "--rows", "16", "--cols", "8", "--macro-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "repair" in out
    assert "findings:" in out


def test_wafer_command(capsys):
    assert main(["wafer", "--diameter", "5"]) == 0
    out = capsys.readouterr().out
    assert "wafer mean" in out
    assert "radial profile" in out
